# Empty dependencies file for bench_whp.
# This may be replaced when dependencies are built.
