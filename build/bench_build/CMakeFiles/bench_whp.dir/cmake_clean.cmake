file(REMOVE_RECURSE
  "../bench/bench_whp"
  "../bench/bench_whp.pdb"
  "CMakeFiles/bench_whp.dir/bench_whp.cpp.o"
  "CMakeFiles/bench_whp.dir/bench_whp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
