file(REMOVE_RECURSE
  "../bench/bench_phases"
  "../bench/bench_phases.pdb"
  "CMakeFiles/bench_phases.dir/bench_phases.cpp.o"
  "CMakeFiles/bench_phases.dir/bench_phases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
