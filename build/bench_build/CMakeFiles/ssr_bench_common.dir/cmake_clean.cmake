file(REMOVE_RECURSE
  "CMakeFiles/ssr_bench_common.dir/common.cpp.o"
  "CMakeFiles/ssr_bench_common.dir/common.cpp.o.d"
  "libssr_bench_common.a"
  "libssr_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
