file(REMOVE_RECURSE
  "libssr_bench_common.a"
)
