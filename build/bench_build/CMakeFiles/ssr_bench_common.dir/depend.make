# Empty dependencies file for ssr_bench_common.
# This may be replaced when dependencies are built.
