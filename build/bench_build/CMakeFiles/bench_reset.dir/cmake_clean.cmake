file(REMOVE_RECURSE
  "../bench/bench_reset"
  "../bench/bench_reset.pdb"
  "CMakeFiles/bench_reset.dir/bench_reset.cpp.o"
  "CMakeFiles/bench_reset.dir/bench_reset.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
