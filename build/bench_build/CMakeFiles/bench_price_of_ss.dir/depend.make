# Empty dependencies file for bench_price_of_ss.
# This may be replaced when dependencies are built.
