file(REMOVE_RECURSE
  "../bench/bench_price_of_ss"
  "../bench/bench_price_of_ss.pdb"
  "CMakeFiles/bench_price_of_ss.dir/bench_price_of_ss.cpp.o"
  "CMakeFiles/bench_price_of_ss.dir/bench_price_of_ss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_price_of_ss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
