file(REMOVE_RECURSE
  "../bench/bench_tradeoff_h"
  "../bench/bench_tradeoff_h.pdb"
  "CMakeFiles/bench_tradeoff_h.dir/bench_tradeoff_h.cpp.o"
  "CMakeFiles/bench_tradeoff_h.dir/bench_tradeoff_h.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tradeoff_h.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
