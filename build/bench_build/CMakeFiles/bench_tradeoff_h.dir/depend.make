# Empty dependencies file for bench_tradeoff_h.
# This may be replaced when dependencies are built.
