file(REMOVE_RECURSE
  "../bench/bench_baseline_n2"
  "../bench/bench_baseline_n2.pdb"
  "CMakeFiles/bench_baseline_n2.dir/bench_baseline_n2.cpp.o"
  "CMakeFiles/bench_baseline_n2.dir/bench_baseline_n2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_n2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
