# Empty compiler generated dependencies file for bench_baseline_n2.
# This may be replaced when dependencies are built.
