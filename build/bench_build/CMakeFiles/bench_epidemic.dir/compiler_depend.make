# Empty compiler generated dependencies file for bench_epidemic.
# This may be replaced when dependencies are built.
