file(REMOVE_RECURSE
  "../bench/bench_epidemic"
  "../bench/bench_epidemic.pdb"
  "CMakeFiles/bench_epidemic.dir/bench_epidemic.cpp.o"
  "CMakeFiles/bench_epidemic.dir/bench_epidemic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_epidemic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
