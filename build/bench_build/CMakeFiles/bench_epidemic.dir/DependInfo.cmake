
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_epidemic.cpp" "bench_build/CMakeFiles/bench_epidemic.dir/bench_epidemic.cpp.o" "gcc" "bench_build/CMakeFiles/bench_epidemic.dir/bench_epidemic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_build/CMakeFiles/ssr_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_processes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_pp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
