file(REMOVE_RECURSE
  "../bench/bench_states"
  "../bench/bench_states.pdb"
  "CMakeFiles/bench_states.dir/bench_states.cpp.o"
  "CMakeFiles/bench_states.dir/bench_states.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
