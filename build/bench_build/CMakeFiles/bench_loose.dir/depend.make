# Empty dependencies file for bench_loose.
# This may be replaced when dependencies are built.
