file(REMOVE_RECURSE
  "../bench/bench_loose"
  "../bench/bench_loose.pdb"
  "CMakeFiles/bench_loose.dir/bench_loose.cpp.o"
  "CMakeFiles/bench_loose.dir/bench_loose.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
