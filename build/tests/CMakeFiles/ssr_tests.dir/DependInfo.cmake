
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/accelerated_test.cpp" "tests/CMakeFiles/ssr_tests.dir/accelerated_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/accelerated_test.cpp.o.d"
  "/root/repo/tests/adversary_test.cpp" "tests/CMakeFiles/ssr_tests.dir/adversary_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/adversary_test.cpp.o.d"
  "/root/repo/tests/continuous_time_test.cpp" "tests/CMakeFiles/ssr_tests.dir/continuous_time_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/continuous_time_test.cpp.o.d"
  "/root/repo/tests/convergence_test.cpp" "tests/CMakeFiles/ssr_tests.dir/convergence_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/convergence_test.cpp.o.d"
  "/root/repo/tests/describe_test.cpp" "tests/CMakeFiles/ssr_tests.dir/describe_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/describe_test.cpp.o.d"
  "/root/repo/tests/fault_injection_test.cpp" "tests/CMakeFiles/ssr_tests.dir/fault_injection_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/fault_injection_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/ssr_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/history_tree_fuzz_test.cpp" "tests/CMakeFiles/ssr_tests.dir/history_tree_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/history_tree_fuzz_test.cpp.o.d"
  "/root/repo/tests/history_tree_test.cpp" "tests/CMakeFiles/ssr_tests.dir/history_tree_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/history_tree_test.cpp.o.d"
  "/root/repo/tests/initialized_ranking_test.cpp" "tests/CMakeFiles/ssr_tests.dir/initialized_ranking_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/initialized_ranking_test.cpp.o.d"
  "/root/repo/tests/initialized_test.cpp" "tests/CMakeFiles/ssr_tests.dir/initialized_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/initialized_test.cpp.o.d"
  "/root/repo/tests/invariants_test.cpp" "tests/CMakeFiles/ssr_tests.dir/invariants_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/invariants_test.cpp.o.d"
  "/root/repo/tests/ks_test_test.cpp" "tests/CMakeFiles/ssr_tests.dir/ks_test_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/ks_test_test.cpp.o.d"
  "/root/repo/tests/loose_stabilizing_test.cpp" "tests/CMakeFiles/ssr_tests.dir/loose_stabilizing_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/loose_stabilizing_test.cpp.o.d"
  "/root/repo/tests/names_test.cpp" "tests/CMakeFiles/ssr_tests.dir/names_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/names_test.cpp.o.d"
  "/root/repo/tests/optimal_silent_test.cpp" "tests/CMakeFiles/ssr_tests.dir/optimal_silent_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/optimal_silent_test.cpp.o.d"
  "/root/repo/tests/processes_test.cpp" "tests/CMakeFiles/ssr_tests.dir/processes_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/processes_test.cpp.o.d"
  "/root/repo/tests/propagate_reset_test.cpp" "tests/CMakeFiles/ssr_tests.dir/propagate_reset_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/propagate_reset_test.cpp.o.d"
  "/root/repo/tests/property_stabilization_test.cpp" "tests/CMakeFiles/ssr_tests.dir/property_stabilization_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/property_stabilization_test.cpp.o.d"
  "/root/repo/tests/regression_test.cpp" "tests/CMakeFiles/ssr_tests.dir/regression_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/regression_test.cpp.o.d"
  "/root/repo/tests/rng_test.cpp" "tests/CMakeFiles/ssr_tests.dir/rng_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/rng_test.cpp.o.d"
  "/root/repo/tests/scheduler_test.cpp" "tests/CMakeFiles/ssr_tests.dir/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/scheduler_test.cpp.o.d"
  "/root/repo/tests/serialize_test.cpp" "tests/CMakeFiles/ssr_tests.dir/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/serialize_test.cpp.o.d"
  "/root/repo/tests/silent_n_state_test.cpp" "tests/CMakeFiles/ssr_tests.dir/silent_n_state_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/silent_n_state_test.cpp.o.d"
  "/root/repo/tests/simulation_test.cpp" "tests/CMakeFiles/ssr_tests.dir/simulation_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/simulation_test.cpp.o.d"
  "/root/repo/tests/smc_test.cpp" "tests/CMakeFiles/ssr_tests.dir/smc_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/smc_test.cpp.o.d"
  "/root/repo/tests/ssle_integration_test.cpp" "tests/CMakeFiles/ssr_tests.dir/ssle_integration_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/ssle_integration_test.cpp.o.d"
  "/root/repo/tests/state_space_test.cpp" "tests/CMakeFiles/ssr_tests.dir/state_space_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/state_space_test.cpp.o.d"
  "/root/repo/tests/statistics_test.cpp" "tests/CMakeFiles/ssr_tests.dir/statistics_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/statistics_test.cpp.o.d"
  "/root/repo/tests/sublinear_test.cpp" "tests/CMakeFiles/ssr_tests.dir/sublinear_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/sublinear_test.cpp.o.d"
  "/root/repo/tests/table_test.cpp" "tests/CMakeFiles/ssr_tests.dir/table_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/table_test.cpp.o.d"
  "/root/repo/tests/timeseries_test.cpp" "tests/CMakeFiles/ssr_tests.dir/timeseries_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/timeseries_test.cpp.o.d"
  "/root/repo/tests/topology_test.cpp" "tests/CMakeFiles/ssr_tests.dir/topology_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/topology_test.cpp.o.d"
  "/root/repo/tests/trial_test.cpp" "tests/CMakeFiles/ssr_tests.dir/trial_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/trial_test.cpp.o.d"
  "/root/repo/tests/verify_test.cpp" "tests/CMakeFiles/ssr_tests.dir/verify_test.cpp.o" "gcc" "tests/CMakeFiles/ssr_tests.dir/verify_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssr_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_processes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ssr_pp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
