# Empty compiler generated dependencies file for ssr_tests.
# This may be replaced when dependencies are built.
