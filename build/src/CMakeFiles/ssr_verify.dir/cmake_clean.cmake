file(REMOVE_RECURSE
  "CMakeFiles/ssr_verify.dir/verify/smc.cpp.o"
  "CMakeFiles/ssr_verify.dir/verify/smc.cpp.o.d"
  "libssr_verify.a"
  "libssr_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
