file(REMOVE_RECURSE
  "libssr_verify.a"
)
