# Empty dependencies file for ssr_verify.
# This may be replaced when dependencies are built.
