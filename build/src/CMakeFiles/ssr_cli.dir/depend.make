# Empty dependencies file for ssr_cli.
# This may be replaced when dependencies are built.
