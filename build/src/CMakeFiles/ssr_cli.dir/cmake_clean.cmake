file(REMOVE_RECURSE
  "CMakeFiles/ssr_cli.dir/__/tools/ssr_cli.cpp.o"
  "CMakeFiles/ssr_cli.dir/__/tools/ssr_cli.cpp.o.d"
  "ssr_cli"
  "ssr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
