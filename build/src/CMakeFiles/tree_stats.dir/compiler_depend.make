# Empty compiler generated dependencies file for tree_stats.
# This may be replaced when dependencies are built.
