file(REMOVE_RECURSE
  "CMakeFiles/tree_stats.dir/__/tools/tree_stats.cpp.o"
  "CMakeFiles/tree_stats.dir/__/tools/tree_stats.cpp.o.d"
  "tree_stats"
  "tree_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
