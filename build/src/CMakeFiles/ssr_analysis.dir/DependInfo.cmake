
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ks_test.cpp" "src/CMakeFiles/ssr_analysis.dir/analysis/ks_test.cpp.o" "gcc" "src/CMakeFiles/ssr_analysis.dir/analysis/ks_test.cpp.o.d"
  "/root/repo/src/analysis/regression.cpp" "src/CMakeFiles/ssr_analysis.dir/analysis/regression.cpp.o" "gcc" "src/CMakeFiles/ssr_analysis.dir/analysis/regression.cpp.o.d"
  "/root/repo/src/analysis/statistics.cpp" "src/CMakeFiles/ssr_analysis.dir/analysis/statistics.cpp.o" "gcc" "src/CMakeFiles/ssr_analysis.dir/analysis/statistics.cpp.o.d"
  "/root/repo/src/analysis/table.cpp" "src/CMakeFiles/ssr_analysis.dir/analysis/table.cpp.o" "gcc" "src/CMakeFiles/ssr_analysis.dir/analysis/table.cpp.o.d"
  "/root/repo/src/analysis/timeseries.cpp" "src/CMakeFiles/ssr_analysis.dir/analysis/timeseries.cpp.o" "gcc" "src/CMakeFiles/ssr_analysis.dir/analysis/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssr_pp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
