file(REMOVE_RECURSE
  "CMakeFiles/ssr_analysis.dir/analysis/ks_test.cpp.o"
  "CMakeFiles/ssr_analysis.dir/analysis/ks_test.cpp.o.d"
  "CMakeFiles/ssr_analysis.dir/analysis/regression.cpp.o"
  "CMakeFiles/ssr_analysis.dir/analysis/regression.cpp.o.d"
  "CMakeFiles/ssr_analysis.dir/analysis/statistics.cpp.o"
  "CMakeFiles/ssr_analysis.dir/analysis/statistics.cpp.o.d"
  "CMakeFiles/ssr_analysis.dir/analysis/table.cpp.o"
  "CMakeFiles/ssr_analysis.dir/analysis/table.cpp.o.d"
  "CMakeFiles/ssr_analysis.dir/analysis/timeseries.cpp.o"
  "CMakeFiles/ssr_analysis.dir/analysis/timeseries.cpp.o.d"
  "libssr_analysis.a"
  "libssr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
