
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/adversary.cpp" "src/CMakeFiles/ssr_protocols.dir/protocols/adversary.cpp.o" "gcc" "src/CMakeFiles/ssr_protocols.dir/protocols/adversary.cpp.o.d"
  "/root/repo/src/protocols/describe.cpp" "src/CMakeFiles/ssr_protocols.dir/protocols/describe.cpp.o" "gcc" "src/CMakeFiles/ssr_protocols.dir/protocols/describe.cpp.o.d"
  "/root/repo/src/protocols/history_tree.cpp" "src/CMakeFiles/ssr_protocols.dir/protocols/history_tree.cpp.o" "gcc" "src/CMakeFiles/ssr_protocols.dir/protocols/history_tree.cpp.o.d"
  "/root/repo/src/protocols/initialized_ranking.cpp" "src/CMakeFiles/ssr_protocols.dir/protocols/initialized_ranking.cpp.o" "gcc" "src/CMakeFiles/ssr_protocols.dir/protocols/initialized_ranking.cpp.o.d"
  "/root/repo/src/protocols/loose_stabilizing.cpp" "src/CMakeFiles/ssr_protocols.dir/protocols/loose_stabilizing.cpp.o" "gcc" "src/CMakeFiles/ssr_protocols.dir/protocols/loose_stabilizing.cpp.o.d"
  "/root/repo/src/protocols/names.cpp" "src/CMakeFiles/ssr_protocols.dir/protocols/names.cpp.o" "gcc" "src/CMakeFiles/ssr_protocols.dir/protocols/names.cpp.o.d"
  "/root/repo/src/protocols/optimal_silent.cpp" "src/CMakeFiles/ssr_protocols.dir/protocols/optimal_silent.cpp.o" "gcc" "src/CMakeFiles/ssr_protocols.dir/protocols/optimal_silent.cpp.o.d"
  "/root/repo/src/protocols/serialize.cpp" "src/CMakeFiles/ssr_protocols.dir/protocols/serialize.cpp.o" "gcc" "src/CMakeFiles/ssr_protocols.dir/protocols/serialize.cpp.o.d"
  "/root/repo/src/protocols/silent_n_state.cpp" "src/CMakeFiles/ssr_protocols.dir/protocols/silent_n_state.cpp.o" "gcc" "src/CMakeFiles/ssr_protocols.dir/protocols/silent_n_state.cpp.o.d"
  "/root/repo/src/protocols/state_space.cpp" "src/CMakeFiles/ssr_protocols.dir/protocols/state_space.cpp.o" "gcc" "src/CMakeFiles/ssr_protocols.dir/protocols/state_space.cpp.o.d"
  "/root/repo/src/protocols/sublinear.cpp" "src/CMakeFiles/ssr_protocols.dir/protocols/sublinear.cpp.o" "gcc" "src/CMakeFiles/ssr_protocols.dir/protocols/sublinear.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssr_pp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
