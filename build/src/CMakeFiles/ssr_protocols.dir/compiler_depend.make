# Empty compiler generated dependencies file for ssr_protocols.
# This may be replaced when dependencies are built.
