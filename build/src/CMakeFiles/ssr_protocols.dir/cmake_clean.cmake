file(REMOVE_RECURSE
  "CMakeFiles/ssr_protocols.dir/protocols/adversary.cpp.o"
  "CMakeFiles/ssr_protocols.dir/protocols/adversary.cpp.o.d"
  "CMakeFiles/ssr_protocols.dir/protocols/describe.cpp.o"
  "CMakeFiles/ssr_protocols.dir/protocols/describe.cpp.o.d"
  "CMakeFiles/ssr_protocols.dir/protocols/history_tree.cpp.o"
  "CMakeFiles/ssr_protocols.dir/protocols/history_tree.cpp.o.d"
  "CMakeFiles/ssr_protocols.dir/protocols/initialized_ranking.cpp.o"
  "CMakeFiles/ssr_protocols.dir/protocols/initialized_ranking.cpp.o.d"
  "CMakeFiles/ssr_protocols.dir/protocols/loose_stabilizing.cpp.o"
  "CMakeFiles/ssr_protocols.dir/protocols/loose_stabilizing.cpp.o.d"
  "CMakeFiles/ssr_protocols.dir/protocols/names.cpp.o"
  "CMakeFiles/ssr_protocols.dir/protocols/names.cpp.o.d"
  "CMakeFiles/ssr_protocols.dir/protocols/optimal_silent.cpp.o"
  "CMakeFiles/ssr_protocols.dir/protocols/optimal_silent.cpp.o.d"
  "CMakeFiles/ssr_protocols.dir/protocols/serialize.cpp.o"
  "CMakeFiles/ssr_protocols.dir/protocols/serialize.cpp.o.d"
  "CMakeFiles/ssr_protocols.dir/protocols/silent_n_state.cpp.o"
  "CMakeFiles/ssr_protocols.dir/protocols/silent_n_state.cpp.o.d"
  "CMakeFiles/ssr_protocols.dir/protocols/state_space.cpp.o"
  "CMakeFiles/ssr_protocols.dir/protocols/state_space.cpp.o.d"
  "CMakeFiles/ssr_protocols.dir/protocols/sublinear.cpp.o"
  "CMakeFiles/ssr_protocols.dir/protocols/sublinear.cpp.o.d"
  "libssr_protocols.a"
  "libssr_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
