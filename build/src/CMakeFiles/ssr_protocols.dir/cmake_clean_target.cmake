file(REMOVE_RECURSE
  "libssr_protocols.a"
)
