file(REMOVE_RECURSE
  "CMakeFiles/ssr_processes.dir/processes/analytic.cpp.o"
  "CMakeFiles/ssr_processes.dir/processes/analytic.cpp.o.d"
  "CMakeFiles/ssr_processes.dir/processes/bounded_epidemic.cpp.o"
  "CMakeFiles/ssr_processes.dir/processes/bounded_epidemic.cpp.o.d"
  "CMakeFiles/ssr_processes.dir/processes/epidemic.cpp.o"
  "CMakeFiles/ssr_processes.dir/processes/epidemic.cpp.o.d"
  "CMakeFiles/ssr_processes.dir/processes/roll_call.cpp.o"
  "CMakeFiles/ssr_processes.dir/processes/roll_call.cpp.o.d"
  "libssr_processes.a"
  "libssr_processes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_processes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
