# Empty dependencies file for ssr_processes.
# This may be replaced when dependencies are built.
