file(REMOVE_RECURSE
  "libssr_processes.a"
)
