file(REMOVE_RECURSE
  "libssr_pp.a"
)
