file(REMOVE_RECURSE
  "CMakeFiles/ssr_pp.dir/pp/continuous_time.cpp.o"
  "CMakeFiles/ssr_pp.dir/pp/continuous_time.cpp.o.d"
  "CMakeFiles/ssr_pp.dir/pp/graph.cpp.o"
  "CMakeFiles/ssr_pp.dir/pp/graph.cpp.o.d"
  "CMakeFiles/ssr_pp.dir/pp/scheduler.cpp.o"
  "CMakeFiles/ssr_pp.dir/pp/scheduler.cpp.o.d"
  "CMakeFiles/ssr_pp.dir/pp/trial.cpp.o"
  "CMakeFiles/ssr_pp.dir/pp/trial.cpp.o.d"
  "libssr_pp.a"
  "libssr_pp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_pp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
