# Empty dependencies file for ssr_pp.
# This may be replaced when dependencies are built.
