
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pp/continuous_time.cpp" "src/CMakeFiles/ssr_pp.dir/pp/continuous_time.cpp.o" "gcc" "src/CMakeFiles/ssr_pp.dir/pp/continuous_time.cpp.o.d"
  "/root/repo/src/pp/graph.cpp" "src/CMakeFiles/ssr_pp.dir/pp/graph.cpp.o" "gcc" "src/CMakeFiles/ssr_pp.dir/pp/graph.cpp.o.d"
  "/root/repo/src/pp/scheduler.cpp" "src/CMakeFiles/ssr_pp.dir/pp/scheduler.cpp.o" "gcc" "src/CMakeFiles/ssr_pp.dir/pp/scheduler.cpp.o.d"
  "/root/repo/src/pp/trial.cpp" "src/CMakeFiles/ssr_pp.dir/pp/trial.cpp.o" "gcc" "src/CMakeFiles/ssr_pp.dir/pp/trial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
