# Empty dependencies file for sublinear_pipeline.
# This may be replaced when dependencies are built.
