file(REMOVE_RECURSE
  "CMakeFiles/sublinear_pipeline.dir/sublinear_pipeline.cpp.o"
  "CMakeFiles/sublinear_pipeline.dir/sublinear_pipeline.cpp.o.d"
  "sublinear_pipeline"
  "sublinear_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublinear_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
