file(REMOVE_RECURSE
  "CMakeFiles/figure1_tree_ranking.dir/figure1_tree_ranking.cpp.o"
  "CMakeFiles/figure1_tree_ranking.dir/figure1_tree_ranking.cpp.o.d"
  "figure1_tree_ranking"
  "figure1_tree_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_tree_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
