# Empty compiler generated dependencies file for figure1_tree_ranking.
# This may be replaced when dependencies are built.
