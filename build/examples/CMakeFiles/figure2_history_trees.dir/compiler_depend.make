# Empty compiler generated dependencies file for figure2_history_trees.
# This may be replaced when dependencies are built.
