file(REMOVE_RECURSE
  "CMakeFiles/figure2_history_trees.dir/figure2_history_trees.cpp.o"
  "CMakeFiles/figure2_history_trees.dir/figure2_history_trees.cpp.o.d"
  "figure2_history_trees"
  "figure2_history_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_history_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
