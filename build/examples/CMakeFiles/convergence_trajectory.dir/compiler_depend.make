# Empty compiler generated dependencies file for convergence_trajectory.
# This may be replaced when dependencies are built.
