file(REMOVE_RECURSE
  "CMakeFiles/convergence_trajectory.dir/convergence_trajectory.cpp.o"
  "CMakeFiles/convergence_trajectory.dir/convergence_trajectory.cpp.o.d"
  "convergence_trajectory"
  "convergence_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
