file(REMOVE_RECURSE
  "CMakeFiles/composition.dir/composition.cpp.o"
  "CMakeFiles/composition.dir/composition.cpp.o.d"
  "composition"
  "composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
