// Walks Sublinear-Time-SSR (the paper's headline protocol) through one full
// self-stabilization cycle, narrating each phase:
//
//   1. adversarial start: two agents share a name (single_collision), and
//      nothing but Detect-Name-Collision can expose it;
//   2. a witness agent accumulates history-tree evidence and catches the
//      impostor (we print the witness's tree at detection time);
//   3. Propagate-Reset sweeps the population; names are cleared, then
//      regenerated bit by bit during dormancy;
//   4. rosters refill by epidemic and ranks appear as lexicographic
//      positions -- leader = rank 1.
#include <iostream>

#include "pp/scheduler.hpp"
#include "protocols/adversary.hpp"
#include "protocols/describe.hpp"
#include "protocols/sublinear.hpp"

int main() {
  using namespace ssr;
  using role_t = sublinear_time_ssr::role_t;

  constexpr std::uint32_t n = 12;
  constexpr std::uint32_t h = 2;
  sublinear_time_ssr protocol(n, h);
  const auto& tuning = protocol.params();
  std::cout << "Sublinear-Time-SSR, n = " << n << ", H = " << h
            << " (T_H = " << tuning.t_h << ", S_max = " << tuning.s_max
            << ", R_max = " << tuning.r_max << ", D_max = " << tuning.d_max
            << ", name bits = " << tuning.name_bits << ")\n\n";

  rng_t scenario_rng(31);
  auto agents = adversarial_configuration(
      protocol, sublinear_scenario::single_collision, scenario_rng);
  std::cout << "phase 1 -- adversarial start: agents 0 and 1 both carry name "
            << agents[0].name.to_string()
            << "; every roster already holds all " << n - 1
            << " distinct names, so only collision detection can act.\n\n";

  rng_t rng(17);
  std::uint64_t steps = 0;
  auto parallel_time = [&] { return static_cast<double>(steps) / n; };

  // Phase 2: run until the collision is detected.
  while (true) {
    const agent_pair pair = sample_pair(rng, n);
    const bool detected =
        agents[pair.initiator].role == role_t::collecting &&
        agents[pair.responder].role == role_t::collecting &&
        protocol.name_collision_detected(agents[pair.initiator],
                                         agents[pair.responder]);
    // Snapshot the evidence before the interaction wipes it (detection
    // triggers a reset, which clears the Collecting fields).
    const history_tree initiator_tree = agents[pair.initiator].tree;
    const history_tree responder_tree = agents[pair.responder].tree;
    protocol.interact(agents[pair.initiator], agents[pair.responder], rng);
    ++steps;
    if (detected) {
      std::cout << "phase 2 -- collision detected at t = " << parallel_time()
                << " between agents " << pair.initiator << " and "
                << pair.responder << ".\n"
                << "agent " << pair.initiator << "'s history tree:\n"
                << initiator_tree.to_string() << "agent " << pair.responder
                << "'s history tree:\n" << responder_tree.to_string()
                << "(Protocol 8: one side held a fresh history ending at "
                   "the other's name whose reversed-suffix sync\ncheck "
                   "failed -- the agent being questioned is not the agent "
                   "the history was recorded about.)\n\n";
      break;
    }
  }

  // Phase 3: reset sweep; report when names are fully regenerated.
  std::size_t resetting_peak = 0;
  while (true) {
    std::size_t resetting = 0;
    for (const auto& s : agents)
      resetting += s.role == role_t::resetting ? 1 : 0;
    resetting_peak = std::max(resetting_peak, resetting);
    if (resetting == 0 && resetting_peak > 0) break;
    const agent_pair pair = sample_pair(rng, n);
    protocol.interact(agents[pair.initiator], agents[pair.responder], rng);
    ++steps;
  }
  std::cout << "phase 3 -- reset complete at t = " << parallel_time()
            << " (peak " << resetting_peak << "/" << n
            << " agents resetting); everyone restarted with a fresh random "
               "name and roster = {name}.\n\n";

  // Phase 4: rosters refill; ranks appear.
  while (!is_valid_ranking(protocol, agents)) {
    const agent_pair pair = sample_pair(rng, n);
    protocol.interact(agents[pair.initiator], agents[pair.responder], rng);
    ++steps;
  }
  std::cout << "phase 4 -- stabilized at t = " << parallel_time()
            << ": rosters are full, ranks are lexicographic name positions."
            << "\n\nfinal population:\n";
  for (std::uint32_t i = 0; i < n; ++i) {
    std::cout << "  agent " << i << ": " << describe(protocol, agents[i])
              << (protocol.rank_of(agents[i]) == 1 ? "   <-- leader" : "")
              << '\n';
  }
  return 0;
}
