// Runs all three self-stabilizing ranking protocols side by side on the
// same population sizes, from comparable worst-ish-case configurations, and
// prints a Table-1-shaped summary: the baseline is quadratic, Optimal-Silent
// linear, and the H = log2 n Sublinear variant logarithmic -- at the price
// of state-space growth in the opposite order.
#include <cmath>
#include <iostream>

#include "analysis/statistics.hpp"
#include "analysis/table.hpp"
#include "pp/convergence.hpp"
#include "pp/trial.hpp"
#include "protocols/adversary.hpp"
#include "protocols/silent_n_state.hpp"
#include "protocols/state_space.hpp"

namespace {

using namespace ssr;

double baseline_mean(std::uint32_t n, std::size_t trials) {
  const auto times = run_trials(trials, n, [n](std::uint64_t s) {
    rng_t rng(s);
    std::vector<std::uint32_t> ranks(n);
    for (auto& r : ranks)
      r = static_cast<std::uint32_t>(uniform_below(rng, n));
    accelerated_silent_n_state sim(n, ranks, s ^ 0xabcdef);
    return sim.run_to_stabilization();
  });
  return summarize(times).mean;
}

double optimal_mean(std::uint32_t n, std::size_t trials) {
  const auto times = run_trials(trials, 100 + n, [n](std::uint64_t s) {
    optimal_silent_ssr p(n);
    rng_t rng(s);
    auto init = adversarial_configuration(
        p, optimal_silent_scenario::uniform_random, rng);
    return measure_convergence(p, std::move(init), s,
                               {.max_parallel_time = 1e9})
        .convergence_time;
  });
  return summarize(times).mean;
}

double sublinear_mean(std::uint32_t n, std::size_t trials) {
  // H = Theta(log n): one below ceil(log2 n), trading a constant factor of
  // detection speed for a factor-n smaller (still quasi-exponential) state
  // space.
  const auto h = static_cast<std::uint32_t>(
                     std::ceil(std::log2(static_cast<double>(n)))) - 1;
  const auto times = run_trials(
      trials, 200 + n,
      [n, h](std::uint64_t s) {
        sublinear_time_ssr p(n, h);
        rng_t rng(s);
        auto init = adversarial_configuration(
            p, sublinear_scenario::all_same_name, rng);
        convergence_options opt;
        opt.max_parallel_time = 1e8;
        opt.confirm_parallel_time = 30.0;
        return measure_convergence(p, std::move(init), s, opt)
            .convergence_time;
      },
      /*parallel=*/n < 32);
  return summarize(times).mean;
}

}  // namespace

int main() {
  std::cout << "Self-stabilizing ranking protocols, head to head\n"
            << "(times in parallel units; states per Table 1)\n\n";

  text_table t({"n", "Silent-n-state [22]", "Optimal-Silent (Sec.4)",
                "Sublinear H=clog2(n)-1 (Sec.5)"});
  for (const std::uint32_t n : {8u, 16u, 32u}) {
    t.add_row({std::to_string(n), format_fixed(baseline_mean(n, 20), 1),
               format_fixed(optimal_mean(n, 20), 1),
               format_fixed(sublinear_mean(n, n >= 32 ? 3 : 10), 1)});
  }
  t.print(std::cout);

  std::cout << "\nstate complexity at n = 32:\n";
  const auto opt_states =
      optimal_silent_states(32, optimal_silent_ssr::tuning::defaults(32));
  const double sub_bits =
      sublinear_state_bits(32, sublinear_time_ssr::tuning::defaults(32, 4));
  std::cout << "  Silent-n-state : 32 states (n, optimal by Theorem 2.1)\n"
            << "  Optimal-Silent : " << opt_states << " states (O(n))\n"
            << "  Sublinear      : ~2^" << format_fixed(sub_bits, 0)
            << " states (quasi-exponential)\n"
            << "\nthe Table 1 trade-off in one screen: every factor of time "
               "saved is paid for in states.\n";
  return 0;
}
