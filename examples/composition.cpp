// Composition (Section 1: "self-stabilizing algorithms are easier to
// compose", cf. [10 §4], [7 Thm 3.5]).
//
// Population protocols lack a way to detect when one computation has
// finished before starting another -- but a *self-stabilizing* protocol S
// can simply run concurrently with a prior computation P that scribbles
// over S's memory in some unknown way: once P quiets down, S stabilizes
// from whatever state P left behind, no synchronization needed.
//
// Here P is a two-way epidemic (think: disseminating a firmware blob) whose
// interactions, while still spreading, also corrupt the leader-election
// layer's fields arbitrarily.  S is Optimal-Silent-SSR.  We run the
// composition and watch S elect a unique leader anyway, shortly after the
// epidemic completes.
#include <iostream>

#include "pp/random.hpp"
#include "pp/scheduler.hpp"
#include "protocols/adversary.hpp"
#include "protocols/describe.hpp"
#include "protocols/optimal_silent.hpp"

namespace {

using namespace ssr;

struct composed_state {
  bool infected = false;                    // P's field
  optimal_silent_ssr::agent_state leader;   // S's fields
};

}  // namespace

int main() {
  constexpr std::uint32_t n = 64;
  optimal_silent_ssr election(n);

  std::vector<composed_state> agents(n);
  agents[0].infected = true;  // P's source
  {
    // S starts in its designated clean state -- which P will trample.
    const auto clean = election.initial_configuration();
    for (std::uint32_t i = 0; i < n; ++i) agents[i].leader = clean[i];
  }

  rng_t rng(29);
  rng_t vandal(31);  // P's side effects on S's memory
  std::uint64_t steps = 0;
  std::size_t infected = 1;
  double epidemic_done_at = -1.0;

  auto parallel_time = [&] { return static_cast<double>(steps) / n; };
  auto le_states = [&] {
    std::vector<optimal_silent_ssr::agent_state> view(n);
    for (std::uint32_t i = 0; i < n; ++i) view[i] = agents[i].leader;
    return view;
  };

  std::cout << "composed run: epidemic (P) + Optimal-Silent-SSR (S), n = "
            << n << "\n\n";
  while (!is_valid_ranking(election, le_states()) ||
         epidemic_done_at < 0.0) {
    const agent_pair pair = sample_pair(rng, n);
    composed_state& a = agents[pair.initiator];
    composed_state& b = agents[pair.responder];

    // P: spread, and while actively spreading, scribble on S's fields.
    if (a.infected != b.infected) {
      a.infected = b.infected = true;
      ++infected;
      // The "unknown way P sets the states of S": arbitrary corruption.
      auto& victim = coin_flip(vandal) ? a.leader : b.leader;
      victim = adversarial_configuration(
          election, optimal_silent_scenario::uniform_random, vandal)[0];
      if (infected == n) {
        epidemic_done_at = parallel_time();
        std::cout << "t=" << epidemic_done_at
                  << ": epidemic complete (P finished); S's memory is in "
                     "an arbitrary state:\n    "
                  << summarize_configuration(election, le_states()) << '\n';
      }
    }

    // S: runs concurrently throughout, oblivious to P.
    election.interact(a.leader, b.leader, rng);
    ++steps;
  }

  std::cout << "t=" << parallel_time()
            << ": S stabilized -- unique leader elected "
            << (parallel_time() - epidemic_done_at)
            << " time units after P finished, with zero synchronization:\n"
            << "    " << summarize_configuration(election, le_states())
            << "\n\nA non-self-stabilizing S would have needed to know when "
               "P stopped scribbling; the\nself-stabilizing S just treats "
               "P's leftovers as one more adversarial configuration.\n";
  return 0;
}
