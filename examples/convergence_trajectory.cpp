// Plots (in plain ASCII) how Optimal-Silent-SSR moves through its phases:
// the settled/unsettled/resetting populations over time, from a corrupted
// start through error detection, the global reset with its dormant leader
// election, and the binary-tree ranking.  Also writes the raw series to
// trajectory.csv for external plotting.
#include <fstream>
#include <iostream>

#include "analysis/timeseries.hpp"
#include "pp/simulation.hpp"
#include "protocols/adversary.hpp"
#include "protocols/optimal_silent.hpp"

int main() {
  using namespace ssr;
  constexpr std::uint32_t n = 128;

  optimal_silent_ssr protocol(n);
  rng_t scenario_rng(7);
  auto initial = adversarial_configuration(
      protocol, optimal_silent_scenario::duplicated_ranks, scenario_rng);
  simulation<optimal_silent_ssr> sim(protocol, std::move(initial), 11);

  time_series series({"settled", "unsettled", "resetting"});
  auto sample = [&] {
    double counts[3] = {0, 0, 0};
    for (const auto& s : sim.agents())
      ++counts[static_cast<int>(s.role)];
    series.add(sim.parallel_time(), counts);
  };

  sample();
  while (!is_valid_ranking(protocol, sim.agents())) {
    for (int i = 0; i < 64; ++i) sim.step();
    sample();
  }

  std::cout << "Optimal-Silent-SSR from a duplicated-ranks start, n = " << n
            << " (stabilized at t = " << sim.parallel_time() << "):\n\n";
  for (std::size_t c = 0; c < series.columns(); ++c)
    std::cout << series.ascii_chart(c, 72, 8) << '\n';

  std::ofstream csv("trajectory.csv");
  csv << series.to_csv();
  std::cout << "full series written to trajectory.csv (" << series.size()
            << " samples)\n"
            << "\nReading the charts: the rank collision is detected almost "
               "immediately (settled drops to 0 as the\nreset propagates), "
               "the population sits Resetting through the dormant election "
               "window, then Reset\nreleases everyone Unsettled and the "
               "settled curve climbs the binary tree to n.\n";
  return 0;
}
