// Scenario from the paper's introduction: a fleet of passively mobile
// sensors in a harsh environment needs a coordinator at all times, but
// suffers bursts of transient memory faults that cannot be detected or
// re-initialized.  A self-stabilizing leader election layer recovers a
// unique coordinator after every burst, automatically.
//
// We run Optimal-Silent-SSR on 64 sensors, inject three fault bursts of
// increasing severity (up to full memory corruption of every sensor), and
// report the recovery time of each.
#include <iostream>

#include "analysis/table.hpp"
#include "pp/random.hpp"
#include "pp/simulation.hpp"
#include "protocols/adversary.hpp"
#include "protocols/optimal_silent.hpp"

namespace {

using namespace ssr;

constexpr std::uint32_t n = 64;

bool stabilized(const simulation<optimal_silent_ssr>& s) {
  return is_valid_ranking(s.protocol(), s.agents());
}

}  // namespace

int main() {
  optimal_silent_ssr protocol(n);

  // Deploy: sensors boot Unsettled (a clean start, for once).
  simulation<optimal_silent_ssr> sim(protocol, protocol.initial_configuration(),
                                     /*seed=*/11);
  sim.run_until(stabilized, 1'000'000'000ull);
  std::cout << "deployment: coordinator elected after "
            << format_fixed(sim.parallel_time(), 1) << " time units\n\n";

  text_table report({"fault burst", "sensors corrupted", "recovery time",
                     "unique coordinator"});

  rng_t fault_rng(1337);
  const std::uint32_t burst_sizes[] = {4, 24, 64};
  for (int burst = 0; burst < 3; ++burst) {
    // Corrupt random sensors with arbitrary memory contents.
    const std::uint32_t victims = burst_sizes[burst];
    for (std::uint32_t v = 0; v < victims; ++v) {
      const auto idx = uniform_below(fault_rng, n);
      sim.mutable_agents()[idx] = adversarial_configuration(
          protocol, optimal_silent_scenario::uniform_random, fault_rng)[0];
    }
    const double before = sim.parallel_time();
    sim.run_until(stabilized, sim.interactions() + 4'000'000'000ull);
    const double recovery = sim.parallel_time() - before;
    report.add_row({std::to_string(burst + 1), std::to_string(victims),
                    format_fixed(recovery, 1) + " time units",
                    leader_count(protocol, sim.agents()) == 1 ? "yes" : "NO"});
  }
  report.print(std::cout);

  std::cout << "\nEven complete memory corruption of all " << n
            << " sensors recovers in O(n) time without any\n"
               "out-of-band re-initialization -- the self-stabilization "
               "guarantee of Theorem 4.1.\n";
  return 0;
}
