// Quickstart: elect a leader among 50 agents with Optimal-Silent-SSR,
// starting from an adversarially corrupted configuration.
//
// Demonstrates the core public API:
//   1. construct a protocol for a known population size n,
//   2. build a starting configuration (here: adversarial),
//   3. run it under the uniform random scheduler,
//   4. read off the ranking / leader once stabilized.
#include <iostream>

#include "pp/convergence.hpp"
#include "pp/simulation.hpp"
#include "protocols/adversary.hpp"
#include "protocols/optimal_silent.hpp"

int main() {
  using namespace ssr;
  constexpr std::uint32_t n = 50;

  optimal_silent_ssr protocol(n);

  // The adversary hands us a mid-reset configuration with no leader
  // candidate anywhere -- one of the hard cases for self-stabilization.
  rng_t adversary_rng(2024);
  auto initial = adversarial_configuration(
      protocol, optimal_silent_scenario::all_dormant_followers, adversary_rng);

  std::cout << "population: " << n << " agents, all dormant, no leader\n";

  simulation<optimal_silent_ssr> sim(protocol, std::move(initial), /*seed=*/7);
  const bool done = sim.run_until(
      [](const simulation<optimal_silent_ssr>& s) {
        return is_valid_ranking(s.protocol(), s.agents());
      },
      /*max_interactions=*/100'000'000ull);

  if (!done) {
    std::cerr << "did not stabilize within the interaction budget\n";
    return 1;
  }

  std::cout << "stabilized after " << sim.interactions() << " interactions ("
            << sim.parallel_time() << " parallel time units)\n";

  for (std::uint32_t i = 0; i < n; ++i) {
    const auto& s = sim.agents()[i];
    if (is_leader(protocol, s))
      std::cout << "agent #" << i << " is the unique leader (rank 1)\n";
  }
  std::cout << "all " << n << " agents hold distinct ranks 1.." << n
            << " -- ranking doubles as naming and leader election.\n";

  // Because the protocol is silent, the configuration is now frozen:
  std::cout << "configuration is silent: "
            << (sim.is_silent_configuration() ? "yes" : "no") << "\n";
  return 0;
}
