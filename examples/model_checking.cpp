// Model checking the paper's claims: self-stabilization is a probability-1
// statement over every configuration, and for small populations that is
// checkable *exhaustively* rather than by sampling.  This example verifies
// the two deterministic protocols over their entire configuration spaces,
// shows the verifier rejecting a plausible-looking mutant, and demonstrates
// why the complete communication graph matters.
#include <iostream>

#include "protocols/initialized.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"
#include "pp/convergence.hpp"
#include "protocols/adversary.hpp"
#include "verify/graph_reachability.hpp"
#include "verify/reachability.hpp"
#include "verify/smc.hpp"

namespace {

using namespace ssr;

void report(const char* what, const verification_result& r) {
  std::cout << what << ":\n"
            << "  configurations explored : " << r.configurations << '\n'
            << "  terminal components     : " << r.terminal_components << '\n'
            << "  self-stabilizing        : " << (r.self_stabilizing ? "YES" : "NO")
            << '\n'
            << "  silent                  : " << (r.silent ? "YES" : "NO")
            << "\n\n";
}

}  // namespace

int main() {
  std::cout << "Exhaustive verification (terminal-SCC analysis over the "
               "full configuration space)\n\n";

  {
    silent_n_state_ssr p(6);
    report("Protocol 1 (Silent-n-state-SSR), n = 6",
           verify_self_stabilization(p, p.all_states()));
  }

  {
    optimal_silent_ssr::tuning t;
    t.e_max = 4;
    t.r_max = 2;
    t.d_max = 2;
    optimal_silent_ssr p(4, t);
    report("Protocols 3+4 (Optimal-Silent-SSR), n = 4, tiny constants",
           verify_self_stabilization(p, p.all_states()));
  }

  {
    initialized_leader_election p(4);
    std::vector<initialized_leader_election::agent_state> states(2);
    states[0].leader = false;
    states[1].leader = true;
    const auto r = verify_self_stabilization(p, states);
    report("Initialized (l,l)->(l,f) protocol, n = 4", r);
    if (r.counterexample) {
      std::cout << "  counterexample: every agent in state "
                << (r.counterexample->front() == 0 ? "follower" : "leader")
                << " -- the all-followers deadlock from the introduction.\n\n";
    }
  }

  {
    const std::uint32_t n = 4;
    silent_n_state_ssr p(n);
    std::cout << "Protocol 1 on non-complete graphs (position-aware "
                 "verification, n = 4):\n";
    for (const auto& [name, graph] :
         {std::pair{"complete", interaction_graph::complete(n)},
          std::pair{"ring", interaction_graph::ring(n)},
          std::pair{"star", interaction_graph::star(n)}}) {
      const auto r = verify_on_graph(p, graph, p.all_states());
      std::cout << "  " << name << ": "
                << (r.self_stabilizing ? "self-stabilizing"
                                       : "NOT self-stabilizing");
      if (r.counterexample) {
        std::cout << "  (stuck configuration: ranks";
        for (const std::size_t s : *r.counterexample)
          std::cout << ' ' << p.all_states()[s].rank;
        std::cout << ")";
      }
      std::cout << '\n';
    }
    std::cout << "\nThe stuck ring/star configurations hold a duplicate "
                 "rank across a missing edge --\nthe executable reason the "
                 "paper assumes the complete interaction graph.\n";
  }

  {
    // Beyond exhaustive reach, quantitative claims are checked
    // statistically (Wald's SPRT; verify/smc.hpp).
    std::cout << "\nStatistical model checking at n = 64 (SPRT, alpha = "
                 "beta = 0.01):\n";
    const std::uint32_t n = 64;
    smc_options opt;
    opt.theta = 0.9;
    const auto fast = sequential_probability_test(
        [&](std::uint64_t seed) {
          optimal_silent_ssr p(n);
          rng_t rng(seed ^ 0xbeef);
          auto init = adversarial_configuration(
              p, optimal_silent_scenario::uniform_random, rng);
          convergence_options copt;
          copt.max_parallel_time = 3000.0;
          return measure_convergence(p, std::move(init), seed, copt)
              .converged;
        },
        opt, 99);
    std::cout << "  P[Optimal-Silent stabilizes within 3000 time from "
                 "random corruption] >= 0.9 : "
              << to_string(fast.verdict) << "  (" << fast.successes << "/"
              << fast.samples << " runs sampled)\n";

    smc_options slow_opt;
    slow_opt.theta = 0.5;
    slow_opt.delta = 0.1;
    const auto slow = sequential_probability_test(
        [&](std::uint64_t seed) {
          silent_n_state_ssr p(n);
          rng_t rng(seed ^ 0xfeed);
          auto init = adversarial_configuration(p, rng);
          convergence_options copt;
          copt.max_parallel_time = 2.0 * n;
          return measure_convergence(p, std::move(init), seed, copt)
              .converged;
        },
        slow_opt, 101);
    std::cout << "  P[baseline stabilizes within 2n time] >= 0.5          "
                 "         : "
              << to_string(slow.verdict) << "  (" << slow.successes << "/"
              << slow.samples << " runs sampled)\n"
              << "\n(The sequential test stops as soon as the evidence "
                 "crosses the Wald thresholds --\nnote how few runs it "
                 "needed.)\n";
  }
  return 0;
}
