// Reproduces Figure 2: how Detect-Name-Collision's history trees build up,
// and how Check-Path-Consistency walks them.
//
// Left panel: interactions a-b (sync 1), b-c (sync 2), c-d (sync 3) from
// singleton trees.  Right panel: a-b (1), b-c (2), a-b again (7), c-d (3).
// In both cases, when a and d finally compare notes, d's history
// d -3-> c -2-> b -1-> a must be *consistent* with a's tree: on the left the
// first edge of a's reversed suffix matches (sync 1); on the right the first
// edge mismatches (7 != 1) but the second matches (sync 2), because the
// newer a-b interaction also imported b's record of the b-c interaction.
#include <iostream>

#include "protocols/history_tree.hpp"

namespace {

using namespace ssr;

name_t nm(const char* bits) {
  name_t n;
  for (const char* c = bits; *c; ++c) n.append_bit(*c == '1');
  return n;
}

struct world {
  static constexpr std::uint32_t H = 3, T = 999;
  history_tree a{nm("00")}, b{nm("01")}, c{nm("10")}, d{nm("11")};

  void meet(history_tree& x, history_tree& y, std::uint32_t sync,
            const char* label) {
    const history_tree x_before = x;
    x.graft_partner(y, H - 1, sync, T);
    y.graft_partner(x_before, H - 1, sync, T);
    x.remove_named_subtrees(x.root_name());
    y.remove_named_subtrees(y.root_name());
    std::cout << label << " interact; generate sync value " << sync << ":\n";
    dump();
  }

  void dump() const {
    for (const auto& [who, tree] :
         {std::pair<const char*, const history_tree*>{"a", &a},
          std::pair<const char*, const history_tree*>{"b", &b},
          std::pair<const char*, const history_tree*>{"c", &c},
          std::pair<const char*, const history_tree*>{"d", &d}}) {
      std::cout << "  " << who << "'s tree: root " << tree->to_string();
    }
    std::cout << '\n';
  }

  void check_a_vs_d() const {
    std::cout << "a-d consistency check (Check-Path-Consistency): "
              << (d.detects_collision_against(a.root_name(), a)
                      ? "INCONSISTENT -> collision declared"
                      : "consistent -> no collision")
              << "\n\n";
  }
};

}  // namespace

int main() {
  std::cout << "Figure 2 reproduction (names: a=00, b=01, c=10, d=11)\n\n";

  {
    std::cout << "=== Left panel ===\n";
    world w;
    w.meet(w.a, w.b, 1, "a-b");
    w.meet(w.b, w.c, 2, "b-c");
    w.meet(w.c, w.d, 3, "c-d");
    std::cout << "d's history about a: d -3-> c -2-> b -1-> a; a's reversed "
                 "suffix a -1-> b matches on the first edge.\n";
    w.check_a_vs_d();
  }

  {
    std::cout << "=== Right panel ===\n";
    world w;
    w.meet(w.a, w.b, 1, "a-b");
    w.meet(w.b, w.c, 2, "b-c");
    w.meet(w.a, w.b, 7, "a-b (again)");
    w.meet(w.c, w.d, 3, "c-d");
    std::cout << "a's reversed suffix is now a -7-> b -2-> c: the first edge "
                 "mismatches d's record (1), but the\nsecond (2) matches -- "
                 "still consistent, exactly as the caption argues.\n";
    w.check_a_vs_d();
  }

  {
    std::cout << "=== Impostor (not in the figure) ===\n";
    world w;
    w.meet(w.a, w.b, 1, "a-b");
    w.meet(w.b, w.c, 2, "b-c");
    w.meet(w.c, w.d, 3, "c-d");
    history_tree impostor(nm("00"));  // claims a's name, empty history
    std::cout << "an impostor carrying a's name but a blank tree:\n"
              << "d vs impostor: "
              << (w.d.detects_collision_against(nm("00"), impostor)
                      ? "INCONSISTENT -> collision declared (correct!)"
                      : "consistent (WRONG)")
              << '\n';
  }
  return 0;
}
