// Reproduces Figure 1: the binary-tree rank assignment of Optimal-Silent-SSR
// with n = 12 agents.
//
// The paper's figure shows a snapshot with 8 settled agents (ranks
// 1,2,3,4,5,6,7,8... shown as the filled part of the tree) and 4 unsettled
// agents waiting to be recruited into the remaining ranks by the settled
// agents with free child slots.  We run the ranking phase from the
// post-reset configuration (one leader, 11 unsettled), pause when exactly 8
// agents are settled, and render the tree; then resume to completion.
#include <iostream>
#include <vector>

#include "pp/simulation.hpp"
#include "protocols/optimal_silent.hpp"

namespace {

using namespace ssr;
using role_t = optimal_silent_ssr::role_t;

constexpr std::uint32_t n = 12;

std::size_t settled_count(std::span<const optimal_silent_ssr::agent_state> a) {
  std::size_t count = 0;
  for (const auto& s : a) count += s.role == role_t::settled ? 1 : 0;
  return count;
}

void render_tree(std::span<const optimal_silent_ssr::agent_state> agents) {
  std::vector<bool> settled(n + 1, false);
  for (const auto& s : agents)
    if (s.role == role_t::settled && s.rank >= 1 && s.rank <= n)
      settled[s.rank] = true;

  // Rank r sits at depth floor(log2 r) of the full binary tree; children of
  // r are 2r and 2r+1 (Figure 1).
  std::cout << "  rank tree (" << settled_count(agents) << " settled, "
            << n - settled_count(agents) << " unsettled):\n";
  for (std::uint32_t level_start = 1; level_start <= n; level_start *= 2) {
    std::cout << "    ";
    for (std::uint32_t r = level_start; r < 2 * level_start && r <= n; ++r) {
      std::cout << (settled[r] ? "[" : "(") << r << (settled[r] ? "] " : ") ");
    }
    std::cout << '\n';
  }
  std::cout << "    [r] = rank assigned, (r) = waiting for an unsettled "
               "agent\n";
}

}  // namespace

int main() {
  optimal_silent_ssr protocol(n);

  // Post-reset configuration: the elected leader is Settled with rank 1,
  // everyone else Unsettled (what Protocol 4 produces on awakening).
  std::vector<optimal_silent_ssr::agent_state> config(n);
  config[0].role = role_t::settled;
  config[0].rank = 1;
  config[0].children = 0;
  for (std::uint32_t i = 1; i < n; ++i) {
    config[i].role = role_t::unsettled;
    config[i].errorcount = protocol.params().e_max;
  }

  simulation<optimal_silent_ssr> sim(protocol, std::move(config), /*seed=*/5);

  std::cout << "Figure 1 reproduction: rank assignment in Optimal-Silent-SSR"
            << " with n = " << n << " agents\n\n";

  sim.run_until(
      [](const simulation<optimal_silent_ssr>& s) {
        return settled_count(s.agents()) >= 8;
      },
      10'000'000ull);
  std::cout << "snapshot at parallel time " << sim.parallel_time() << ":\n";
  render_tree(sim.agents());

  sim.run_until(
      [](const simulation<optimal_silent_ssr>& s) {
        return is_valid_ranking(s.protocol(), s.agents());
      },
      100'000'000ull);
  std::cout << "\ncompleted at parallel time " << sim.parallel_time()
            << " (expected Theta(n)):\n";
  render_tree(sim.agents());
  return 0;
}
