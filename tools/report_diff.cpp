// report_diff: validate and compare BENCH_<id>.json artifacts.
//
//   report_diff --validate FILE...
//       Checks each file against the version-1 report schema
//       (obs/report.hpp).  Exit 0 when all are valid, 2 otherwise.
//
//   report_diff BASE NEW
//       Joins rows of the two reports on (section, protocol, n, params)
//       and flags statistically significant regressions:
//
//       * sample rows -- regression iff a two-sample KS test rejects
//         distribution equality (p < 0.01) AND the mean moved in the bad
//         direction by more than 10%.  Requiring both keeps identical-seed
//         reruns (identical samples, KS p = 1) and pure distribution-shape
//         drift with equal means from firing.
//       * value rows -- regression iff the value moved in the bad
//         direction by more than 33% (single numbers carry no spread, so
//         the threshold is generous; rates routinely wobble 10-20% on
//         shared hardware).
//
//       Exit 0 = no regressions, 1 = at least one regression, 2 = usage /
//       unreadable / invalid input.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/ks_test.hpp"
#include "analysis/statistics.hpp"
#include "obs/report.hpp"

namespace {

using ssr::obs::bench_report;
using ssr::obs::json_value;
using ssr::obs::report_row;

constexpr double ks_alpha = 0.01;
constexpr double sample_mean_tolerance = 0.10;
constexpr double value_tolerance = 1.0 / 3.0;

int usage() {
  std::cerr << "usage: report_diff --validate FILE...\n"
               "       report_diff BASE NEW\n";
  return 2;
}

std::optional<json_value> load_json(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "error: cannot open '" << path << "'\n";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  std::string error;
  auto parsed = json_value::parse(buffer.str(), &error);
  if (!parsed) {
    std::cerr << "error: " << path << ": " << error << "\n";
    return std::nullopt;
  }
  return parsed;
}

std::optional<bench_report> load_report(const std::string& path) {
  const auto json = load_json(path);
  if (!json) return std::nullopt;
  std::string error;
  auto report = bench_report::from_json(*json, &error);
  if (!report) {
    std::cerr << "error: " << path << ": " << error << "\n";
    return std::nullopt;
  }
  return report;
}

int validate(const std::vector<std::string>& paths) {
  bool all_valid = true;
  for (const std::string& path : paths) {
    const auto json = load_json(path);
    if (!json) {
      all_valid = false;
      continue;
    }
    const std::vector<std::string> problems =
        ssr::obs::validate_report_json(*json);
    if (problems.empty()) {
      std::cout << path << ": valid (schema_version "
                << ssr::obs::report_schema_version << ")\n";
    } else {
      all_valid = false;
      std::cout << path << ": INVALID\n";
      for (const std::string& p : problems) std::cout << "  - " << p << "\n";
    }
  }
  return all_valid ? 0 : 2;
}

/// Positive = NEW is worse than BASE, as a fraction of BASE.
double worsening(const report_row& row, double base, double now) {
  if (base == 0.0) return now == 0.0 ? 0.0 : (row.lower_is_better ? 1.0 : -1.0);
  const double ratio = now / base;
  return row.lower_is_better ? ratio - 1.0 : 1.0 - ratio;
}

struct row_verdict {
  bool regression = false;
  std::string detail;
};

row_verdict compare_samples(const report_row& base, const report_row& now) {
  row_verdict verdict;
  if (base.samples.empty() || now.samples.empty()) {
    verdict.detail = "no samples to compare";
    return verdict;
  }
  const ssr::summary base_stats = ssr::summarize(base.samples);
  const ssr::summary now_stats = ssr::summarize(now.samples);
  const ssr::ks_result ks = ssr::ks_two_sample(base.samples, now.samples);
  const double worse = worsening(base, base_stats.mean, now_stats.mean);
  verdict.regression = ks.p_value < ks_alpha && worse > sample_mean_tolerance;
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "mean %.4g -> %.4g (%+.1f%%), KS D=%.3f p=%.3g",
                base_stats.mean, now_stats.mean, 100.0 * (now_stats.mean -
                base_stats.mean) / (base_stats.mean == 0.0
                                        ? 1.0
                                        : base_stats.mean),
                ks.statistic, ks.p_value);
  verdict.detail = buffer;
  return verdict;
}

row_verdict compare_values(const report_row& base, const report_row& now) {
  row_verdict verdict;
  const double worse = worsening(base, base.value, now.value);
  verdict.regression = worse > value_tolerance;
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer), "%.4g -> %.4g %s (%+.1f%% %s)",
                base.value, now.value, now.unit.c_str(), 100.0 * worse,
                "worse");
  verdict.detail = buffer;
  return verdict;
}

int diff(const std::string& base_path, const std::string& new_path) {
  const auto base = load_report(base_path);
  const auto now = load_report(new_path);
  if (!base || !now) return 2;
  if (base->experiment != now->experiment) {
    std::cerr << "warning: comparing different experiments ('"
              << base->experiment << "' vs '" << now->experiment << "')\n";
  }

  int regressions = 0;
  int compared = 0;
  for (const report_row& base_row : base->rows) {
    const report_row* new_row = nullptr;
    for (const report_row& candidate : now->rows) {
      if (candidate.key() == base_row.key() &&
          candidate.kind == base_row.kind) {
        new_row = &candidate;
        break;
      }
    }
    if (new_row == nullptr) {
      std::cout << "  missing in NEW: " << base_row.key() << "\n";
      continue;
    }
    ++compared;
    const row_verdict verdict =
        base_row.kind == report_row::kind_t::samples
            ? compare_samples(base_row, *new_row)
            : compare_values(base_row, *new_row);
    const char* marker = verdict.regression ? "REGRESSION" : "ok";
    std::cout << "  [" << marker << "] " << base_row.key() << ": "
              << verdict.detail << "\n";
    if (verdict.regression) ++regressions;
  }
  for (const report_row& new_row : now->rows) {
    bool matched = false;
    for (const report_row& base_row : base->rows) {
      if (base_row.key() == new_row.key()) {
        matched = true;
        break;
      }
    }
    if (!matched) std::cout << "  new in NEW: " << new_row.key() << "\n";
  }

  std::cout << compared << " rows compared, " << regressions
            << " regression(s)\n";
  return regressions > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  if (args.front() == "--validate") {
    args.erase(args.begin());
    if (args.empty()) return usage();
    return validate(args);
  }
  if (args.size() != 2) return usage();
  return diff(args[0], args[1]);
}
