// report_diff: validate and compare BENCH_<id>.json artifacts.
//
//   report_diff --validate FILE...
//       Checks each file against the report schema (obs/report.hpp;
//       versions 1 and 2 are accepted).  Exit 0 when all are valid,
//       2 otherwise.
//
//   report_diff BASE NEW
//       Joins rows of the two reports on (section, protocol, n, params)
//       and flags statistically significant regressions using the shared
//       gate in obs/report_compare.hpp (KS + direction for sample rows,
//       CI overlap for v2 stats-only rows, generous threshold for value
//       rows).
//
//       Exit 0 = no regressions, 1 = at least one regression, 2 = usage /
//       unreadable / invalid input.
#include <array>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "obs/report_compare.hpp"
#include "util/edit_distance.hpp"

namespace {

using ssr::obs::bench_report;
using ssr::obs::json_value;
using ssr::obs::report_row;
using ssr::obs::row_verdict;

constexpr std::array<std::string_view, 2> diff_flags = {"--validate",
                                                        "--help"};

int usage() {
  std::cerr << "usage: report_diff --validate FILE...\n"
               "       report_diff BASE NEW\n";
  return 2;
}

int unknown_flag(const std::string& flag) {
  std::cerr << "error: unknown option '" << flag << "'";
  const std::string_view suggestion =
      ssr::nearest_candidate(flag, diff_flags);
  if (!suggestion.empty()) {
    std::cerr << " (did you mean '" << suggestion << "'?)";
  }
  std::cerr << "\n";
  return usage();
}

std::optional<json_value> load_json(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "error: cannot open '" << path << "'\n";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  std::string error;
  auto parsed = json_value::parse(buffer.str(), &error);
  if (!parsed) {
    std::cerr << "error: " << path << ": " << error << "\n";
    return std::nullopt;
  }
  return parsed;
}

std::optional<bench_report> load_report(const std::string& path) {
  const auto json = load_json(path);
  if (!json) return std::nullopt;
  std::string error;
  auto report = bench_report::from_json(*json, &error);
  if (!report) {
    std::cerr << "error: " << path << ": " << error << "\n";
    return std::nullopt;
  }
  return report;
}

int validate(const std::vector<std::string>& paths) {
  bool all_valid = true;
  for (const std::string& path : paths) {
    const auto json = load_json(path);
    if (!json) {
      all_valid = false;
      continue;
    }
    const std::vector<std::string> problems =
        ssr::obs::validate_report_json(*json);
    if (problems.empty()) {
      const json_value* version = json->find("schema_version");
      std::cout << path << ": valid (schema_version "
                << ssr::obs::format_schema_version(
                       version != nullptr ? version->as_double() : 0.0)
                << ")\n";
    } else {
      all_valid = false;
      std::cout << path << ": INVALID\n";
      for (const std::string& p : problems) std::cout << "  - " << p << "\n";
    }
  }
  return all_valid ? 0 : 2;
}

int diff(const std::string& base_path, const std::string& new_path) {
  const auto base = load_report(base_path);
  const auto now = load_report(new_path);
  if (!base || !now) return 2;
  if (base->experiment != now->experiment) {
    std::cerr << "warning: comparing different experiments ('"
              << base->experiment << "' vs '" << now->experiment << "')\n";
  }

  int regressions = 0;
  int compared = 0;
  for (const report_row& base_row : base->rows) {
    const report_row* new_row = nullptr;
    for (const report_row& candidate : now->rows) {
      if (candidate.key() == base_row.key() &&
          candidate.kind == base_row.kind) {
        new_row = &candidate;
        break;
      }
    }
    if (new_row == nullptr) {
      std::cout << "  missing in NEW: " << base_row.key() << "\n";
      continue;
    }
    ++compared;
    const row_verdict verdict = ssr::obs::compare_rows(base_row, *new_row);
    const char* marker = verdict.regression ? "REGRESSION" : "ok";
    std::cout << "  [" << marker << "] " << base_row.key() << ": "
              << verdict.detail << "\n";
    if (verdict.regression) ++regressions;
  }
  for (const report_row& new_row : now->rows) {
    bool matched = false;
    for (const report_row& base_row : base->rows) {
      if (base_row.key() == new_row.key()) {
        matched = true;
        break;
      }
    }
    if (!matched) std::cout << "  new in NEW: " << new_row.key() << "\n";
  }

  std::cout << compared << " rows compared, " << regressions
            << " regression(s)\n";
  return regressions > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  if (args.front() == "--help") {
    usage();
    return 0;
  }
  if (args.front() == "--validate") {
    args.erase(args.begin());
    if (args.empty()) return usage();
    return validate(args);
  }
  if (args.front().rfind("--", 0) == 0) return unknown_flag(args.front());
  if (args.size() != 2) return usage();
  return diff(args[0], args[1]);
}
