// ssr_modelcheck -- exact configuration-space model checker CLI.
//
// Runs the exhaustive model-checking pass (verify/model_check) over the
// registered protocols that expose a model attachment: enumerates every
// reachable configuration (state multisets -- agents are anonymous),
// decomposes the transition digraph into strongly connected components,
// and decides silence, self-stabilization, and the *exact* expected number
// of interactions to stable correctness per starting configuration.
// Violations of an entry's documented claims surface as the linter's
// L014-L017 finding codes; shortest counterexamples can be written as
// trace_stats-compatible ssr.trace JSONL files.
//
//   ssr_modelcheck                          check every visible entry
//   ssr_modelcheck --strict                 promote warnings to violations
//   ssr_modelcheck --protocol=baseline      check one entry (repeatable)
//   ssr_modelcheck --n=2,3,4                population sizes (default 2,3,4)
//   ssr_modelcheck --json=doc.json          write the ssr.modelcheck v1 doc
//   ssr_modelcheck --trace-dir=<dir>        write counterexample JSONL traces
//   ssr_modelcheck --include-broken         also check the hidden fixtures
//   ssr_modelcheck --list                   list checkable entries and exit
//
// Exit code: 0 when no violations (errors; plus warnings under --strict),
// 1 on violations, 2 on usage errors.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/protocol_lint/lint.hpp"
#include "analysis/protocol_lint/model_check.hpp"
#include "analysis/protocol_lint/registry.hpp"
#include "analysis/table.hpp"
#include "util/edit_distance.hpp"

namespace {

using namespace ssr;

struct options {
  std::vector<std::string> protocols;
  std::vector<std::uint32_t> n_values = {2, 3, 4};
  bool strict = false;
  bool include_broken = false;
  bool list = false;
  std::string json_path;
  std::string trace_dir;
};

constexpr std::string_view cli_flags[] = {
    "--protocol", "--n",    "--strict",         "--json",
    "--list",     "--help", "--include-broken", "--trace-dir",
};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr
      << "usage: ssr_modelcheck [options]\n"
      << "  --protocol=<name>   check one registry entry (repeatable;\n"
      << "                      default: every visible entry)\n"
      << "  --n=<list>          comma-separated population sizes "
         "(default 2,3,4)\n"
      << "  --strict            promote warnings to violations (notes are\n"
      << "                      never promoted)\n"
      << "  --json=<file>       write the ssr.modelcheck v1 document ('-' "
         "for stdout)\n"
      << "  --trace-dir=<dir>   write shortest counterexamples as ssr.trace "
         "JSONL\n"
      << "  --include-broken    also check the hidden broken fixtures\n"
      << "  --list              list checkable entries and exit\n";
  std::exit(2);
}

std::vector<std::uint32_t> parse_sizes(const std::string& value) {
  std::vector<std::uint32_t> sizes;
  std::istringstream in(value);
  std::string item;
  while (std::getline(in, item, ',')) {
    try {
      const unsigned long n = std::stoul(item);
      if (n < 2 || n > 64) usage("--n values must be in 2..64, got " + item);
      sizes.push_back(static_cast<std::uint32_t>(n));
    } catch (const std::logic_error&) {
      usage("cannot parse --n value '" + item + "'");
    }
  }
  if (sizes.empty()) usage("--n needs at least one population size");
  return sizes;
}

options parse(int argc, char** argv) {
  options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string(key) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (arg == "--help" || arg == "-h") usage();
    if (arg == "--list") {
      opt.list = true;
      continue;
    }
    if (arg == "--strict") {
      opt.strict = true;
      continue;
    }
    if (arg == "--include-broken") {
      opt.include_broken = true;
      continue;
    }
    if (auto v = value_of("--protocol")) {
      opt.protocols.push_back(*v);
      continue;
    }
    if (auto v = value_of("--n")) {
      opt.n_values = parse_sizes(*v);
      continue;
    }
    if (auto v = value_of("--json")) {
      opt.json_path = *v;
      continue;
    }
    if (auto v = value_of("--trace-dir")) {
      opt.trace_dir = *v;
      continue;
    }
    const std::string name = arg.substr(0, arg.find('='));
    std::string message = "unknown argument '" + name + "'";
    const std::string_view suggestion = nearest_candidate(name, cli_flags);
    if (!suggestion.empty())
      message += " (did you mean " + std::string(suggestion) + "?)";
    usage(message);
  }
  return opt;
}

[[noreturn]] void list_registry(bool include_broken) {
  for (const lint::protocol_entry& e : lint::lint_registry()) {
    if (e.hidden && !include_broken) continue;
    std::cout << e.name;
    if (e.hidden) std::cout << "  [hidden fixture]";
    if (e.model.has_value()) {
      std::cout << "  [model max_n=" << e.model->max_n << ']';
    } else {
      std::cout << "  [no model attachment]";
    }
    std::cout << "\n    " << e.summary << '\n';
  }
  std::exit(0);
}

void write_trace(const std::filesystem::path& dir, const lint::model_run& run,
                 std::string_view kind, const verify::counterexample& cx) {
  const std::filesystem::path path =
      dir / (run.protocol + "-n" + std::to_string(run.n) + "-" +
             std::string(kind) + ".trace.jsonl");
  std::ofstream out(path);
  if (!out) usage("cannot write " + path.string());
  verify::write_counterexample_jsonl(out, run.graph, cx);
  std::cout << "counterexample trace: " << path.string() << '\n';
}

std::string fixed(double v) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const options opt = parse(argc, argv);
  if (opt.list) list_registry(opt.include_broken);

  std::vector<const lint::protocol_entry*> entries;
  try {
    if (opt.protocols.empty()) {
      for (const lint::protocol_entry& e : lint::lint_registry()) {
        if (e.hidden && !opt.include_broken) continue;
        entries.push_back(&e);
      }
    } else {
      for (const std::string& name : opt.protocols) {
        entries.push_back(&lint::resolve_protocol_entry(name));
      }
    }
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }

  if (!opt.trace_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opt.trace_dir, ec);
    if (ec) usage("cannot create " + opt.trace_dir + ": " + ec.message());
  }

  std::vector<lint::model_run> runs;
  std::vector<lint::model_skip> skipped;
  std::vector<lint::finding> findings;
  for (const lint::protocol_entry* entry : entries) {
    for (const std::uint32_t n : opt.n_values) {
      lint::model_skip skip;
      std::optional<lint::model_run> run;
      lint::lint_context ctx(entry->name, n, &findings);
      try {
        run = lint::run_entry_model(*entry, n, &skip);
      } catch (const std::logic_error& e) {
        ctx.emit(lint::finding_code::closure_escape, lint::severity::error,
                 e.what());
        continue;
      }
      if (!run.has_value()) {
        skipped.push_back(std::move(skip));
        continue;
      }
      lint::emit_model_findings(*run, ctx);
      if (!opt.trace_dir.empty()) {
        if (run->result.silence_counterexample.has_value()) {
          write_trace(opt.trace_dir, *run, "silence",
                      *run->result.silence_counterexample);
        }
        if (run->result.stabilization_counterexample.has_value()) {
          write_trace(opt.trace_dir, *run, "stabilization",
                      *run->result.stabilization_counterexample);
        }
      }
      runs.push_back(std::move(*run));
    }
  }

  if (!opt.json_path.empty()) {
    const std::string doc =
        lint::modelcheck_to_json(runs, skipped, findings, opt.strict).dump(2);
    if (opt.json_path == "-") {
      std::cout << doc << '\n';
    } else {
      std::ofstream out(opt.json_path);
      if (!out) usage("cannot write " + opt.json_path);
      out << doc << '\n';
      std::cout << "modelcheck document: " << opt.json_path << '\n';
    }
  }

  text_table table({"protocol", "n", "configs", "transitions", "terminal",
                    "silent", "stabilizing", "worst E[T]", "uniform E[T]"});
  for (const lint::model_run& run : runs) {
    const verify::model_check_result& r = run.result;
    table.add_row({run.protocol, std::to_string(run.n),
                   std::to_string(r.configurations),
                   std::to_string(r.transitions),
                   std::to_string(r.terminal_classes),
                   r.silent ? "yes" : "NO", r.self_stabilizing ? "yes" : "NO",
                   r.expected_time_computed
                       ? fixed(r.worst_expected_interactions)
                       : "-",
                   r.expected_time_computed
                       ? fixed(r.uniform_expected_interactions)
                       : "-"});
  }
  table.print(std::cout);
  for (const lint::model_skip& s : skipped) {
    std::cout << "skipped " << s.protocol << " n=" << s.n << ": " << s.reason
              << '\n';
  }
  std::size_t errors = 0, warnings = 0, notes = 0;
  if (!findings.empty()) std::cout << '\n';
  for (const lint::finding& f : findings) {
    std::cout << lint::to_line(f) << '\n';
    switch (f.sev) {
      case lint::severity::error: ++errors; break;
      case lint::severity::warning: ++warnings; break;
      case lint::severity::note: ++notes; break;
    }
  }
  const std::size_t violations = errors + (opt.strict ? warnings : 0);
  std::cout << '\n'
            << (violations == 0 ? "PASS" : "FAIL") << ": " << violations
            << " violation(s), " << errors << " error(s), " << warnings
            << " warning(s), " << notes << " note(s) over " << runs.size()
            << " model run(s)\n";
  return violations == 0 ? 0 : 1;
}
