// protocol_lint -- static model checker for the registered protocols.
//
// Enumerates each protocol's declared state space at small n and verifies
// the structural invariants behind the paper's claims: transition closure,
// determinism/totality, the change-flag contract, rank-output soundness,
// Table-1 state counts, the batched-engine partition, silence and
// self-stabilization via the exhaustive configuration-space verifier, and a
// dead-state audit.  See docs/static_analysis.md for the finding codes.
//
//   protocol_lint                        lint every registered protocol
//   protocol_lint --strict               promote warnings to violations
//   protocol_lint --protocol=optimal     lint one protocol (repeatable)
//   protocol_lint --n=2,3,4              population sizes (default 2,3,4)
//   protocol_lint --json=findings.json   also write machine-readable findings
//   protocol_lint --list                 list registry entries and exit
//   protocol_lint --include-broken       also lint the hidden broken fixtures
//
// Exit code: 0 when no violations (errors; plus warnings under --strict),
// 1 on violations, 2 on usage errors.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/protocol_lint/lint.hpp"
#include "analysis/protocol_lint/registry.hpp"
#include "util/edit_distance.hpp"

namespace {

using namespace ssr;

struct options {
  lint::lint_options lint;
  bool strict = false;
  bool list = false;
  std::string json_path;
};

constexpr std::string_view cli_flags[] = {
    "--protocol", "--n",    "--strict",         "--json",
    "--list",     "--help", "--include-broken",
};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr
      << "usage: protocol_lint [options]\n"
      << "  --protocol=<name>   lint one registry entry (repeatable;\n"
      << "                      default: every visible entry)\n"
      << "  --n=<list>          comma-separated population sizes "
         "(default 2,3,4)\n"
      << "  --strict            promote warnings to violations (notes are\n"
      << "                      never promoted)\n"
      << "  --json=<file>       write findings as JSON ('-' for stdout)\n"
      << "  --include-broken    also lint the hidden broken fixtures\n"
      << "  --list              list registry entries and exit\n";
  std::exit(2);
}

std::vector<std::uint32_t> parse_sizes(const std::string& value) {
  std::vector<std::uint32_t> sizes;
  std::istringstream in(value);
  std::string item;
  while (std::getline(in, item, ',')) {
    try {
      const unsigned long n = std::stoul(item);
      if (n < 2 || n > 64) usage("--n values must be in 2..64, got " + item);
      sizes.push_back(static_cast<std::uint32_t>(n));
    } catch (const std::logic_error&) {
      usage("cannot parse --n value '" + item + "'");
    }
  }
  if (sizes.empty()) usage("--n needs at least one population size");
  return sizes;
}

options parse(int argc, char** argv) {
  options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string(key) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (arg == "--help" || arg == "-h") usage();
    if (arg == "--list") {
      opt.list = true;
      continue;
    }
    if (arg == "--strict") {
      opt.strict = true;
      continue;
    }
    if (arg == "--include-broken") {
      opt.lint.include_hidden = true;
      continue;
    }
    if (auto v = value_of("--protocol")) {
      opt.lint.protocols.push_back(*v);
      continue;
    }
    if (auto v = value_of("--n")) {
      opt.lint.n_values = parse_sizes(*v);
      continue;
    }
    if (auto v = value_of("--json")) {
      opt.json_path = *v;
      continue;
    }
    const std::string name = arg.substr(0, arg.find('='));
    std::string message = "unknown argument '" + name + "'";
    const std::string_view suggestion = nearest_candidate(name, cli_flags);
    if (!suggestion.empty())
      message += " (did you mean " + std::string(suggestion) + "?)";
    usage(message);
  }
  return opt;
}

[[noreturn]] void list_registry(bool include_hidden) {
  for (const lint::protocol_entry& e : lint::lint_registry()) {
    if (e.hidden && !include_hidden) continue;
    std::cout << e.name << (e.hidden ? "  [hidden fixture]" : "") << "\n    "
              << e.summary << '\n';
  }
  std::exit(0);
}

}  // namespace

int main(int argc, char** argv) {
  const options opt = parse(argc, argv);
  if (opt.list) list_registry(opt.lint.include_hidden);

  lint::lint_report report;
  try {
    report = lint::run_lint(opt.lint);
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }

  if (!opt.json_path.empty()) {
    const std::string doc = lint::to_json(report, opt.strict).dump(2);
    if (opt.json_path == "-") {
      std::cout << doc << '\n';
    } else {
      std::ofstream out(opt.json_path);
      if (!out) usage("cannot write " + opt.json_path);
      out << doc << '\n';
      std::cout << "findings: " << opt.json_path << '\n';
    }
  }
  std::cout << lint::render_report(report, opt.strict);
  return report.passed(opt.strict) ? 0 : 1;
}
