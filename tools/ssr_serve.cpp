// ssr_serve -- the simulation service daemon.
//
// Listens on 127.0.0.1 for line-delimited JSON requests (docs/serving.md)
// and answers them from a fixed worker pool behind a bounded admission
// queue and a fingerprint-keyed result cache.
//
//   ssr_serve --port=0 --workers=4 --queue-depth=32 --cache=256
//             --port-file=/tmp/ssr.port
//             --telemetry-dir=/tmp/ssr-telemetry --stats-period-s=30
//
// --port=0 (the default) binds an ephemeral port; --port-file writes the
// bound port for scripts to pick up.  --telemetry-dir enables the
// events.jsonl job journal and per-job trace/profile artifacts
// (docs/observability.md, "Wire telemetry"); --stats-period-s additionally
// snapshots the Prometheus metrics exposition to <dir>/metrics.prom every
// N seconds (atomic rename, so scrapers never read a torn file).
// SIGINT/SIGTERM and the in-band {"type":"shutdown"} request both drain
// gracefully: admission stops, accepted jobs finish, then the process
// exits 0.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "serve/server.hpp"
#include "util/edit_distance.hpp"
#include "util/request_spec.hpp"

namespace {

constexpr std::string_view k_flags[] = {
    "--port",  "--workers", "--queue-depth", "--cache",
    "--retry-after-ms", "--port-file", "--telemetry-dir",
    "--stats-period-s", "--help",
};

ssr::serve::server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

void usage(std::ostream& os) {
  os << "usage: ssr_serve [--port=N] [--workers=N] [--queue-depth=N]\n"
        "                 [--cache=N] [--retry-after-ms=N] [--port-file=PATH]\n"
        "                 [--telemetry-dir=DIR] [--stats-period-s=N]\n"
        "  --port=N           listen port on 127.0.0.1 (default 0 = "
        "ephemeral)\n"
        "  --workers=N        simulation worker threads (default 4)\n"
        "  --queue-depth=N    waiting jobs admitted before shedding "
        "(default 32)\n"
        "  --cache=N          result-cache entries, 0 disables "
        "(default 256)\n"
        "  --retry-after-ms=N suggested backoff in saturated responses "
        "(default 250)\n"
        "  --port-file=PATH   write the bound port to PATH after listen\n"
        "  --telemetry-dir=DIR write the events.jsonl job journal and "
        "per-job\n"
        "                     trace/profile artifacts under DIR\n"
        "  --stats-period-s=N also snapshot the Prometheus exposition to\n"
        "                     DIR/metrics.prom every N seconds (needs "
        "--telemetry-dir)\n";
}

std::uint64_t parse_flag_u64(std::string_view flag, std::string_view text) {
  const std::optional<std::uint64_t> v = ssr::util::parse_u64(text);
  if (!v.has_value()) {
    std::cerr << "error: " << flag << " expects an unsigned integer, got '"
              << text << "'\n";
    std::exit(2);
  }
  return *v;
}

/// Periodic metrics snapshot: write-then-rename so a concurrent reader
/// (CI scrape, dashboard tail) always sees a complete exposition.
class stats_snapshotter {
 public:
  stats_snapshotter(ssr::serve::service& svc, std::string dir,
                    std::chrono::seconds period)
      : svc_(svc), path_(dir + "/metrics.prom"), period_(period) {
    thread_ = std::thread([this] { loop(); });
  }

  ~stats_snapshotter() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    write_snapshot();  // final state for post-mortem inspection
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      if (cv_.wait_for(lock, period_, [this] { return stop_; })) break;
      lock.unlock();
      write_snapshot();
      lock.lock();
    }
  }

  void write_snapshot() {
    const std::string tmp = path_ + ".tmp";
    {
      std::ofstream os(tmp, std::ios::trunc);
      if (!os) return;
      os << svc_.metrics_text();
    }
    std::rename(tmp.c_str(), path_.c_str());
  }

  ssr::serve::service& svc_;
  std::string path_;
  std::chrono::seconds period_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  ssr::serve::server_options options;
  options.service.workers = 4;
  options.service.max_queue_depth = 32;
  options.service.cache_capacity = 256;
  std::string port_file;
  std::uint64_t stats_period_s = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value_of =
        [&](std::string_view prefix) -> std::optional<std::string_view> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (arg == "--help") {
      usage(std::cout);
      return 0;
    }
    if (const auto v = value_of("--port=")) {
      options.port =
          static_cast<std::uint16_t>(parse_flag_u64("--port", *v));
      continue;
    }
    if (const auto v = value_of("--workers=")) {
      options.service.workers =
          static_cast<std::size_t>(parse_flag_u64("--workers", *v));
      continue;
    }
    if (const auto v = value_of("--queue-depth=")) {
      options.service.max_queue_depth =
          static_cast<std::size_t>(parse_flag_u64("--queue-depth", *v));
      continue;
    }
    if (const auto v = value_of("--cache=")) {
      options.service.cache_capacity =
          static_cast<std::size_t>(parse_flag_u64("--cache", *v));
      continue;
    }
    if (const auto v = value_of("--retry-after-ms=")) {
      options.service.retry_after = std::chrono::milliseconds(
          parse_flag_u64("--retry-after-ms", *v));
      continue;
    }
    if (const auto v = value_of("--port-file=")) {
      port_file = *v;
      continue;
    }
    if (const auto v = value_of("--telemetry-dir=")) {
      options.service.telemetry_dir = std::string(*v);
      continue;
    }
    if (const auto v = value_of("--stats-period-s=")) {
      stats_period_s = parse_flag_u64("--stats-period-s", *v);
      continue;
    }
    const std::string_view name = arg.substr(0, arg.find('='));
    std::cerr << "error: unknown argument '" << name << "'";
    const std::string_view suggestion =
        ssr::nearest_candidate(name, k_flags);
    if (!suggestion.empty())
      std::cerr << " (did you mean " << suggestion << "?)";
    std::cerr << '\n';
    usage(std::cerr);
    return 2;
  }
  if (stats_period_s > 0 && options.service.telemetry_dir.empty()) {
    std::cerr << "error: --stats-period-s needs --telemetry-dir for the "
                 "snapshot location\n";
    return 2;
  }

  ssr::serve::server server(options);
  std::string error;
  if (!server.listen(&error)) {
    std::cerr << "error: " << error << '\n';
    return 1;
  }
  if (!port_file.empty()) {
    std::ofstream os(port_file, std::ios::trunc);
    if (!os) {
      std::cerr << "error: could not write port file '" << port_file
                << "'\n";
      return 1;
    }
    os << server.port() << '\n';
  }
  std::cout << "ssr_serve listening on 127.0.0.1:" << server.port() << " ("
            << options.service.workers << " workers, queue depth "
            << options.service.max_queue_depth << ", cache "
            << options.service.cache_capacity << ")\n";
  if (!options.service.telemetry_dir.empty()) {
    std::cout << "ssr_serve telemetry in " << options.service.telemetry_dir
              << '\n';
  }
  std::cout << std::flush;

  std::optional<stats_snapshotter> snapshotter;
  if (stats_period_s > 0) {
    snapshotter.emplace(server.svc(), options.service.telemetry_dir,
                        std::chrono::seconds(stats_period_s));
  }

  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  server.run();
  g_server = nullptr;
  snapshotter.reset();
  std::cout << "ssr_serve drained; bye\n";
  return 0;
}
