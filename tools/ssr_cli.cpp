// ssr_cli -- command-line driver for the library.
//
// Runs any protocol from any adversarial scenario on any topology, printing
// periodic configuration summaries and a final verdict.  Examples:
//
//   ssr_cli --protocol=optimal --n=64 --scenario=all_dormant_followers
//   ssr_cli --protocol=baseline --n=16 --graph=ring --max-time=10000
//   ssr_cli --protocol=sublinear --n=16 --h=3 --scenario=single_collision
//           (add --trace-every=50 for periodic summaries)
//   ssr_cli --protocol=loose --n=64 --t-max=40
//   ssr_cli --protocol=optimal --n=64 --json=run.json --trace-out=run.jsonl
//
// Bundle subcommands (docs/bundles.md):
//
//   ssr_cli run <scenario.json> --out <dir>       scenario -> run bundle
//   ssr_cli bundle verify <dir>                   recheck manifest sha256s
//   ssr_cli baseline capture <dir> --baselines <dir>
//   ssr_cli compare <dir> --against <file-or-dir> [--ks-alpha=..]
//           [--mean-tolerance=..] [--value-tolerance=..]
//
// compare exits 0 when every gate passes, 1 on regression, 2 when the
// inputs are unusable (failed verification, fingerprint mismatch).
//
// --json writes a machine-readable run summary (verdict, parallel time,
// engine counters); --trace-out writes the structured event stream
// (obs/trace.hpp) as JSONL.  Tracing observes interactions through the
// engine hook API, so it requires the complete graph and routes the run
// through direct_engine/batched_engine/sharded_engine per --engine.
// --engine=sharded runs the sharded engine's sequential hooked mode (the
// CLI's summaries and verdict need per-interaction hooks); its threaded
// run_parallel twin is exercised by bench_engine_scaling and the TSan test
// suite and is bit-identical by construction (pp/sharded_scheduler.hpp).
//
// Exit code 0 iff the run reached a correct configuration.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <span>
#include <sstream>
#include <string>

#include "analysis/protocol_lint/lint.hpp"
#include "analysis/trace_stats.hpp"
#include "obs/bundle.hpp"
#include "obs/engine_counters.hpp"
#include "obs/exposition.hpp"
#include "obs/journal.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/progress.hpp"
#include "obs/scenario.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "pp/graph_simulation.hpp"
#include "protocols/adversary.hpp"
#include "protocols/describe.hpp"
#include "serve/request_context.hpp"
#include "serve/runner.hpp"
#include "ssr.hpp"
#include "util/edit_distance.hpp"
#include "util/request_spec.hpp"

namespace {

using namespace ssr;

struct options {
  std::string protocol = "optimal";
  std::uint32_t n = 32;
  std::uint32_t h = 1;
  std::uint32_t t_max = 0;  // loose: 0 = 4 log2 n
  std::string scenario = "uniform_random";
  std::string graph = "complete";
  double graph_p = 0.9;  // for --graph=gnp
  std::uint64_t seed = 1;
  double max_time = 1e7;
  double trace_every = 0.0;  // 0 = only start/end
  bool show_agents = false;
  std::string dump_path;   // write the starting configuration here
  std::string load_path;   // read the starting configuration instead
  std::string json_path;   // write a machine-readable run summary here
  std::string trace_path;  // write the structured event stream (JSONL) here
  std::uint64_t trace_sample_every = 1;  // keep every k-th phase transition
  std::size_t trace_cap = 1u << 20;      // trace event buffer cap
  bool progress = false;   // heartbeat on stderr for long runs
  bool lint = false;       // run the protocol linter before simulating
  bool profile = false;    // hierarchical section profiling (wall + perf)
  std::string profile_out;     // folded-stack output path (implies profile)
  std::string profile_chrome;  // chrome trace output path (implies profile)
  engine_kind engine = engine_kind::direct;
  std::uint32_t shards = 0;  // sharded engine: 0 = hardware concurrency

  obs::trace_options trace_options() const {
    return {.sample_every = trace_sample_every, .max_events = trace_cap};
  }
};

constexpr std::string_view cli_flags[] = {
    "--protocol",       "--n",           "--h",
    "--t-max",          "--scenario",    "--graph",
    "--graph-p",        "--engine",      "--shards",
    "--seed",
    "--max-time",       "--trace-every", "--show-agents",
    "--dump",           "--load",        "--json",
    "--trace-out",      "--trace-sample-every",
    "--trace-cap",      "--progress",    "--profile",
    "--profile-out",    "--profile-chrome", "--lint",
    "--list-protocols", "--list-scenarios", "--help",
};

constexpr std::pair<std::string_view, optimal_silent_scenario>
    optimal_scenarios[] = {
        {"uniform_random", optimal_silent_scenario::uniform_random},
        {"all_settled_rank_one",
         optimal_silent_scenario::all_settled_rank_one},
        {"no_leader", optimal_silent_scenario::no_leader},
        {"all_unsettled_expired",
         optimal_silent_scenario::all_unsettled_expired},
        {"all_dormant_followers",
         optimal_silent_scenario::all_dormant_followers},
        {"duplicated_ranks", optimal_silent_scenario::duplicated_ranks},
        {"valid_ranking", optimal_silent_scenario::valid_ranking},
};

constexpr std::pair<std::string_view, sublinear_scenario>
    sublinear_scenarios[] = {
        {"uniform_random", sublinear_scenario::uniform_random},
        {"all_same_name", sublinear_scenario::all_same_name},
        {"single_collision", sublinear_scenario::single_collision},
        {"ghost_names", sublinear_scenario::ghost_names},
        {"missing_own_name", sublinear_scenario::missing_own_name},
        {"planted_histories", sublinear_scenario::planted_histories},
        {"mid_reset", sublinear_scenario::mid_reset},
        {"valid_ranking", sublinear_scenario::valid_ranking},
};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: ssr_cli [options]\n"
      "  --protocol=baseline|optimal|sublinear|loose\n"
      "  --n=<int>              population size (default 32)\n"
      "  --h=<int>              sublinear history depth (default 1)\n"
      "  --t-max=<int>          loose timeout (default 4 log2 n)\n"
      "  --scenario=<name>      adversarial start (default uniform_random;\n"
      "                         see --list-scenarios)\n"
      "  --graph=complete|ring|star|path|gnp   (baseline/optimal only)\n"
      "  --graph-p=<float>      edge probability for gnp (default 0.9)\n"
      "  --engine=direct|batched|sharded  simulation engine (default\n"
      "                         direct; batched and sharded assume the\n"
      "                         uniform complete-graph scheduler, so they\n"
      "                         need --graph=complete)\n"
      "  --shards=<int>         sharded engine worker shard count (>= 1;\n"
      "                         requires --engine=sharded; omit the flag\n"
      "                         for hardware concurrency)\n"
      "  --seed=<int>           rng seed (default 1)\n"
      "  --max-time=<float>     parallel-time budget (default 1e7)\n"
      "  --trace-every=<float>  summary every T time units\n"
      "  --show-agents          dump every agent state at start/end\n"
      "  --dump=<file>          write the starting configuration (see\n"
      "                         protocols/serialize.hpp for the format)\n"
      "  --load=<file>          start from a saved configuration\n"
      "  --json=<file>          write a machine-readable run summary\n"
      "  --trace-out=<file>     write the structured event stream as JSONL\n"
      "                         (requires --graph=complete; runs through the\n"
      "                         selected engine)\n"
      "  --trace-sample-every=<k>  keep every k-th phase_transition event\n"
      "                         (default 1 = all; structural events are\n"
      "                         never sampled out)\n"
      "  --trace-cap=<int>      trace event buffer cap (default 2^20;\n"
      "                         excess events are counted as dropped)\n"
      "  --progress             print a heartbeat line to stderr every few\n"
      "                         seconds (parallel time, interactions/s, ETA)\n"
      "  --lint                 run the protocol model linter (strict) on\n"
      "                         the selected protocol before simulating;\n"
      "                         exits 1 without simulating on violations\n"
      "  --profile              hierarchical section profiling: hardware\n"
      "                         counters when available, wall time always;\n"
      "                         the section table lands in the --json summary\n"
      "                         (requires --graph=complete; runs through the\n"
      "                         selected engine)\n"
      "  --profile-out=<file>   also write the profile as a folded-stack\n"
      "                         file (flamegraph.pl / speedscope); implies\n"
      "                         --profile\n"
      "  --profile-chrome=<file>  also write the profile spans as chrome\n"
      "                         trace-event JSON (Perfetto); implies\n"
      "                         --profile\n"
      "  --list-protocols       print the protocol names and exit\n"
      "  --list-scenarios       print the per-protocol scenario names and "
      "exit\n"
      "                         (add bare --json to either list flag for a\n"
      "                         machine-readable document)\n"
      "\n"
      "subcommands (run bundles; see docs/bundles.md):\n"
      "  ssr_cli run <scenario.json> --out <dir>\n"
      "  ssr_cli bundle verify <dir>\n"
      "  ssr_cli baseline capture <dir> --baselines <dir>\n"
      "  ssr_cli compare <dir> --against <file-or-dir>\n";
  std::exit(2);
}

constexpr std::pair<std::string_view, std::string_view> protocol_blurbs[] = {
    {"baseline",
     "Silent-n-state-SSR (Theta(n^2) time, n states; Table 1 row 1)"},
    {"optimal", "Optimal-Silent-SSR (O(n) time, O(n) states; Theorem 4.1)"},
    {"sublinear",
     "Sublinear-Time-SSR (O(n/2^h polylog n) time; Theorem 5.1)"},
    {"loose",
     "loose-stabilizing LE (Theta(log n)-state comparison point)"},
};

std::string_view blurb_of(std::string_view protocol) {
  for (const auto& [name, blurb] : protocol_blurbs)
    if (name == protocol) return blurb;
  return {};
}

/// --list-protocols; with the bare --json modifier the listing is a
/// machine-readable document instead of aligned text.
[[noreturn]] void list_protocols(bool json) {
  if (json) {
    obs::json_value doc = obs::json_value::object();
    doc["schema"] = "ssr.protocols";
    doc["schema_version"] = 1;
    obs::json_value arr = obs::json_value::array();
    for (const std::string_view protocol : util::protocol_names()) {
      obs::json_value item = obs::json_value::object();
      item["name"] = std::string(protocol);
      item["description"] = std::string(blurb_of(protocol));
      arr.push_back(std::move(item));
    }
    doc["protocols"] = std::move(arr);
    std::cout << doc.dump(2) << '\n';
    std::exit(0);
  }
  std::cout
      << "baseline   Silent-n-state-SSR (Theta(n^2) time, n states; Table 1 "
         "row 1)\n"
      << "optimal    Optimal-Silent-SSR (O(n) time, O(n) states; Theorem "
         "4.1)\n"
      << "sublinear  Sublinear-Time-SSR (O(n/2^h polylog n) time; Theorem "
         "5.1)\n"
      << "loose      loose-stabilizing LE (Theta(log n)-state comparison "
         "point)\n";
  std::exit(0);
}

[[noreturn]] void list_scenarios(bool json) {
  // One source of truth for names: the shared request-spec tables the
  // benches and ssr_serve validate against (util/request_spec.hpp).
  if (json) {
    obs::json_value doc = obs::json_value::object();
    doc["schema"] = "ssr.scenarios";
    doc["schema_version"] = 1;
    obs::json_value arr = obs::json_value::array();
    for (const std::string_view protocol : util::protocol_names()) {
      obs::json_value item = obs::json_value::object();
      item["name"] = std::string(protocol);
      obs::json_value names = obs::json_value::array();
      for (const std::string_view name : util::scenario_names(protocol))
        names.push_back(std::string(name));
      item["scenarios"] = std::move(names);
      arr.push_back(std::move(item));
    }
    doc["protocols"] = std::move(arr);
    std::cout << doc.dump(2) << '\n';
    std::exit(0);
  }
  for (const std::string_view protocol : util::protocol_names()) {
    std::cout << protocol << ':';
    for (const std::string_view name : util::scenario_names(protocol))
      std::cout << ' ' << name;
    std::cout << '\n';
  }
  std::exit(0);
}

options parse(int argc, char** argv) {
  options opt;
  // Bare --json is the machine-readable modifier for the list modes; it
  // may appear on either side of the list flag, so pre-scan.
  bool json_list = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") json_list = true;
  }
  // Spec-shaped flags (protocol, scenario, n, h, t-max, seed, max-time,
  // engine, shards) funnel through the shared builder so the CLI rejects
  // bad specs with exactly the diagnostics the benches and ssr_serve
  // produce (util/request_spec.hpp).
  util::spec_builder builder;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string(key) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (arg == "--help" || arg == "-h") usage();
    if (arg == "--list-protocols") list_protocols(json_list);
    if (arg == "--list-scenarios") list_scenarios(json_list);
    if (arg == "--json")
      usage("--json needs a value (--json=<file>); the bare flag is only a "
            "modifier for --list-protocols/--list-scenarios");
    if (arg == "--show-agents") {
      opt.show_agents = true;
      continue;
    }
    if (auto v = value_of("--protocol")) {
      builder.set_protocol(*v);
      continue;
    }
    if (auto v = value_of("--n")) {
      builder.set_u64_text("n", *v);
      continue;
    }
    if (auto v = value_of("--h")) {
      builder.set_u64_text("h", *v);
      continue;
    }
    if (auto v = value_of("--t-max")) {
      builder.set_u64_text("t_max", *v);
      continue;
    }
    if (auto v = value_of("--scenario")) {
      builder.set_scenario(*v);
      continue;
    }
    if (auto v = value_of("--graph")) {
      opt.graph = *v;
      continue;
    }
    if (auto v = value_of("--graph-p")) {
      opt.graph_p = std::stod(*v);
      continue;
    }
    if (auto v = value_of("--engine")) {
      builder.set_engine(*v);
      continue;
    }
    if (auto v = value_of("--shards")) {
      builder.set_u64_text("shards", *v);
      continue;
    }
    if (auto v = value_of("--seed")) {
      builder.set_u64_text("seed", *v);
      continue;
    }
    if (auto v = value_of("--max-time")) {
      builder.set_max_time_text(*v);
      continue;
    }
    if (auto v = value_of("--trace-every")) {
      opt.trace_every = std::stod(*v);
      continue;
    }
    if (auto v = value_of("--dump")) {
      opt.dump_path = *v;
      continue;
    }
    if (auto v = value_of("--load")) {
      opt.load_path = *v;
      continue;
    }
    if (auto v = value_of("--json")) {
      opt.json_path = *v;
      continue;
    }
    if (auto v = value_of("--trace-out")) {
      opt.trace_path = *v;
      continue;
    }
    if (auto v = value_of("--trace-sample-every")) {
      opt.trace_sample_every = std::stoull(*v);
      if (opt.trace_sample_every == 0)
        usage("--trace-sample-every must be >= 1");
      continue;
    }
    if (auto v = value_of("--trace-cap")) {
      opt.trace_cap = static_cast<std::size_t>(std::stoull(*v));
      continue;
    }
    if (arg == "--progress") {
      opt.progress = true;
      obs::set_progress_default(true);
      continue;
    }
    if (arg == "--lint") {
      opt.lint = true;
      continue;
    }
    if (arg == "--profile") {
      opt.profile = true;
      continue;
    }
    if (auto v = value_of("--profile-out")) {
      opt.profile = true;
      opt.profile_out = *v;
      continue;
    }
    if (auto v = value_of("--profile-chrome")) {
      opt.profile = true;
      opt.profile_chrome = *v;
      continue;
    }
    const std::string name = arg.substr(0, arg.find('='));
    std::string message = "unknown argument '" + name + "'";
    const std::string_view suggestion = nearest_candidate(name, cli_flags);
    if (!suggestion.empty())
      message += " (did you mean " + std::string(suggestion) + "?)";
    usage(message);
  }
  const std::vector<util::spec_error> errors = builder.finalize();
  if (!errors.empty()) usage(util::render_errors(errors));
  const util::sim_request_spec& spec = builder.spec();
  opt.protocol = spec.protocol;
  opt.scenario = spec.scenario;
  opt.n = spec.n;
  opt.h = spec.h;
  opt.t_max = spec.t_max;
  opt.seed = spec.seed;
  opt.max_time = spec.max_time;
  opt.engine = spec.engine.kind;
  opt.shards = spec.engine.shards;
  if (opt.engine != engine_kind::direct && opt.graph != "complete")
    usage("--engine=" + std::string(to_string(opt.engine)) +
          " requires --graph=complete");
  if (!opt.trace_path.empty() && opt.graph != "complete")
    usage("--trace-out requires --graph=complete (tracing attaches to the "
          "engine hook API)");
  if (opt.profile && opt.graph != "complete")
    usage("--profile requires --graph=complete (profiling attaches to the "
          "engine)");
  return opt;
}

interaction_graph make_graph(const options& opt) {
  if (opt.graph == "complete") return interaction_graph::complete(opt.n);
  if (opt.graph == "ring") return interaction_graph::ring(opt.n);
  if (opt.graph == "star") return interaction_graph::star(opt.n);
  if (opt.graph == "path") return interaction_graph::path(opt.n);
  if (opt.graph == "gnp")
    return interaction_graph::erdos_renyi(opt.n, opt.graph_p, opt.seed ^ 0x9e);
  usage("unknown graph: " + opt.graph);
}

optimal_silent_scenario parse_optimal_scenario(const std::string& s) {
  for (const auto& [name, value] : optimal_scenarios)
    if (name == s) return value;
  const std::string_view suggestion = nearest_candidate(
      s, [] {
        static std::vector<std::string_view> names;
        if (names.empty())
          for (const auto& [name, _] : optimal_scenarios)
            names.push_back(name);
        return std::span<const std::string_view>(names);
      }());
  std::string message = "unknown optimal scenario: " + s;
  if (!suggestion.empty())
    message += " (did you mean " + std::string(suggestion) + "?)";
  usage(message);
}

sublinear_scenario parse_sublinear_scenario(const std::string& s) {
  for (const auto& [name, value] : sublinear_scenarios)
    if (name == s) return value;
  const std::string_view suggestion = nearest_candidate(
      s, [] {
        static std::vector<std::string_view> names;
        if (names.empty())
          for (const auto& [name, _] : sublinear_scenarios)
            names.push_back(name);
        return std::span<const std::string_view>(names);
      }());
  std::string message = "unknown sublinear scenario: " + s;
  if (!suggestion.empty())
    message += " (did you mean " + std::string(suggestion) + "?)";
  usage(message);
}

/// Single-run heartbeat behind --progress: owns a metrics registry whose
/// run.* gauges the drive loops refresh at each checkpoint window; the
/// background meter renders parallel-time progress, interactions/s, and an
/// ETA on stderr (obs/progress.hpp).  A disabled instance is inert.
class run_progress {
 public:
  explicit run_progress(const options& opt) {
    if (!opt.progress) return;
    registry_.emplace();
    registry_->get_gauge("run.max_parallel_time").set(opt.max_time);
    meter_.emplace(*registry_,
                   obs::progress_options{.label = opt.protocol});
  }

  void update(double parallel_time, std::uint64_t interactions) {
    if (!registry_) return;
    registry_->get_gauge("run.parallel_time").set(parallel_time);
    registry_->get_gauge("engine.interactions_executed")
        .set(static_cast<double>(interactions));
  }

  /// Final gauge refresh + meter shutdown, so the last heartbeat cannot
  /// interleave with the verdict lines.
  void finish(double parallel_time, std::uint64_t interactions) {
    update(parallel_time, interactions);
    if (meter_) meter_->stop();
  }

 private:
  std::optional<obs::metrics_registry> registry_;
  std::optional<obs::progress_meter> meter_;
};

/// Single-run profiling behind --profile: owns the counter group (degraded
/// gracefully where perf_event_open is restricted) and the section
/// collector rooted at "run"; the drive loops attach the profiler to their
/// engine.  finish() writes the requested folded-stack / chrome artifacts
/// and returns the profile JSON for the --json summary.  A disabled
/// instance is inert and hands the engine a null profiler.
class run_profile {
 public:
  explicit run_profile(const options& opt) : opt_(&opt) {
    if (!opt.profile) return;
    perf_.emplace();
    if (!perf_->available())
      std::cerr << "profile: hardware counters unavailable ("
                << perf_->status() << "); recording wall time only\n";
    profiler_.emplace(obs::timeline_options{.perf = &*perf_});
    root_ = profiler_->enter("run");
  }

  obs::timeline_profiler* profiler() {
    return profiler_.has_value() ? &*profiler_ : nullptr;
  }

  /// Closes the root section, writes --profile-out / --profile-chrome, and
  /// returns the profile block for the --json summary (nullopt when
  /// profiling is off).
  std::optional<obs::json_value> finish() {
    if (!profiler_) return std::nullopt;
    profiler_->exit(root_);
    const obs::timeline_profile profile = profiler_->profile();
    if (!opt_->profile_out.empty()) {
      std::ofstream out(opt_->profile_out);
      if (!out) usage("cannot write " + opt_->profile_out);
      profile.write_folded(out);
      std::cout << "profile: " << opt_->profile_out << '\n';
    }
    if (!opt_->profile_chrome.empty()) {
      std::ofstream out(opt_->profile_chrome);
      if (!out) usage("cannot write " + opt_->profile_chrome);
      out << chrome_profile_json(profile).dump(2) << '\n';
      std::cout << "profile chrome trace: " << opt_->profile_chrome << '\n';
    }
    std::optional<obs::json_value> json = profile.to_json();
    profiler_.reset();
    perf_.reset();
    return json;
  }

 private:
  const options* opt_;
  std::optional<obs::perf_counter_group> perf_;
  std::optional<obs::timeline_profiler> profiler_;
  std::uint32_t root_ = 0;
};

/// Checkpoint window for the drive loops: --trace-every wins; otherwise
/// --progress forces periodic returns from the engine so the heartbeat
/// gauges advance; otherwise one full-budget window.
double progress_window(const options& opt) {
  if (opt.trace_every > 0) return opt.trace_every;
  if (opt.progress) return std::max(opt.max_time / 1024.0, 1.0);
  return opt.max_time;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Writes the --json run summary: the verdict plus everything a script
/// needs to re-run or classify the run.  Engine counters and trace stats
/// appear when the run went through an engine / had a trace attached.
void write_summary(const options& opt, bool stabilized, double time,
                   std::uint64_t interactions,
                   const obs::engine_counters* counters,
                   const obs::trace_sink* sink,
                   const std::optional<obs::json_value>& profile =
                       std::nullopt) {
  if (opt.json_path.empty()) return;
  obs::json_value doc = obs::json_value::object();
  doc["schema_version"] = 1;
  doc["tool"] = "ssr_cli";
  doc["protocol"] = opt.protocol;
  doc["n"] = static_cast<std::uint64_t>(opt.n);
  doc["scenario"] = opt.scenario;
  doc["graph"] = opt.graph;
  doc["engine"] = std::string(to_string(opt.engine));
  doc["seed"] = opt.seed;
  doc["stabilized"] = stabilized;
  doc["parallel_time"] = time;
  doc["interactions"] = interactions;
  if (counters != nullptr) doc["engine_counters"] = obs::to_json(*counters);
  if (sink != nullptr) {
    obs::json_value trace = obs::json_value::object();
    trace["events"] = static_cast<std::uint64_t>(sink->events().size());
    trace["offered"] = sink->offered();
    trace["sampled_out"] = sink->sampled_out();
    trace["dropped"] = sink->dropped();
    doc["trace"] = std::move(trace);
  }
  if (profile.has_value()) doc["profile"] = *profile;
  std::ofstream out(opt.json_path);
  if (!out) usage("cannot write " + opt.json_path);
  out << doc.dump(2) << '\n';
  std::cout << "summary: " << opt.json_path << '\n';
}

void write_trace(const obs::trace_sink& sink, const std::string& path,
                 std::span<const std::string_view> phase_names) {
  std::ofstream out(path);
  if (!out) usage("cannot write " + path);
  sink.write_jsonl(out, phase_names);
  std::cout << "trace: " << path << " (" << sink.events().size()
            << " events, " << sink.offered() << " offered)\n";
}

/// Applies --dump/--load: optionally replaces `initial` with a saved
/// configuration, optionally writes the starting configuration out.
template <class P>
std::vector<typename P::agent_state> resolve_initial(
    const options& opt, const P& protocol,
    std::vector<typename P::agent_state> initial) {
  if (!opt.load_path.empty())
    initial = config_from_text(protocol, slurp(opt.load_path));
  if (!opt.dump_path.empty()) {
    std::ofstream out(opt.dump_path);
    if (!out) usage("cannot write " + opt.dump_path);
    out << to_text(protocol, initial);
    std::cout << "wrote starting configuration to " << opt.dump_path << '\n';
  }
  return initial;
}

/// Engine-based counterpart of drive() for --engine=batched (or whenever a
/// trace is requested) on the complete graph: same summaries and verdict,
/// but the trajectory advances through a pp/engine.hpp engine, correctness
/// is tracked incrementally (the engine may skip certainly-null
/// interactions, so a per-step full-scan check would defeat the point), and
/// a phase observer emits the structured event stream for instrumented
/// protocols.
template <class Engine, class P>
int drive_engine(const options& opt, const P& protocol,
                 std::vector<typename P::agent_state> initial) {
  initial = resolve_initial(opt, protocol, std::move(initial));
  // The sharded engine takes its shard count at construction; the others
  // keep the uniform three-argument signature.
  Engine eng = [&] {
    if constexpr (requires {
                    Engine(protocol, std::move(initial), opt.seed,
                           sharded_options{});
                  }) {
      return Engine(protocol, std::move(initial), opt.seed,
                    sharded_options{.shards = opt.shards});
    } else {
      return Engine(protocol, std::move(initial), opt.seed);
    }
  }();
  obs::engine_counters counters;
  eng.attach_counters(&counters);
  run_profile prof(opt);
  eng.attach_profiler(prof.profiler());
  obs::trace_sink sink(opt.trace_options());
  obs::trace_sink* sink_ptr = opt.trace_path.empty() ? nullptr : &sink;
  run_progress progress(opt);

  std::cout << "t=0.0: " << summarize_configuration(protocol, eng.agents())
            << '\n';
  if (opt.show_agents) {
    for (std::size_t i = 0; i < eng.agents().size(); ++i)
      std::cout << "  agent " << i << ": "
                << describe(protocol, eng.agents()[i]) << '\n';
  }

  rank_tracker tracker(protocol.population_size());
  for (const auto& s : eng.agents()) tracker.add(protocol.rank_of(s));
  std::uint32_t ra = 0, rb = 0;

  const auto run_to_verdict = [&](auto&& pre_extra, auto&& post_extra) {
    const auto pre = [&](const agent_pair& pair) {
      ra = protocol.rank_of(eng.agents()[pair.initiator]);
      rb = protocol.rank_of(eng.agents()[pair.responder]);
      pre_extra(pair);
    };
    const auto post = [&](const agent_pair& pair, bool changed) {
      if (changed) {
        tracker.update(ra, protocol.rank_of(eng.agents()[pair.initiator]));
        tracker.update(rb, protocol.rank_of(eng.agents()[pair.responder]));
      }
      post_extra(pair, changed);
      return tracker.correct();
    };
    const double step_window = progress_window(opt);
    bool done = tracker.correct();
    while (!done && eng.parallel_time() < opt.max_time) {
      const double next_checkpoint =
          std::min(eng.parallel_time() + step_window, opt.max_time);
      done = eng.run(static_cast<std::uint64_t>(
                         next_checkpoint * static_cast<double>(opt.n)),
                     pre, post);
      progress.update(eng.parallel_time(), eng.interactions());
      if (opt.trace_every > 0 || done) {
        std::cout << "t=" << eng.parallel_time() << ": "
                  << summarize_configuration(protocol, eng.agents()) << '\n';
      }
    }
    return done;
  };

  bool done = false;
  if constexpr (obs::phase_instrumented_protocol<P>) {
    obs::phase_observer<P> observer(protocol, eng.agents(), sink_ptr);
    observer.begin(eng.parallel_time(), eng.interactions());
    bool was_correct = tracker.correct();
    done = run_to_verdict(
        [&](const agent_pair& pair) { observer.before(pair); },
        [&](const agent_pair& pair, bool changed) {
          observer.after(pair, changed, eng.parallel_time(),
                         eng.interactions());
          if (changed && ra == rb && ra != 0)
            observer.rank_collision(pair, eng.parallel_time(),
                                    eng.interactions());
          const bool correct = tracker.correct();
          if (correct && !was_correct)
            observer.convergence(eng.parallel_time(), eng.interactions());
          else if (!correct && was_correct)
            observer.correctness_lost(eng.parallel_time(),
                                      eng.interactions());
          was_correct = correct;
        });
    observer.end(eng.parallel_time(), eng.interactions());
    if (sink_ptr != nullptr) {
      const auto names = observer.phase_names();
      write_trace(sink, opt.trace_path, names);
    }
  } else {
    if (sink_ptr != nullptr)
      sink.emit({obs::trace_event_kind::run_start, eng.parallel_time(),
                 eng.interactions()});
    done = run_to_verdict([](const agent_pair&) {},
                          [](const agent_pair&, bool) {});
    if (sink_ptr != nullptr) {
      if (done)
        sink.emit({obs::trace_event_kind::convergence, eng.parallel_time(),
                   eng.interactions()});
      sink.emit({obs::trace_event_kind::run_end, eng.parallel_time(),
                 eng.interactions()});
      write_trace(sink, opt.trace_path, {});
    }
  }
  progress.finish(eng.parallel_time(), eng.interactions());
  const std::optional<obs::json_value> profile_json = prof.finish();

  if (opt.show_agents) {
    for (std::size_t i = 0; i < eng.agents().size(); ++i)
      std::cout << "  agent " << i << ": "
                << describe(protocol, eng.agents()[i]) << '\n';
  }
  write_summary(opt, done, eng.parallel_time(), eng.interactions(),
                &counters, sink_ptr, profile_json);
  if (done) {
    std::cout << "stabilized at t=" << eng.parallel_time() << " ("
              << eng.interactions() << " interactions); leader is the rank-1 "
              << "agent\n";
    return 0;
  }
  std::cout << "did NOT stabilize within t=" << opt.max_time << '\n';
  return 1;
}

/// Drives one run with periodic summaries; returns success.
template <class P>
int drive(const options& opt, const P& protocol,
          std::vector<typename P::agent_state> initial,
          const interaction_graph& graph) {
  initial = resolve_initial(opt, protocol, std::move(initial));
  graph_simulation<P> sim(protocol, graph, std::move(initial), opt.seed);
  std::cout << "t=0.0: " << summarize_configuration(protocol, sim.agents())
            << '\n';
  if (opt.show_agents) {
    for (std::size_t i = 0; i < sim.agents().size(); ++i)
      std::cout << "  agent " << i << ": "
                << describe(protocol, sim.agents()[i]) << '\n';
  }

  run_progress progress(opt);
  const double step_window = progress_window(opt);
  bool done = false;
  while (!done && sim.parallel_time() < opt.max_time) {
    const double next_checkpoint =
        std::min(sim.parallel_time() + step_window, opt.max_time);
    done = sim.run_until(
        [&](const graph_simulation<P>& s) {
          return is_valid_ranking(s.protocol(), s.agents()) ||
                 s.parallel_time() >= next_checkpoint;
        },
        static_cast<std::uint64_t>(opt.max_time *
                                   static_cast<double>(opt.n)));
    done = done && is_valid_ranking(protocol, sim.agents());
    progress.update(sim.parallel_time(), sim.interactions());
    if (opt.trace_every > 0 || done) {
      std::cout << "t=" << sim.parallel_time() << ": "
                << summarize_configuration(protocol, sim.agents()) << '\n';
    }
  }
  progress.finish(sim.parallel_time(), sim.interactions());

  if (opt.show_agents) {
    for (std::size_t i = 0; i < sim.agents().size(); ++i)
      std::cout << "  agent " << i << ": "
                << describe(protocol, sim.agents()[i]) << '\n';
  }
  write_summary(opt, done, sim.parallel_time(), sim.interactions(), nullptr,
                nullptr);
  if (done) {
    std::cout << "stabilized at t=" << sim.parallel_time() << " ("
              << sim.interactions() << " interactions); leader is the rank-1 "
              << "agent\n";
    return 0;
  }
  std::cout << "did NOT stabilize within t=" << opt.max_time << '\n';
  return 1;
}

/// Loose LE has no ranking notion; run until a unique leader, report.
template <class Engine>
int drive_loose_engine(const options& opt, const loose_stabilizing_le& p,
                       std::vector<loose_stabilizing_le::agent_state>
                           initial) {
  Engine eng = [&] {
    if constexpr (requires {
                    Engine(p, std::move(initial), opt.seed,
                           sharded_options{});
                  }) {
      return Engine(p, std::move(initial), opt.seed,
                    sharded_options{.shards = opt.shards});
    } else {
      return Engine(p, std::move(initial), opt.seed);
    }
  }();
  obs::engine_counters counters;
  eng.attach_counters(&counters);
  run_profile prof(opt);
  eng.attach_profiler(prof.profiler());
  obs::trace_sink sink(opt.trace_options());
  obs::trace_sink* sink_ptr = opt.trace_path.empty() ? nullptr : &sink;
  run_progress progress(opt);

  std::cout << "t=0.0: " << summarize_configuration(p, eng.agents()) << '\n';
  if (sink_ptr != nullptr)
    sink.emit({obs::trace_event_kind::run_start, eng.parallel_time(),
               eng.interactions()});
  bool done = p.leader_count(eng.agents()) == 1;
  if (!done) {
    done = eng.run(
        static_cast<std::uint64_t>(opt.max_time *
                                   static_cast<double>(opt.n)),
        [](const agent_pair&) {},
        [&](const agent_pair&, bool changed) {
          if ((eng.interactions() & 0xffff) == 0)
            progress.update(eng.parallel_time(), eng.interactions());
          return changed && p.leader_count(eng.agents()) == 1;
        });
  }
  progress.finish(eng.parallel_time(), eng.interactions());
  std::cout << "t=" << eng.parallel_time() << ": "
            << summarize_configuration(p, eng.agents()) << '\n';
  if (sink_ptr != nullptr) {
    if (done)
      sink.emit({obs::trace_event_kind::convergence, eng.parallel_time(),
                 eng.interactions()});
    sink.emit({obs::trace_event_kind::run_end, eng.parallel_time(),
               eng.interactions()});
    write_trace(sink, opt.trace_path, {});
  }
  const std::optional<obs::json_value> profile_json = prof.finish();
  write_summary(opt, done, eng.parallel_time(), eng.interactions(),
                &counters, sink_ptr, profile_json);
  return done ? 0 : 1;
}

// Maps the CLI protocol name to the lint-registry entries covering it; the
// sublinear entries are per history depth, so pick the one matching --h
// (the linter's sampled checks only run at h <= 2).
std::vector<std::string> lint_entries_for(const options& opt) {
  if (opt.protocol == "baseline") return {"baseline"};
  if (opt.protocol == "optimal") return {"optimal", "optimal-default"};
  if (opt.protocol == "sublinear")
    return {"sublinear-h" + std::to_string(std::min<std::uint32_t>(opt.h, 2))};
  if (opt.protocol == "loose") return {"loose"};
  return {};
}

// --lint: run the strict model lint for the selected protocol before
// simulating; on violations print the findings and refuse to simulate.
void run_lint_gate(const options& opt) {
  lint::lint_options lo;
  lo.protocols = lint_entries_for(opt);
  if (lo.protocols.empty()) return;  // unknown protocol: reported below
  const lint::lint_report report = lint::run_lint(lo);
  if (!report.passed(/*strict=*/true)) {
    std::cerr << lint::render_report(report, /*strict=*/true);
    std::cerr << "lint: model violations; refusing to simulate\n";
    std::exit(1);
  }
  std::cout << "lint: PASS (" << report.notes << " note(s))\n";
}

// ---------------------------------------------------------------------------
// Bundle subcommands: run / bundle verify / baseline capture / compare.
// Exit conventions: 0 success, 1 run failure / failed verification /
// regression, 2 bad usage or invalid inputs.

[[noreturn]] void subcommand_usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage:\n"
      "  ssr_cli run <scenario.json> --out <dir>\n"
      "      execute an ssr.scenario v1 document and write the run bundle\n"
      "      (scenario.json, run.json, events.jsonl, optional trace/profile/\n"
      "      metrics, summary.md, bundle_manifest.json)\n"
      "  ssr_cli bundle verify <dir>\n"
      "      recompute every sha256 listed in bundle_manifest.json\n"
      "  ssr_cli baseline capture <dir> --baselines <dir>\n"
      "      freeze a verified bundle's run.json as the scenario's baseline\n"
      "  ssr_cli compare <dir> --against <file-or-dir>\n"
      "          [--ks-alpha=A] [--mean-tolerance=F] [--value-tolerance=F]\n"
      "      gate a bundle against a baseline (exit 1 on regression)\n"
      "see docs/bundles.md\n";
  std::exit(2);
}

/// `--flag value` / `--flag=value` for the subcommand argv style.
std::optional<std::string> flag_value(std::span<char* const> args,
                                      std::size_t& i, std::string_view flag) {
  const std::string_view arg = args[i];
  if (arg == flag) {
    if (i + 1 >= args.size())
      subcommand_usage(std::string(flag) + " needs a value");
    return std::string(args[++i]);
  }
  const std::string prefix = std::string(flag) + "=";
  if (arg.rfind(prefix, 0) == 0) return std::string(arg.substr(prefix.size()));
  return std::nullopt;
}

std::optional<std::string> read_file(const std::string& path,
                                     std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// ssr_cli run <scenario.json> --out <dir>
int cmd_run(std::span<char* const> args) {
  std::string scenario_path;
  std::string out_dir;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (auto v = flag_value(args, i, "--out")) {
      out_dir = *v;
      continue;
    }
    const std::string_view arg = args[i];
    if (!arg.empty() && arg[0] == '-')
      subcommand_usage("unknown run option '" + std::string(arg) + "'");
    if (!scenario_path.empty())
      subcommand_usage("run takes exactly one scenario file");
    scenario_path = arg;
  }
  if (scenario_path.empty()) subcommand_usage("run needs a scenario file");
  if (out_dir.empty()) subcommand_usage("run needs --out <dir>");

  std::string io_error;
  const std::optional<std::string> text = read_file(scenario_path, &io_error);
  if (!text.has_value()) {
    std::cerr << "error: " << io_error << '\n';
    return 2;
  }
  std::vector<util::spec_error> errors;
  const std::optional<obs::scenario_doc> scenario =
      obs::parse_scenario_text(*text, &errors);
  if (!scenario.has_value()) {
    std::cerr << "error: invalid scenario '" << scenario_path << "':\n";
    for (const util::spec_error& e : errors)
      std::cerr << "  " << e.field << ": " << e.message << '\n';
    return 2;
  }
  const util::sim_request_spec& spec = scenario->spec;
  const std::string fingerprint = spec.canonical();

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::cerr << "error: cannot create '" << out_dir
              << "': " << ec.message() << '\n';
    return 1;
  }
  // The bundle journal shares the serve daemon's event vocabulary
  // (obs/journal.hpp) under the local-run schema tag.
  obs::journal journal{obs::journal_options{}};
  journal.open(out_dir + "/events.jsonl");
  const auto emit = [&](std::string_view event, auto&& fill) {
    obs::json_value fields = obs::json_value::object();
    fields["scenario"] = scenario->name;
    fill(fields);
    journal.emit(event, fields);
  };
  emit("admit", [&](obs::json_value& fields) {
    fields["fingerprint"] = fingerprint;
    fields["protocol"] = spec.protocol;
    fields["n"] = static_cast<std::uint64_t>(spec.n);
    fields["trials"] = spec.trials;
  });
  emit("start", [](obs::json_value&) {});

  obs::metrics_registry registry;
  obs::engine_counters counters;
  std::optional<serve::request_telemetry> telemetry;
  if (scenario->telemetry.any()) telemetry.emplace(scenario->telemetry);
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_ms = [&start] {
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    return std::floor(elapsed.count());
  };
  std::shared_ptr<const obs::json_value> result;
  try {
    result = serve::run_simulation(
        spec, /*cancel=*/nullptr, &registry,
        telemetry.has_value() ? &*telemetry : nullptr, &counters,
        [&](std::uint64_t completed, std::uint64_t total) {
          emit("progress", [&](obs::json_value& fields) {
            fields["trials_completed"] = completed;
            fields["trials_total"] = total;
          });
        });
  } catch (const std::exception& e) {
    emit("failed", [&](obs::json_value& fields) {
      fields["message"] = std::string(e.what());
    });
    std::cerr << "error: run failed: " << e.what() << '\n';
    return 1;
  }
  emit("complete", [&](obs::json_value& fields) {
    fields["fingerprint"] = fingerprint;
    fields["elapsed_ms"] = elapsed_ms();
  });

  obs::bundle_artifacts artifacts;
  artifacts.events = true;
  std::string trace_text;
  if (telemetry.has_value() && telemetry->options.trace) {
    std::ostringstream os;
    telemetry->trace.write_jsonl(os, telemetry->phase_names);
    trace_text = os.str();
    artifacts.trace_jsonl = &trace_text;
  }
  if (telemetry.has_value() && telemetry->options.profile) {
    artifacts.profile = &telemetry->profile;
  }
  if (scenario->emit_metrics) {
    artifacts.metrics_prom = obs::prometheus_text(registry);
  }
  const obs::bundle_result bundle = obs::write_run_bundle(
      out_dir, *scenario, *result, counters, artifacts);
  if (!bundle.ok) {
    std::cerr << "error: " << bundle.error << '\n';
    return 1;
  }
  const obs::json_value* stats =
      result->find("stats") != nullptr ? result->find("stats")->find("mean")
                                       : nullptr;
  std::cout << "bundle: " << bundle.dir << '\n';
  std::cout << "  fingerprint: " << fingerprint << '\n';
  if (stats != nullptr)
    std::cout << "  mean stabilization time: " << stats->as_double() << '\n';
  std::cout << "  manifest: " << bundle.manifest_path << '\n';
  return 0;
}

/// ssr_cli bundle verify <dir>
int cmd_bundle(std::span<char* const> args) {
  if (args.size() != 2 || std::string_view(args[0]) != "verify")
    subcommand_usage("bundle subcommand is: bundle verify <dir>");
  const std::string dir = args[1];
  const obs::manifest_check check = obs::verify_bundle(dir);
  if (!check.ok()) {
    std::cerr << "bundle verification FAILED for " << dir << ":\n";
    for (const std::string& problem : check.problems)
      std::cerr << "  " << problem << '\n';
    return 1;
  }
  std::cout << "bundle ok: " << check.files_checked
            << " file(s) verified against " << dir
            << "/bundle_manifest.json\n";
  return 0;
}

/// Loads <dir>/run.json after re-verifying the manifest; exits via return
/// code 2 semantics (nullopt) when the bundle is unusable.
std::optional<obs::json_value> load_verified_run(const std::string& dir) {
  const obs::manifest_check check = obs::verify_bundle(dir);
  if (!check.ok()) {
    std::cerr << "error: bundle verification failed for " << dir << ":\n";
    for (const std::string& problem : check.problems)
      std::cerr << "  " << problem << '\n';
    return std::nullopt;
  }
  std::string error;
  std::optional<obs::json_value> run_doc =
      obs::load_json_file(dir + "/run.json", &error);
  if (!run_doc.has_value()) std::cerr << "error: " << error << '\n';
  return run_doc;
}

/// ssr_cli baseline capture <dir> --baselines <dir>
int cmd_baseline(std::span<char* const> args) {
  if (args.empty() || std::string_view(args[0]) != "capture")
    subcommand_usage("baseline subcommand is: baseline capture <dir> "
                     "--baselines <dir>");
  std::string bundle_dir;
  std::string baselines_dir;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (auto v = flag_value(args, i, "--baselines")) {
      baselines_dir = *v;
      continue;
    }
    const std::string_view arg = args[i];
    if (!arg.empty() && arg[0] == '-')
      subcommand_usage("unknown baseline option '" + std::string(arg) + "'");
    if (!bundle_dir.empty())
      subcommand_usage("baseline capture takes exactly one bundle dir");
    bundle_dir = arg;
  }
  if (bundle_dir.empty())
    subcommand_usage("baseline capture needs a bundle dir");
  if (baselines_dir.empty())
    subcommand_usage("baseline capture needs --baselines <dir>");

  const std::optional<obs::json_value> run_doc =
      load_verified_run(bundle_dir);
  if (!run_doc.has_value()) return 2;
  const obs::json_value doc = obs::baseline_document(*run_doc);
  const obs::json_value* name = doc.find("scenario_name");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    std::cerr << "error: run.json has no scenario_name\n";
    return 2;
  }
  std::error_code ec;
  std::filesystem::create_directories(baselines_dir, ec);
  if (ec) {
    std::cerr << "error: cannot create '" << baselines_dir
              << "': " << ec.message() << '\n';
    return 1;
  }
  const std::string path = baselines_dir + "/" + name->as_string() + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "error: cannot write '" << path << "'\n";
    return 1;
  }
  out << doc.dump(2) << '\n';
  out.flush();
  if (!out) {
    std::cerr << "error: short write to '" << path << "'\n";
    return 1;
  }
  std::cout << "baseline: " << path << '\n';
  return 0;
}

/// ssr_cli compare <dir> --against <file-or-dir> [threshold flags]
int cmd_compare(std::span<char* const> args) {
  std::string bundle_dir;
  std::string against;
  obs::compare_limits limits;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (auto v = flag_value(args, i, "--against")) {
      against = *v;
      continue;
    }
    if (auto v = flag_value(args, i, "--ks-alpha")) {
      limits.ks_alpha = std::stod(*v);
      continue;
    }
    if (auto v = flag_value(args, i, "--mean-tolerance")) {
      limits.sample_mean_tolerance = std::stod(*v);
      continue;
    }
    if (auto v = flag_value(args, i, "--value-tolerance")) {
      limits.value_tolerance = std::stod(*v);
      continue;
    }
    const std::string_view arg = args[i];
    if (!arg.empty() && arg[0] == '-')
      subcommand_usage("unknown compare option '" + std::string(arg) + "'");
    if (!bundle_dir.empty())
      subcommand_usage("compare takes exactly one bundle dir");
    bundle_dir = arg;
  }
  if (bundle_dir.empty()) subcommand_usage("compare needs a bundle dir");
  if (against.empty()) subcommand_usage("compare needs --against <baseline>");

  const std::optional<obs::json_value> run_doc =
      load_verified_run(bundle_dir);
  if (!run_doc.has_value()) return 2;

  // --against a directory resolves to <dir>/<scenario_name>.json -- the
  // layout baseline capture writes.
  std::string baseline_path = against;
  if (std::filesystem::is_directory(against)) {
    const obs::json_value* name = run_doc->find("scenario_name");
    if (name == nullptr || !name->is_string()) {
      std::cerr << "error: run.json has no scenario_name\n";
      return 2;
    }
    baseline_path = against + "/" + name->as_string() + ".json";
  }
  std::string error;
  const std::optional<obs::json_value> baseline =
      obs::load_json_file(baseline_path, &error);
  if (!baseline.has_value()) {
    std::cerr << "error: " << error << '\n';
    return 2;
  }

  const obs::bundle_comparison comparison =
      obs::compare_against_baseline(*run_doc, *baseline, limits);
  if (!comparison.ok) {
    std::cerr << "error: " << comparison.error << '\n';
    return 2;
  }
  std::cout << "comparing " << bundle_dir << " against " << baseline_path
            << '\n';
  for (const obs::metric_verdict& v : comparison.verdicts) {
    const char* tag = !v.verdict.comparable ? "SKIP"
                      : v.verdict.regression ? "REGRESSION"
                                             : "ok";
    std::cout << "  [" << tag << "] " << v.key << ": base "
              << v.verdict.base_mean << " -> now " << v.verdict.new_mean
              << " (" << v.verdict.detail << ")\n";
  }
  std::cout << comparison.compared << " metric(s) compared, "
            << comparison.regressions << " regression(s)\n";
  return comparison.regressions > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Subcommand dispatch precedes flag parsing: a first argument that
  // doesn't start with '-' selects the bundle workflows.
  if (argc > 1 && argv[1][0] != '-') {
    const std::string_view command = argv[1];
    const std::span<char* const> rest(argv + 2,
                                      static_cast<std::size_t>(argc - 2));
    if (command == "run") return cmd_run(rest);
    if (command == "bundle") return cmd_bundle(rest);
    if (command == "baseline") return cmd_baseline(rest);
    if (command == "compare") return cmd_compare(rest);
    subcommand_usage("unknown subcommand '" + std::string(command) +
                     "' (expected run, bundle, baseline, or compare)");
  }
  const options opt = parse(argc, argv);
  if (opt.lint) run_lint_gate(opt);
  rng_t scenario_rng(opt.seed ^ 0xabcdef123456ULL);
  const interaction_graph graph = make_graph(opt);

  const bool batched = opt.engine == engine_kind::batched;
  const bool sharded = opt.engine == engine_kind::sharded;
  // Tracing and profiling attach to the engine, so either request routes
  // even --engine=direct runs through direct_engine instead of
  // graph_simulation (parse() already pinned --graph=complete for these).
  const bool engine_path =
      batched || sharded || !opt.trace_path.empty() || opt.profile;
  if (opt.protocol == "baseline") {
    silent_n_state_ssr p(opt.n);
    auto init = adversarial_configuration(p, scenario_rng);
    if (engine_path) {
      if (sharded)
        return drive_engine<sharded_engine<silent_n_state_ssr>>(
            opt, p, std::move(init));
      return batched
                 ? drive_engine<batched_engine<silent_n_state_ssr>>(
                       opt, p, std::move(init))
                 : drive_engine<direct_engine<silent_n_state_ssr>>(
                       opt, p, std::move(init));
    }
    return drive(opt, p, std::move(init), graph);
  }
  if (opt.protocol == "optimal") {
    optimal_silent_ssr p(opt.n);
    auto init = adversarial_configuration(
        p, parse_optimal_scenario(opt.scenario), scenario_rng);
    if (engine_path) {
      if (sharded)
        return drive_engine<sharded_engine<optimal_silent_ssr>>(
            opt, p, std::move(init));
      return batched ? drive_engine<batched_engine<optimal_silent_ssr>>(
                           opt, p, std::move(init))
                     : drive_engine<direct_engine<optimal_silent_ssr>>(
                           opt, p, std::move(init));
    }
    return drive(opt, p, std::move(init), graph);
  }
  if (opt.protocol == "sublinear") {
    if (opt.graph != "complete")
      usage("sublinear runs on the complete graph only");
    sublinear_time_ssr p(opt.n, opt.h);
    auto init = adversarial_configuration(
        p, parse_sublinear_scenario(opt.scenario), scenario_rng);
    if (engine_path) {
      if (sharded)
        return drive_engine<sharded_engine<sublinear_time_ssr>>(
            opt, p, std::move(init));
      return batched ? drive_engine<batched_engine<sublinear_time_ssr>>(
                           opt, p, std::move(init))
                     : drive_engine<direct_engine<sublinear_time_ssr>>(
                           opt, p, std::move(init));
    }
    return drive(opt, p, std::move(init), graph);
  }
  if (opt.protocol == "loose") {
    const auto t_max =
        opt.t_max > 0
            ? opt.t_max
            : static_cast<std::uint32_t>(
                  4 * std::ceil(std::log2(static_cast<double>(opt.n))));
    loose_stabilizing_le p(opt.n, t_max);
    auto initial =
        resolve_initial(opt, p, p.dead_configuration());  // --dump/--load
    if (engine_path) {
      if (sharded)
        return drive_loose_engine<sharded_engine<loose_stabilizing_le>>(
            opt, p, std::move(initial));
      return batched ? drive_loose_engine<batched_engine<loose_stabilizing_le>>(
                           opt, p, std::move(initial))
                     : drive_loose_engine<direct_engine<loose_stabilizing_le>>(
                           opt, p, std::move(initial));
    }
    graph_simulation<loose_stabilizing_le> sim(p, graph, std::move(initial),
                                               opt.seed);
    std::cout << "t=0.0: " << summarize_configuration(p, sim.agents())
              << '\n';
    const bool done = sim.run_until(
        [&](const graph_simulation<loose_stabilizing_le>& s) {
          return s.protocol().leader_count(s.agents()) == 1;
        },
        static_cast<std::uint64_t>(opt.max_time *
                                   static_cast<double>(opt.n)));
    std::cout << "t=" << sim.parallel_time() << ": "
              << summarize_configuration(p, sim.agents()) << '\n';
    write_summary(opt, done, sim.parallel_time(), sim.interactions(),
                  nullptr, nullptr);
    return done ? 0 : 1;
  }
  // Unreachable: parse() already validated the protocol name.
  usage(util::unknown_name_message("protocol", opt.protocol,
                                   util::protocol_names()));
}
