// Internal instrumentation: tree-size and interaction-cost profile of
// Sublinear-Time-SSR across (n, H), used to size the benchmark sweeps and
// validate the pruning memory bound (DESIGN.md deviation #2).
#include <chrono>
#include <iostream>

#include "pp/convergence.hpp"
#include "pp/simulation.hpp"
#include "protocols/adversary.hpp"
#include "protocols/sublinear.hpp"

using namespace ssr;

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? std::atoi(argv[1]) : 32;
  const std::uint32_t h = argc > 2 ? std::atoi(argv[2]) : 5;
  const int confirm_steps = argc > 3 ? std::atoi(argv[3]) : 0;

  sublinear_time_ssr p(n, h);
  std::cout << "n=" << n << " h=" << h << " t_h=" << p.params().t_h
            << " retention=" << p.params().prune_retention << "\n";
  rng_t rng(1);
  auto init = adversarial_configuration(p, sublinear_scenario::all_same_name, rng);
  simulation<sublinear_time_ssr> sim(p, std::move(init), 7);

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t steps = 0;
  std::size_t max_nodes = 0, cur_nodes = 0;
  while (true) {
    sim.step(); ++steps;
    if (steps % 64 == 0) {
      cur_nodes = 0;
      for (const auto& s : sim.agents())
        if (s.role == sublinear_time_ssr::role_t::collecting)
          cur_nodes += s.tree.node_count();
      max_nodes = std::max(max_nodes, cur_nodes);
      if (is_valid_ranking(p, sim.agents())) break;
      if (steps > 10'000'000ull) { std::cout << "NO CONVERGENCE\n"; break; }
    }
  }
  const double conv_time = sim.parallel_time();
  for (int i = 0; i < confirm_steps; ++i) {
    sim.step();
    if (i % 256 == 0) {
      cur_nodes = 0;
      for (const auto& s : sim.agents())
        if (s.role == sublinear_time_ssr::role_t::collecting)
          cur_nodes += s.tree.node_count();
      max_nodes = std::max(max_nodes, cur_nodes);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  std::cout << "converged at parallel time " << conv_time
            << " (" << steps << " steps), still-valid=" << is_valid_ranking(p, sim.agents())
            << "\nmax total nodes " << max_nodes
            << " (avg/agent " << max_nodes / n << "), steady nodes " << cur_nodes
            << "\nwall " << wall << " s, "
            << wall / static_cast<double>(steps + confirm_steps) * 1e6
            << " us/step\n";
  return 0;
}
