// report_trend: cross-revision drift detection over a bench history.
//
//   report_trend HISTORY_DIR
//   report_trend REPORT.json REPORT.json...   (chronological order)
//
// HISTORY_DIR is the layout bench binaries write with --history-dir: one
// subdirectory per git revision, each holding that revision's
// BENCH_<id>.json artifacts.  Revisions are ordered by their reports'
// generated_unix stamps (the directory names are hashes and carry no
// order).
//
// Rows are joined across revisions on the report_row key (section,
// protocol, n, params[, metric]).  A key with at least two points is
// judged by the shared regression gate (obs/report_compare.hpp) between
// its oldest and newest points -- the same KS + direction + tolerance
// logic report_diff applies to a single pair, so the CI trend gate and a
// local diff can never disagree.  Identical-seed reruns produce identical
// samples (KS p = 1) and pass clean by construction.
//
//   --markdown      emit a GitHub-flavored markdown table (for CI job
//                   summaries) instead of the ASCII table
//   --out=FILE      write there instead of stdout
//
// Exit 0 = no drift, 1 = at least one drifting key, 2 = usage error /
// unreadable input / fewer than two revisions.  In HISTORY_DIR mode a
// malformed or unknown-schema BENCH_*.json is skipped with a per-file
// warning (histories mix tool versions); explicitly listed report files
// still fail hard.
#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "obs/report.hpp"
#include "obs/report_compare.hpp"
#include "util/edit_distance.hpp"

namespace {

namespace fs = std::filesystem;
using ssr::obs::bench_report;
using ssr::obs::json_value;
using ssr::obs::report_row;
using ssr::obs::row_verdict;

constexpr std::array<std::string_view, 3> trend_flags = {"--markdown",
                                                         "--out", "--help"};

int usage() {
  std::cerr << "usage: report_trend [--markdown] [--out=FILE] HISTORY_DIR\n"
               "       report_trend [--markdown] [--out=FILE] REPORT.json"
               " REPORT.json...\n";
  return 2;
}

std::optional<bench_report> load_report(const std::string& path,
                                        std::string* why) {
  std::ifstream is(path);
  if (!is) {
    *why = "cannot open file";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  std::string error;
  const auto json = json_value::parse(buffer.str(), &error);
  if (!json) {
    *why = error;
    return std::nullopt;
  }
  auto report = bench_report::from_json(*json, &error);
  if (!report) {
    *why = error;
    return std::nullopt;
  }
  return report;
}

/// One revision = one set of reports measured from the same tree.
struct revision {
  std::string label;
  std::int64_t generated_unix = 0;  // min over reports, for ordering
  std::vector<bench_report> reports;
};

std::string short_rev(const std::string& rev) {
  return rev.size() > 10 ? rev.substr(0, 10) : rev;
}

bool load_history_dir(const std::string& dir, std::vector<revision>* out) {
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_directory()) continue;
    revision rev;
    rev.label = short_rev(entry.path().filename().string());
    for (const fs::directory_entry& file :
         fs::directory_iterator(entry.path(), ec)) {
      const std::string name = file.path().filename().string();
      if (name.rfind("BENCH_", 0) != 0 ||
          file.path().extension() != ".json") {
        continue;
      }
      // A history directory accumulates artifacts across revisions and
      // tool versions; one malformed or unknown-schema file should not
      // abort the whole trend, so skip it with a warning.  Explicitly
      // listed report files (below) still fail hard.
      std::string why;
      auto report = load_report(file.path().string(), &why);
      if (!report) {
        std::cerr << "warning: skipping '" << file.path().string()
                  << "': " << why << "\n";
        continue;
      }
      rev.reports.push_back(std::move(*report));
    }
    if (rev.reports.empty()) continue;
    rev.generated_unix = rev.reports.front().generated_unix;
    for (const bench_report& r : rev.reports) {
      rev.generated_unix = std::min(rev.generated_unix, r.generated_unix);
    }
    out->push_back(std::move(rev));
  }
  if (ec) {
    std::cerr << "error: cannot read '" << dir << "': " << ec.message()
              << "\n";
    return false;
  }
  return true;
}

struct trend_point {
  std::size_t revision_index;
  const report_row* row;
};

struct trend_line {
  std::string key;
  std::string unit;
  std::vector<trend_point> points;
  row_verdict verdict;  // oldest vs newest point
};

std::string format_mean(double mean) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.4g", mean);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool markdown = false;
  std::string out_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") return usage(), 0;
    if (arg == "--markdown") {
      markdown = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--", 0) == 0) {
      const std::string flag = arg.substr(0, arg.find('='));
      std::cerr << "error: unknown option '" << flag << "'";
      const std::string_view suggestion =
          ssr::nearest_candidate(flag, trend_flags);
      if (!suggestion.empty()) {
        std::cerr << " (did you mean '" << suggestion << "'?)";
      }
      std::cerr << "\n";
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage();

  std::vector<revision> revisions;
  if (inputs.size() == 1 && fs::is_directory(inputs.front())) {
    if (!load_history_dir(inputs.front(), &revisions)) return 2;
  } else {
    for (const std::string& path : inputs) {
      std::string why;
      auto report = load_report(path, &why);
      if (!report) {
        std::cerr << "error: " << path << ": " << why << "\n";
        return 2;
      }
      revision rev;
      rev.label = short_rev(report->git_rev);
      rev.generated_unix = report->generated_unix;
      rev.reports.push_back(std::move(*report));
      revisions.push_back(std::move(rev));
    }
  }
  if (revisions.size() < 2) {
    std::cerr << "error: need at least 2 revisions, found "
              << revisions.size() << "\n";
    return 2;
  }
  std::stable_sort(revisions.begin(), revisions.end(),
                   [](const revision& a, const revision& b) {
                     return a.generated_unix < b.generated_unix;
                   });

  // Join rows across revisions on key, preserving first-seen order.
  std::vector<trend_line> lines;
  std::map<std::string, std::size_t> index_of;
  for (std::size_t r = 0; r < revisions.size(); ++r) {
    for (const bench_report& report : revisions[r].reports) {
      for (const report_row& row : report.rows) {
        const std::string key = row.key();
        auto it = index_of.find(key);
        if (it == index_of.end()) {
          it = index_of.emplace(key, lines.size()).first;
          lines.push_back({key, row.unit, {}, {}});
        }
        lines[it->second].points.push_back({r, &row});
      }
    }
  }

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path, std::ios::trunc);
    if (!file) {
      std::cerr << "error: cannot write '" << out_path << "'\n";
      return 2;
    }
  }
  std::ostream& os = out_path.empty() ? std::cout : file;

  int drifting = 0;
  int compared = 0;
  std::vector<std::string> header = {"key", "unit"};
  for (const revision& rev : revisions) header.push_back(rev.label);
  header.push_back("status");
  std::vector<std::vector<std::string>> table_rows;

  for (trend_line& line : lines) {
    std::vector<std::string> cells(revisions.size(), "-");
    for (const trend_point& point : line.points) {
      cells[point.revision_index] =
          format_mean(point.row->mean_estimate());
    }
    std::string status;
    if (line.points.size() < 2) {
      status = "single point";
    } else {
      ++compared;
      line.verdict = ssr::obs::compare_rows(*line.points.front().row,
                                            *line.points.back().row);
      if (!line.verdict.comparable) {
        status = "not comparable";
      } else if (line.verdict.regression) {
        ++drifting;
        status = "DRIFT: " + line.verdict.detail;
      } else {
        status = "ok";
      }
    }
    std::vector<std::string> row_cells = {line.key, line.unit};
    row_cells.insert(row_cells.end(), cells.begin(), cells.end());
    row_cells.push_back(status);
    table_rows.push_back(std::move(row_cells));
  }

  if (markdown) {
    auto emit = [&](const std::vector<std::string>& cells) {
      os << "|";
      for (const std::string& cell : cells) {
        os << " " << (cell.empty() ? "-" : cell) << " |";
      }
      os << "\n";
    };
    emit(header);
    os << "|";
    for (std::size_t i = 0; i < header.size(); ++i) os << " --- |";
    os << "\n";
    for (const std::vector<std::string>& cells : table_rows) emit(cells);
    os << "\n";
  } else {
    os << "trend over " << revisions.size() << " revisions ("
       << revisions.front().label << " .. " << revisions.back().label
       << ")\n";
    ssr::text_table table(header);
    for (std::vector<std::string>& cells : table_rows) {
      table.add_row(std::move(cells));
    }
    table.print(os);
  }
  os << compared << " keys compared, " << drifting << " drifting\n";
  return drifting > 0 ? 1 : 0;
}
