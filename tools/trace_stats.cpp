// trace_stats: aggregate JSONL execution traces (ssr_cli --trace-out)
// into per-phase occupancy/dwell statistics, reset-wave counts and
// durations, rank-collision rates and a convergence-time breakdown.
//
//   trace_stats TRACE...                      human-readable tables
//   trace_stats --format=json TRACE...        versioned JSON summary
//   trace_stats --format=chrome TRACE...      Chrome trace-event JSON
//                                             (open in Perfetto or
//                                             chrome://tracing)
//   ... --out=FILE                            write there instead of stdout
//
// Several traces aggregate into one summary (tables/JSON) or one
// multi-process timeline (chrome: file i becomes pid i+1).
//
// Exit 0 on success, 2 on usage errors or unreadable/malformed traces.
#include <array>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/trace_stats.hpp"
#include "util/edit_distance.hpp"

namespace {

constexpr std::array<std::string_view, 3> stats_flags = {
    "--format", "--out", "--help"};

int usage() {
  std::cerr << "usage: trace_stats [--format=table|json|chrome] "
               "[--out=FILE] TRACE...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "table";
  std::string out_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") return usage(), 0;
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "table" && format != "json" && format != "chrome") {
        std::cerr << "error: unknown format '" << format << "'\n";
        return usage();
      }
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--", 0) == 0) {
      const std::string flag = arg.substr(0, arg.find('='));
      std::cerr << "error: unknown option '" << flag << "'";
      const std::string_view suggestion =
          ssr::nearest_candidate(flag, stats_flags);
      if (!suggestion.empty()) {
        std::cerr << " (did you mean '" << suggestion << "'?)";
      }
      std::cerr << "\n";
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();

  std::vector<ssr::parsed_trace> traces;
  for (const std::string& path : paths) {
    std::ifstream is(path);
    if (!is) {
      std::cerr << "error: cannot open '" << path << "'\n";
      return 2;
    }
    std::string error;
    auto trace = ssr::parse_trace_jsonl(is, &error);
    if (!trace) {
      std::cerr << "error: " << path << ": " << error << "\n";
      return 2;
    }
    traces.push_back(std::move(*trace));
  }

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path, std::ios::trunc);
    if (!file) {
      std::cerr << "error: cannot write '" << out_path << "'\n";
      return 2;
    }
  }
  std::ostream& os = out_path.empty() ? std::cout : file;

  if (format == "chrome") {
    // Merge all inputs into one timeline, one pid per trace file.
    ssr::obs::json_value merged = ssr::obs::json_value::object();
    ssr::obs::json_value events = ssr::obs::json_value::array();
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const ssr::obs::json_value one =
          ssr::chrome_trace_json(traces[i], static_cast<int>(i) + 1);
      for (const ssr::obs::json_value& e :
           one.find("traceEvents")->items()) {
        events.push_back(e);
      }
    }
    merged["traceEvents"] = std::move(events);
    merged["displayTimeUnit"] = ssr::obs::json_value{"ms"};
    os << merged.dump(2) << '\n';
    return 0;
  }

  ssr::trace_stats_accumulator stats;
  for (const ssr::parsed_trace& trace : traces) stats.add(trace);
  if (format == "json") {
    os << stats.to_json().dump(2) << '\n';
  } else {
    stats.print_table(os);
  }
  return 0;
}
