// ssr_client -- command-line client for the ssr_serve daemon.
//
//   ssr_client --port=7421 --protocol=optimal --n=256 --trials=8
//   ssr_client --port-file=/tmp/ssr.port --stats
//   ssr_client --port=7421 --sweep-n=64,128,256 --trials=4
//   ssr_client --port=7421 --hammer=8 --requests=16 --out-dir=reports
//
// Three shapes:
//   * single request (default; also --stats / --ping / --shutdown),
//     printing the response document to stdout;
//   * --sweep-n=a,b,c fan-out: one connection + request per n,
//     concurrently, with a per-n summary table;
//   * --hammer=C load mode: C concurrent connections each issuing
//     --requests=M identical run requests, reporting client-observed
//     latency and the service's cache hit rate as a BENCH_SERVE.json
//     (schema v2) artifact -- the serve row report_trend gates.
//
// Spec fields (--protocol, --n, --engine, ...) are passed through to the
// server *unvalidated*: rejecting bad specs identically at every front
// end is the server's job (util/request_spec.hpp), and field errors come
// back in the error response.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "serve/net.hpp"
#include "util/edit_distance.hpp"
#include "util/request_spec.hpp"

namespace {

using ssr::obs::json_value;

constexpr std::string_view k_flags[] = {
    "--port",        "--port-file", "--protocol",  "--scenario",
    "--n",           "--h",         "--t-max",     "--trials",
    "--seed",        "--max-time",  "--engine",    "--shards",
    "--deadline-ms", "--progress",  "--no-cache",  "--stats",
    "--ping",        "--shutdown",  "--sweep-n",   "--hammer",
    "--requests",    "--out-dir",   "--history-dir", "--no-json",
    "--trace",       "--trace-out", "--trace-sample-every",
    "--trace-max-events", "--profile", "--profile-out", "--metrics",
    "--overhead-probe", "--raw", "--help",
};

struct cli_options {
  std::uint16_t port = 0;
  std::string port_file;
  json_value run = json_value::object();  // accumulated spec fields
  bool progress = false;
  bool no_cache = false;
  std::optional<std::uint64_t> deadline_ms;
  enum class mode_t { run, stats, metrics, ping, shutdown, sweep, hammer }
      mode = mode_t::run;
  std::vector<std::uint64_t> sweep_n;
  std::size_t hammer_clients = 0;
  std::size_t requests_per_client = 8;
  std::string out_dir;
  std::string history_dir;
  bool write_json = true;
  // Wire telemetry (docs/serving.md, "Wire telemetry").
  bool trace = false;
  bool profile = false;
  std::string trace_out;
  std::string profile_out;
  std::optional<std::uint64_t> trace_sample_every;
  std::optional<std::uint64_t> trace_max_events;
  std::size_t overhead_probe = 0;
  bool raw = false;
  std::vector<std::string> argv_copy;
};

void usage(std::ostream& os) {
  os << "usage: ssr_client --port=N|--port-file=PATH [mode] [spec...]\n"
        "modes:   (default) one run request; --stats; --metrics; --ping;\n"
        "         --shutdown; --sweep-n=a,b,c concurrent fan-out;\n"
        "         --hammer=C load mode (--requests=M per connection, "
        "default 8)\n"
        "spec:    --protocol=P --scenario=S --n=N --h=H --t-max=T\n"
        "         --trials=N --seed=S --max-time=T --engine=E --shards=K\n"
        "run:     --deadline-ms=N --progress --no-cache\n"
        "telemetry: --trace [--trace-out=FILE] [--trace-sample-every=N]\n"
        "           [--trace-max-events=N] --profile [--profile-out=FILE]\n"
        "           (--trace-out/--profile-out imply the request option;\n"
        "            files hold the trace JSONL / profile JSON the daemon\n"
        "            captured, ready for tools/trace_stats)\n"
        "stats:   --raw prints the stats response JSON instead of the\n"
        "         pretty rendering\n"
        "report:  --out-dir=DIR --history-dir=DIR --no-json;\n"
        "         --overhead-probe=N adds the telemetry_overhead row\n"
        "         (N untelemetered vs N traced+profiled requests) to\n"
        "         BENCH_SERVE.json (hammer mode)\n";
}

[[noreturn]] void bad_flag(std::string_view arg) {
  const std::string_view name = arg.substr(0, arg.find('='));
  std::cerr << "error: unknown argument '" << name << "'";
  const std::string_view suggestion = ssr::nearest_candidate(name, k_flags);
  if (!suggestion.empty())
    std::cerr << " (did you mean " << suggestion << "?)";
  std::cerr << '\n';
  usage(std::cerr);
  std::exit(2);
}

std::uint64_t parse_flag_u64(std::string_view flag, std::string_view text) {
  const std::optional<std::uint64_t> v = ssr::util::parse_u64(text);
  if (!v.has_value()) {
    std::cerr << "error: " << flag << " expects an unsigned integer, got '"
              << text << "'\n";
    std::exit(2);
  }
  return *v;
}

cli_options parse_args(int argc, char** argv) {
  cli_options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    opt.argv_copy.emplace_back(arg);
    const auto value_of =
        [&](std::string_view prefix) -> std::optional<std::string_view> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (arg == "--help") {
      usage(std::cout);
      std::exit(0);
    }
    if (const auto v = value_of("--port=")) {
      opt.port = static_cast<std::uint16_t>(parse_flag_u64("--port", *v));
      continue;
    }
    if (const auto v = value_of("--port-file=")) {
      opt.port_file = *v;
      continue;
    }
    if (const auto v = value_of("--protocol=")) {
      opt.run["protocol"] = *v;
      continue;
    }
    if (const auto v = value_of("--scenario=")) {
      opt.run["scenario"] = *v;
      continue;
    }
    if (const auto v = value_of("--engine=")) {
      opt.run["engine"] = *v;
      continue;
    }
    if (const auto v = value_of("--n=")) {
      opt.run["n"] = parse_flag_u64("--n", *v);
      continue;
    }
    if (const auto v = value_of("--h=")) {
      opt.run["h"] = parse_flag_u64("--h", *v);
      continue;
    }
    if (const auto v = value_of("--t-max=")) {
      opt.run["t_max"] = parse_flag_u64("--t-max", *v);
      continue;
    }
    if (const auto v = value_of("--trials=")) {
      opt.run["trials"] = parse_flag_u64("--trials", *v);
      continue;
    }
    if (const auto v = value_of("--seed=")) {
      opt.run["seed"] = parse_flag_u64("--seed", *v);
      continue;
    }
    if (const auto v = value_of("--shards=")) {
      opt.run["shards"] = parse_flag_u64("--shards", *v);
      continue;
    }
    if (const auto v = value_of("--max-time=")) {
      char* end = nullptr;
      const std::string text(*v);
      const double parsed = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0' || text.empty()) {
        std::cerr << "error: --max-time expects a number, got '" << text
                  << "'\n";
        std::exit(2);
      }
      opt.run["max_time"] = parsed;
      continue;
    }
    if (const auto v = value_of("--deadline-ms=")) {
      opt.deadline_ms = parse_flag_u64("--deadline-ms", *v);
      continue;
    }
    if (arg == "--progress") {
      opt.progress = true;
      continue;
    }
    if (arg == "--no-cache") {
      opt.no_cache = true;
      continue;
    }
    if (arg == "--stats") {
      opt.mode = cli_options::mode_t::stats;
      continue;
    }
    if (arg == "--metrics") {
      opt.mode = cli_options::mode_t::metrics;
      continue;
    }
    if (arg == "--raw") {
      opt.raw = true;
      continue;
    }
    if (arg == "--trace") {
      opt.trace = true;
      continue;
    }
    if (const auto v = value_of("--trace-out=")) {
      opt.trace = true;
      opt.trace_out = *v;
      continue;
    }
    if (const auto v = value_of("--trace-sample-every=")) {
      opt.trace = true;
      opt.trace_sample_every = parse_flag_u64("--trace-sample-every", *v);
      continue;
    }
    if (const auto v = value_of("--trace-max-events=")) {
      opt.trace = true;
      opt.trace_max_events = parse_flag_u64("--trace-max-events", *v);
      continue;
    }
    if (arg == "--profile") {
      opt.profile = true;
      continue;
    }
    if (const auto v = value_of("--profile-out=")) {
      opt.profile = true;
      opt.profile_out = *v;
      continue;
    }
    if (const auto v = value_of("--overhead-probe=")) {
      opt.overhead_probe =
          static_cast<std::size_t>(parse_flag_u64("--overhead-probe", *v));
      continue;
    }
    if (arg == "--ping") {
      opt.mode = cli_options::mode_t::ping;
      continue;
    }
    if (arg == "--shutdown") {
      opt.mode = cli_options::mode_t::shutdown;
      continue;
    }
    if (const auto v = value_of("--sweep-n=")) {
      opt.mode = cli_options::mode_t::sweep;
      std::string_view rest = *v;
      while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string_view item = rest.substr(0, comma);
        opt.sweep_n.push_back(parse_flag_u64("--sweep-n", item));
        if (comma == std::string_view::npos) break;
        rest.remove_prefix(comma + 1);
      }
      if (opt.sweep_n.empty()) {
        std::cerr << "error: --sweep-n needs a comma-separated list\n";
        std::exit(2);
      }
      continue;
    }
    if (const auto v = value_of("--hammer=")) {
      opt.mode = cli_options::mode_t::hammer;
      opt.hammer_clients =
          static_cast<std::size_t>(parse_flag_u64("--hammer", *v));
      if (opt.hammer_clients == 0) {
        std::cerr << "error: --hammer needs at least one client\n";
        std::exit(2);
      }
      continue;
    }
    if (const auto v = value_of("--requests=")) {
      opt.requests_per_client =
          static_cast<std::size_t>(parse_flag_u64("--requests", *v));
      continue;
    }
    if (const auto v = value_of("--out-dir=")) {
      opt.out_dir = *v;
      continue;
    }
    if (const auto v = value_of("--history-dir=")) {
      opt.history_dir = *v;
      continue;
    }
    if (arg == "--no-json") {
      opt.write_json = false;
      continue;
    }
    bad_flag(arg);
  }
  if (opt.port == 0 && !opt.port_file.empty()) {
    std::ifstream is(opt.port_file);
    std::uint64_t port = 0;
    if (!(is >> port) || port == 0 || port > 65535) {
      std::cerr << "error: could not read a port from '" << opt.port_file
                << "'\n";
      std::exit(2);
    }
    opt.port = static_cast<std::uint16_t>(port);
  }
  if (opt.port == 0) {
    std::cerr << "error: --port=N or --port-file=PATH is required\n";
    usage(std::cerr);
    std::exit(2);
  }
  return opt;
}

json_value build_run_request(const cli_options& opt, std::uint64_t id) {
  json_value req = json_value::object();
  req["type"] = "run";
  req["id"] = id;
  for (const auto& [key, value] : opt.run.members()) req[key] = value;
  if (opt.deadline_ms.has_value()) req["deadline_ms"] = *opt.deadline_ms;
  if (opt.progress) req["progress"] = true;
  if (opt.no_cache) req["no_cache"] = true;
  if (opt.trace) {
    if (opt.trace_sample_every.has_value() ||
        opt.trace_max_events.has_value()) {
      json_value trace = json_value::object();
      if (opt.trace_sample_every.has_value())
        trace["sample_every"] = *opt.trace_sample_every;
      if (opt.trace_max_events.has_value())
        trace["max_events"] = *opt.trace_max_events;
      req["trace"] = std::move(trace);
    } else {
      req["trace"] = true;
    }
  }
  if (opt.profile) req["profile"] = true;
  return req;
}

/// Reconstructs the trace JSONL file from the in-band {"header","events"}
/// transport: header + events are the exact documents write_jsonl emits,
/// one dump per line, so tools/trace_stats parses the result unchanged.
bool write_trace_jsonl(const json_value& trace, const std::string& path) {
  const json_value* header = trace.find("header");
  const json_value* events = trace.find("events");
  if (header == nullptr || events == nullptr || !events->is_array())
    return false;
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  os << header->dump() << '\n';
  for (const json_value& event : events->items()) {
    os << event.dump() << '\n';
  }
  return os.good();
}

/// Pretty rendering of the stats document.  Walks the JSON generically --
/// every field the server sends prints, including ones this client
/// predates -- instead of a hardcoded field list that silently drops
/// unknown sections.
void render_stats(std::ostream& os, const json_value& value,
                  const std::string& indent) {
  if (value.is_object()) {
    for (const auto& [key, member] : value.members()) {
      if (member.is_object() || member.is_array()) {
        os << indent << key << ":\n";
        render_stats(os, member, indent + "  ");
      } else {
        os << indent << key << ": " << member.dump() << '\n';
      }
    }
    return;
  }
  if (value.is_array()) {
    for (const json_value& element : value.items()) {
      if (element.is_object() || element.is_array()) {
        os << indent << "-\n";
        render_stats(os, element, indent + "  ");
      } else {
        os << indent << "- " << element.dump() << '\n';
      }
    }
    return;
  }
  os << indent << value.dump() << '\n';
}

/// Sends one request and reads documents until the final (non-progress)
/// response; progress events print to stderr when `show_progress`.
std::optional<json_value> roundtrip(ssr::serve::line_socket& socket,
                                    const json_value& request,
                                    bool show_progress) {
  if (!socket.write_line(request.dump())) return std::nullopt;
  std::string line;
  while (socket.read_line(line)) {
    std::optional<json_value> doc = json_value::parse(line);
    if (!doc.has_value()) return std::nullopt;
    const json_value* type = doc->find("type");
    if (type != nullptr && type->is_string() &&
        type->as_string() == "progress") {
      if (show_progress) {
        const json_value* done = doc->find("trials_completed");
        const json_value* total = doc->find("trials_total");
        std::cerr << "progress: trials "
                  << (done != nullptr ? done->as_uint64() : 0) << "/"
                  << (total != nullptr ? total->as_uint64() : 0) << '\n';
      }
      continue;
    }
    return doc;
  }
  return std::nullopt;
}

bool response_ok(const json_value& response) {
  const json_value* ok = response.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

double median_ms(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return (values[mid - 1] + values[mid]) / 2.0;
}

/// The telemetry-overhead probe: N untelemetered vs N traced+profiled
/// requests, sequentially over one connection each, both with no_cache so
/// every request actually executes.  Returns median(telemetered) /
/// median(untelemetered), or nullopt when either side failed.
std::optional<double> probe_telemetry_overhead(const cli_options& opt,
                                               std::size_t count) {
  const auto run_batch =
      [&](bool telemetered) -> std::optional<double> {
    std::string error;
    const int fd = ssr::serve::connect_local(opt.port, &error);
    if (fd < 0) return std::nullopt;
    ssr::serve::line_socket socket(fd);
    cli_options probe = opt;
    probe.no_cache = true;  // both sides must execute, not replay
    probe.progress = false;
    probe.trace = telemetered;
    probe.profile = telemetered;
    std::vector<double> latencies;
    latencies.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const json_value request = build_run_request(probe, i);
      const auto t0 = std::chrono::steady_clock::now();
      const std::optional<json_value> response =
          roundtrip(socket, request, /*show_progress=*/false);
      const std::chrono::duration<double, std::milli> elapsed =
          std::chrono::steady_clock::now() - t0;
      if (!response.has_value() || !response_ok(*response))
        return std::nullopt;
      latencies.push_back(elapsed.count());
    }
    return median_ms(std::move(latencies));
  };
  const std::optional<double> base = run_batch(/*telemetered=*/false);
  const std::optional<double> telemetered = run_batch(/*telemetered=*/true);
  if (!base.has_value() || !telemetered.has_value() || *base <= 0.0)
    return std::nullopt;
  return *telemetered / *base;
}

int run_single(const cli_options& opt) {
  std::string error;
  const int fd = ssr::serve::connect_local(opt.port, &error);
  if (fd < 0) {
    std::cerr << "error: " << error << '\n';
    return 1;
  }
  ssr::serve::line_socket socket(fd);

  json_value request;
  switch (opt.mode) {
    case cli_options::mode_t::stats:
      request = json_value::object();
      request["type"] = "stats";
      request["id"] = std::uint64_t{1};
      break;
    case cli_options::mode_t::metrics:
      request = json_value::object();
      request["type"] = "metrics";
      request["id"] = std::uint64_t{1};
      break;
    case cli_options::mode_t::ping:
      request = json_value::object();
      request["type"] = "ping";
      request["id"] = std::uint64_t{1};
      break;
    case cli_options::mode_t::shutdown:
      request = json_value::object();
      request["type"] = "shutdown";
      request["id"] = std::uint64_t{1};
      break;
    default:
      request = build_run_request(opt, 1);
      break;
  }
  std::optional<json_value> response =
      roundtrip(socket, request, opt.progress);
  if (!response.has_value()) {
    std::cerr << "error: connection closed before a response arrived\n";
    return 1;
  }

  if (opt.mode == cli_options::mode_t::metrics && response_ok(*response)) {
    // The exposition text prints raw so the output pipes straight into
    // promtool / grep, exactly as a scrape endpoint would serve it.
    const json_value* metrics = response->find("metrics");
    if (metrics != nullptr && metrics->is_string()) {
      std::cout << metrics->as_string();
      return 0;
    }
  }

  if (opt.mode == cli_options::mode_t::stats && response_ok(*response) &&
      !opt.raw) {
    const json_value* stats = response->find("stats");
    if (stats != nullptr && stats->is_object()) {
      render_stats(std::cout, *stats, "");
      return 0;
    }
  }

  if (opt.mode == cli_options::mode_t::run && response_ok(*response)) {
    if (const json_value* telemetry = response->find("telemetry")) {
      bool stripped = false;
      if (!opt.trace_out.empty()) {
        const json_value* trace = telemetry->find("trace");
        if (trace != nullptr && write_trace_jsonl(*trace, opt.trace_out)) {
          std::cerr << "trace: " << opt.trace_out << '\n';
          stripped = true;
        } else {
          std::cerr << "warning: could not write trace to '" << opt.trace_out
                    << "'\n";
        }
      }
      if (!opt.profile_out.empty()) {
        const json_value* profile = telemetry->find("profile");
        std::ofstream os(opt.profile_out, std::ios::trunc);
        if (profile != nullptr && os) {
          os << profile->dump(2) << '\n';
          std::cerr << "profile: " << opt.profile_out << '\n';
          stripped = true;
        } else {
          std::cerr << "warning: could not write profile to '"
                    << opt.profile_out << "'\n";
        }
      }
      // Once the bulky artifacts live in files, the printed response keeps
      // only the telemetry request_id/artifacts pointers.
      if (stripped) {
        json_value trimmed = json_value::object();
        for (const auto& [key, member] : telemetry->members()) {
          if (key == "trace" && !opt.trace_out.empty()) continue;
          if (key == "profile" && !opt.profile_out.empty()) continue;
          trimmed[key] = member;
        }
        (*response)["telemetry"] = std::move(trimmed);
      }
    }
  }

  std::cout << response->dump(2) << '\n';
  return response_ok(*response) ? 0 : 1;
}

int run_sweep(const cli_options& opt) {
  struct slot {
    std::uint64_t n = 0;
    std::optional<json_value> response;
  };
  std::vector<slot> slots(opt.sweep_n.size());
  std::vector<std::thread> threads;
  threads.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    slots[i].n = opt.sweep_n[i];
    threads.emplace_back([&opt, &s = slots[i]] {
      std::string error;
      const int fd = ssr::serve::connect_local(opt.port, &error);
      if (fd < 0) return;
      ssr::serve::line_socket socket(fd);
      json_value request = build_run_request(opt, s.n);
      request["n"] = s.n;
      s.response = roundtrip(socket, request, /*show_progress=*/false);
    });
  }
  for (std::thread& t : threads) t.join();

  int failures = 0;
  for (const slot& s : slots) {
    std::cout << "n=" << s.n << ": ";
    if (!s.response.has_value()) {
      std::cout << "no response\n";
      ++failures;
      continue;
    }
    if (!response_ok(*s.response)) {
      const json_value* message = s.response->find("message");
      std::cout << "error: "
                << (message != nullptr ? message->as_string() : "?") << '\n';
      ++failures;
      continue;
    }
    const json_value* result = s.response->find("result");
    const json_value* stats =
        result != nullptr ? result->find("stats") : nullptr;
    const json_value* mean = stats != nullptr ? stats->find("mean") : nullptr;
    const json_value* cached = s.response->find("cached");
    std::cout << "mean=" << (mean != nullptr ? mean->as_double() : 0.0)
              << " cached="
              << (cached != nullptr && cached->as_bool() ? "yes" : "no")
              << '\n';
  }
  return failures == 0 ? 0 : 1;
}

int run_hammer(const cli_options& opt) {
  struct worker_result {
    std::vector<double> latencies_ms;
    std::size_t ok = 0;
    std::size_t cached = 0;
    std::size_t failed = 0;
  };
  std::vector<worker_result> results(opt.hammer_clients);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(opt.hammer_clients);
  for (std::size_t c = 0; c < opt.hammer_clients; ++c) {
    threads.emplace_back([&opt, &r = results[c]] {
      std::string error;
      const int fd = ssr::serve::connect_local(opt.port, &error);
      if (fd < 0) {
        r.failed = opt.requests_per_client;
        return;
      }
      ssr::serve::line_socket socket(fd);
      for (std::size_t i = 0; i < opt.requests_per_client; ++i) {
        const json_value request = build_run_request(opt, i);
        const auto t0 = std::chrono::steady_clock::now();
        const std::optional<json_value> response =
            roundtrip(socket, request, /*show_progress=*/false);
        const std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - t0;
        if (!response.has_value() || !response_ok(*response)) {
          ++r.failed;
          continue;
        }
        r.latencies_ms.push_back(elapsed.count());
        ++r.ok;
        const json_value* cached = response->find("cached");
        if (cached != nullptr && cached->is_bool() && cached->as_bool())
          ++r.cached;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;

  std::vector<double> latencies;
  std::size_t ok = 0, cached = 0, failed = 0;
  for (const worker_result& r : results) {
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    ok += r.ok;
    cached += r.cached;
    failed += r.failed;
  }
  const double rps =
      wall.count() > 0.0 ? static_cast<double>(ok) / wall.count() : 0.0;

  // The service's own view of the cache (includes hits from other
  // clients); falls back to the client-observed ratio if stats fail.
  double hit_rate =
      ok > 0 ? static_cast<double>(cached) / static_cast<double>(ok) : 0.0;
  {
    std::string error;
    const int fd = ssr::serve::connect_local(opt.port, &error);
    if (fd >= 0) {
      ssr::serve::line_socket socket(fd);
      json_value request = json_value::object();
      request["type"] = "stats";
      request["id"] = std::uint64_t{0};
      const std::optional<json_value> response =
          roundtrip(socket, request, false);
      if (response.has_value() && response_ok(*response)) {
        if (const json_value* stats = response->find("stats")) {
          if (const json_value* cache = stats->find("cache")) {
            if (const json_value* rate = cache->find("hit_rate"))
              hit_rate = rate->as_double();
          }
        }
      }
    }
  }

  std::cout << "hammer: " << opt.hammer_clients << " clients x "
            << opt.requests_per_client << " requests: " << ok << " ok, "
            << failed << " failed, " << cached << " served from cache\n"
            << "  " << rps << " requests/s, cache hit rate " << hit_rate
            << '\n';

  std::optional<double> overhead;
  if (opt.overhead_probe > 0) {
    overhead = probe_telemetry_overhead(opt, opt.overhead_probe);
    if (overhead.has_value()) {
      std::cout << "  telemetry overhead (traced+profiled / plain, median "
                << "of " << opt.overhead_probe << "): " << *overhead << "x\n";
    } else {
      std::cerr << "warning: telemetry overhead probe failed\n";
    }
  }

  if (opt.write_json) {
    const json_value* n_field = opt.run.find("n");
    const std::uint64_t n = n_field != nullptr ? n_field->as_uint64() : 32;
    const json_value* seed_field = opt.run.find("seed");
    const std::uint64_t seed =
        seed_field != nullptr ? seed_field->as_uint64() : 1;
    std::string params = "clients=" + std::to_string(opt.hammer_clients) +
                         " requests=" +
                         std::to_string(opt.requests_per_client);

    ssr::obs::bench_report report;
    report.experiment = "SERVE";
    report.title = "ssr_serve load (client-observed latency, cache)";
    report.binary = "ssr_client";
    const json_value* engine_field = opt.run.find("engine");
    report.engine =
        engine_field != nullptr ? engine_field->as_string() : "direct";
    report.argv = opt.argv_copy;
    report.git_rev = ssr::obs::git_revision();
    report.generated_unix = static_cast<std::int64_t>(std::time(nullptr));
    report.wall_time_seconds = wall.count();
    report.add_samples("serve", "service", n, params,
                       static_cast<std::uint64_t>(latencies.size()), seed,
                       "ms", latencies);
    report.add_value("serve", "requests_per_second", "service", n, params,
                     rps, "1/s", /*higher_is_better=*/true);
    report.add_value("serve", "cache_hit_rate", "service", n, params,
                     hit_rate, "ratio", /*higher_is_better=*/true);
    if (overhead.has_value()) {
      report.add_value("serve", "telemetry_overhead", "service", n, params,
                       *overhead, "ratio", /*higher_is_better=*/false);
    }

    if (!opt.out_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(
          std::filesystem::path(opt.out_dir), ec);
    }
    const std::string path = ssr::obs::write_report(report, opt.out_dir);
    if (path.empty()) {
      std::cerr << "warning: could not write "
                << ssr::obs::report_filename(report.experiment)
                << " under '" << opt.out_dir << "'\n";
    } else {
      std::cout << "report: " << path << '\n';
    }
    if (!opt.history_dir.empty()) {
      std::string rev_dir = opt.history_dir;
      if (rev_dir.back() != '/') rev_dir += '/';
      rev_dir += report.git_rev;
      const std::string history_path =
          ssr::obs::write_report(report, rev_dir);
      if (history_path.empty()) {
        std::cerr << "warning: could not write history copy under '"
                  << rev_dir << "'\n";
      } else {
        std::cout << "history: " << history_path << '\n';
      }
    }
  }
  return failed == 0 && ok > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const cli_options opt = parse_args(argc, argv);
  switch (opt.mode) {
    case cli_options::mode_t::sweep:
      return run_sweep(opt);
    case cli_options::mode_t::hammer:
      return run_hammer(opt);
    default:
      return run_single(opt);
  }
}
