#include "protocols/silent_n_state.hpp"

#include "pp/assert.hpp"
#include "pp/random.hpp"

namespace ssr {

silent_n_state_ssr::silent_n_state_ssr(std::uint32_t n) : n_(n) {
  SSR_REQUIRE(n >= 2);
}

std::vector<silent_n_state_ssr::agent_state>
silent_n_state_ssr::lower_bound_configuration() const {
  // Two agents at rank 0, none at rank n-1, one everywhere else.
  std::vector<agent_state> config(n_);
  config[0].rank = 0;
  config[1].rank = 0;
  for (std::uint32_t i = 2; i < n_; ++i) config[i].rank = i - 1;
  return config;
}

accelerated_silent_n_state::accelerated_silent_n_state(
    std::uint32_t n, const std::vector<std::uint32_t>& ranks,
    std::uint64_t seed)
    : n_(n), count_(n, 0), rng_(seed) {
  SSR_REQUIRE(n >= 2);
  SSR_REQUIRE(ranks.size() == n);
  for (const std::uint32_t r : ranks) {
    SSR_REQUIRE(r < n);
    ++count_[r];
  }
  for (const std::uint64_t c : count_) {
    active_pairs_ += c * (c - (c > 0 ? 1 : 0));
    if (c > 1) collisions_ += c - 1;
  }
}

void accelerated_silent_n_state::step() {
  SSR_ASSERT(active_pairs_ > 0);
  const auto total_pairs =
      static_cast<double>(std::uint64_t{n_} * (n_ - 1));
  const double p = static_cast<double>(active_pairs_) / total_pairs;

  // Jump over the geometric run of null interactions, then perform the
  // non-null one.  Conditioned on being non-null, the interacting pair is
  // uniform over active ordered pairs, which (by symmetry within a rank)
  // reduces to choosing the rank r with probability c_r(c_r-1)/A.
  interactions_ += geometric_failures(rng_, p) + 1;

  std::uint64_t u = uniform_below(rng_, active_pairs_);
  std::uint32_t r = 0;
  for (;; ++r) {
    SSR_ASSERT(r < n_);
    const std::uint64_t c = count_[r];
    const std::uint64_t w = c > 1 ? c * (c - 1) : 0;
    if (u < w) break;
    u -= w;
  }

  const std::uint32_t s = r + 1 == n_ ? 0 : r + 1;
  // Move one agent from rank r to rank s, maintaining the active-pair count
  // A = sum c(c-1) and the collision count sum max(c-1, 0).
  const std::uint64_t cr = count_[r];
  const std::uint64_t cs = count_[s];
  active_pairs_ -= cr * (cr - 1);
  active_pairs_ -= cs > 0 ? cs * (cs - 1) : 0;
  if (cr > 1) --collisions_;
  if (cs >= 1) ++collisions_;
  count_[r] = cr - 1;
  count_[s] = cs + 1;
  active_pairs_ += (cr - 1) * (cr - 2);
  active_pairs_ += (cs + 1) * cs;
}

double accelerated_silent_n_state::run_to_stabilization() {
  while (!stable()) step();
  return static_cast<double>(interactions_) / static_cast<double>(n_);
}

}  // namespace ssr
