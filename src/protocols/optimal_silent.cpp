#include "protocols/optimal_silent.hpp"

#include <algorithm>

#include "pp/assert.hpp"

namespace ssr {

optimal_silent_ssr::tuning optimal_silent_ssr::tuning::defaults(
    std::uint32_t n) {
  tuning t;
  t.e_max = 20 * n;
  t.r_max = default_r_max(n);
  t.d_max = 8 * n;
  return t;
}

optimal_silent_ssr::optimal_silent_ssr(std::uint32_t n)
    : optimal_silent_ssr(n, tuning::defaults(n)) {}

optimal_silent_ssr::optimal_silent_ssr(std::uint32_t n, const tuning& params)
    : n_(n), params_(params) {
  SSR_REQUIRE(n >= 2);
  SSR_REQUIRE(params.e_max >= 1);
  SSR_REQUIRE(params.r_max >= 1);
  SSR_REQUIRE(params.d_max >= 1);
}

// Propagate-Reset customization: entering the Resetting role makes the agent
// a leader candidate (Section 4: "all agents set themselves to L upon
// entering the Resetting role"); Reset is Protocol 4.
struct optimal_silent_ssr::hooks {
  std::uint32_t e_max;

  bool is_resetting(const agent_state& s) const {
    return s.role == role_t::resetting;
  }
  reset_fields& fields(agent_state& s) const { return s.reset; }
  void enter_resetting(agent_state& s) const {
    s.role = role_t::resetting;
    s.leader = true;
    // Fields of the previous role are conceptually deleted on a role switch.
    s.rank = 0;
    s.children = 0;
    s.errorcount = 0;
  }
  // Protocol 4: the leader awakens Settled with rank 1; followers awaken
  // Unsettled with full patience.
  void reset(agent_state& s) const {
    if (s.leader) {
      s.role = role_t::settled;
      s.rank = 1;
      s.children = 0;
    } else {
      s.role = role_t::unsettled;
      s.errorcount = e_max;
    }
    s.reset = reset_fields{};
    s.leader = false;
  }
};

void optimal_silent_ssr::trigger_pair(agent_state& a, agent_state& b) const {
  const hooks h{params_.e_max};
  const reset_params rp{params_.r_max, params_.d_max};
  trigger_reset(a, rp, h);
  trigger_reset(b, rp, h);
}

bool optimal_silent_ssr::interact(agent_state& a, agent_state& b,
                                  rng_t&) const {
  const hooks h{params_.e_max};
  const reset_params rp{params_.r_max, params_.d_max};

  // Lines 1-4: resetting branch, including the dormant-phase slow leader
  // election L,L -> L,F.
  if (a.role == role_t::resetting || b.role == role_t::resetting) {
    propagate_reset(a, b, rp, h);
    if (a.role == role_t::resetting && b.role == role_t::resetting &&
        a.leader && b.leader) {
      b.leader = false;
    }
    return true;
  }

  // Lines 5-8: a rank collision proves the configuration is corrupt.
  if (a.role == role_t::settled && b.role == role_t::settled &&
      a.rank == b.rank) {
    trigger_pair(a, b);
    return true;
  }

  bool changed = false;

  // Lines 9-13: a Settled agent with a free child slot recruits an Unsettled
  // partner; the children of rank r are 2r and 2r+1.
  for (auto [i, j] : {std::pair<agent_state*, agent_state*>{&a, &b},
                      std::pair<agent_state*, agent_state*>{&b, &a}}) {
    if (i->role == role_t::settled && j->role == role_t::unsettled &&
        i->children < 2 &&
        2 * static_cast<std::uint64_t>(i->rank) + i->children <= n_) {
      j->role = role_t::settled;
      j->children = 0;
      j->rank = 2 * i->rank + i->children;
      j->errorcount = 0;
      ++i->children;
      changed = true;
    }
  }

  // Lines 14-19: Unsettled patience; running out proves no one is assigning
  // ranks (e.g. the rank-1 leader is absent) and triggers a reset.
  for (agent_state* i : {&a, &b}) {
    if (i->role != role_t::unsettled) continue;
    i->errorcount = i->errorcount > 0 ? i->errorcount - 1 : 0;
    changed = true;
    if (i->errorcount == 0) {
      trigger_pair(a, b);
      break;
    }
  }
  return changed;
}

std::vector<optimal_silent_ssr::agent_state>
optimal_silent_ssr::initial_configuration() const {
  agent_state s;
  s.role = role_t::unsettled;
  s.errorcount = params_.e_max;
  return std::vector<agent_state>(n_, s);
}

std::vector<optimal_silent_ssr::agent_state> optimal_silent_ssr::all_states()
    const {
  std::vector<agent_state> states;
  states.reserve(state_count(n_, params_));
  agent_state s;  // canonical zeroed baseline
  s.role = role_t::settled;
  for (std::uint32_t rank = 1; rank <= n_; ++rank) {
    for (std::uint8_t children = 0; children <= 2; ++children) {
      s.rank = rank;
      s.children = children;
      states.push_back(s);
    }
  }
  s = agent_state{};
  s.role = role_t::unsettled;
  for (std::uint32_t ec = 0; ec <= params_.e_max; ++ec) {
    s.errorcount = ec;
    states.push_back(s);
  }
  s = agent_state{};
  s.role = role_t::resetting;
  for (const bool leader : {false, true}) {
    s.leader = leader;
    // Propagating: delaytimer is pinned to D_max (never read until the
    // countdown reaches 0, at which point it is re-initialized).
    s.reset.delaytimer = params_.d_max;
    for (std::uint32_t rc = 1; rc <= params_.r_max; ++rc) {
      s.reset.resetcount = rc;
      states.push_back(s);
    }
    // Dormant: counting the delay down.
    s.reset.resetcount = 0;
    for (std::uint32_t delay = 0; delay <= params_.d_max; ++delay) {
      s.reset.delaytimer = delay;
      states.push_back(s);
    }
  }
  return states;
}

std::uint64_t optimal_silent_ssr::state_count(std::uint32_t n,
                                              const tuning& params) {
  // Roles partition the state space, so counts add (Section 2).
  const std::uint64_t settled = std::uint64_t{n} * 3;          // rank x children
  const std::uint64_t unsettled = params.e_max + std::uint64_t{1};
  // Resetting: leader x (propagating counts 1..R_max, or dormant with a
  // delay timer 0..D_max).
  const std::uint64_t resetting =
      2 * (std::uint64_t{params.r_max} + params.d_max + 1);
  return settled + unsettled + resetting;
}

}  // namespace ssr
