#include "protocols/initialized_ranking.hpp"

#include "pp/assert.hpp"

namespace ssr {

initialized_tree_ranking::initialized_tree_ranking(std::uint32_t n) : n_(n) {
  SSR_REQUIRE(n >= 2);
}

bool initialized_tree_ranking::interact(agent_state& a, agent_state& b,
                                        rng_t&) const {
  // Protocol 3 lines 9-13, and nothing else: a settled agent with a free
  // in-range child slot recruits an unsettled partner.
  for (auto [i, j] : {std::pair<agent_state*, agent_state*>{&a, &b},
                      std::pair<agent_state*, agent_state*>{&b, &a}}) {
    if (i->settled && !j->settled && i->children < 2 &&
        2 * static_cast<std::uint64_t>(i->rank) + i->children <= n_) {
      j->settled = true;
      j->children = 0;
      j->rank = 2 * i->rank + i->children;
      ++i->children;
      return true;
    }
  }
  return false;
}

std::vector<initialized_tree_ranking::agent_state>
initialized_tree_ranking::initial_configuration() const {
  std::vector<agent_state> config(n_);
  config[0].settled = true;
  config[0].rank = 1;
  config[0].children = 0;
  return config;
}

std::vector<initialized_tree_ranking::agent_state>
initialized_tree_ranking::all_states() const {
  std::vector<agent_state> states;
  states.reserve(state_count(n_));
  states.push_back(agent_state{});  // unsettled
  for (std::uint32_t rank = 1; rank <= n_; ++rank) {
    for (std::uint8_t children = 0; children <= 2; ++children) {
      agent_state s;
      s.settled = true;
      s.rank = rank;
      s.children = children;
      states.push_back(s);
    }
  }
  return states;
}

}  // namespace ssr
