// Protocol 2: Propagate-Reset, the resetting subprotocol shared by
// Optimal-Silent-SSR (Section 4) and Sublinear-Time-SSR (Section 5).
//
// When some agent detects an error it becomes *triggered*
// (resetcount = R_max).  The positive-resetcount ("propagating") condition
// spreads by epidemic while counting down; once an agent's count hits 0 it
// is *dormant* and waits out a delay timer, which gives the whole population
// time to become dormant before anyone wakes up (preventing an agent from
// waking twice during one reset).  The first agent whose delay expires
// executes Reset and is back to *computing*; computing agents then awaken
// the remaining dormant agents by epidemic.  Crucially, after Reset an agent
// retains no memory that a reset happened -- the adversary could fake any
// such marker (footnote 9 of the paper).
//
// The component is generic over the outer protocol's agent type via a hooks
// object; the outer protocol supplies role bookkeeping, the Reset routine
// (Protocols 4 and 6), and anything extra that must happen on entering the
// Resetting role (e.g. Optimal-Silent-SSR sets leader <- L).
//
// Parameters (Section 3): R_max = Omega(log n), concretely 60 ln n in the
// paper; D_max = Omega(R_max), Theta(log n) for Sublinear-Time-SSR and
// Theta(n) for Optimal-Silent-SSR (long enough for the dormant-phase slow
// leader election).
#pragma once

#include <algorithm>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <utility>

#include "pp/assert.hpp"

namespace ssr {

/// Fields carried by an agent in the Resetting role.
struct reset_fields {
  std::uint32_t resetcount = 0;  // {0, ..., R_max}; > 0 means propagating
  std::uint32_t delaytimer = 0;  // {0, ..., D_max}; used when resetcount == 0

  friend bool operator==(const reset_fields&, const reset_fields&) = default;
};

struct reset_params {
  std::uint32_t r_max = 1;
  std::uint32_t d_max = 1;
};

/// The paper's concrete choice R_max = 60 ln n, scaled by `factor` so
/// experiments can explore the constant.
inline std::uint32_t default_r_max(std::uint32_t n, double factor = 1.0) {
  const double v = 60.0 * factor * std::log(static_cast<double>(n));
  return std::max<std::uint32_t>(2, static_cast<std::uint32_t>(std::ceil(v)));
}

template <class Hooks, class Agent>
concept reset_hooks = requires(const Hooks& ch, Hooks& h, Agent& x,
                               const Agent& cx) {
  { ch.is_resetting(cx) } -> std::convertible_to<bool>;
  { h.fields(x) } -> std::same_as<reset_fields&>;
  // Switches x into the Resetting role (dropping the previous role's
  // fields); called both for triggered agents and for computing agents
  // pulled in by a propagating neighbor.
  h.enter_resetting(x);
  // Protocol-provided Reset routine; must leave x in a non-Resetting role.
  h.reset(x);
};

/// Puts `agent` into the triggered state (it has just detected an error and
/// initiates a global reset).
template <class Agent, reset_hooks<Agent> Hooks>
void trigger_reset(Agent& agent, const reset_params& params, Hooks&& hooks) {
  if (!hooks.is_resetting(agent)) hooks.enter_resetting(agent);
  hooks.fields(agent).resetcount = params.r_max;
  hooks.fields(agent).delaytimer = params.d_max;
}

/// Executes one Propagate-Reset interaction.  Precondition: at least one of
/// the two agents is in the Resetting role.  Returns true (the interaction
/// is never null: counters always move).
template <class Agent, reset_hooks<Agent> Hooks>
bool propagate_reset(Agent& a, Agent& b, const reset_params& params,
                     Hooks&& hooks) {
  Agent* x = &a;  // the Resetting agent of the pseudocode's signature
  Agent* y = &b;
  if (!hooks.is_resetting(*x)) std::swap(x, y);
  SSR_REQUIRE(hooks.is_resetting(*x));

  // Line 1-3: a propagating agent pulls a computing partner into the
  // Resetting role (dormant, full delay).
  if (hooks.fields(*x).resetcount > 0 && !hooks.is_resetting(*y)) {
    hooks.enter_resetting(*y);
    hooks.fields(*y).resetcount = 0;
    hooks.fields(*y).delaytimer = params.d_max;
  }

  // Pre-values feed the "resetcount just became 0" test below.
  const bool y_resetting = hooks.is_resetting(*y);
  const std::uint32_t pre_x = hooks.fields(*x).resetcount;
  const std::uint32_t pre_y = y_resetting ? hooks.fields(*y).resetcount : 0;

  // Line 4-5: both countdowns move to max(a.rc - 1, b.rc - 1, 0).
  if (y_resetting) {
    const std::uint32_t top = std::max(pre_x, pre_y);
    const std::uint32_t next = top > 0 ? top - 1 : 0;
    hooks.fields(*x).resetcount = next;
    hooks.fields(*y).resetcount = next;
    if (next > 0) {
      // A dormant agent re-infected by a propagating partner leaves the
      // dormant sub-role; per the paper the delaytimer field only exists
      // while resetcount = 0, so pin it (it is re-initialized on the next
      // transition to 0 in any case -- this keeps states canonical for the
      // exhaustive verifier).
      hooks.fields(*x).delaytimer = params.d_max;
      hooks.fields(*y).delaytimer = params.d_max;
    }
  }

  // Lines 6-12: dormant agents count down their delay and awaken, either by
  // timeout or by meeting a computing agent (awakening by epidemic).  The
  // partner's role is evaluated sequentially, i.e. an agent that just
  // executed Reset immediately awakens its partner.
  auto handle_dormant = [&](Agent& self, Agent& partner,
                            std::uint32_t pre_count) {
    if (!hooks.is_resetting(self) || hooks.fields(self).resetcount != 0)
      return;
    const bool just_became_zero =
        pre_count > 0 && hooks.fields(self).resetcount == 0;
    if (just_became_zero) {
      hooks.fields(self).delaytimer = params.d_max;
    } else if (hooks.fields(self).delaytimer > 0) {
      --hooks.fields(self).delaytimer;
    }
    if (hooks.fields(self).delaytimer == 0 || !hooks.is_resetting(partner)) {
      hooks.reset(self);
      SSR_ASSERT(!hooks.is_resetting(self));
    }
  };
  handle_dormant(*x, *y, pre_x);
  handle_dormant(*y, *x, pre_y);
  return true;
}

}  // namespace ssr
