#include "protocols/state_space.hpp"

#include <cmath>

#include "pp/assert.hpp"

namespace ssr {

std::uint64_t silent_n_state_states(std::uint32_t n) { return n; }

std::uint64_t optimal_silent_states(std::uint32_t n,
                                    const optimal_silent_ssr::tuning& t) {
  return optimal_silent_ssr::state_count(n, t);
}

double sublinear_state_bits(std::uint32_t n,
                            const sublinear_time_ssr::tuning& t) {
  SSR_REQUIRE(n >= 2);
  const double name_bits = t.name_bits + std::log2(t.name_bits + 1.0);
  // Roster: a subset of at most n names out of 2^{name_bits+1} possible
  // bitstrings; log2 C(2^b, <= n) ~ n * b for b = name_bits.
  const double roster_bits = static_cast<double>(n) * name_bits;
  // Tree: at most sum_{d=1..H} n^d nodes (each node's children carry
  // distinct names); each carries a name plus sync and timer on its edge.
  double tree_nodes = 0.0;
  double level = 1.0;
  for (std::uint32_t d = 1; d <= t.h; ++d) {
    level *= static_cast<double>(n);
    tree_nodes += level;
    if (tree_nodes > 1e300) break;  // saturate rather than overflow
  }
  const double per_node_bits =
      name_bits + std::log2(static_cast<double>(t.s_max)) +
      std::log2(static_cast<double>(t.t_h) + 1.0);
  const double tree_bits = tree_nodes * per_node_bits;
  // Resetting role: resetcount and delaytimer.
  const double reset_bits = std::log2(static_cast<double>(t.r_max) + 1.0) +
                            std::log2(static_cast<double>(t.d_max) + 1.0);
  const double rank_bits = std::log2(static_cast<double>(n) + 1.0);
  return name_bits + roster_bits + tree_bits + reset_bits + rank_bits + 1.0;
}

}  // namespace ssr
