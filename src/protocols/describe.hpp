// Human-readable rendering of agent states and configuration summaries,
// shared by the CLI driver, the examples and debugging sessions.
#pragma once

#include <span>
#include <string>

#include "protocols/loose_stabilizing.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"
#include "protocols/sublinear.hpp"

namespace ssr {

/// One-line rendering of a single agent state.
std::string describe(const silent_n_state_ssr& p,
                     const silent_n_state_ssr::agent_state& s);
std::string describe(const optimal_silent_ssr& p,
                     const optimal_silent_ssr::agent_state& s);
std::string describe(const sublinear_time_ssr& p,
                     const sublinear_time_ssr::agent_state& s);
std::string describe(const loose_stabilizing_le& p,
                     const loose_stabilizing_le::agent_state& s);

/// One-line population summary ("role counts, leaders, correctness"), for
/// periodic trace output.
std::string summarize_configuration(
    const silent_n_state_ssr& p,
    std::span<const silent_n_state_ssr::agent_state> config);
std::string summarize_configuration(
    const optimal_silent_ssr& p,
    std::span<const optimal_silent_ssr::agent_state> config);
std::string summarize_configuration(
    const sublinear_time_ssr& p,
    std::span<const sublinear_time_ssr::agent_state> config);
std::string summarize_configuration(
    const loose_stabilizing_le& p,
    std::span<const loose_stabilizing_le::agent_state> config);

}  // namespace ssr
