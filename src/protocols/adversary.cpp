#include "protocols/adversary.hpp"

#include <algorithm>

#include "pp/assert.hpp"
#include "pp/random.hpp"
#include "protocols/history_tree.hpp"

namespace ssr {
namespace {

using os_role = optimal_silent_ssr::role_t;
using os_state = optimal_silent_ssr::agent_state;
using sl_role = sublinear_time_ssr::role_t;
using sl_state = sublinear_time_ssr::agent_state;

os_state random_optimal_silent_state(const optimal_silent_ssr& protocol,
                                     rng_t& rng) {
  const auto& t = protocol.params();
  const std::uint32_t n = protocol.population_size();
  os_state s;
  switch (uniform_below(rng, 3)) {
    case 0:
      s.role = os_role::settled;
      s.rank = static_cast<std::uint32_t>(1 + uniform_below(rng, n));
      s.children = static_cast<std::uint8_t>(uniform_below(rng, 3));
      break;
    case 1:
      s.role = os_role::unsettled;
      s.errorcount =
          static_cast<std::uint32_t>(uniform_below(rng, t.e_max + 1));
      break;
    default:
      s.role = os_role::resetting;
      s.leader = coin_flip(rng);
      s.reset.resetcount =
          static_cast<std::uint32_t>(uniform_below(rng, t.r_max + 1));
      // The delaytimer field only exists in the dormant sub-role
      // (resetcount = 0); while propagating it is pinned to D_max (the
      // canonical dead value, cf. propagate_reset.hpp).
      s.reset.delaytimer =
          s.reset.resetcount == 0
              ? static_cast<std::uint32_t>(uniform_below(rng, t.d_max + 1))
              : t.d_max;
      break;
  }
  return s;
}

name_t random_short_name(rng_t& rng, std::uint32_t max_bits) {
  const auto len =
      static_cast<std::uint32_t>(uniform_below(rng, max_bits + 1));
  return random_name(rng, len);
}

/// A random simply-labelled tree over `pool` names, depth <= depth_limit.
/// Used for uniform-random and planted-history scenarios; the syncs and
/// timers are arbitrary, which is exactly what an adversary would plant.
tree_node random_tree(rng_t& rng, const name_t& root_name,
                      const std::vector<name_t>& pool,
                      std::uint32_t depth_limit,
                      const sublinear_time_ssr::tuning& t,
                      std::vector<name_t>& trail) {
  tree_node node;
  node.name = root_name;
  if (depth_limit == 0) return node;
  trail.push_back(root_name);
  for (const name_t& candidate : pool) {
    if (node.edges.size() >= 3) break;     // keep generated trees small
    if (!bernoulli(rng, 0.4)) continue;
    if (std::find(trail.begin(), trail.end(), candidate) != trail.end())
      continue;  // preserve simple labelling
    tree_edge e;
    e.sync = static_cast<std::uint32_t>(1 + uniform_below(rng, t.s_max));
    e.timer = static_cast<std::uint32_t>(uniform_below(rng, t.t_h + 1));
    e.child = random_tree(rng, candidate, pool, depth_limit - 1, t, trail);
    node.edges.push_back(std::move(e));
  }
  trail.pop_back();
  return node;
}

history_tree make_random_tree(rng_t& rng, const name_t& own,
                              const std::vector<name_t>& pool,
                              const sublinear_time_ssr::tuning& t) {
  history_tree tree(own);
  if (t.h == 0) return tree;
  std::vector<name_t> trail;
  tree_node root = random_tree(rng, own, pool, std::min(t.h, 3u), t, trail);
  // Rebuild through the public interface so invariants hold: graft each
  // child as a partner snapshot.
  history_tree out(own);
  for (tree_edge& e : root.edges) {
    history_tree partner;
    partner.reset(e.child.name);
    // temporarily wrap the subtree: copy children into partner via grafts
    // is equivalent; for adversarial purposes the one-level structure plus
    // random syncs is already the interesting part, so attach directly.
    out.graft_partner(partner, t.h - 1, e.sync, e.timer);
  }
  return out;
}

std::vector<name_t> sorted_unique(std::vector<name_t> names) {
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

}  // namespace

std::vector<silent_n_state_ssr::agent_state> adversarial_configuration(
    const silent_n_state_ssr& protocol, rng_t& rng) {
  const std::uint32_t n = protocol.population_size();
  std::vector<silent_n_state_ssr::agent_state> config(n);
  for (auto& s : config)
    s.rank = static_cast<std::uint32_t>(uniform_below(rng, n));
  return config;
}

std::vector<os_state> adversarial_configuration(
    const optimal_silent_ssr& protocol, optimal_silent_scenario scenario,
    rng_t& rng) {
  const std::uint32_t n = protocol.population_size();
  const auto& t = protocol.params();
  std::vector<os_state> config(n);

  switch (scenario) {
    case optimal_silent_scenario::uniform_random:
      for (auto& s : config) s = random_optimal_silent_state(protocol, rng);
      break;
    case optimal_silent_scenario::all_settled_rank_one:
      for (auto& s : config) {
        s.role = os_role::settled;
        s.rank = 1;
        s.children = 2;  // pretend the tree is already built
      }
      break;
    case optimal_silent_scenario::no_leader:
      // Ranks 2..n settled with full children counters (so nobody recruits)
      // plus one Unsettled agent.  No rank collision exists; the *only*
      // error signal is the Unsettled agent's patience running out, which
      // isolates the errorcount detection path.
      for (std::uint32_t i = 0; i + 1 < n; ++i) {
        config[i].role = os_role::settled;
        config[i].rank = i + 2;
        config[i].children = 2;
      }
      config[n - 1].role = os_role::unsettled;
      config[n - 1].errorcount = t.e_max;
      break;
    case optimal_silent_scenario::all_unsettled_expired:
      for (auto& s : config) {
        s.role = os_role::unsettled;
        s.errorcount = 0;
      }
      break;
    case optimal_silent_scenario::all_dormant_followers:
      for (auto& s : config) {
        s.role = os_role::resetting;
        s.leader = false;
        s.reset.resetcount = 0;
        s.reset.delaytimer = static_cast<std::uint32_t>(
            uniform_below(rng, t.d_max) + 1);
      }
      break;
    case optimal_silent_scenario::duplicated_ranks:
      for (std::uint32_t i = 0; i < n; ++i) {
        config[i].role = os_role::settled;
        config[i].rank = i / 2 + 1;  // each rank held twice
        config[i].children = static_cast<std::uint8_t>(uniform_below(rng, 3));
      }
      break;
    case optimal_silent_scenario::valid_ranking:
      for (std::uint32_t i = 0; i < n; ++i) {
        config[i].role = os_role::settled;
        config[i].rank = i + 1;
        const std::uint64_t first_child = 2ull * (i + 1);
        config[i].children = first_child + 1 <= n ? 2
                             : first_child <= n  ? 1
                                                 : 0;
      }
      break;
  }
  return config;
}

std::string to_string(optimal_silent_scenario scenario) {
  switch (scenario) {
    case optimal_silent_scenario::uniform_random: return "uniform_random";
    case optimal_silent_scenario::all_settled_rank_one:
      return "all_settled_rank_one";
    case optimal_silent_scenario::no_leader: return "no_leader";
    case optimal_silent_scenario::all_unsettled_expired:
      return "all_unsettled_expired";
    case optimal_silent_scenario::all_dormant_followers:
      return "all_dormant_followers";
    case optimal_silent_scenario::duplicated_ranks: return "duplicated_ranks";
    case optimal_silent_scenario::valid_ranking: return "valid_ranking";
  }
  return "unknown";
}

std::vector<sl_state> adversarial_configuration(
    const sublinear_time_ssr& protocol, sublinear_scenario scenario,
    rng_t& rng) {
  const std::uint32_t n = protocol.population_size();
  const auto& t = protocol.params();
  std::vector<sl_state> config(n);

  // A pool of names used to fill rosters and trees.
  std::vector<name_t> pool;
  for (std::uint32_t i = 0; i < n + 2; ++i)
    pool.push_back(random_name(rng, t.name_bits));
  pool = sorted_unique(pool);

  auto fresh_collecting = [&](sl_state& s, const name_t& name) {
    s.role = sl_role::collecting;
    s.name = name;
    s.roster.assign(1, name);
    s.tree.reset(name);
    s.rank = 0;
  };

  switch (scenario) {
    case sublinear_scenario::uniform_random:
      for (auto& s : config) {
        if (bernoulli(rng, 0.7)) {
          s.role = sl_role::collecting;
          s.name = random_short_name(rng, t.name_bits);
          // Random roster: random subset of the pool, possibly without the
          // agent's own name.
          std::vector<name_t> roster;
          for (const name_t& candidate : pool)
            if (bernoulli(rng, 0.3)) roster.push_back(candidate);
          if (bernoulli(rng, 0.5)) roster.push_back(s.name);
          roster = sorted_unique(roster);
          if (roster.size() > n) roster.resize(n);
          if (roster.empty()) roster.push_back(s.name);
          s.roster = std::move(roster);
          s.rank = static_cast<std::uint32_t>(uniform_below(rng, n + 1));
          s.tree = make_random_tree(rng, s.name, pool, t);
        } else {
          s.role = sl_role::resetting;
          s.name = random_short_name(rng, t.name_bits);
          s.reset.resetcount =
              static_cast<std::uint32_t>(uniform_below(rng, t.r_max + 1));
          s.reset.delaytimer =
              static_cast<std::uint32_t>(uniform_below(rng, t.d_max + 1));
        }
      }
      break;
    case sublinear_scenario::all_same_name: {
      const name_t shared = random_name(rng, t.name_bits);
      for (auto& s : config) fresh_collecting(s, shared);
      break;
    }
    case sublinear_scenario::single_collision: {
      // n-1 distinct names, the first duplicated onto two agents.  Every
      // roster holds exactly those n-1 names: unions never exceed n-1, so
      // neither the ghost check nor the roster-size check can fire and the
      // only way back to correctness is detecting the collision itself.
      std::vector<name_t> names;
      while (names.size() < n - 1) {
        names.push_back(random_name(rng, t.name_bits));
        names = sorted_unique(std::move(names));
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        auto& s = config[i];
        s.role = sl_role::collecting;
        s.name = names[i == 0 ? 0 : i - 1];  // agents 0 and 1 collide
        s.roster = names;
        s.tree.reset(s.name);
        s.rank = 0;
      }
      break;
    }
    case sublinear_scenario::ghost_names: {
      // Unique real names plus ghosts planted in every roster.
      for (std::uint32_t i = 0; i < n; ++i)
        fresh_collecting(config[i], pool[i % pool.size()]);
      std::vector<name_t> ghosts;
      for (int g = 0; g < 3; ++g)
        ghosts.push_back(random_name(rng, t.name_bits));
      for (auto& s : config) {
        std::vector<name_t> padded = s.roster;
        padded.insert(padded.end(), ghosts.begin(), ghosts.end());
        s.roster = sorted_unique(std::move(padded));
      }
      break;
    }
    case sublinear_scenario::missing_own_name:
      for (std::uint32_t i = 0; i < n; ++i) {
        fresh_collecting(config[i], pool[i % pool.size()]);
        // Roster filled with *other* agents' names only.
        std::vector<name_t> roster;
        for (std::uint32_t k = 0; k < n; ++k)
          if (k != i % pool.size()) roster.push_back(pool[k % pool.size()]);
        config[i].roster = sorted_unique(std::move(roster));
      }
      break;
    case sublinear_scenario::planted_histories:
      for (std::uint32_t i = 0; i < n; ++i) {
        fresh_collecting(config[i], pool[i % pool.size()]);
        config[i].tree = make_random_tree(rng, config[i].name, pool, t);
      }
      break;
    case sublinear_scenario::mid_reset:
      for (std::uint32_t i = 0; i < n; ++i) {
        auto& s = config[i];
        s.role = sl_role::resetting;
        if (i % 3 == 0) {
          s.reset.resetcount = t.r_max;
          s.reset.delaytimer = t.d_max;
          s.name = name_t{};
        } else if (i % 3 == 1) {
          s.reset.resetcount = 0;
          s.reset.delaytimer = static_cast<std::uint32_t>(
              1 + uniform_below(rng, t.d_max));
          s.name = random_short_name(rng, t.name_bits);
        } else {
          fresh_collecting(s, pool[i % pool.size()]);
        }
      }
      break;
    case sublinear_scenario::valid_ranking: {
      std::vector<name_t> names;
      while (names.size() < n) {
        names.push_back(random_name(rng, t.name_bits));
        names = sorted_unique(std::move(names));
      }
      for (std::uint32_t i = 0; i < n; ++i) {
        auto& s = config[i];
        s.role = sl_role::collecting;
        s.name = names[i];
        s.roster = names;
        s.tree.reset(s.name);
        s.rank = i + 1;
      }
      break;
    }
  }
  return config;
}

std::string to_string(sublinear_scenario scenario) {
  switch (scenario) {
    case sublinear_scenario::uniform_random: return "uniform_random";
    case sublinear_scenario::all_same_name: return "all_same_name";
    case sublinear_scenario::single_collision: return "single_collision";
    case sublinear_scenario::ghost_names: return "ghost_names";
    case sublinear_scenario::missing_own_name: return "missing_own_name";
    case sublinear_scenario::planted_histories: return "planted_histories";
    case sublinear_scenario::mid_reset: return "mid_reset";
    case sublinear_scenario::valid_ranking: return "valid_ranking";
  }
  return "unknown";
}

}  // namespace ssr
