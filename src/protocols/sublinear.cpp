#include "protocols/sublinear.hpp"

#include <algorithm>
#include <cmath>

#include "pp/assert.hpp"
#include "pp/random.hpp"

namespace ssr {

sublinear_time_ssr::tuning sublinear_time_ssr::tuning::defaults(
    std::uint32_t n, std::uint32_t h) {
  SSR_REQUIRE(n >= 2);
  tuning t;
  t.h = h;
  t.name_bits = full_name_bits(n);
  t.s_max = n * n;
  t.r_max = default_r_max(n);
  const double ln_n = std::log(static_cast<double>(n));
  // The dormant delay must cover generating all name bits plus the
  // Theta(log n) spread of dormancy onsets across the population.
  t.d_max = t.name_bits +
            static_cast<std::uint32_t>(std::ceil(10.0 * ln_n)) + 4;
  if (h == 0) {
    t.t_h = 1;  // no trees: timer unused
  } else {
    const double log2_n = std::log2(static_cast<double>(n));
    if (h + 1 >= static_cast<std::uint32_t>(std::ceil(log2_n))) {
      // H = Theta(log n) regime: T_H = Theta(log n).  The constant trades
      // detection latency against tree size (memory and per-interaction
      // cost both scale with the number of unexpired histories, roughly
      // T_H^H); 5 ln n is validated by the detection-latency tests and the
      // no-false-positive property test.
      t.t_h = static_cast<std::uint32_t>(std::ceil(5.0 * ln_n)) + 5;
    } else {
      // Constant-H regime: T_H = Theta(H * n^{1/(H+1)}) = Theta(tau_{H+1}).
      const double per = std::pow(static_cast<double>(n),
                                  1.0 / static_cast<double>(h + 1));
      t.t_h = static_cast<std::uint32_t>(std::ceil(6.0 * (h + 1) * per));
    }
  }
  // Keep expired records around for extra timer windows so the responding
  // side of Check-Path-Consistency still holds its matching records even
  // when the responder's interaction clock runs ahead of the asker's
  // (simulation-only; see history_tree.hpp).
  t.prune_retention = 2 * std::int64_t{t.t_h};
  return t;
}

sublinear_time_ssr::sublinear_time_ssr(std::uint32_t n, const tuning& params)
    : n_(n), params_(params) {
  SSR_REQUIRE(n >= 2);
  SSR_REQUIRE(params.s_max >= 2);
  SSR_REQUIRE(params.r_max >= 1);
  SSR_REQUIRE(params.d_max >= params.name_bits);
}

sublinear_time_ssr::sublinear_time_ssr(std::uint32_t n, std::uint32_t h)
    : sublinear_time_ssr(n, tuning::defaults(n, h)) {}

struct sublinear_time_ssr::hooks {
  bool is_resetting(const agent_state& s) const {
    return s.role == role_t::resetting;
  }
  reset_fields& fields(agent_state& s) const { return s.reset; }
  void enter_resetting(agent_state& s) const {
    s.role = role_t::resetting;
    // Collecting fields are deleted on the role switch; the name survives
    // and is cleared separately while the reset propagates (lines 12-13).
    s.rank = 0;
    s.roster.clear();
    s.tree.reset(name_t{});
  }
  // Protocol 6: restart collection from the freshly generated name.
  void reset(agent_state& s) const {
    s.role = role_t::collecting;
    s.roster.assign(1, s.name);
    s.tree.reset(s.name);
    s.reset = reset_fields{};
    // rank keeps its (arbitrary) value per the paper's field semantics; we
    // use 0 ("not yet set") so measurements never see a stale rank.
  }
};

void sublinear_time_ssr::trigger_pair(agent_state& a, agent_state& b) const {
  const hooks h;
  const reset_params rp{params_.r_max, params_.d_max};
  trigger_reset(a, rp, h);
  trigger_reset(b, rp, h);
}

bool sublinear_time_ssr::name_collision_detected(const agent_state& a,
                                                 const agent_state& b) const {
  // Direct check (DESIGN.md completion #3): two interacting agents with the
  // same name *are* a collision; the trees cannot express it because each
  // prunes nodes labelled with its own name.  This alone is the paper's
  // H = 0 "direct collision detection" variant.
  if (a.name == b.name) return true;
  if (params_.h == 0) return false;
  // Protocol 7 lines 1-4, both directions.
  return a.tree.detects_collision_against(b.name, b.tree) ||
         b.tree.detects_collision_against(a.name, a.tree);
}

bool sublinear_time_ssr::interact(agent_state& a, agent_state& b,
                                  rng_t& rng) const {
  if (a.role == role_t::collecting && b.role == role_t::collecting) {
    // Role invariant: a clean Reset establishes name ∈ roster and unions
    // preserve it; violation proves a corrupt configuration (and without
    // this check a name missing from every roster deadlocks the protocol --
    // see the header).
    const auto holds_own_name = [](const agent_state& s) {
      return std::binary_search(s.roster.begin(), s.roster.end(), s.name);
    };
    if (!holds_own_name(a) || !holds_own_name(b)) {
      trigger_pair(a, b);
      return true;
    }

    if (name_collision_detected(a, b)) {  // Protocol 5 line 2
      trigger_pair(a, b);
      return true;
    }

    bool changed = false;
    if (params_.h >= 1) {
      // Protocol 7 lines 5-14: one shared sync value, mutual grafts from
      // pre-interaction snapshots, own-name scrubbing, timer aging.
      const auto sync = static_cast<std::uint32_t>(
          1 + uniform_below(rng, params_.s_max));
      const history_tree a_before = a.tree;
      a.tree.graft_partner(b.tree, params_.h - 1, sync, params_.t_h);
      b.tree.graft_partner(a_before, params_.h - 1, sync, params_.t_h);
      a.tree.remove_named_subtrees(a.name);
      b.tree.remove_named_subtrees(b.name);
      a.tree.age_edges(params_.prune_retention);
      b.tree.age_edges(params_.prune_retention);
      changed = true;
    }

    // Protocol 5 lines 2 and 5-9: ghost-name check, roster merge, rank
    // assignment once all n names are collected.
    if (union_size(a.roster, b.roster) > n_) {
      trigger_pair(a, b);
      return true;
    }
    std::vector<name_t> merged = roster_union(a.roster, b.roster);
    if (merged != a.roster || merged != b.roster) changed = true;
    a.roster = merged;
    b.roster = std::move(merged);
    if (a.roster.size() == n_) {
      const std::uint32_t ra = a.rank;
      const std::uint32_t rb = b.rank;
      assign_ranks(a, b);
      if (a.rank != ra || b.rank != rb) changed = true;
    }
    return changed;
  }

  // Some agent is Resetting: Protocol 5 lines 10-15.
  const hooks h;
  const reset_params rp{params_.r_max, params_.d_max};
  propagate_reset(a, b, rp, h);
  for (agent_state* i : {&a, &b}) {
    if (i->role == role_t::resetting && i->reset.resetcount > 0) {
      i->name = name_t{};  // clear names while propagating the reset signal
    }
  }
  for (agent_state* i : {&a, &b}) {
    if (i->role == role_t::resetting && i->reset.resetcount == 0 &&
        i->name.length() < params_.name_bits) {
      i->name.append_bit(coin_flip(rng));  // can be derandomized
    }
  }
  return true;
}

void sublinear_time_ssr::assign_ranks(agent_state& a, agent_state& b) const {
  for (agent_state* i : {&a, &b}) {
    const auto it =
        std::lower_bound(i->roster.begin(), i->roster.end(), i->name);
    SSR_ASSERT(it != i->roster.end() && *it == i->name);
    i->rank = static_cast<std::uint32_t>(it - i->roster.begin()) + 1;
  }
}

std::vector<sublinear_time_ssr::agent_state>
sublinear_time_ssr::initial_configuration(rng_t& rng) const {
  std::vector<agent_state> config(n_);
  for (agent_state& s : config) {
    s.role = role_t::collecting;
    s.name = random_name(rng, params_.name_bits);
    s.roster.assign(1, s.name);
    s.tree.reset(s.name);
    s.rank = 0;
  }
  return config;
}

std::size_t union_size(const std::vector<name_t>& a,
                       const std::vector<name_t>& b) {
  std::size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++ia;
      ++ib;
    }
    ++count;
  }
  count += static_cast<std::size_t>(a.end() - ia);
  count += static_cast<std::size_t>(b.end() - ib);
  return count;
}

std::vector<name_t> roster_union(const std::vector<name_t>& a,
                                 const std::vector<name_t>& b) {
  std::vector<name_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace ssr
