// Loosely-stabilizing leader election (the relaxation discussed in the
// paper's "Problem variants" and Conclusion sections, after Sudo et al.
// [56]): from any configuration a unique leader emerges quickly, but is
// only guaranteed to *persist* for a long expected holding time rather than
// forever.
//
// The protocol is the classical timeout scheme:
//   * every agent carries timer in {0..T}; a leader pins its own timer to T;
//   * when two agents meet, both adopt max(timers) - 1 (the leader's
//     heartbeat radiates by epidemic, losing 1 per hop/step);
//   * two leaders meeting demote the responder (l,l -> l,f);
//   * an agent whose timer reaches 0 concludes the leader is gone and
//     promotes itself.
//
// With T = c log n the convergence time is O(T) = O(log n) and the holding
// time grows exponentially in c (a follower must go ~T interactions without
// hearing a recent heartbeat) -- the trade bench_loose.cpp measures.  The
// state count is 2(T+1) = Theta(log n), far below the n-state bound of
// Theorem 2.1: no contradiction, because loose stabilization is strictly
// weaker than self-stabilization (the unique leader *does* eventually
// wobble; the paper's protocols never do).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pp/rng.hpp"

namespace ssr {

class loose_stabilizing_le {
 public:
  struct agent_state {
    bool leader = false;
    std::uint32_t timer = 0;  // {0..t_max}

    friend bool operator==(const agent_state&, const agent_state&) = default;
  };

  loose_stabilizing_le(std::uint32_t n, std::uint32_t t_max);

  std::uint32_t population_size() const { return n_; }
  std::uint32_t t_max() const { return t_max_; }

  bool interact(agent_state& a, agent_state& b, rng_t&) const;

  /// Leader-election output (this protocol does not solve ranking; the
  /// paper notes loose stabilization is a relaxation precisely because
  /// Theorem 2.1 forbids true SSLE in o(n) states).
  bool is_leader(const agent_state& s) const { return s.leader; }

  std::size_t leader_count(std::span<const agent_state> config) const;

  /// 2 (T + 1) states.
  static std::uint64_t state_count(std::uint32_t t_max) {
    return 2ull * (t_max + 1);
  }

  /// The full state inventory (leader x timer), for exhaustive
  /// verification and the protocol linter.  Size = state_count(t_max()).
  std::vector<agent_state> all_states() const {
    std::vector<agent_state> states;
    states.reserve(state_count(t_max_));
    for (const bool leader : {false, true}) {
      for (std::uint32_t t = 0; t <= t_max_; ++t) {
        states.push_back({leader, t});
      }
    }
    return states;
  }

  /// All-followers with zero timers: the worst case (no heartbeat anywhere).
  std::vector<agent_state> dead_configuration() const {
    return std::vector<agent_state>(n_);
  }

 private:
  std::uint32_t n_;
  std::uint32_t t_max_;
};

}  // namespace ssr
