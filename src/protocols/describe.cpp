#include "protocols/describe.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>

#include "pp/protocol.hpp"

namespace ssr {
namespace {

std::string correctness_tag(bool correct) {
  return correct ? "VALID RANKING" : "not yet valid";
}

}  // namespace

std::string describe(const silent_n_state_ssr& p,
                     const silent_n_state_ssr::agent_state& s) {
  std::ostringstream os;
  os << "rank=" << p.rank_of(s);
  return os.str();
}

std::string describe(const optimal_silent_ssr&,
                     const optimal_silent_ssr::agent_state& s) {
  std::ostringstream os;
  switch (s.role) {
    case optimal_silent_ssr::role_t::settled:
      os << "Settled{rank=" << s.rank
         << ", children=" << static_cast<int>(s.children) << "}";
      break;
    case optimal_silent_ssr::role_t::unsettled:
      os << "Unsettled{errorcount=" << s.errorcount << "}";
      break;
    case optimal_silent_ssr::role_t::resetting:
      os << "Resetting{" << (s.leader ? "L" : "F")
         << ", resetcount=" << s.reset.resetcount
         << ", delaytimer=" << s.reset.delaytimer << "}";
      break;
  }
  return os.str();
}

std::string describe(const sublinear_time_ssr&,
                     const sublinear_time_ssr::agent_state& s) {
  std::ostringstream os;
  if (s.role == sublinear_time_ssr::role_t::collecting) {
    os << "Collecting{name=" << s.name.to_string() << ", |roster|="
       << s.roster.size() << ", rank=" << s.rank
       << ", tree_nodes=" << s.tree.node_count() << "}";
  } else {
    os << "Resetting{name=" << s.name.to_string()
       << ", resetcount=" << s.reset.resetcount
       << ", delaytimer=" << s.reset.delaytimer << "}";
  }
  return os.str();
}

std::string describe(const loose_stabilizing_le&,
                     const loose_stabilizing_le::agent_state& s) {
  std::ostringstream os;
  os << (s.leader ? "Leader" : "Follower") << "{timer=" << s.timer << "}";
  return os.str();
}

std::string summarize_configuration(
    const silent_n_state_ssr& p,
    std::span<const silent_n_state_ssr::agent_state> config) {
  std::map<std::uint32_t, int> rank_counts;
  for (const auto& s : config) ++rank_counts[s.rank];
  std::size_t collisions = 0;
  for (const auto& [rank, count] : rank_counts)
    collisions += count > 1 ? count - 1 : 0;
  std::ostringstream os;
  os << config.size() << " agents, " << rank_counts.size()
     << " distinct ranks, " << collisions << " colliding; "
     << correctness_tag(is_valid_ranking(p, config));
  return os.str();
}

std::string summarize_configuration(
    const optimal_silent_ssr& p,
    std::span<const optimal_silent_ssr::agent_state> config) {
  int settled = 0, unsettled = 0, resetting = 0, leaders = 0;
  for (const auto& s : config) {
    switch (s.role) {
      case optimal_silent_ssr::role_t::settled: ++settled; break;
      case optimal_silent_ssr::role_t::unsettled: ++unsettled; break;
      case optimal_silent_ssr::role_t::resetting:
        ++resetting;
        leaders += s.leader ? 1 : 0;
        break;
    }
  }
  std::ostringstream os;
  os << settled << " settled / " << unsettled << " unsettled / " << resetting
     << " resetting";
  if (resetting > 0) os << " (" << leaders << " leader candidates)";
  os << "; " << correctness_tag(is_valid_ranking(p, config));
  return os.str();
}

std::string summarize_configuration(
    const sublinear_time_ssr& p,
    std::span<const sublinear_time_ssr::agent_state> config) {
  int collecting = 0, resetting = 0, ranked = 0;
  std::size_t max_roster = 0, total_nodes = 0;
  for (const auto& s : config) {
    if (s.role == sublinear_time_ssr::role_t::collecting) {
      ++collecting;
      ranked += s.rank > 0 ? 1 : 0;
      max_roster = std::max(max_roster, s.roster.size());
      total_nodes += s.tree.node_count();
    } else {
      ++resetting;
    }
  }
  std::ostringstream os;
  os << collecting << " collecting (" << ranked << " ranked, max roster "
     << max_roster << ", " << total_nodes << " tree nodes) / " << resetting
     << " resetting; " << correctness_tag(is_valid_ranking(p, config));
  return os.str();
}

std::string summarize_configuration(
    const loose_stabilizing_le& p,
    std::span<const loose_stabilizing_le::agent_state> config) {
  std::uint32_t min_timer = UINT32_MAX;
  for (const auto& s : config) min_timer = std::min(min_timer, s.timer);
  std::ostringstream os;
  const std::size_t leaders = p.leader_count(config);
  os << leaders << " leader(s), min timer " << min_timer << "; "
     << (leaders == 1 ? "converged" : "not converged");
  return os.str();
}

}  // namespace ssr
