// Protocols 3+4: Optimal-Silent-SSR (Section 4), the linear-time,
// linear-state, silent self-stabilizing ranking protocol.
//
// Agents are in one of three roles:
//   Settled    -- holds rank in {1..n} and children in {0,1,2}
//   Unsettled  -- holds errorcount in {0..E_max}, waiting for a rank
//   Resetting  -- Propagate-Reset fields plus leader in {L, F}
//
// Errors trigger a global Propagate-Reset in two situations: (1) two Settled
// agents hold the same rank (detected on direct interaction), and (2) an
// Unsettled agent fails to receive a rank within E_max = Theta(n) of its own
// interactions.  During the Theta(n)-long dormant phase of the reset, slow
// leader election L,L -> L,F runs among the Resetting agents, so upon
// awakening there is a unique leader with constant probability (retried via
// a fresh reset on failure).  Reset (Protocol 4) makes the leader Settled
// with rank 1 and everyone else Unsettled; the Settled agents then assign
// ranks along a full binary tree: the children of rank r are 2r and 2r+1
// (Figure 1), which completes in Theta(n) time level by level.
//
// Complexity (Theorem 4.1, Corollary 4.2): O(n) states, O(n) expected time,
// O(n log n) time WHP, and the protocol is silent -- in a correct
// configuration every agent is Settled with a distinct rank, and no rule
// applies (rank collisions need equal ranks, recruitment needs an Unsettled
// partner, and only Unsettled/Resetting agents have counters), so
// correctness and silence coincide.
//
// Deviation from the paper's pseudocode (see DESIGN.md): line 10 guards
// recruitment with "2*rank + children < n", under which rank n is never
// assigned and the last Unsettled agent would time out forever; we use
// "<= n", matching the prose ("each agent knows whether its rank corresponds
// to a node with 0, 1, or 2 children in the full binary tree with n nodes").
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "pp/protocol.hpp"
#include "pp/rng.hpp"
#include "protocols/propagate_reset.hpp"

namespace ssr {

class optimal_silent_ssr {
 public:
  enum class role_t : std::uint8_t { settled, unsettled, resetting };

  struct tuning {
    std::uint32_t e_max = 0;  // Unsettled patience, Theta(n)
    std::uint32_t r_max = 0;  // Propagate-Reset countdown, Theta(log n)
    std::uint32_t d_max = 0;  // dormant delay, Theta(n)

    /// Defaults validated in EXPERIMENTS.md: E_max = 20n, R_max = 60 ln n,
    /// D_max = 8n.
    static tuning defaults(std::uint32_t n);
  };

  struct agent_state {
    role_t role = role_t::unsettled;
    // Settled fields.
    std::uint32_t rank = 0;       // {1..n}
    std::uint8_t children = 0;    // {0,1,2}
    // Unsettled fields.
    std::uint32_t errorcount = 0; // {0..E_max}
    // Resetting fields.
    bool leader = false;          // leader in {L, F}; true = L
    reset_fields reset;

    friend bool operator==(const agent_state&, const agent_state&) = default;
  };

  explicit optimal_silent_ssr(std::uint32_t n);
  optimal_silent_ssr(std::uint32_t n, const tuning& params);

  std::uint32_t population_size() const { return n_; }
  const tuning& params() const { return params_; }

  bool interact(agent_state& a, agent_state& b, rng_t& rng) const;

  std::uint32_t rank_of(const agent_state& s) const {
    return s.role == role_t::settled ? s.rank : 0;
  }

  /// Batched-engine partition (pp/engine.hpp): Settled agents are keyed by
  /// rank.  Two Settled agents with distinct ranks interact nully in both
  /// orders: rank collisions need equal ranks, recruitment needs an
  /// Unsettled partner, and only Unsettled/Resetting agents carry moving
  /// counters.  Everyone else is volatile -- any interaction touching an
  /// Unsettled or Resetting agent moves a counter and is non-null.  Settled
  /// states with an out-of-range rank are conservatively volatile.
  std::uint32_t batch_key_count() const { return n_; }
  std::uint32_t batch_key(const agent_state& s) const {
    if (s.role != role_t::settled) return batch_volatile_key;
    return s.rank >= 1 && s.rank <= n_ ? s.rank - 1 : batch_volatile_key;
  }

  /// Phase instrumentation (obs/trace.hpp): the protocol's observable
  /// phases, splitting Resetting into its propagating (resetcount > 0) and
  /// dormant (resetcount == 0, leader election running) stages so traces
  /// show the reset pipeline the paper's Section 4 analysis is about.
  std::uint32_t obs_phase_count() const { return 4; }
  std::uint32_t obs_phase(const agent_state& s) const {
    switch (s.role) {
      case role_t::settled:
        return 0;
      case role_t::unsettled:
        return 1;
      case role_t::resetting:
        return s.reset.resetcount > 0 ? 2 : 3;
    }
    return 1;
  }
  static std::string_view obs_phase_name(std::uint32_t phase) {
    constexpr std::string_view names[] = {"settled", "unsettled",
                                          "resetting_propagating",
                                          "resetting_dormant"};
    return phase < 4 ? names[phase] : "unknown";
  }
  static bool obs_phase_is_reset(std::uint32_t phase) {
    return phase == 2 || phase == 3;
  }

  /// Clean start: every agent Unsettled with full patience.  The protocol is
  /// self-stabilizing, so this is only a convenience (it exercises the
  /// errorcount -> reset -> leader election -> tree ranking pipeline).
  std::vector<agent_state> initial_configuration() const;

  /// Number of reachable states: |Settled| + |Unsettled| + |Resetting|
  /// (roles partition the state space; Section 2, "Pseudocode
  /// conventions").
  static std::uint64_t state_count(std::uint32_t n, const tuning& params);

  /// The full canonical state inventory (fields of inactive roles zeroed,
  /// delaytimer pinned to D_max while propagating -- the invariants the
  /// transition function maintains), for exhaustive verification
  /// (verify/reachability.hpp).  Size = state_count(n, params).
  std::vector<agent_state> all_states() const;

 private:
  struct hooks;  // Propagate-Reset customization (defined in .cpp)

  void trigger_pair(agent_state& a, agent_state& b) const;

  std::uint32_t n_;
  tuning params_;
};

}  // namespace ssr
