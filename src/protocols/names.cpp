#include "protocols/names.hpp"

#include <bit>

namespace ssr {

std::string name_t::to_string() const {
  if (empty()) return "ε";
  std::string out;
  out.reserve(length());
  for (std::uint32_t i = 0; i < length(); ++i) {
    const std::uint32_t shift = length() - 1 - i;
    out.push_back(((bits_ >> shift) & 1) ? '1' : '0');
  }
  return out;
}

std::uint32_t full_name_bits(std::uint32_t n) {
  SSR_REQUIRE(n >= 2);
  const auto log2n = static_cast<std::uint32_t>(std::bit_width(n - 1));
  const std::uint32_t bits = 3 * log2n;
  SSR_REQUIRE(bits <= name_t::max_bits);
  return bits;
}

name_t random_name(rng_t& rng, std::uint32_t bits) {
  name_t name;
  for (std::uint32_t i = 0; i < bits; ++i) name.append_bit(coin_flip(rng));
  return name;
}

}  // namespace ssr
