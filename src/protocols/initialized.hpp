// The classic *initialized* (non-self-stabilizing) leader election protocol,
// included as a contrast baseline (Section 1, "Reliable leader election"):
//
//     (l, l) -> (l, f)
//
// From the designated all-leaders initial configuration it elects a unique
// leader with one bit of memory per agent -- but it is NOT self-stabilizing:
// from the all-followers configuration (one transient fault away) no leader
// can ever be created.  Theorem 2.1 shows this is not fixable with fewer
// than n states.  tests/initialized_test.cpp and the nonuniformity tests
// reproduce both facts.
#pragma once

#include <cstdint>
#include <vector>

#include "pp/rng.hpp"

namespace ssr {

class initialized_leader_election {
 public:
  struct agent_state {
    bool leader = true;

    friend bool operator==(const agent_state&, const agent_state&) = default;
  };

  explicit initialized_leader_election(std::uint32_t n) : n_(n) {}

  std::uint32_t population_size() const { return n_; }

  bool interact(agent_state& a, agent_state& b, rng_t&) const {
    if (a.leader && b.leader) {
      b.leader = false;
      return true;
    }
    return false;
  }

  /// Degenerate rank map so the measurement harness can watch the leader
  /// count: leaders "hold rank 1", followers none.  (This protocol does not
  /// solve ranking -- it has too few states for ranking even to be
  /// definable, as the conclusion of the paper notes.)
  std::uint32_t rank_of(const agent_state& s) const {
    return s.leader ? 1 : 0;
  }

  /// The designated initial configuration: everybody a leader.
  std::vector<agent_state> initial_configuration() const {
    return std::vector<agent_state>(n_, agent_state{true});
  }

  /// One transient fault away from permanent failure.
  std::vector<agent_state> all_followers() const {
    return std::vector<agent_state>(n_, agent_state{false});
  }

  static std::uint64_t state_count(std::uint32_t) { return 2; }

  /// Both states, for exhaustive verification and the protocol linter.
  std::vector<agent_state> all_states() const {
    return {agent_state{false}, agent_state{true}};
  }

 private:
  std::uint32_t n_;
};

}  // namespace ssr
