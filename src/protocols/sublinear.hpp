// Protocols 5+6: Sublinear-Time-SSR (Section 5), the H-parameterized family
// of non-silent self-stabilizing ranking protocols.
//
// Every agent holds a random name of 3 log2 n bits; the set of all names is
// propagated by epidemic in the roster field, and an agent whose roster has
// size n outputs as rank the lexicographic order of its own name in the
// roster.  Errors are handled by Propagate-Reset:
//   * ghost names (roster larger than the population) are caught when a
//     merged roster would exceed n names (line 2);
//   * name collisions are caught by Detect-Name-Collision (Protocol 7)
//     through depth-H history trees -- see history_tree.hpp;
//   * agents regenerate names bit by bit during the dormant phase of the
//     reset (lines 14-15) and restart with roster = {name} (Protocol 6).
//
// Parameter H trades time for states (Theorem 5.1): expected stabilization
// takes O(H * n^{1/(H+1)}) time for constant H and O(log n) for
// H = Theta(log n), while states grow as exp(O(n^H) log n).  H = 0 (a
// degenerate case the paper describes in prose) detects collisions only on
// direct meetings, giving a silent Theta(n)-time variant.
//
// Implementation completions beyond the paper's pseudocode (DESIGN.md):
//   * two interacting agents with equal names report a collision directly
//     (genuine by definition; Protocol 7's trees cannot see it because both
//     agents prune nodes labelled with their own name);
//   * a Collecting agent whose roster does not contain its own name is
//     corrupt (a clean Reset establishes roster = {name} and unions preserve
//     it) and triggers a reset; without this check an adversarial
//     configuration deadlocks: rosters only grow by unions, so a name
//     missing from every roster would leave |roster| < n forever with no
//     error ever detected.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "pp/protocol.hpp"
#include "pp/rng.hpp"
#include "protocols/history_tree.hpp"
#include "protocols/names.hpp"
#include "protocols/propagate_reset.hpp"

namespace ssr {

class sublinear_time_ssr {
 public:
  enum class role_t : std::uint8_t { collecting, resetting };

  struct tuning {
    std::uint32_t h = 1;          // history depth H (0 = direct detection)
    std::uint32_t t_h = 1;        // edge timer T_H = Theta(tau_{H+1})
    std::uint32_t s_max = 1;      // sync values {1..S_max}, Theta(n^2)
    std::uint32_t r_max = 1;      // Propagate-Reset countdown
    std::uint32_t d_max = 1;      // dormant delay, Theta(log n)
    std::uint32_t name_bits = 1;  // 3 log2 n
    // Simulation-only memory bound: prune subtrees this many owner
    // interactions after their edge expires (< 0: never, as in the paper).
    std::int64_t prune_retention = 0;

    /// Defaults for population size n and depth H; see DESIGN.md deviation
    /// #4 for the constants.  T_H = 6 (H+1) n^{1/(H+1)} capped at 6 ln n
    /// once H reaches log2 n, matching the paper's two regimes.
    static tuning defaults(std::uint32_t n, std::uint32_t h);
  };

  struct agent_state {
    role_t role = role_t::collecting;
    name_t name;
    // Collecting fields.
    std::uint32_t rank = 0;        // write-only output; 0 = not yet set
    std::vector<name_t> roster;    // sorted, unique; always <= n entries
    history_tree tree;
    // Resetting fields.
    reset_fields reset;
  };

  sublinear_time_ssr(std::uint32_t n, const tuning& params);
  /// Convenience: defaults for depth H.
  sublinear_time_ssr(std::uint32_t n, std::uint32_t h);

  std::uint32_t population_size() const { return n_; }
  const tuning& params() const { return params_; }

  bool interact(agent_state& a, agent_state& b, rng_t& rng) const;

  std::uint32_t rank_of(const agent_state& s) const {
    return s.role == role_t::collecting ? s.rank : 0;
  }

  /// Phase instrumentation (obs/trace.hpp).  Collecting splits on whether
  /// the roster is complete (the agent outputs a rank) -- the epidemic's
  /// progress measure -- and Resetting on propagating vs dormant
  /// (name-regeneration) stages.
  std::uint32_t obs_phase_count() const { return 4; }
  std::uint32_t obs_phase(const agent_state& s) const {
    if (s.role == role_t::collecting) {
      return s.roster.size() >= n_ ? 1 : 0;
    }
    return s.reset.resetcount > 0 ? 2 : 3;
  }
  static std::string_view obs_phase_name(std::uint32_t phase) {
    constexpr std::string_view names[] = {"collecting", "roster_complete",
                                          "resetting_propagating",
                                          "resetting_dormant"};
    return phase < 4 ? names[phase] : "unknown";
  }
  static bool obs_phase_is_reset(std::uint32_t phase) {
    return phase == 2 || phase == 3;
  }

  /// A clean post-reset start: every agent Collecting with a fresh random
  /// full-length name and roster = {name} (convenience for experiments; the
  /// protocol is self-stabilizing).
  std::vector<agent_state> initial_configuration(rng_t& rng) const;

  /// Protocol 7, both directions, plus the direct equal-name check.  Public
  /// for tests; does not modify the agents.
  bool name_collision_detected(const agent_state& a,
                               const agent_state& b) const;

 private:
  struct hooks;

  void trigger_pair(agent_state& a, agent_state& b) const;
  void assign_ranks(agent_state& a, agent_state& b) const;

  std::uint32_t n_;
  tuning params_;
};

/// Merged sorted-unique union size without materializing (used for the
/// ghost-name check |a.roster ∪ b.roster| > n).
std::size_t union_size(const std::vector<name_t>& a,
                       const std::vector<name_t>& b);

/// Materialized sorted-unique union.
std::vector<name_t> roster_union(const std::vector<name_t>& a,
                                 const std::vector<name_t>& b);

}  // namespace ssr
