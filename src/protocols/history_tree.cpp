#include "protocols/history_tree.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "pp/assert.hpp"

namespace ssr {
namespace {

tree_node copy_truncated(const tree_node& node, std::uint32_t depth_limit) {
  tree_node out;
  out.name = node.name;
  if (depth_limit == 0) return out;
  out.edges.reserve(node.edges.size());
  for (const tree_edge& e : node.edges) {
    tree_edge copy;
    copy.sync = e.sync;
    copy.timer = e.timer;
    copy.expired_for = e.expired_for;
    copy.child = copy_truncated(e.child, depth_limit - 1);
    out.edges.push_back(std::move(copy));
  }
  return out;
}

std::size_t count_nodes(const tree_node& node) {
  std::size_t total = 1;
  for (const tree_edge& e : node.edges) total += count_nodes(e.child);
  return total;
}

std::uint32_t node_depth(const tree_node& node) {
  std::uint32_t deepest = 0;
  for (const tree_edge& e : node.edges)
    deepest = std::max(deepest, 1 + node_depth(e.child));
  return deepest;
}

void render(const tree_node& node, std::string indent, std::ostringstream& os) {
  for (const tree_edge& e : node.edges) {
    os << indent << "--" << e.sync << "(t" << e.timer << ")--> "
       << e.child.name.to_string() << '\n';
    render(e.child, indent + "  ", os);
  }
}

}  // namespace

history_tree::history_tree(const name_t& own_name) { reset(own_name); }

void history_tree::reset(const name_t& own_name) {
  root_.name = own_name;
  root_.edges.clear();
}

history_tree history_tree::adopt(tree_node root) {
  history_tree tree;
  tree.root_ = std::move(root);
  return tree;
}

bool history_tree::detects_collision_against(const name_t& partner_name,
                                             const history_tree& partner) const {
  // DFS over fresh paths; `steps` holds the (name, sync) trail from the
  // root.  At every node labelled with the partner's name, run Protocol 8
  // against the partner's tree; an inconsistent history is a collision.
  std::vector<path_step> steps;
  std::function<bool(const tree_node&)> dfs = [&](const tree_node& node) {
    for (const tree_edge& e : node.edges) {
      if (e.timer == 0) continue;  // only fresh histories count (line 2)
      steps.push_back({e.child.name, e.sync});
      const bool collision =
          (e.child.name == partner_name &&
           !partner.consistent_with_path(root_.name, steps)) ||
          dfs(e.child);
      steps.pop_back();
      if (collision) return true;
    }
    return false;
  };
  return dfs(root_);
}

bool history_tree::consistent_with_path(const name_t& asker_root,
                                        std::span<const path_step> path) const {
  SSR_REQUIRE(!path.empty());
  // Walk this tree from the root along the reversed path: the k-th step
  // (k = 1..p) follows the child labelled v_{p-k} (v_0 being the asker's
  // root) and compares syncs with the asker's edge e_{p+1-k}.  Any match
  // certifies a shared interaction history (Figure 2); if the walk ends --
  // possibly immediately -- without a match, the path is inconsistent.
  const std::size_t p = path.size();
  const tree_node* cur = &root_;
  for (std::size_t k = 1; k <= p; ++k) {
    const name_t& wanted =
        k < p ? path[p - 1 - k].name : asker_root;  // v_{p-k}
    const std::uint32_t asker_sync = path[p - k].sync;  // e_{p+1-k}
    const tree_edge* next = nullptr;
    for (const tree_edge& e : cur->edges) {
      if (e.child.name == wanted) {
        next = &e;
        break;
      }
    }
    if (next == nullptr) return false;  // reversed suffix ends: no match found
    if (next->sync == asker_sync) return true;
    cur = &next->child;
  }
  return false;
}

void history_tree::graft_partner(const history_tree& partner,
                                 std::uint32_t depth_limit, std::uint32_t sync,
                                 std::uint32_t timer) {
  // Replace any existing record of the partner (line 8) ...
  std::erase_if(root_.edges, [&](const tree_edge& e) {
    return e.child.name == partner.root_name();
  });
  // ... and graft its current tree under a fresh edge (lines 9-10).
  tree_edge e;
  e.sync = sync;
  e.timer = timer;
  e.child = copy_truncated(partner.root(), depth_limit);
  root_.edges.push_back(std::move(e));
}

void history_tree::remove_named_subtrees(const name_t& name) {
  std::function<void(tree_node&)> scrub = [&](tree_node& node) {
    std::erase_if(node.edges,
                  [&](const tree_edge& e) { return e.child.name == name; });
    for (tree_edge& e : node.edges) scrub(e.child);
  };
  scrub(root_);
}

void history_tree::age_edges(std::int64_t prune_retention) {
  std::function<void(tree_node&)> age = [&](tree_node& node) {
    for (tree_edge& e : node.edges) {
      if (e.timer > 0) {
        --e.timer;
      } else {
        ++e.expired_for;
      }
      age(e.child);
    }
    if (prune_retention >= 0) {
      std::erase_if(node.edges, [&](const tree_edge& e) {
        return e.timer == 0 &&
               e.expired_for > static_cast<std::uint64_t>(prune_retention);
      });
    }
  };
  age(root_);
}

std::size_t history_tree::node_count() const { return count_nodes(root_); }

std::uint32_t history_tree::depth() const { return node_depth(root_); }

bool history_tree::simply_labelled() const {
  std::vector<name_t> trail{root_.name};
  std::function<bool(const tree_node&)> dfs = [&](const tree_node& node) {
    for (const tree_edge& e : node.edges) {
      if (std::find(trail.begin(), trail.end(), e.child.name) != trail.end())
        return false;
      trail.push_back(e.child.name);
      const bool ok = dfs(e.child);
      trail.pop_back();
      if (!ok) return false;
    }
    return true;
  };
  return dfs(root_);
}

std::string history_tree::to_string() const {
  std::ostringstream os;
  os << root_.name.to_string() << '\n';
  render(root_, "  ", os);
  return os.str();
}

}  // namespace ssr
