// Initialized (non-self-stabilizing) ranking via the binary-tree
// assignment, isolated from Optimal-Silent-SSR's error-handling machinery.
//
// The paper's Conclusion raises initialized ranking as its own problem
// ("without the constraint of self-stabilization, there is no longer the
// issue of ghost names...").  This protocol is the constructive baseline:
// all agents start in the designated configuration (one Settled leader with
// rank 1, everyone else Unsettled -- exactly what Protocol 4 establishes
// after a clean reset), and ranks spread down the full binary tree: the
// children of rank r are 2r and 2r+1.  There are no counters, no resets and
// no collision detection, so the protocol needs only 3n + 1 states and
// Theta(n) time -- and it is *not* self-stabilizing (an all-Unsettled
// configuration deadlocks; tests/initialized_ranking_test.cpp).
//
// Comparing its running time with Optimal-Silent-SSR's on the same n prices
// the paper's fault tolerance: the whole gap is reset + leader-election
// overhead (bench_price_of_ss).
#pragma once

#include <cstdint>
#include <vector>

#include "pp/protocol.hpp"
#include "pp/rng.hpp"

namespace ssr {

class initialized_tree_ranking {
 public:
  struct agent_state {
    bool settled = false;
    std::uint32_t rank = 0;     // {1..n} when settled
    std::uint8_t children = 0;  // {0,1,2} when settled

    friend bool operator==(const agent_state&, const agent_state&) = default;
  };

  explicit initialized_tree_ranking(std::uint32_t n);

  std::uint32_t population_size() const { return n_; }

  bool interact(agent_state& a, agent_state& b, rng_t&) const;

  std::uint32_t rank_of(const agent_state& s) const {
    return s.settled ? s.rank : 0;
  }

  /// The designated initial configuration: agent 0 is the rank-1 root.
  std::vector<agent_state> initial_configuration() const;

  /// 3n settled states + 1 unsettled state.
  static std::uint64_t state_count(std::uint32_t n) {
    return 3ull * n + 1;
  }

  /// Full inventory for exhaustive verification.
  std::vector<agent_state> all_states() const;

 private:
  std::uint32_t n_;
};

}  // namespace ssr
