// Text serialization of configurations: lets experiments pin down, share
// and replay exact starting configurations (including history trees), and
// gives the CLI a --dump/--load story.
//
// Format: one header line, then one line per agent.
//
//   ssr-config v1 protocol=optimal n=4
//   settled rank=1 children=2
//   unsettled errorcount=12
//   resetting leader=L resetcount=5 delaytimer=2
//   settled rank=3 children=0
//
// History trees serialize as s-expressions: (name (sync timer expired
// child) ...), names as 0/1 strings ("e" for the empty name).  Parsing is
// strict; malformed input throws std::invalid_argument with a line number.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "protocols/loose_stabilizing.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"
#include "protocols/sublinear.hpp"

namespace ssr {

std::string to_text(const silent_n_state_ssr& p,
                    std::span<const silent_n_state_ssr::agent_state> config);
std::string to_text(const optimal_silent_ssr& p,
                    std::span<const optimal_silent_ssr::agent_state> config);
std::string to_text(const sublinear_time_ssr& p,
                    std::span<const sublinear_time_ssr::agent_state> config);
std::string to_text(const loose_stabilizing_le& p,
                    std::span<const loose_stabilizing_le::agent_state> config);

std::vector<silent_n_state_ssr::agent_state> config_from_text(
    const silent_n_state_ssr& p, const std::string& text);
std::vector<optimal_silent_ssr::agent_state> config_from_text(
    const optimal_silent_ssr& p, const std::string& text);
std::vector<sublinear_time_ssr::agent_state> config_from_text(
    const sublinear_time_ssr& p, const std::string& text);
std::vector<loose_stabilizing_le::agent_state> config_from_text(
    const loose_stabilizing_le& p, const std::string& text);

/// Serializes one history tree as an s-expression (exposed for tests and
/// trace tooling).
std::string tree_to_text(const history_tree& tree);
history_tree tree_from_text(const std::string& text);

}  // namespace ssr
