// Variable-length bitstring names for Sublinear-Time-SSR (Section 5).
//
// Each agent's name is a bitstring of length <= 3 log2 n; the n^3 possible
// full-length values make a random assignment collision-free with high
// probability.  Names are built up one random bit per interaction during the
// dormant phase of a reset, so intermediate (shorter) names are legal states
// and the ordering must be defined on all of {0,1}^{<= 3 log2 n}.
//
// A name is stored packed in a 64-bit word (first-appended bit most
// significant), which caps supported populations at n <= 2^21 -- far beyond
// what the quasi-exponential state space allows simulating anyway.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "pp/assert.hpp"
#include "pp/random.hpp"
#include "pp/rng.hpp"

namespace ssr {

class name_t {
 public:
  /// The empty name (epsilon); agents clear to this while a reset
  /// propagates.
  constexpr name_t() = default;

  static constexpr std::uint32_t max_bits = 63;

  constexpr std::uint32_t length() const { return length_; }
  constexpr bool empty() const { return length_ == 0; }
  constexpr std::uint64_t bits() const { return bits_; }

  /// Appends one bit (Protocol 5 line 15).
  constexpr void append_bit(bool bit) {
    SSR_ASSERT(length_ < max_bits);
    bits_ = (bits_ << 1) | (bit ? 1u : 0u);
    ++length_;
  }

  friend constexpr bool operator==(const name_t&, const name_t&) = default;

  /// Lexicographic bitstring order: compare the common prefix bitwise; a
  /// proper prefix sorts before its extensions.  Ranks are name orders
  /// within the roster, so this must be a strict total order.
  friend constexpr std::strong_ordering operator<=>(const name_t& a,
                                                    const name_t& b) {
    const std::uint32_t m = a.length_ < b.length_ ? a.length_ : b.length_;
    const std::uint64_t pa = m > 0 ? a.bits_ >> (a.length_ - m) : 0;
    const std::uint64_t pb = m > 0 ? b.bits_ >> (b.length_ - m) : 0;
    if (pa != pb) return pa <=> pb;
    return a.length_ <=> b.length_;
  }

  /// "0101"-style rendering for traces and tests; epsilon renders as "ε".
  std::string to_string() const;

 private:
  std::uint32_t length_ = 0;
  std::uint64_t bits_ = 0;
};

/// Name length used by the protocol: 3 log2 n bits (rounded up).
std::uint32_t full_name_bits(std::uint32_t n);

/// A uniformly random name of `bits` bits.
name_t random_name(rng_t& rng, std::uint32_t bits);

}  // namespace ssr
