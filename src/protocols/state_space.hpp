// State-space accounting for the "states" column of the paper's Table 1.
//
// For the two linear-state protocols the counts are exact (roles partition
// the state space, so counts add across roles).  For Sublinear-Time-SSR the
// state count is quasi-exponential -- exp(O(n^H) log n), Theorem 5.1 -- so
// we report log2(states), i.e. the per-agent memory in bits, computed from
// the field inventory.
#pragma once

#include <cstdint>

#include "protocols/optimal_silent.hpp"
#include "protocols/sublinear.hpp"

namespace ssr {

/// Protocol 1 uses exactly n states (optimal by Theorem 2.1).
std::uint64_t silent_n_state_states(std::uint32_t n);

/// Exact state count of Optimal-Silent-SSR under the given tuning; O(n).
std::uint64_t optimal_silent_states(std::uint32_t n,
                                    const optimal_silent_ssr::tuning& t);

/// Per-agent memory of Sublinear-Time-SSR in bits (log2 of the state
/// count): name + roster (up to n names of 3 log2 n bits) + the depth-H
/// history tree (up to sum_{d<=H} n^d nodes, each with a name and an edge
/// carrying a sync in {1..S_max} and a timer in {0..T_H}) + Resetting-role
/// counters.  This matches the paper's exp(O(n^H) log n) bound.
double sublinear_state_bits(std::uint32_t n,
                            const sublinear_time_ssr::tuning& t);

}  // namespace ssr
