#include "protocols/serialize.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "pp/assert.hpp"

namespace ssr {
namespace {

// ----------------------------------------------------------------- writing

std::string name_text(const name_t& name) {
  if (name.empty()) return "e";
  std::string out;
  for (std::uint32_t i = 0; i < name.length(); ++i) {
    out.push_back(((name.bits() >> (name.length() - 1 - i)) & 1) ? '1' : '0');
  }
  return out;
}

void write_tree(const tree_node& node, std::ostringstream& os) {
  os << '(' << name_text(node.name);
  for (const tree_edge& e : node.edges) {
    os << " (" << e.sync << ' ' << e.timer << ' ' << e.expired_for << ' ';
    write_tree(e.child, os);
    os << ')';
  }
  os << ')';
}

std::string header(const char* protocol, std::size_t n) {
  std::ostringstream os;
  os << "ssr-config v1 protocol=" << protocol << " n=" << n << '\n';
  return os.str();
}

// ----------------------------------------------------------------- reading

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  std::ostringstream os;
  os << "config parse error at line " << line << ": " << what;
  throw std::invalid_argument(os.str());
}

/// Splits into whitespace-separated tokens.
std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string token;
  while (is >> token) out.push_back(token);
  return out;
}

/// "key=value" accessor with type conversion.
std::string field(const std::vector<std::string>& tokens, const char* key,
                  std::size_t line) {
  const std::string prefix = std::string(key) + "=";
  for (const auto& t : tokens) {
    if (t.rfind(prefix, 0) == 0) return t.substr(prefix.size());
  }
  fail(line, std::string("missing field ") + key);
}

std::uint32_t uint_field(const std::vector<std::string>& tokens,
                         const char* key, std::size_t line) {
  const std::string v = field(tokens, key, line);
  std::uint32_t out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc() || ptr != v.data() + v.size())
    fail(line, std::string("bad integer for ") + key + ": " + v);
  return out;
}

name_t parse_name(const std::string& text, std::size_t line) {
  if (text == "e") return name_t{};
  name_t name;
  for (const char c : text) {
    if (c != '0' && c != '1') fail(line, "bad name bit: " + text);
    name.append_bit(c == '1');
  }
  return name;
}

/// Header: returns n after validating the protocol tag.
std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::size_t check_header(const std::vector<std::string>& lines,
                         const char* protocol, std::uint32_t n) {
  if (lines.empty()) fail(1, "empty input");
  const auto tokens = tokens_of(lines[0]);
  if (tokens.size() < 4 || tokens[0] != "ssr-config" || tokens[1] != "v1")
    fail(1, "bad header");
  if (field(tokens, "protocol", 1) != protocol)
    fail(1, std::string("expected protocol=") + protocol);
  const std::uint32_t file_n = uint_field(tokens, "n", 1);
  if (file_n != n) fail(1, "population size mismatch");
  if (lines.size() != static_cast<std::size_t>(n) + 1)
    fail(lines.size(), "wrong number of agent lines");
  return n;
}

// S-expression tree parser.
struct tree_parser {
  const std::string& text;
  std::size_t pos = 0;
  std::size_t line;

  void skip_spaces() {
    while (pos < text.size() && text[pos] == ' ') ++pos;
  }
  void expect(char c) {
    skip_spaces();
    if (pos >= text.size() || text[pos] != c)
      fail(line, std::string("expected '") + c + "' in tree");
    ++pos;
  }
  std::string word() {
    skip_spaces();
    std::size_t start = pos;
    while (pos < text.size() && text[pos] != ' ' && text[pos] != '(' &&
           text[pos] != ')') {
      ++pos;
    }
    if (start == pos) fail(line, "expected token in tree");
    return text.substr(start, pos - start);
  }
  std::uint32_t number() {
    const std::string w = word();
    std::uint32_t out = 0;
    const auto [ptr, ec] = std::from_chars(w.data(), w.data() + w.size(), out);
    if (ec != std::errc() || ptr != w.data() + w.size())
      fail(line, "bad number in tree: " + w);
    return out;
  }

  tree_node node() {
    expect('(');
    tree_node out;
    out.name = parse_name(word(), line);
    while (true) {
      skip_spaces();
      if (pos < text.size() && text[pos] == ')') {
        ++pos;
        return out;
      }
      expect('(');
      tree_edge e;
      e.sync = number();
      e.timer = number();
      e.expired_for = number();
      e.child = node();
      expect(')');
      out.edges.push_back(std::move(e));
    }
  }
};

}  // namespace

// --------------------------------------------------------------- baseline

std::string to_text(const silent_n_state_ssr& p,
                    std::span<const silent_n_state_ssr::agent_state> config) {
  std::ostringstream os;
  os << header("baseline", config.size());
  for (const auto& s : config) os << "rank=" << s.rank << '\n';
  (void)p;
  return os.str();
}

std::vector<silent_n_state_ssr::agent_state> config_from_text(
    const silent_n_state_ssr& p, const std::string& text) {
  const auto lines = split_lines(text);
  const std::uint32_t n = p.population_size();
  check_header(lines, "baseline", n);
  std::vector<silent_n_state_ssr::agent_state> config(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto tokens = tokens_of(lines[i + 1]);
    config[i].rank = uint_field(tokens, "rank", i + 2);
    if (config[i].rank >= n) fail(i + 2, "rank out of range");
  }
  return config;
}

// ----------------------------------------------------------- optimal silent

std::string to_text(const optimal_silent_ssr& p,
                    std::span<const optimal_silent_ssr::agent_state> config) {
  std::ostringstream os;
  os << header("optimal", config.size());
  for (const auto& s : config) {
    switch (s.role) {
      case optimal_silent_ssr::role_t::settled:
        os << "settled rank=" << s.rank
           << " children=" << static_cast<int>(s.children) << '\n';
        break;
      case optimal_silent_ssr::role_t::unsettled:
        os << "unsettled errorcount=" << s.errorcount << '\n';
        break;
      case optimal_silent_ssr::role_t::resetting:
        os << "resetting leader=" << (s.leader ? 'L' : 'F')
           << " resetcount=" << s.reset.resetcount
           << " delaytimer=" << s.reset.delaytimer << '\n';
        break;
    }
  }
  (void)p;
  return os.str();
}

std::vector<optimal_silent_ssr::agent_state> config_from_text(
    const optimal_silent_ssr& p, const std::string& text) {
  const auto lines = split_lines(text);
  const std::uint32_t n = p.population_size();
  check_header(lines, "optimal", n);
  std::vector<optimal_silent_ssr::agent_state> config(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::size_t line = i + 2;
    const auto tokens = tokens_of(lines[i + 1]);
    if (tokens.empty()) fail(line, "empty agent line");
    auto& s = config[i];
    if (tokens[0] == "settled") {
      s.role = optimal_silent_ssr::role_t::settled;
      s.rank = uint_field(tokens, "rank", line);
      const std::uint32_t children = uint_field(tokens, "children", line);
      if (s.rank < 1 || s.rank > n) fail(line, "rank out of range");
      if (children > 2) fail(line, "children out of range");
      s.children = static_cast<std::uint8_t>(children);
    } else if (tokens[0] == "unsettled") {
      s.role = optimal_silent_ssr::role_t::unsettled;
      s.errorcount = uint_field(tokens, "errorcount", line);
      if (s.errorcount > p.params().e_max)
        fail(line, "errorcount out of range");
    } else if (tokens[0] == "resetting") {
      s.role = optimal_silent_ssr::role_t::resetting;
      const std::string leader = field(tokens, "leader", line);
      if (leader != "L" && leader != "F") fail(line, "bad leader flag");
      s.leader = leader == "L";
      s.reset.resetcount = uint_field(tokens, "resetcount", line);
      s.reset.delaytimer = uint_field(tokens, "delaytimer", line);
      if (s.reset.resetcount > p.params().r_max ||
          s.reset.delaytimer > p.params().d_max) {
        fail(line, "reset fields out of range");
      }
    } else {
      fail(line, "unknown role: " + tokens[0]);
    }
  }
  return config;
}

// ---------------------------------------------------------------- sublinear

std::string tree_to_text(const history_tree& tree) {
  std::ostringstream os;
  write_tree(tree.root(), os);
  return os.str();
}

history_tree tree_from_text(const std::string& text) {
  tree_parser parser{text, 0, 1};
  tree_node root = parser.node();
  parser.skip_spaces();
  if (parser.pos != text.size()) fail(1, "trailing characters after tree");
  return history_tree::adopt(std::move(root));
}

std::string to_text(const sublinear_time_ssr& p,
                    std::span<const sublinear_time_ssr::agent_state> config) {
  std::ostringstream os;
  os << header("sublinear", config.size());
  for (const auto& s : config) {
    if (s.role == sublinear_time_ssr::role_t::collecting) {
      os << "collecting name=" << name_text(s.name) << " rank=" << s.rank
         << " roster=";
      for (std::size_t i = 0; i < s.roster.size(); ++i) {
        if (i > 0) os << ',';
        os << name_text(s.roster[i]);
      }
      if (s.roster.empty()) os << '-';
      os << " tree=";
      write_tree(s.tree.root(), os);
      os << '\n';
    } else {
      os << "resetting name=" << name_text(s.name)
         << " resetcount=" << s.reset.resetcount
         << " delaytimer=" << s.reset.delaytimer << '\n';
    }
  }
  (void)p;
  return os.str();
}

std::vector<sublinear_time_ssr::agent_state> config_from_text(
    const sublinear_time_ssr& p, const std::string& text) {
  const auto lines = split_lines(text);
  const std::uint32_t n = p.population_size();
  check_header(lines, "sublinear", n);
  std::vector<sublinear_time_ssr::agent_state> config(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::size_t line = i + 2;
    // The tree s-expression contains spaces, so cut the line manually: the
    // "tree=" field is always last.
    std::string body = lines[i + 1];
    std::string tree_text;
    const std::size_t tree_pos = body.find(" tree=");
    if (tree_pos != std::string::npos) {
      tree_text = body.substr(tree_pos + 6);
      body = body.substr(0, tree_pos);
    }
    const auto tokens = tokens_of(body);
    if (tokens.empty()) fail(line, "empty agent line");
    auto& s = config[i];
    if (tokens[0] == "collecting") {
      if (tree_text.empty()) fail(line, "missing tree");
      s.role = sublinear_time_ssr::role_t::collecting;
      s.name = parse_name(field(tokens, "name", line), line);
      s.rank = uint_field(tokens, "rank", line);
      const std::string roster = field(tokens, "roster", line);
      s.roster.clear();
      if (roster != "-") {
        std::istringstream rs(roster);
        std::string entry;
        while (std::getline(rs, entry, ','))
          s.roster.push_back(parse_name(entry, line));
        for (std::size_t r = 1; r < s.roster.size(); ++r) {
          if (!(s.roster[r - 1] < s.roster[r]))
            fail(line, "roster not sorted/unique");
        }
      }
      tree_parser parser{tree_text, 0, line};
      s.tree = history_tree::adopt(parser.node());
      if (s.tree.depth() > p.params().h) fail(line, "tree too deep");
    } else if (tokens[0] == "resetting") {
      s.role = sublinear_time_ssr::role_t::resetting;
      s.name = parse_name(field(tokens, "name", line), line);
      s.reset.resetcount = uint_field(tokens, "resetcount", line);
      s.reset.delaytimer = uint_field(tokens, "delaytimer", line);
    } else {
      fail(line, "unknown role: " + tokens[0]);
    }
  }
  return config;
}

// -------------------------------------------------------------------- loose

std::string to_text(const loose_stabilizing_le& p,
                    std::span<const loose_stabilizing_le::agent_state> config) {
  std::ostringstream os;
  os << header("loose", config.size());
  for (const auto& s : config) {
    os << (s.leader ? "leader" : "follower") << " timer=" << s.timer << '\n';
  }
  (void)p;
  return os.str();
}

std::vector<loose_stabilizing_le::agent_state> config_from_text(
    const loose_stabilizing_le& p, const std::string& text) {
  const auto lines = split_lines(text);
  const std::uint32_t n = p.population_size();
  check_header(lines, "loose", n);
  std::vector<loose_stabilizing_le::agent_state> config(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::size_t line = i + 2;
    const auto tokens = tokens_of(lines[i + 1]);
    if (tokens.empty()) fail(line, "empty agent line");
    auto& s = config[i];
    if (tokens[0] == "leader") {
      s.leader = true;
    } else if (tokens[0] == "follower") {
      s.leader = false;
    } else {
      fail(line, "unknown role: " + tokens[0]);
    }
    s.timer = uint_field(tokens, "timer", line);
    if (s.timer > p.t_max()) fail(line, "timer out of range");
  }
  return config;
}

}  // namespace ssr
