#include "protocols/loose_stabilizing.hpp"

#include <algorithm>

#include "pp/assert.hpp"

namespace ssr {

loose_stabilizing_le::loose_stabilizing_le(std::uint32_t n,
                                           std::uint32_t t_max)
    : n_(n), t_max_(t_max) {
  SSR_REQUIRE(n >= 2);
  SSR_REQUIRE(t_max >= 1);
}

bool loose_stabilizing_le::interact(agent_state& a, agent_state& b,
                                    rng_t&) const {
  const agent_state before_a = a;
  const agent_state before_b = b;

  if (a.leader && b.leader) {
    b.leader = false;  // l,l -> l,f
  }
  // Heartbeat propagation: both adopt max(timers) - 1 ...
  const std::uint32_t top = std::max(a.timer, b.timer);
  const std::uint32_t next = top > 0 ? top - 1 : 0;
  a.timer = next;
  b.timer = next;
  // ... and leaders pin their own timer back to T.
  if (a.leader) a.timer = t_max_;
  if (b.leader) b.timer = t_max_;
  // Timeout: silence interpreted as leader death.
  for (agent_state* s : {&a, &b}) {
    if (!s->leader && s->timer == 0) {
      s->leader = true;
      s->timer = t_max_;
    }
  }
  return a != before_a || b != before_b;
}

std::size_t loose_stabilizing_le::leader_count(
    std::span<const agent_state> config) const {
  std::size_t count = 0;
  for (const auto& s : config) count += s.leader ? 1 : 0;
  return count;
}

}  // namespace ssr
