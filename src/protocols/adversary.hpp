// Adversarial initial-configuration generators.
//
// Self-stabilization quantifies over *every* configuration in the state
// space, including those crafted by an adversary: ghost names, planted
// histories, missing leaders, exhausted counters.  The property tests and
// the fault-injection experiments draw starting configurations from the
// generators here.  Every generated configuration is a legal element of the
// protocol's state space (e.g. history trees are simply labelled and within
// depth H) -- arbitrary *states*, not arbitrary memory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pp/rng.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"
#include "protocols/sublinear.hpp"

namespace ssr {

/// Uniformly random ranks (Protocol 1's whole state space).
std::vector<silent_n_state_ssr::agent_state> adversarial_configuration(
    const silent_n_state_ssr& protocol, rng_t& rng);

/// Named corruption scenarios for Optimal-Silent-SSR.
enum class optimal_silent_scenario {
  uniform_random,        // independent uniform fields per agent
  all_settled_rank_one,  // n copies of the leader state (max collisions)
  no_leader,             // valid-looking ranks 2..n+1 clipped into range, no rank 1
  all_unsettled_expired, // every agent Unsettled with errorcount 0
  all_dormant_followers, // mid-reset: everyone dormant, no leader candidate
  duplicated_ranks,      // two agents share each rank
  valid_ranking,         // already correct (stability check)
};

std::vector<optimal_silent_ssr::agent_state> adversarial_configuration(
    const optimal_silent_ssr& protocol, optimal_silent_scenario scenario,
    rng_t& rng);

std::string to_string(optimal_silent_scenario scenario);

/// Named corruption scenarios for Sublinear-Time-SSR.
enum class sublinear_scenario {
  uniform_random,     // random roles, names, rosters, trees
  all_same_name,      // maximal collision: every agent named identically
  single_collision,   // exactly two agents share a name; no other error
                      // signal exists, so stabilization is gated on
                      // Detect-Name-Collision finding the pair -- the
                      // Theta(H n^{1/(H+1)}) worst case of Section 5.2
  ghost_names,        // rosters padded with names no agent holds
  missing_own_name,   // rosters that omit the holder's name (deadlock trap)
  planted_histories,  // trees claiming interactions that never happened
  mid_reset,          // a mix of propagating / dormant / computing agents
  valid_ranking,      // unique names, full rosters, correct ranks
};

std::vector<sublinear_time_ssr::agent_state> adversarial_configuration(
    const sublinear_time_ssr& protocol, sublinear_scenario scenario,
    rng_t& rng);

std::string to_string(sublinear_scenario scenario);

}  // namespace ssr
