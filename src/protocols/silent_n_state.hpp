// Protocol 1: Silent-n-state-SSR, the baseline self-stabilizing ranking
// protocol of Cai, Izumi, and Wada [22].
//
//   Fields: rank in {0, ..., n-1}
//   if a.rank = b.rank then b.rank <- (b.rank + 1) mod n
//
// It uses exactly n states (optimal, Theorem 2.1) and stabilizes in
// Theta(n^2) expected parallel time -- the paper includes the time analysis
// because [22] predates the uniform-random-scheduler time measure.  The
// protocol is silent: in the unique stable configuration every rank is held
// exactly once and every transition is null.
//
// Correctness intuition (the paper's "barrier rank" argument): some rank
// value r with a single occupant and no occupant at r-1 acts as a barrier
// that collided agents queue up behind; each bottleneck step requires two
// specific agents to meet (expected Theta(n) time), and up to n-1 such steps
// may be needed, giving Theta(n^2).
//
// The ranks here are {0..n-1} as in [22]; rank_of maps them to the paper's
// formal {1..n} by adding one (footnote 8 of the paper notes the
// equivalence).
#pragma once

#include <cstdint>
#include <vector>

#include "pp/protocol.hpp"
#include "pp/rng.hpp"

namespace ssr {

class silent_n_state_ssr {
 public:
  struct agent_state {
    std::uint32_t rank = 0;  // in {0, ..., n-1}

    friend bool operator==(const agent_state&, const agent_state&) = default;
  };

  explicit silent_n_state_ssr(std::uint32_t n);

  std::uint32_t population_size() const { return n_; }

  /// The single transition of Protocol 1.  Asymmetric: only the responder
  /// moves.
  bool interact(agent_state& a, agent_state& b, rng_t&) const {
    if (a.rank != b.rank) return false;
    b.rank = b.rank + 1 == n_ ? 0 : b.rank + 1;
    return true;
  }

  /// Output map to the formal rank space {1..n}.
  std::uint32_t rank_of(const agent_state& s) const { return s.rank + 1; }

  /// Batched-engine partition (pp/engine.hpp): the rank is the inert key --
  /// the single transition fires only on equal ranks, so agents holding
  /// distinct in-range ranks always interact nully.  Out-of-range ranks
  /// (constructible only through deserialization) are conservatively
  /// volatile.
  std::uint32_t batch_key_count() const { return n_; }
  std::uint32_t batch_key(const agent_state& s) const {
    return s.rank < n_ ? s.rank : batch_volatile_key;
  }

  /// Exactly n states (Table 1).
  static std::uint64_t state_count(std::uint32_t n) { return n; }

  /// The full state inventory, for exhaustive verification
  /// (verify/reachability.hpp).
  std::vector<agent_state> all_states() const {
    std::vector<agent_state> states(n_);
    for (std::uint32_t r = 0; r < n_; ++r) states[r].rank = r;
    return states;
  }

  /// The adversarial configuration of the paper's Omega(n^2) lower-bound
  /// argument: two agents at rank 0, no agent at rank n-1, one agent at
  /// every other rank; stabilizing requires n-1 consecutive bottleneck
  /// transitions.
  std::vector<agent_state> lower_bound_configuration() const;

 private:
  std::uint32_t n_;
};

/// Exact accelerated execution of Silent-n-state-SSR.
///
/// Direct simulation costs Theta(n^3) interactions for a Theta(n^2)-time
/// protocol.  Because the only non-null interactions are between agents of
/// equal rank, the embedded jump chain can be sampled exactly: the number of
/// null interactions before the next non-null one is geometric in
/// p = A / (n(n-1)) where A = sum_r c_r (c_r - 1) counts active ordered
/// pairs, and the active pair itself is uniform over active pairs.  Agents
/// are anonymous, so rank *counts* c_r are a sufficient state description.
/// Distributional equivalence with the direct simulator is covered by
/// tests/silent_n_state_test.cpp.
class accelerated_silent_n_state {
 public:
  /// Starts from the configuration described by per-agent ranks.
  accelerated_silent_n_state(std::uint32_t n,
                             const std::vector<std::uint32_t>& ranks,
                             std::uint64_t seed);

  /// True iff every rank is held exactly once (the silent configuration).
  bool stable() const { return collisions_ == 0; }

  /// Executes non-null transitions until stable; returns the parallel time
  /// at stabilization (counting the skipped null interactions).
  double run_to_stabilization();

  std::uint64_t interactions() const { return interactions_; }

 private:
  void step();

  std::uint32_t n_;
  std::vector<std::uint64_t> count_;  // agents per rank
  // sum_r c_r (c_r - 1): number of active ordered pairs.
  std::uint64_t active_pairs_ = 0;
  // number of ranks with count != 1 is not needed; collisions_ tracks
  // sum_r max(c_r - 1, 0), which is 0 exactly in the silent configuration.
  std::uint64_t collisions_ = 0;
  std::uint64_t interactions_ = 0;
  rng_t rng_;
};

}  // namespace ssr
