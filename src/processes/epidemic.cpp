#include "processes/epidemic.hpp"

#include <vector>

#include "pp/assert.hpp"
#include "pp/scheduler.hpp"

namespace ssr {

epidemic_result run_epidemic(std::uint32_t n, std::uint64_t seed) {
  SSR_REQUIRE(n >= 2);
  std::vector<char> infected(n, 0);
  infected[0] = 1;
  std::uint32_t count = 1;

  rng_t rng(seed);
  epidemic_result result;
  while (count < n) {
    const agent_pair pair = sample_pair(rng, n);
    ++result.interactions;
    char& a = infected[pair.initiator];
    char& b = infected[pair.responder];
    if (a != b) {  // exactly one side infected: it spreads both ways
      a = b = 1;
      ++count;
    }
  }
  result.completion_time =
      static_cast<double>(result.interactions) / static_cast<double>(n);
  return result;
}

}  // namespace ssr
