#include "processes/bounded_epidemic.hpp"

#include <algorithm>

#include "pp/assert.hpp"
#include "pp/rng.hpp"
#include "pp/scheduler.hpp"

namespace ssr {

bounded_epidemic_result run_bounded_epidemic(std::uint32_t n,
                                             std::uint32_t max_k,
                                             std::uint64_t seed) {
  SSR_REQUIRE(n >= 2);
  SSR_REQUIRE(max_k >= 1);
  SSR_REQUIRE(max_k < n);

  const std::uint32_t infinity = n;  // no finite value can exceed n-1
  std::vector<std::uint32_t> value(n, infinity);
  value[0] = 0;
  const std::uint32_t target = n - 1;

  bounded_epidemic_result result;
  result.hit_time.assign(max_k + 1, 0.0);

  rng_t rng(seed);
  std::uint64_t interactions = 0;
  bool target_seen = false;

  while (value[target] > max_k) {
    const agent_pair pair = sample_pair(rng, n);
    ++interactions;
    std::uint32_t& a = value[pair.initiator];
    std::uint32_t& b = value[pair.responder];
    // i, j -> i, i+1 whenever i < j (the smaller value propagates).
    const std::uint32_t before = value[target];
    if (a < b) {
      b = a + 1;
    } else if (b < a) {
      a = b + 1;
    }
    const std::uint32_t after = value[target];
    if (after < before) {
      const double t =
          static_cast<double>(interactions) / static_cast<double>(n);
      if (!target_seen) {
        target_seen = true;
        result.any_hit_time = t;
        result.first_path_length = after;
      }
      // The target's value crossing below k means tau_k has just occurred,
      // for every threshold k in [after, before).
      const std::uint32_t hi = std::min(before - 1, max_k);
      for (std::uint32_t k = std::max<std::uint32_t>(after, 1); k <= hi; ++k) {
        if (result.hit_time[k] == 0.0) result.hit_time[k] = t;
      }
    }
  }
  return result;
}

}  // namespace ssr
