#include "processes/analytic.hpp"

#include <cmath>

#include "pp/assert.hpp"

namespace ssr {

double harmonic(std::uint64_t k) {
  double h = 0.0;
  for (std::uint64_t i = 1; i <= k; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

double leader_elimination_time(std::uint32_t n) {
  SSR_REQUIRE(n >= 2);
  // With j leaders remaining, an interaction eliminates one with probability
  // j(j-1)/(n(n-1)); the expected interaction counts telescope to (n-1)^2.
  const double nn = static_cast<double>(n);
  return (nn - 1.0) * (nn - 1.0) / nn;
}

double touch_all_but_one_time(std::uint32_t n) {
  SSR_REQUIRE(n >= 2);
  return harmonic(n) / 2.0;
}

double direct_meeting_time(std::uint32_t n) {
  SSR_REQUIRE(n >= 2);
  return static_cast<double>(n - 1) / 2.0;
}

double silent_tail_lower_bound(std::uint32_t n, double alpha) {
  SSR_REQUIRE(n >= 2);
  SSR_REQUIRE(alpha > 0.0);
  return 0.5 * std::pow(static_cast<double>(n), -3.0 * alpha);
}

}  // namespace ssr
