// The roll call process (Section 2, "Probabilistic tools").
//
// Every agent simultaneously propagates a unique piece of information (its
// name); when two agents interact they merge their knowledge sets.  The
// process completes when every agent has heard from every other agent.  The
// paper (building on Mocquard et al. [48]) shows completion is only ~1.5x
// slower than a single two-way epidemic; bench_epidemic verifies the ratio.
// Roll call upper-bounds any parallel information propagation, e.g. the
// roster-filling phase of Sublinear-Time-SSR.
#pragma once

#include <cstdint>

namespace ssr {

struct roll_call_result {
  /// Parallel time until every agent knows every name.
  double completion_time = 0.0;
  /// Parallel time until *some* agent knows every name (first completion).
  double first_complete_time = 0.0;
  std::uint64_t interactions = 0;
};

/// Simulates one roll call on n agents.
roll_call_result run_roll_call(std::uint32_t n, std::uint64_t seed);

}  // namespace ssr
