// The two-way epidemic process (Section 2, "Probabilistic tools").
//
// One source agent is "infected"; when an infected agent interacts with a
// susceptible one (either role), the susceptible agent becomes infected.
// Completion time -- the parallel time until all n agents are infected --
// is Theta(log n); the classical constant is ~2 ln n / ... ~ (1 + o(1)) *
// (ln n + ln n) interactions per agent, which bench_epidemic measures.
#pragma once

#include <cstdint>

#include "pp/rng.hpp"

namespace ssr {

struct epidemic_result {
  /// Parallel time until the whole population is infected.
  double completion_time = 0.0;
  std::uint64_t interactions = 0;
};

/// Simulates one two-way epidemic on n agents from a single source and
/// returns its completion time.
epidemic_result run_epidemic(std::uint32_t n, std::uint64_t seed);

}  // namespace ssr
