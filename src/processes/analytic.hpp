// Closed-form reference quantities quoted in the paper's analysis:
// harmonic numbers (H_k ~ ln k), the slow leader-election elimination time,
// direct-meeting waits, and the Observation 2.2 tail bound.  Benchmarks
// print these next to the measured values.
#pragma once

#include <cstdint>

namespace ssr {

/// k-th harmonic number H_k = sum_{i=1..k} 1/i.
double harmonic(std::uint64_t k);

/// Expected parallel time for the slow leader election L,L -> L,F to reduce
/// n leaders to one: sum over j = 2..n of n(n-1)/(j(j-1)) interactions =
/// (n-1)^2 interactions, i.e. ~(n-1)^2/n parallel time.  This is why the
/// dormant phase of Optimal-Silent-SSR uses D_max = Theta(n).
double leader_elimination_time(std::uint32_t n);

/// Standard coupon-collector approximation of the parallel time until all
/// but one agent have taken part in some interaction: ~H_n / 2.  This is the
/// Omega(log n) SSLE lower-bound argument from Section 1.1 (from an
/// all-leaders configuration, n-1 leaders must interact to become
/// followers).
double touch_all_but_one_time(std::uint32_t n);

/// Expected parallel time for two *specific* agents to interact: the
/// bottleneck step in Observation 2.2 and in the baseline's Theta(n^2)
/// argument.  Equals n(n-1)/2 interactions / n = (n-1)/2.
double direct_meeting_time(std::uint32_t n);

/// Observation 2.2 tail: a silent SSLE protocol needs >= alpha * n * ln n
/// convergence time with probability at least 0.5 * n^(-3*alpha).
double silent_tail_lower_bound(std::uint32_t n, double alpha);

}  // namespace ssr
