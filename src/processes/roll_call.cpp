#include "processes/roll_call.hpp"

#include <cstdint>
#include <vector>

#include "pp/assert.hpp"
#include "pp/rng.hpp"
#include "pp/scheduler.hpp"

namespace ssr {
namespace {

/// Flat bitset: one row of n bits per agent ("which names have I heard?").
class knowledge_matrix {
 public:
  explicit knowledge_matrix(std::uint32_t n)
      : n_(n), words_per_row_((n + 63) / 64), bits_(std::size_t{n} * words_per_row_, 0) {
    for (std::uint32_t i = 0; i < n; ++i) {
      row(i)[i / 64] |= std::uint64_t{1} << (i % 64);
    }
  }

  /// Merges rows a and b in place; returns the new popcount of the merged
  /// row (identical for both afterwards).
  std::uint32_t merge(std::uint32_t a, std::uint32_t b) {
    std::uint64_t* ra = row(a);
    std::uint64_t* rb = row(b);
    std::uint32_t count = 0;
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      const std::uint64_t merged = ra[w] | rb[w];
      ra[w] = rb[w] = merged;
      count += static_cast<std::uint32_t>(__builtin_popcountll(merged));
    }
    return count;
  }

 private:
  std::uint64_t* row(std::uint32_t i) {
    return bits_.data() + std::size_t{i} * words_per_row_;
  }

  std::uint32_t n_;
  std::size_t words_per_row_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace

roll_call_result run_roll_call(std::uint32_t n, std::uint64_t seed) {
  SSR_REQUIRE(n >= 2);
  knowledge_matrix knowledge(n);
  // complete[i] tracks rows that already know all n names.
  std::vector<char> complete(n, 0);
  std::uint32_t complete_count = 0;

  rng_t rng(seed);
  roll_call_result result;
  std::uint64_t interactions = 0;

  while (complete_count < n) {
    const agent_pair pair = sample_pair(rng, n);
    ++interactions;
    if (complete[pair.initiator] && complete[pair.responder]) continue;
    const std::uint32_t merged = knowledge.merge(pair.initiator, pair.responder);
    if (merged == n) {
      if (result.first_complete_time == 0.0) {
        result.first_complete_time =
            static_cast<double>(interactions) / static_cast<double>(n);
      }
      for (const std::uint32_t agent : {pair.initiator, pair.responder}) {
        if (!complete[agent]) {
          complete[agent] = 1;
          ++complete_count;
        }
      }
    }
  }
  result.interactions = interactions;
  result.completion_time =
      static_cast<double>(interactions) / static_cast<double>(n);
  return result;
}

}  // namespace ssr
