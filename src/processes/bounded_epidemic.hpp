// The bounded epidemic process (Section 1.1 of the paper).
//
// The source agent holds 0, all others hold infinity, and agents interact by
// i, j -> i, i+1 whenever i < j.  An agent's value is the length of the
// shortest interaction path from the source along which it has heard the
// epidemic.  tau_k is the first (parallel) time some designated target agent
// has value <= k; the paper shows E[tau_1] = O(n), E[tau_2] = O(sqrt(n)),
// and in general E[tau_k] = O(k * n^{1/k}), while tau_k = O(log n) once
// k = Omega(log n).  These bounds explain the H-parameterized running times
// of Sublinear-Time-SSR, and bench_epidemic reproduces the tau_k table.
#pragma once

#include <cstdint>
#include <vector>

namespace ssr {

struct bounded_epidemic_result {
  /// hit_time[k] for k = 1..max_k: parallel time at which the target agent's
  /// value first became <= k (0 entries mean "not yet hit at cutoff").
  std::vector<double> hit_time;
  /// Parallel time at which the target was reached at all (its value left
  /// infinity); equals hit_time[k] for every k >= that path length.
  double any_hit_time = 0.0;
  /// Path length via which the target was first reached.
  std::uint32_t first_path_length = 0;
};

/// Runs the bounded epidemic on n agents (source = agent 0, target = agent
/// n-1) until the target has been reached via a path of length <= max_k or
/// the target's value can no longer decrease to max_k (we stop once the
/// target's value is <= max_k).  Values are capped at n (standing in for
/// infinity).
bounded_epidemic_result run_bounded_epidemic(std::uint32_t n,
                                             std::uint32_t max_k,
                                             std::uint64_t seed);

}  // namespace ssr
