// Exhaustive self-stabilization verification over a *non-complete*
// interaction graph.
//
// On a graph, agents are no longer interchangeable (their neighborhoods
// differ), so a configuration is a position-aware state vector -- k^n of
// them rather than multiset-many.  Transitions apply the protocol to every
// oriented edge.  The terminal-SCC criterion is the same as in
// reachability.hpp.  This decides, for tiny n, whether a protocol stays
// self-stabilizing off the complete graph -- e.g. Silent-n-state-SSR on a
// 4-ring has silent *incorrect* terminal configurations (two equal-rank
// agents that are not adjacent can never meet), which
// tests/topology_test.cpp exhibits.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "pp/assert.hpp"
#include "pp/graph.hpp"
#include "pp/protocol.hpp"
#include "pp/rng.hpp"
#include "verify/scc.hpp"

namespace ssr {

struct graph_verification_result {
  std::size_t configurations = 0;
  bool self_stabilizing = false;
  bool silent = false;
  /// A configuration (state indices, agent-indexed) inside an incorrect
  /// terminal component, when self_stabilizing is false.
  std::optional<std::vector<std::size_t>> counterexample;
};

/// Exhaustively verifies `protocol` under the edge scheduler of `graph`.
/// Deterministic transitions and a complete state inventory are required,
/// exactly as in verify_self_stabilization.
template <ranking_protocol P>
graph_verification_result verify_on_graph(
    const P& protocol, const interaction_graph& graph,
    const std::vector<typename P::agent_state>& all_states,
    std::size_t max_configurations = 2'000'000) {
  using state_t = typename P::agent_state;
  const std::uint32_t n = protocol.population_size();
  SSR_REQUIRE(graph.size() == n);
  const std::size_t k = all_states.size();

  auto find_state = [&](const state_t& s) -> std::size_t {
    for (std::size_t i = 0; i < k; ++i) {
      if (all_states[i] == s) return i;
    }
    throw std::logic_error("verify_on_graph: transition left the inventory");
  };

  rng_t dummy_rng(0);
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> delta(
      k, std::vector<std::pair<std::size_t, std::size_t>>(k));
  P probe = protocol;
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b) {
      state_t x = all_states[a];
      state_t y = all_states[b];
      probe.interact(x, y, dummy_rng);
      delta[a][b] = {find_state(x), find_state(y)};
    }
  }

  // Enumerate all k^n position-aware configurations.
  std::size_t total = 1;
  for (std::uint32_t i = 0; i < n; ++i) {
    SSR_REQUIRE(total <= max_configurations / k + 1);
    total *= k;
  }
  SSR_REQUIRE(total <= max_configurations);

  auto decode = [&](std::size_t code) {
    std::vector<std::size_t> config(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      config[i] = code % k;
      code /= k;
    }
    return config;
  };
  auto encode = [&](const std::vector<std::size_t>& config) {
    std::size_t code = 0;
    for (std::uint32_t i = n; i > 0; --i) code = code * k + config[i - 1];
    return code;
  };

  std::vector<std::vector<std::size_t>> adjacency(total);
  std::vector<bool> has_nonnull(total, false);
  std::vector<bool> correct(total, false);
  {
    std::vector<state_t> expanded(n);
    for (std::size_t code = 0; code < total; ++code) {
      const auto config = decode(code);
      for (const auto& [u, v] : graph.edges()) {
        for (const auto& [i, j] :
             {std::pair<std::uint32_t, std::uint32_t>{u, v},
              std::pair<std::uint32_t, std::uint32_t>{v, u}}) {
          const auto [a2, b2] = delta[config[i]][config[j]];
          if (a2 == config[i] && b2 == config[j]) continue;
          has_nonnull[code] = true;
          auto next = config;
          next[i] = a2;
          next[j] = b2;
          adjacency[code].push_back(encode(next));
        }
      }
      std::sort(adjacency[code].begin(), adjacency[code].end());
      adjacency[code].erase(
          std::unique(adjacency[code].begin(), adjacency[code].end()),
          adjacency[code].end());
      for (std::uint32_t i = 0; i < n; ++i)
        expanded[i] = all_states[config[i]];
      correct[code] = is_valid_ranking(protocol, expanded);
    }
  }

  // SCCs and terminal components (verify/scc.hpp).
  const scc_result scc = strongly_connected_components(adjacency);
  const std::vector<bool> terminal = terminal_components(adjacency, scc);
  const std::vector<std::size_t> component_size = component_sizes(scc);

  graph_verification_result result;
  result.configurations = total;
  result.self_stabilizing = true;
  result.silent = true;
  for (std::size_t c = 0; c < total; ++c) {
    const std::size_t comp = scc.component[c];
    if (!terminal[comp]) continue;
    if (!correct[c]) {
      result.self_stabilizing = false;
      if (!result.counterexample) result.counterexample = decode(c);
    }
    if (component_size[comp] != 1 || has_nonnull[c]) result.silent = false;
  }
  return result;
}

}  // namespace ssr
