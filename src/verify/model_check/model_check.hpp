// Exact model checking over the multiset configuration space.
//
// Population-protocol agents are anonymous, so a configuration is fully
// described by its state-count vector: C(n+k-1, n) multisets instead of k^n
// tuples -- the exponential reduction that makes exhaustive verification
// tractable at small n.  config_space.hpp enumerates that lattice for a
// concrete protocol and resolves every ordered state pair through the
// transition function into a `config_graph`: an untyped weighted digraph
// whose edge weights are ordered-agent-pair counts under the uniform-pair
// scheduler (probability = weight / n(n-1)).
//
// run_model_check() answers the paper's claims exactly on that graph:
//
//   closure      -- enforced during construction (an escaping transition
//                   throws, mirroring verify_self_stabilization)
//   silence      -- every terminal SCC is a single configuration with no
//                   enabled non-null transition
//   stabilization-- every terminal SCC satisfies the correctness predicate
//   expected time-- exact expected interactions to absorption into the
//                   *stably correct* set (configurations that cannot reach
//                   an incorrect configuration), by a linear solve over the
//                   transient configurations: SCC condensation makes the
//                   system block-triangular, so each SCC is solved densely
//                   in reverse topological order.  Reported per
//                   configuration, as the worst case over all initial
//                   configurations, and weighted by the uniform-per-agent
//                   initial distribution (the multinomial over multisets)
//                   for cross-checking against empirical benches.
//
// Violations carry shortest counterexamples (paths/cycles of concrete
// interactions) that write_counterexample_jsonl() serializes as a
// trace_stats-compatible ssr.trace JSONL artifact: states become the phase
// table, each interaction a phase_transition, and a correct->incorrect
// crossing a correctness_lost event.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace ssr::verify {

/// One non-null resolved transition out of a configuration: the ordered
/// state pair (initiator_state, responder_state) occurs `weight` times
/// among the n(n-1) ordered agent pairs and rewrites the pair to
/// (initiator_after, responder_after), taking the configuration to
/// `target` (which may equal the source: a state swap is a non-null
/// self-loop in multiset space).
struct config_edge {
  std::size_t target = 0;
  std::uint64_t weight = 0;
  std::uint32_t initiator_state = 0;
  std::uint32_t responder_state = 0;
  std::uint32_t initiator_after = 0;
  std::uint32_t responder_after = 0;
};

/// The configuration digraph: one vertex per state multiset, weighted
/// non-null edges, null-pair mass, and the correctness flag per vertex.
/// Built by build_config_graph (config_space.hpp); consumed untyped by
/// run_model_check, the lint layer, the CLI, and the bench.
struct config_graph {
  std::uint32_t n = 0;             // population size
  std::size_t state_count = 0;     // k, the state inventory size
  std::vector<std::string> state_labels;            // k labels
  std::vector<std::vector<std::uint32_t>> configs;  // counts, k per config
  std::vector<std::vector<config_edge>> edges;      // non-null transitions
  std::vector<std::uint64_t> null_weight;           // null ordered-pair mass
  std::vector<bool> correct;

  /// Total ordered-pair weight per configuration, n(n-1).
  std::uint64_t pair_weight() const {
    return static_cast<std::uint64_t>(n) * (n - 1);
  }

  /// "{rank=0 x2, rank=1}" -- human-readable multiset rendering.
  std::string config_name(std::size_t config) const;

  /// P(config) under independent uniform-per-agent initial states: the
  /// multinomial n! / prod(c_i!) * k^-n.  Sums to 1 over all configs.
  double uniform_initial_probability(std::size_t config) const;
};

/// One interaction along a counterexample.
struct counterexample_step {
  std::size_t from_config = 0;
  std::size_t to_config = 0;
  std::uint32_t initiator_state = 0;
  std::uint32_t responder_state = 0;
  std::uint32_t initiator_after = 0;
  std::uint32_t responder_after = 0;
};

struct counterexample {
  enum class kind_t : std::uint8_t {
    /// A terminal SCC keeps interacting forever: `steps` is a shortest
    /// non-null cycle inside the component, starting and ending at
    /// `witness`.
    hot_terminal,
    /// An incorrect configuration is stably reachable: `steps` is a
    /// shortest path from a *correct* configuration into the incorrect
    /// terminal witness (empty when no correct configuration can reach
    /// it -- the witness alone is the counterexample, since
    /// self-stabilization quantifies over every initial configuration).
    incorrect_terminal,
  };
  kind_t kind = kind_t::hot_terminal;
  std::size_t witness = 0;
  std::vector<counterexample_step> steps;
};

struct model_check_options {
  /// SCCs up to this size are solved by dense Gaussian elimination; larger
  /// ones fall back to Gauss-Seidel sweeps (residual recorded in the
  /// result).  3000^2 doubles = 72 MB scratch, the practical ceiling.
  std::size_t dense_scc_cap = 3000;
  /// Gauss-Seidel convergence threshold (max absolute residual) and sweep
  /// budget for the fallback path.
  double iterative_tolerance = 1e-10;
  std::size_t max_sweeps = 200000;
};

struct model_check_result {
  std::size_t configurations = 0;
  std::size_t transitions = 0;  // non-null config edges, self-loops included
  std::size_t scc_count = 0;
  std::size_t terminal_classes = 0;
  std::size_t largest_scc = 0;

  /// Every terminal SCC is a single configuration with no enabled
  /// transition.
  bool silent = false;
  /// Every terminal SCC satisfies the correctness predicate.
  bool self_stabilizing = false;

  std::optional<counterexample> silence_counterexample;
  std::optional<counterexample> stabilization_counterexample;

  /// Witness configurations of *spurious* terminal classes: terminal SCCs
  /// with no incoming edge from outside the class.  Such stable outcomes
  /// exist only as initial conditions (deserialization artifacts) -- the
  /// configuration-level analogue of the L011 dead-state audit.
  std::vector<std::size_t> spurious_terminal_witnesses;

  /// Exact expected interactions to absorption into the stably correct
  /// set, from each configuration.  Computed only when self_stabilizing
  /// (otherwise some configuration never absorbs and the expectation
  /// diverges).
  bool expected_time_computed = false;
  std::vector<double> expected_interactions;
  double worst_expected_interactions = 0.0;
  std::size_t worst_config = 0;
  /// Expectation under the uniform-per-agent initial distribution.
  double uniform_expected_interactions = 0.0;
  /// Max absolute residual of the linear solve (0 for pure dense solves).
  double solve_residual = 0.0;
};

model_check_result run_model_check(const config_graph& graph,
                                   const model_check_options& options = {});

/// Serializes a counterexample as ssr.trace JSONL (schema_version 2): the
/// state inventory becomes the phase-name table, every step one or two
/// phase_transition events (initiator = agent 0, responder = agent 1 --
/// agents are anonymous, the ids only distinguish the two slots), and
/// correctness crossings convergence / correctness_lost events.  The
/// output parses with trace_stats unchanged.
void write_counterexample_jsonl(std::ostream& os, const config_graph& graph,
                                const counterexample& cx);

}  // namespace ssr::verify
