// Builds the multiset configuration graph of a concrete protocol.
//
// This is the typed half of the model checker (model_check.hpp): it
// resolves the protocol's transition function over the declared state
// inventory into a delta table -- enforcing closure exactly like
// verify_self_stabilization -- enumerates every size-n multiset over the k
// inventory states, and materializes the weighted configuration digraph
// the untyped analysis consumes.  Requirements match reachability.hpp:
// deterministic transitions (the rng is never consulted) and an exhaustive
// state inventory.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "pp/assert.hpp"
#include "pp/protocol.hpp"
#include "pp/rng.hpp"
#include "verify/model_check/model_check.hpp"

namespace ssr::verify {

struct config_space_options {
  /// Hard cap on enumerated configurations (guards against accidentally
  /// huge state inventories).
  std::size_t max_configurations = 2'000'000;
};

/// State-index labeler for config_graph::state_labels; defaults to
/// "state #i" when the caller has no protocol-vocabulary rendering.
using state_label_fn = std::function<std::string(std::size_t)>;

/// Builds the configuration graph of `protocol` over `all_states`, with
/// `correct` evaluated on expanded state vectors (sorted by inventory
/// index).  Throws std::logic_error when a transition escapes the declared
/// inventory (closure violation).
template <class P>
config_graph build_config_graph(
    const P& protocol, const std::vector<typename P::agent_state>& all_states,
    const std::function<bool(const std::vector<typename P::agent_state>&)>&
        correct,
    const state_label_fn& label = {},
    const config_space_options& options = {}) {
  using state_t = typename P::agent_state;
  const std::uint32_t n = protocol.population_size();
  SSR_REQUIRE(n >= 2);
  SSR_REQUIRE(!all_states.empty());
  const std::size_t k = all_states.size();

  config_graph graph;
  graph.n = n;
  graph.state_count = k;
  graph.state_labels.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    graph.state_labels.push_back(label ? label(i)
                                       : "state #" + std::to_string(i));
  }

  // --- delta table, with closure enforced ---------------------------------
  auto find_state = [&](const state_t& s) -> std::size_t {
    for (std::size_t i = 0; i < k; ++i) {
      if (all_states[i] == s) return i;
    }
    throw std::logic_error(
        "build_config_graph: transition left the provided state inventory");
  };
  rng_t dummy_rng(0);  // protocols under verification never consult it
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> delta(
      k, std::vector<std::pair<std::uint32_t, std::uint32_t>>(k));
  P probe = protocol;
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b) {
      state_t x = all_states[a];
      state_t y = all_states[b];
      probe.interact(x, y, dummy_rng);
      delta[a][b] = {static_cast<std::uint32_t>(find_state(x)),
                     static_cast<std::uint32_t>(find_state(y))};
    }
  }

  // --- enumerate all count vectors summing to n ---------------------------
  std::vector<std::uint32_t> current(k, 0);
  const std::function<void(std::size_t, std::uint32_t)> enumerate =
      [&](std::size_t state, std::uint32_t remaining) {
        if (state + 1 == k) {
          current[state] = remaining;
          graph.configs.push_back(current);
          SSR_REQUIRE(graph.configs.size() <= options.max_configurations);
          return;
        }
        for (std::uint32_t c = 0; c <= remaining; ++c) {
          current[state] = c;
          enumerate(state + 1, remaining - c);
        }
        current[state] = 0;
      };
  enumerate(0, n);

  std::map<std::vector<std::uint32_t>, std::size_t> config_index;
  for (std::size_t i = 0; i < graph.configs.size(); ++i) {
    config_index.emplace(graph.configs[i], i);
  }

  // --- weighted edges: every ordered state pair present in the config ----
  const std::size_t num = graph.configs.size();
  graph.edges.resize(num);
  graph.null_weight.assign(num, 0);
  graph.correct.assign(num, false);
  std::vector<state_t> expanded(n);
  for (std::size_t ci = 0; ci < num; ++ci) {
    const std::vector<std::uint32_t>& counts = graph.configs[ci];
    for (std::uint32_t a = 0; a < k; ++a) {
      if (counts[a] == 0) continue;
      for (std::uint32_t b = 0; b < k; ++b) {
        const std::uint32_t responders = counts[b] - (a == b ? 1u : 0u);
        if (responders == 0) continue;
        const std::uint64_t weight =
            static_cast<std::uint64_t>(counts[a]) * responders;
        const auto [a2, b2] = delta[a][b];
        if (a2 == a && b2 == b) {
          graph.null_weight[ci] += weight;
          continue;
        }
        std::vector<std::uint32_t> next = counts;
        --next[a];
        --next[b];
        ++next[a2];
        ++next[b2];
        graph.edges[ci].push_back({config_index.at(next), weight, a, b,
                                   static_cast<std::uint32_t>(a2),
                                   static_cast<std::uint32_t>(b2)});
      }
    }
    std::size_t slot = 0;
    for (std::uint32_t s = 0; s < k; ++s) {
      for (std::uint32_t c = 0; c < counts[s]; ++c) {
        expanded[slot++] = all_states[s];
      }
    }
    graph.correct[ci] = correct(expanded);
  }
  return graph;
}

/// Convenience wrapper for ranking protocols: correctness is
/// is_valid_ranking (the output map is a permutation of 1..n).
template <ranking_protocol P>
config_graph build_ranking_config_graph(
    const P& protocol, const std::vector<typename P::agent_state>& all_states,
    const state_label_fn& label = {},
    const config_space_options& options = {}) {
  return build_config_graph<P>(
      protocol, all_states,
      [&protocol](const std::vector<typename P::agent_state>& config) {
        return is_valid_ranking(protocol, config);
      },
      label, options);
}

}  // namespace ssr::verify
