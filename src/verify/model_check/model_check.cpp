#include "verify/model_check/model_check.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <ostream>
#include <sstream>

#include "obs/trace.hpp"
#include "pp/assert.hpp"
#include "verify/scc.hpp"

namespace ssr::verify {
namespace {

constexpr std::size_t kNone = SIZE_MAX;

std::vector<std::vector<std::size_t>> target_adjacency(
    const config_graph& graph) {
  std::vector<std::vector<std::size_t>> adjacency(graph.configs.size());
  for (std::size_t ci = 0; ci < graph.configs.size(); ++ci) {
    for (const config_edge& e : graph.edges[ci]) {
      adjacency[ci].push_back(e.target);
    }
  }
  return adjacency;
}

/// Shortest non-null cycle through `witness`, restricted to its (terminal)
/// component: BFS over successors until the walk returns to the witness.
std::vector<counterexample_step> shortest_cycle(const config_graph& graph,
                                                const scc_result& scc,
                                                std::size_t witness) {
  const std::size_t comp = scc.component[witness];
  std::vector<std::size_t> parent(graph.configs.size(), kNone);
  std::vector<const config_edge*> parent_edge(graph.configs.size(), nullptr);
  std::deque<std::size_t> queue;

  auto reconstruct = [&](const config_edge& last,
                         std::size_t last_from) {
    std::vector<counterexample_step> steps;
    steps.push_back({last_from, last.target, last.initiator_state,
                     last.responder_state, last.initiator_after,
                     last.responder_after});
    std::size_t at = last_from;
    while (at != witness) {
      const config_edge* e = parent_edge[at];
      steps.push_back({parent[at], at, e->initiator_state, e->responder_state,
                       e->initiator_after, e->responder_after});
      at = parent[at];
    }
    std::reverse(steps.begin(), steps.end());
    return steps;
  };

  for (const config_edge& e : graph.edges[witness]) {
    if (e.target == witness) {
      // A non-null self-loop (e.g. a state swap) is the shortest hot cycle.
      return reconstruct(e, witness);
    }
  }
  queue.push_back(witness);
  std::vector<bool> seen(graph.configs.size(), false);
  seen[witness] = true;
  while (!queue.empty()) {
    const std::size_t at = queue.front();
    queue.pop_front();
    for (const config_edge& e : graph.edges[at]) {
      if (scc.component[e.target] != comp) continue;
      if (e.target == witness) return reconstruct(e, at);
      if (seen[e.target]) continue;
      seen[e.target] = true;
      parent[e.target] = at;
      parent_edge[e.target] = &e;
      queue.push_back(e.target);
    }
  }
  return {};  // unreachable for a component with at least one edge
}

/// Multi-source BFS from every correct configuration; returns the shortest
/// path into any configuration for which `is_goal` holds, or empty when no
/// correct configuration reaches one.
std::vector<counterexample_step> shortest_escape(
    const config_graph& graph, const std::vector<bool>& is_goal,
    std::size_t* goal_out) {
  const std::size_t num = graph.configs.size();
  std::vector<std::size_t> parent(num, kNone);
  std::vector<const config_edge*> parent_edge(num, nullptr);
  std::vector<bool> seen(num, false);
  std::deque<std::size_t> queue;
  for (std::size_t ci = 0; ci < num; ++ci) {
    if (graph.correct[ci]) {
      seen[ci] = true;
      queue.push_back(ci);
    }
  }
  while (!queue.empty()) {
    const std::size_t at = queue.front();
    queue.pop_front();
    for (const config_edge& e : graph.edges[at]) {
      if (seen[e.target]) continue;
      seen[e.target] = true;
      parent[e.target] = at;
      parent_edge[e.target] = &e;
      if (is_goal[e.target]) {
        std::vector<counterexample_step> steps;
        std::size_t walk = e.target;
        if (goal_out != nullptr) *goal_out = walk;
        while (parent[walk] != kNone) {
          const config_edge* pe = parent_edge[walk];
          steps.push_back({parent[walk], walk, pe->initiator_state,
                           pe->responder_state, pe->initiator_after,
                           pe->responder_after});
          walk = parent[walk];
        }
        std::reverse(steps.begin(), steps.end());
        return steps;
      }
      queue.push_back(e.target);
    }
  }
  return {};
}

/// Marks every configuration that can reach an incorrect configuration
/// (reverse BFS); the complement is the stably correct absorbing set.
std::vector<bool> can_reach_incorrect(const config_graph& graph) {
  const std::size_t num = graph.configs.size();
  std::vector<std::vector<std::size_t>> reverse(num);
  for (std::size_t ci = 0; ci < num; ++ci) {
    for (const config_edge& e : graph.edges[ci]) {
      if (e.target != ci) reverse[e.target].push_back(ci);
    }
  }
  std::vector<bool> bad(num, false);
  std::deque<std::size_t> queue;
  for (std::size_t ci = 0; ci < num; ++ci) {
    if (!graph.correct[ci]) {
      bad[ci] = true;
      queue.push_back(ci);
    }
  }
  while (!queue.empty()) {
    const std::size_t at = queue.front();
    queue.pop_front();
    for (const std::size_t prev : reverse[at]) {
      if (bad[prev]) continue;
      bad[prev] = true;
      queue.push_back(prev);
    }
  }
  return bad;
}

/// Solves the hitting-time system for one transient SCC, given the already
/// solved successor components.  Equations (W = n(n-1) ordered pairs):
///
///   W * t_i = W + null_i * t_i + sum_edges w * t_target
///
/// Internal targets (same SCC) stay unknown; external targets are known.
/// Dense Gaussian elimination with partial pivoting for small components,
/// Gauss-Seidel sweeps beyond the cap.  Returns the max residual.
double solve_component(const config_graph& graph,
                       const std::vector<std::size_t>& members,
                       const std::vector<std::size_t>& local_index,
                       const scc_result& scc, std::size_t comp,
                       const model_check_options& options,
                       std::vector<double>& t) {
  const std::size_t m = members.size();
  const double w_total = static_cast<double>(graph.pair_weight());

  if (m <= options.dense_scc_cap) {
    std::vector<double> matrix(m * m, 0.0);
    std::vector<double> rhs(m, w_total);
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t ci = members[r];
      matrix[r * m + r] =
          w_total - static_cast<double>(graph.null_weight[ci]);
      for (const config_edge& e : graph.edges[ci]) {
        const double w = static_cast<double>(e.weight);
        if (scc.component[e.target] == comp) {
          matrix[r * m + local_index[e.target]] -= w;
        } else {
          rhs[r] += w * t[e.target];
        }
      }
    }
    // Gaussian elimination, partial pivoting.
    for (std::size_t col = 0; col < m; ++col) {
      std::size_t pivot = col;
      for (std::size_t r = col + 1; r < m; ++r) {
        if (std::abs(matrix[r * m + col]) >
            std::abs(matrix[pivot * m + col])) {
          pivot = r;
        }
      }
      if (pivot != col) {
        for (std::size_t c = col; c < m; ++c) {
          std::swap(matrix[col * m + c], matrix[pivot * m + c]);
        }
        std::swap(rhs[col], rhs[pivot]);
      }
      const double diag = matrix[col * m + col];
      SSR_REQUIRE(diag != 0.0);  // transient SCCs are strictly substochastic
      for (std::size_t r = col + 1; r < m; ++r) {
        const double factor = matrix[r * m + col] / diag;
        if (factor == 0.0) continue;
        for (std::size_t c = col; c < m; ++c) {
          matrix[r * m + c] -= factor * matrix[col * m + c];
        }
        rhs[r] -= factor * rhs[col];
      }
    }
    for (std::size_t r = m; r-- > 0;) {
      double acc = rhs[r];
      for (std::size_t c = r + 1; c < m; ++c) {
        acc -= matrix[r * m + c] * t[members[c]];
      }
      t[members[r]] = acc / matrix[r * m + r];
    }
    return 0.0;
  }

  // Gauss-Seidel fallback for outsized components.
  for (const std::size_t ci : members) t[ci] = 0.0;
  double residual = 0.0;
  for (std::size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    residual = 0.0;
    for (const std::size_t ci : members) {
      double self_weight = static_cast<double>(graph.null_weight[ci]);
      double acc = w_total;
      for (const config_edge& e : graph.edges[ci]) {
        if (e.target == ci) {
          self_weight += static_cast<double>(e.weight);
        } else {
          acc += static_cast<double>(e.weight) * t[e.target];
        }
      }
      const double updated = acc / (w_total - self_weight);
      residual = std::max(residual, std::abs(updated - t[ci]));
      t[ci] = updated;
    }
    if (residual < options.iterative_tolerance) break;
  }
  return residual;
}

}  // namespace

std::string config_graph::config_name(std::size_t config) const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  const std::vector<std::uint32_t>& counts = configs[config];
  for (std::size_t s = 0; s < counts.size(); ++s) {
    if (counts[s] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << state_labels[s];
    if (counts[s] > 1) os << " x" << counts[s];
  }
  os << '}';
  return os.str();
}

double config_graph::uniform_initial_probability(std::size_t config) const {
  // n! / prod(c_i!) * k^-n, evaluated as a running product to stay within
  // double range at every step.
  double probability = 1.0;
  std::uint32_t placed = 0;
  const double k = static_cast<double>(state_count);
  for (const std::uint32_t count : configs[config]) {
    for (std::uint32_t c = 1; c <= count; ++c) {
      ++placed;
      probability *= static_cast<double>(placed) / static_cast<double>(c);
      probability /= k;
    }
  }
  return probability;
}

model_check_result run_model_check(const config_graph& graph,
                                   const model_check_options& options) {
  const std::size_t num = graph.configs.size();
  model_check_result result;
  result.configurations = num;
  for (const auto& edges : graph.edges) result.transitions += edges.size();

  const std::vector<std::vector<std::size_t>> adjacency =
      target_adjacency(graph);
  const scc_result scc = strongly_connected_components(adjacency);
  const std::vector<bool> terminal = terminal_components(adjacency, scc);
  const std::vector<std::size_t> sizes = component_sizes(scc);
  result.scc_count = scc.count;
  for (const std::size_t s : sizes) {
    result.largest_scc = std::max(result.largest_scc, s);
  }
  for (std::size_t comp = 0; comp < scc.count; ++comp) {
    result.terminal_classes += terminal[comp] ? 1 : 0;
  }

  // --- silence and stabilization verdicts ---------------------------------
  result.silent = true;
  result.self_stabilizing = true;
  std::vector<bool> incorrect_terminal(num, false);
  std::size_t hot_witness = kNone;
  std::size_t bad_witness = kNone;
  for (std::size_t ci = 0; ci < num; ++ci) {
    const std::size_t comp = scc.component[ci];
    if (!terminal[comp]) continue;
    if (sizes[comp] != 1 || !graph.edges[ci].empty()) {
      result.silent = false;
      if (hot_witness == kNone && !graph.edges[ci].empty()) hot_witness = ci;
    }
    if (!graph.correct[ci]) {
      result.self_stabilizing = false;
      incorrect_terminal[ci] = true;
      if (bad_witness == kNone) bad_witness = ci;
    }
  }
  if (!result.silent && hot_witness != kNone) {
    counterexample cx;
    cx.kind = counterexample::kind_t::hot_terminal;
    cx.witness = hot_witness;
    cx.steps = shortest_cycle(graph, scc, hot_witness);
    result.silence_counterexample = std::move(cx);
  }
  if (!result.self_stabilizing) {
    counterexample cx;
    cx.kind = counterexample::kind_t::incorrect_terminal;
    cx.witness = bad_witness;
    std::size_t reached = kNone;
    cx.steps = shortest_escape(graph, incorrect_terminal, &reached);
    if (reached != kNone) cx.witness = reached;
    result.stabilization_counterexample = std::move(cx);
  }

  // --- spurious terminal classes ------------------------------------------
  if (scc.count > 1) {
    std::vector<bool> external_in(scc.count, false);
    for (std::size_t ci = 0; ci < num; ++ci) {
      for (const config_edge& e : graph.edges[ci]) {
        if (scc.component[e.target] != scc.component[ci]) {
          external_in[scc.component[e.target]] = true;
        }
      }
    }
    std::vector<std::size_t> witness(scc.count, kNone);
    for (std::size_t ci = num; ci-- > 0;) witness[scc.component[ci]] = ci;
    for (std::size_t comp = 0; comp < scc.count; ++comp) {
      if (terminal[comp] && !external_in[comp]) {
        result.spurious_terminal_witnesses.push_back(witness[comp]);
      }
    }
    std::sort(result.spurious_terminal_witnesses.begin(),
              result.spurious_terminal_witnesses.end());
  }

  // --- exact expected interactions to stable correctness ------------------
  if (!result.self_stabilizing) return result;

  const std::vector<bool> bad = can_reach_incorrect(graph);
  result.expected_time_computed = true;
  result.expected_interactions.assign(num, 0.0);

  // Group the transient configurations per component; component ids are in
  // reverse topological order (verify/scc.hpp), so a forward scan solves
  // every successor before it is referenced.
  std::vector<std::vector<std::size_t>> members(scc.count);
  for (std::size_t ci = 0; ci < num; ++ci) {
    if (bad[ci]) members[scc.component[ci]].push_back(ci);
  }
  std::vector<std::size_t> local_index(num, 0);
  for (std::size_t comp = 0; comp < scc.count; ++comp) {
    if (members[comp].empty()) continue;
    for (std::size_t i = 0; i < members[comp].size(); ++i) {
      local_index[members[comp][i]] = i;
    }
    const double residual =
        solve_component(graph, members[comp], local_index, scc, comp, options,
                        result.expected_interactions);
    result.solve_residual = std::max(result.solve_residual, residual);
  }

  for (std::size_t ci = 0; ci < num; ++ci) {
    if (result.expected_interactions[ci] >
        result.worst_expected_interactions) {
      result.worst_expected_interactions = result.expected_interactions[ci];
      result.worst_config = ci;
    }
    result.uniform_expected_interactions +=
        graph.uniform_initial_probability(ci) *
        result.expected_interactions[ci];
  }
  return result;
}

void write_counterexample_jsonl(std::ostream& os, const config_graph& graph,
                                const counterexample& cx) {
  obs::trace_sink sink;
  const double per_interaction = 1.0 / static_cast<double>(graph.n);
  std::uint64_t interaction = 0;
  sink.emit({obs::trace_event_kind::run_start, 0.0, 0});
  std::size_t at = cx.steps.empty() ? cx.witness : cx.steps.front().from_config;
  for (const counterexample_step& step : cx.steps) {
    ++interaction;
    const double time = static_cast<double>(interaction) * per_interaction;
    if (step.initiator_state != step.initiator_after) {
      sink.emit({obs::trace_event_kind::phase_transition, time, interaction,
                 0, static_cast<std::int32_t>(step.initiator_state),
                 static_cast<std::int32_t>(step.initiator_after)});
    }
    if (step.responder_state != step.responder_after) {
      sink.emit({obs::trace_event_kind::phase_transition, time, interaction,
                 1, static_cast<std::int32_t>(step.responder_state),
                 static_cast<std::int32_t>(step.responder_after)});
    }
    if (graph.correct[at] && !graph.correct[step.to_config]) {
      sink.emit({obs::trace_event_kind::correctness_lost, time, interaction});
    } else if (!graph.correct[at] && graph.correct[step.to_config]) {
      sink.emit({obs::trace_event_kind::convergence, time, interaction});
    }
    at = step.to_config;
  }
  sink.emit({obs::trace_event_kind::run_end,
             static_cast<double>(interaction) * per_interaction, interaction});
  std::vector<std::string_view> phase_names(graph.state_labels.begin(),
                                            graph.state_labels.end());
  sink.write_jsonl(os, phase_names);
}

}  // namespace ssr::verify
