// Statistical model checking: Wald's sequential probability ratio test
// (SPRT) over randomized executions.
//
// The exhaustive verifier (reachability.hpp) proves probability-1 claims
// for tiny n; for larger populations we check *quantitative* claims of the
// form
//
//     P[ property of a random execution ] >= theta
//
// with prescribed error bounds, sampling only as many seeded runs as the
// evidence requires (typically tens, not thousands).  The hypotheses are
// separated by an indifference region: H1: p >= theta + delta versus
// H0: p <= theta - delta, with false-acceptance/rejection probabilities
// alpha and beta -- the standard UPPAAL-SMC/PRISM formulation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace ssr {

enum class smc_verdict {
  holds,      // accepted: p >= theta + delta (up to error alpha)
  violated,   // rejected: p <= theta - delta (up to error beta)
  undecided,  // sample budget exhausted inside the indifference region
};

struct smc_options {
  double theta = 0.9;   // claimed probability
  double delta = 0.05;  // half-width of the indifference region
  double alpha = 0.01;  // P[accept | H0]
  double beta = 0.01;   // P[reject | H1]
  std::uint64_t max_samples = 100000;
};

struct smc_result {
  smc_verdict verdict = smc_verdict::undecided;
  std::uint64_t samples = 0;
  std::uint64_t successes = 0;
  double log_likelihood_ratio = 0.0;
};

/// Runs the SPRT; `trial(seed)` must return whether the property held on
/// one execution seeded with `seed` (seeds are derived from `base_seed`).
smc_result sequential_probability_test(
    const std::function<bool(std::uint64_t)>& trial, const smc_options& opt,
    std::uint64_t base_seed);

std::string to_string(smc_verdict verdict);

}  // namespace ssr
