// Strongly connected components over explicit adjacency lists.
//
// Both exhaustive verifiers (reachability.hpp over state multisets,
// graph_reachability.hpp over position-aware tuples) and the configuration
// model checker (model_check/) reduce their verdicts to the same graph
// question: which SCCs of a digraph are *terminal* (no edge leaves the
// component)?  This header is that shared kernel: an iterative Tarjan --
// explicit frame stack, so million-vertex configuration graphs cannot
// overflow the call stack -- plus the terminal-component classification.
//
// Component ids are assigned in Tarjan completion order, which is reverse
// topological order of the condensation: for every edge u -> v crossing
// components, component[u] > component[v].  The absorption-time solver in
// model_check/ relies on this (processing components in increasing id
// order visits every successor before its predecessors).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ssr {

struct scc_result {
  /// Vertex -> component id; ids are dense in [0, count).
  std::vector<std::size_t> component;
  std::size_t count = 0;
};

/// Tarjan's algorithm, iterative.  `adjacency[v]` lists the successors of
/// vertex v (duplicates and self-loops are allowed and do not affect the
/// result).  An empty graph yields zero components.
inline scc_result strongly_connected_components(
    const std::vector<std::vector<std::size_t>>& adjacency) {
  const std::size_t num = adjacency.size();
  scc_result result;
  result.component.assign(num, SIZE_MAX);

  std::vector<std::int64_t> index(num, -1), low(num, 0);
  std::vector<bool> on_stack(num, false);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0;

  struct frame {
    std::size_t v;
    std::size_t edge;
  };
  for (std::size_t root = 0; root < num; ++root) {
    if (index[root] != -1) continue;
    std::vector<frame> call_stack{{root, 0}};
    while (!call_stack.empty()) {
      auto& [v, edge] = call_stack.back();
      if (edge == 0) {
        index[v] = low[v] = static_cast<std::int64_t>(next_index++);
        stack.push_back(v);
        on_stack[v] = true;
      }
      if (edge < adjacency[v].size()) {
        const std::size_t w = adjacency[v][edge++];
        if (index[w] == -1) {
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
      } else {
        if (low[v] == index[v]) {
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component[w] = result.count;
            if (w == v) break;
          }
          ++result.count;
        }
        const std::size_t child = v;
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const std::size_t parent = call_stack.back().v;
          low[parent] = std::min(low[parent], low[child]);
        }
      }
    }
  }
  return result;
}

/// terminal[c] is true iff no edge leaves component c.  A vertex's
/// self-loop never disqualifies its component: a single silent (or
/// spinning) configuration is exactly the terminal singleton the verifiers
/// test for.
inline std::vector<bool> terminal_components(
    const std::vector<std::vector<std::size_t>>& adjacency,
    const scc_result& scc) {
  std::vector<bool> terminal(scc.count, true);
  for (std::size_t v = 0; v < adjacency.size(); ++v) {
    for (const std::size_t w : adjacency[v]) {
      if (scc.component[w] != scc.component[v]) {
        terminal[scc.component[v]] = false;
      }
    }
  }
  return terminal;
}

/// Per-component vertex counts.
inline std::vector<std::size_t> component_sizes(const scc_result& scc) {
  std::vector<std::size_t> sizes(scc.count, 0);
  for (const std::size_t c : scc.component) ++sizes[c];
  return sizes;
}

}  // namespace ssr
