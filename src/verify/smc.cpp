#include "verify/smc.hpp"

#include <cmath>
#include <string>

#include "pp/assert.hpp"
#include "pp/rng.hpp"

namespace ssr {

smc_result sequential_probability_test(
    const std::function<bool(std::uint64_t)>& trial, const smc_options& opt,
    std::uint64_t base_seed) {
  SSR_REQUIRE(opt.delta > 0.0);
  SSR_REQUIRE(opt.theta + opt.delta < 1.0 && opt.theta - opt.delta > 0.0);
  SSR_REQUIRE(opt.alpha > 0.0 && opt.alpha < 0.5);
  SSR_REQUIRE(opt.beta > 0.0 && opt.beta < 0.5);

  const double p1 = opt.theta + opt.delta;  // H1
  const double p0 = opt.theta - opt.delta;  // H0
  // Accept H1 when the log likelihood ratio exceeds log((1-beta)/alpha);
  // accept H0 when it falls below log(beta/(1-alpha)).
  const double upper = std::log((1.0 - opt.beta) / opt.alpha);
  const double lower = std::log(opt.beta / (1.0 - opt.alpha));
  const double success_step = std::log(p1 / p0);
  const double failure_step = std::log((1.0 - p1) / (1.0 - p0));

  smc_result result;
  while (result.samples < opt.max_samples) {
    const bool success = trial(derive_seed(base_seed, result.samples));
    ++result.samples;
    result.successes += success ? 1 : 0;
    result.log_likelihood_ratio += success ? success_step : failure_step;
    if (result.log_likelihood_ratio >= upper) {
      result.verdict = smc_verdict::holds;
      return result;
    }
    if (result.log_likelihood_ratio <= lower) {
      result.verdict = smc_verdict::violated;
      return result;
    }
  }
  return result;
}

std::string to_string(smc_verdict verdict) {
  switch (verdict) {
    case smc_verdict::holds: return "holds";
    case smc_verdict::violated: return "violated";
    case smc_verdict::undecided: return "undecided";
  }
  return "unknown";
}

}  // namespace ssr
