// Exhaustive verification of self-stabilization for small populations.
//
// Self-stabilization is a probability-1 claim over *every* starting
// configuration.  For a finite protocol this is decidable: view the set of
// configurations (multisets of agent states -- agents are anonymous, so
// counts are a sufficient description) as a digraph with an edge C -> C'
// whenever some ordered agent pair's transition takes C to C'.  Under the
// uniform random scheduler every edge has positive probability, so
//
//   the protocol stabilizes with probability 1 from every configuration
//     <=>  every terminal (bottom) strongly connected component of the
//          configuration digraph consists of correct configurations,
//
// and it is additionally *silent* iff every terminal component is a single
// configuration with no non-null transition.  This module enumerates the
// full configuration space (all multisets of size n over the protocol's
// state inventory), builds the digraph, runs Tarjan's SCC algorithm, and
// checks the terminal components.  tests/verify_test.cpp uses it to
// machine-check Theorem 4.1's stabilization claim (and Protocol 1's) at
// small n, and to reject protocols that are *not* self-stabilizing (the
// initialized (l,l)->(l,f) protocol; mutated baselines).
//
// Requirements on the protocol: deterministic transitions (the rng argument
// of interact() is not consulted -- true for Protocols 1 and 3/4 and the
// initialized contrast protocol), plus an exhaustive state inventory.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "pp/assert.hpp"
#include "pp/protocol.hpp"
#include "pp/rng.hpp"
#include "verify/scc.hpp"

namespace ssr {

struct verification_options {
  /// Hard cap on explored configurations (guards against accidentally huge
  /// state inventories).
  std::size_t max_configurations = 2'000'000;
};

struct verification_result {
  /// Number of distinct configurations (multisets) in the space.
  std::size_t configurations = 0;
  /// Number of terminal strongly connected components.
  std::size_t terminal_components = 0;
  /// Every terminal component consists of correct configurations: the
  /// protocol reaches a stably correct configuration with probability 1
  /// from every starting configuration.
  bool self_stabilizing = false;
  /// Every terminal component is a single silent configuration.
  bool silent = false;
  /// A witness configuration inside an incorrect terminal component (state
  /// multiset, encoded), when self_stabilizing is false.
  std::optional<std::vector<std::size_t>> counterexample;
};

/// Exhaustively verifies `protocol` for its population size n.
/// `all_states` must list every reachable agent state (a superset is fine;
/// unreachable states only enlarge the search).  Transitions must be
/// deterministic.  `is_correct(config)` is evaluated on state multisets
/// given as vectors of indices into `all_states`.
template <ranking_protocol P>
verification_result verify_self_stabilization(
    const P& protocol, const std::vector<typename P::agent_state>& all_states,
    const verification_options& options = {}) {
  using state_t = typename P::agent_state;
  const std::uint32_t n = protocol.population_size();
  SSR_REQUIRE(n >= 2);
  SSR_REQUIRE(!all_states.empty());

  // --- index states; transitions computed on the index pair level --------
  const std::size_t k = all_states.size();
  auto find_state = [&](const state_t& s) -> std::size_t {
    for (std::size_t i = 0; i < k; ++i) {
      if (all_states[i] == s) return i;
    }
    throw std::logic_error(
        "verify_self_stabilization: transition left the provided state "
        "inventory");
  };

  // delta[a][b] = (a', b') for the ordered interaction (a initiator).
  rng_t dummy_rng(0);  // protocols under verification never consult it
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> delta(
      k, std::vector<std::pair<std::size_t, std::size_t>>(k));
  P probe = protocol;
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b) {
      state_t x = all_states[a];
      state_t y = all_states[b];
      probe.interact(x, y, dummy_rng);
      delta[a][b] = {find_state(x), find_state(y)};
    }
  }

  // --- enumerate all multisets of size n over k states --------------------
  // A configuration is a sorted vector of n state indices.
  std::vector<std::vector<std::size_t>> configs;
  std::vector<std::size_t> current;
  const std::function<void(std::size_t, std::size_t)> enumerate =
      [&](std::size_t from, std::size_t remaining) {
        if (remaining == 0) {
          configs.push_back(current);
          return;
        }
        for (std::size_t s = from; s < k; ++s) {
          current.push_back(s);
          enumerate(s, remaining - 1);
          current.pop_back();
          SSR_REQUIRE(configs.size() <= options.max_configurations);
        }
      };
  enumerate(0, n);

  std::map<std::vector<std::size_t>, std::size_t> config_index;
  for (std::size_t i = 0; i < configs.size(); ++i)
    config_index.emplace(configs[i], i);

  // --- adjacency: apply every ordered pair of agent slots ----------------
  const std::size_t num = configs.size();
  std::vector<std::vector<std::size_t>> adjacency(num);
  std::vector<bool> has_nonnull(num, false);
  for (std::size_t ci = 0; ci < num; ++ci) {
    const auto& config = configs[ci];
    for (std::size_t i = 0; i < config.size(); ++i) {
      for (std::size_t j = 0; j < config.size(); ++j) {
        if (i == j) continue;
        const auto [a2, b2] = delta[config[i]][config[j]];
        if (a2 == config[i] && b2 == config[j]) continue;  // null transition
        has_nonnull[ci] = true;
        std::vector<std::size_t> next = config;
        next[i] = a2;
        next[j] = b2;
        std::sort(next.begin(), next.end());
        const std::size_t ni = config_index.at(next);
        if (ni != ci) adjacency[ci].push_back(ni);
      }
    }
    std::sort(adjacency[ci].begin(), adjacency[ci].end());
    adjacency[ci].erase(
        std::unique(adjacency[ci].begin(), adjacency[ci].end()),
        adjacency[ci].end());
  }

  // --- correctness of each configuration ---------------------------------
  std::vector<bool> correct(num, false);
  {
    std::vector<state_t> expanded(n);
    for (std::size_t ci = 0; ci < num; ++ci) {
      for (std::size_t i = 0; i < n; ++i)
        expanded[i] = all_states[configs[ci][i]];
      correct[ci] = is_valid_ranking(protocol, expanded);
    }
  }

  // --- SCCs, terminal components, and the verdict (verify/scc.hpp) -------
  const scc_result scc = strongly_connected_components(adjacency);
  const std::vector<bool> terminal = terminal_components(adjacency, scc);
  const std::vector<std::size_t> component_size = component_sizes(scc);

  verification_result result;
  result.configurations = num;
  result.self_stabilizing = true;
  result.silent = true;
  for (std::size_t ci = 0; ci < num; ++ci) {
    const std::size_t comp = scc.component[ci];
    if (!terminal[comp]) continue;
    if (!correct[ci]) {
      result.self_stabilizing = false;
      if (!result.counterexample) result.counterexample = configs[ci];
    }
    // Silence: a terminal component must be one configuration where every
    // pair's transition is null.
    if (component_size[comp] != 1 || has_nonnull[ci]) result.silent = false;
  }
  for (std::size_t comp = 0; comp < scc.count; ++comp)
    result.terminal_components += terminal[comp] ? 1 : 0;
  return result;
}

}  // namespace ssr
