#include "analysis/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "pp/assert.hpp"

namespace ssr {

double quantile(std::span<const double> sample, double q) {
  SSR_REQUIRE(!sample.empty());
  SSR_REQUIRE(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

summary summarize(std::span<const double> sample) {
  SSR_REQUIRE(!sample.empty());
  summary s;
  s.count = sample.size();

  double sum = 0.0;
  s.min = sample.front();
  s.max = sample.front();
  for (const double x : sample) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.count);

  if (s.count > 1) {
    double ss = 0.0;
    for (const double x : sample) {
      const double d = x - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
    s.stderr_mean = s.stddev / std::sqrt(static_cast<double>(s.count));
  }

  s.median = quantile(sample, 0.50);
  s.p90 = quantile(sample, 0.90);
  s.p99 = quantile(sample, 0.99);
  return s;
}

double ci95_halfwidth(const summary& s) { return 1.96 * s.stderr_mean; }

}  // namespace ssr
