// Templated building blocks of the protocol linter.
//
// Each check verifies one structural invariant of a population protocol
// *statically*, i.e. from the declared state inventory and the transition
// function alone -- no sampled trajectories stand between the claim and the
// verdict.  The checks are deliberately small and composable; the registry
// (registry.cpp) picks the subset that applies to each protocol's claims:
//
//   check_transition_table   closure, totality, stability and the
//                            change-flag contract over every ordered pair
//   check_rank_range         rank_of stays in {0..n} on the whole inventory
//   check_state_count        inventory size == the declared Table-1 count
//   check_batch_partition    the batched engine's inert-key contract
//   check_terminal_components  silence + self-stabilization via the
//                            exhaustive configuration-space verifier
//   check_dead_states        declared states nothing ever produces (notes)
//   check_sampled_run        bounded dynamic sweep for protocols whose state
//                            space cannot be enumerated (Sublinear-Time-SSR)
//
// Protocols with enumerable inventories get proofs; the sampled sweep is
// the documented fallback, not a substitute (docs/static_analysis.md).
#pragma once

#include <array>
#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/protocol_lint/finding.hpp"
#include "pp/protocol.hpp"
#include "pp/random.hpp"
#include "pp/rng.hpp"
#include "verify/reachability.hpp"

namespace ssr::lint {

/// Collects findings for one (protocol, n) run, capping the entries
/// recorded per code: a systematic defect yields a few exemplars plus a
/// suppression marker instead of thousands of identical lines.
class lint_context {
 public:
  lint_context(std::string protocol, std::uint32_t n,
               std::vector<finding>* out, std::size_t cap_per_code = 8)
      : protocol_(std::move(protocol)), n_(n), cap_(cap_per_code), out_(out) {}

  void emit(finding_code code, severity sev, std::string message) {
    std::size_t& seen = counts_[static_cast<std::size_t>(code)];
    ++seen;
    if (seen < cap_) {
      out_->push_back({code, sev, protocol_, n_, std::move(message)});
    } else if (seen == cap_) {
      out_->push_back({code, sev, protocol_, n_,
                       "further " + std::string(to_string(code)) +
                           " findings suppressed (cap " +
                           std::to_string(cap_) + " reached)"});
    }
  }

  /// Total findings seen for `code` (including suppressed ones).
  std::size_t count(finding_code code) const {
    return counts_[static_cast<std::size_t>(code)];
  }

  std::uint32_t population() const { return n_; }
  const std::string& protocol() const { return protocol_; }

 private:
  std::string protocol_;
  std::uint32_t n_;
  std::size_t cap_;
  std::vector<finding>* out_;
  std::array<std::size_t, finding_code_count> counts_{};
};

/// How check_transition_table labels states in messages; defaults to the
/// inventory index when the protocol has no describe() rendering.
using describe_fn = std::function<std::string(std::size_t state_index)>;

inline describe_fn index_describer() {
  return [](std::size_t i) { return "state #" + std::to_string(i); };
}

/// One resolved transition: delta(a, b) = (a', b') as inventory indices.
/// `valid` is false when the pair threw or escaped the inventory.
struct delta_entry {
  std::size_t a = 0;
  std::size_t b = 0;
  bool changed = false;
  bool valid = false;
};

template <class P>
using delta_table = std::vector<std::vector<delta_entry>>;

/// Closure, totality, stability, and the change-flag contract, checked over
/// every ordered pair of inventory states:
///   * interact() must not throw (L002) and, when `deterministic`, must give
///     the same result on a second invocation with an independently seeded
///     rng (L003) -- the stability half of totality;
///   * the resulting states must be members of the declared inventory
///     (L001), which is exactly the paper's "delta : Q x Q -> Q x Q";
///   * the returned bool must equal "either state changed" (L004) -- the
///     contract silence detection and the batched engine's null-skipping
///     build on (pp/protocol.hpp).
/// Returns the delta table for downstream checks.
template <class P>
delta_table<P> check_transition_table(
    const P& p, const std::vector<typename P::agent_state>& states,
    bool deterministic, lint_context& ctx,
    const describe_fn& describe = index_describer()) {
  using state_t = typename P::agent_state;
  const std::size_t k = states.size();
  auto index_of = [&](const state_t& s) -> std::optional<std::size_t> {
    for (std::size_t i = 0; i < k; ++i) {
      if (states[i] == s) return i;
    }
    return std::nullopt;
  };

  delta_table<P> delta(k, std::vector<delta_entry>(k));
  rng_t rng_first(0x5eedf00dULL);
  rng_t rng_second(0xfeedbeefULL);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b) {
      state_t x = states[a];
      state_t y = states[b];
      bool reported = false;
      try {
        reported = p.interact(x, y, rng_first);
      } catch (const std::exception& e) {
        ctx.emit(finding_code::transition_throw, severity::error,
                 "interact(" + describe(a) + ", " + describe(b) +
                     ") threw: " + e.what());
        continue;
      }
      const bool changed = !(x == states[a] && y == states[b]);
      if (changed != reported) {
        ctx.emit(finding_code::change_flag_mismatch, severity::error,
                 "interact(" + describe(a) + ", " + describe(b) +
                     ") returned " + (reported ? "true" : "false") +
                     " but the states " + (changed ? "did" : "did not") +
                     " change");
      }
      if (deterministic) {
        state_t x2 = states[a];
        state_t y2 = states[b];
        try {
          p.interact(x2, y2, rng_second);
        } catch (const std::exception&) {
          x2 = states[a];  // the throw path is already reported above
          y2 = states[b];
        }
        if (!(x2 == x && y2 == y)) {
          ctx.emit(finding_code::nondeterministic, severity::error,
                   "interact(" + describe(a) + ", " + describe(b) +
                       ") gave different results on repeated invocation");
        }
      }
      const std::optional<std::size_t> ia = index_of(x);
      const std::optional<std::size_t> ib = index_of(y);
      if (!ia || !ib) {
        ctx.emit(finding_code::closure_escape, severity::error,
                 "interact(" + describe(a) + ", " + describe(b) +
                     ") produced a state outside the declared state space (" +
                     (ia ? "responder" : "initiator") + " slot escaped)");
        continue;
      }
      delta[a][b] = {*ia, *ib, changed, true};
    }
  }
  return delta;
}

/// Rank-output soundness over the inventory: the output map may claim only
/// ranks in {1..n}, with 0 reserved for "no rank yet" (pp/protocol.hpp).
template <ranking_protocol P>
void check_rank_range(const P& p,
                      const std::vector<typename P::agent_state>& states,
                      lint_context& ctx,
                      const describe_fn& describe = index_describer()) {
  const std::uint32_t n = p.population_size();
  for (std::size_t i = 0; i < states.size(); ++i) {
    const std::uint32_t r = p.rank_of(states[i]);
    if (r > n) {
      ctx.emit(finding_code::rank_out_of_range, severity::error,
               "rank_of(" + describe(i) + ") = " + std::to_string(r) +
                   " outside {0.." + std::to_string(n) + "}");
    }
  }
}

/// The declared Table-1 state count must equal the inventory size exactly
/// (counts add across roles -- Section 2 of the paper).
inline void check_state_count(std::uint64_t declared, std::size_t inventory,
                              lint_context& ctx) {
  if (declared != inventory) {
    ctx.emit(finding_code::state_count_mismatch, severity::error,
             "declared state count " + std::to_string(declared) +
                 " != enumerated inventory size " + std::to_string(inventory));
  }
}

/// The batched engine's partition contract (pp/protocol.hpp): every key is
/// either an inert key below batch_key_count() or batch_volatile_key, and
/// two states carrying *distinct* inert keys must interact nully in both
/// initiator/responder orders.
template <batch_countable_protocol P>
void check_batch_partition(const P& p,
                           const std::vector<typename P::agent_state>& states,
                           lint_context& ctx,
                           const describe_fn& describe = index_describer()) {
  using state_t = typename P::agent_state;
  const std::uint32_t key_count = p.batch_key_count();
  const std::size_t k = states.size();
  std::vector<std::uint32_t> keys(k);
  for (std::size_t i = 0; i < k; ++i) {
    keys[i] = p.batch_key(states[i]);
    if (keys[i] != batch_volatile_key && keys[i] >= key_count) {
      ctx.emit(finding_code::batch_partition_violation, severity::error,
               "batch_key(" + describe(i) + ") = " + std::to_string(keys[i]) +
                   " >= batch_key_count() = " + std::to_string(key_count));
    }
  }
  rng_t rng(0xba7c4edULL);
  for (std::size_t a = 0; a < k; ++a) {
    if (keys[a] == batch_volatile_key) continue;
    for (std::size_t b = 0; b < k; ++b) {
      if (keys[b] == batch_volatile_key || keys[a] == keys[b]) continue;
      state_t x = states[a];
      state_t y = states[b];
      bool reported = false;
      try {
        reported = p.interact(x, y, rng);
      } catch (const std::exception&) {
        continue;  // reported by check_transition_table
      }
      if (reported || !(x == states[a] && y == states[b])) {
        ctx.emit(finding_code::batch_partition_violation, severity::error,
                 "states with distinct inert keys " +
                     std::to_string(keys[a]) + " and " +
                     std::to_string(keys[b]) + " (" + describe(a) + ", " +
                     describe(b) + ") interact non-nully");
      }
    }
  }
}

/// What the protocol's documentation claims about its terminal behavior.
struct terminal_claims {
  bool self_stabilizing = false;
  bool silent = false;
};

/// Machine-checks the silence and stabilization claims by running the
/// exhaustive configuration-space verifier (verify/reachability.hpp) and
/// comparing its verdict with the claims.  An incorrect terminal component
/// whose ranks collide is classified as L006 (ranking-not-permutation); any
/// other incorrect terminal component is L009.  Requires a closure-clean
/// deterministic protocol -- run check_transition_table first and skip this
/// when it reported closure escapes.
template <ranking_protocol P>
void check_terminal_components(
    const P& p, const std::vector<typename P::agent_state>& states,
    const terminal_claims& claims, lint_context& ctx) {
  if (!claims.self_stabilizing && !claims.silent) return;
  verification_result result;
  try {
    result = verify_self_stabilization(p, states);
  } catch (const std::exception& e) {
    ctx.emit(finding_code::closure_escape, severity::error,
             std::string("configuration-space verification aborted: ") +
                 e.what());
    return;
  }
  if (claims.self_stabilizing && !result.self_stabilizing) {
    std::ostringstream ranks;
    bool duplicated = false;
    if (result.counterexample.has_value()) {
      std::vector<std::uint32_t> seen(p.population_size() + 1, 0);
      ranks << "terminal configuration ranks {";
      for (std::size_t i = 0; i < result.counterexample->size(); ++i) {
        const std::uint32_t r = p.rank_of(states[(*result.counterexample)[i]]);
        ranks << (i > 0 ? "," : "") << r;
        if (r >= 1 && r <= p.population_size() && ++seen[r] > 1)
          duplicated = true;
      }
      ranks << "}";
    }
    if (duplicated) {
      ctx.emit(finding_code::ranking_not_permutation, severity::error,
               "a reachable terminal configuration holds duplicated ranks: " +
                   ranks.str());
    }
    ctx.emit(finding_code::not_self_stabilizing, severity::error,
             "an incorrect terminal component is reachable (" +
                 std::to_string(result.terminal_components) +
                 " terminal components over " +
                 std::to_string(result.configurations) + " configurations); " +
                 ranks.str());
  }
  if (claims.silent && !result.silent) {
    ctx.emit(finding_code::non_silent_terminal, severity::error,
             "protocol claims silence but a terminal component still has an "
             "enabled non-null transition (" +
                 std::to_string(result.terminal_components) +
                 " terminal components over " +
                 std::to_string(result.configurations) + " configurations)");
  }
}

/// Dead-state audit: a declared state that no transition ever *produces*
/// (beyond leaving it in place) and that no designated configuration seeds
/// can only enter a run through deserialization.  Such states are legal --
/// they keep role inventories rectangular -- so this reports notes, which
/// --strict does not promote.
template <class State>
void check_dead_states(const std::vector<State>& states,
                       const std::vector<std::vector<delta_entry>>& delta,
                       const std::vector<std::size_t>& seed_states,
                       lint_context& ctx,
                       const describe_fn& describe = index_describer()) {
  const std::size_t k = states.size();
  std::vector<bool> live(k, false);
  for (const std::size_t s : seed_states) {
    if (s < k) live[s] = true;
  }
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b) {
      const delta_entry& e = delta[a][b];
      if (!e.valid) continue;
      if (e.a != a) live[e.a] = true;
      if (e.b != b) live[e.b] = true;
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    if (!live[i]) {
      ctx.emit(finding_code::unreachable_state, severity::note,
               "no transition produces " + describe(i) +
                   " (reachable only through deserialization)");
    }
  }
}

/// Bounded dynamic sweep for protocols whose state space cannot be
/// enumerated: runs uniform random ordered pairs from `config`, validating
/// every touched state against the declared-space invariant `validate`
/// (which returns a violation message or nullopt).  Initial states are
/// checked with `initial_validate`, which may be weaker: adversarial
/// starting configurations live in the full declared space (e.g. ghost
/// rosters larger than n), while the transition function maintains tighter
/// invariants on every state it *produces*.  When `converged` never fires
/// within the budget and `converge_code` is set, that code is emitted.
/// Deterministically seeded, so the verdict is reproducible.
template <class P, class Validate, class InitialValidate, class Converged>
void check_sampled_run(const P& p,
                       std::vector<typename P::agent_state> config,
                       std::uint64_t max_interactions, std::uint64_t seed,
                       Validate&& validate, InitialValidate&& initial_validate,
                       Converged&& converged,
                       std::optional<finding_code> converge_code,
                       std::string_view label, lint_context& ctx) {
  const std::size_t n = config.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (const std::optional<std::string> msg = initial_validate(config[i])) {
      ctx.emit(finding_code::closure_escape, severity::error,
               std::string(label) + ": initial agent " + std::to_string(i) +
                   " outside the declared state space: " + *msg);
    }
  }
  rng_t rng(seed);
  for (std::uint64_t t = 0; t < max_interactions; ++t) {
    if (converged(config)) return;
    const std::size_t i = static_cast<std::size_t>(uniform_below(rng, n));
    std::size_t j = static_cast<std::size_t>(uniform_below(rng, n - 1));
    if (j >= i) ++j;
    try {
      p.interact(config[i], config[j], rng);
    } catch (const std::exception& e) {
      ctx.emit(finding_code::transition_throw, severity::error,
               std::string(label) + ": interact threw after " +
                   std::to_string(t) + " interactions: " + e.what());
      return;
    }
    for (const std::size_t idx : {i, j}) {
      if (const std::optional<std::string> msg = validate(config[idx])) {
        ctx.emit(finding_code::closure_escape, severity::error,
                 std::string(label) + ": agent " + std::to_string(idx) +
                     " left the declared state space after " +
                     std::to_string(t) + " interactions: " + *msg);
        return;
      }
    }
  }
  if (converge_code.has_value() && !converged(config)) {
    ctx.emit(*converge_code, severity::error,
             std::string(label) + ": did not converge within " +
                 std::to_string(max_interactions) + " interactions");
  }
}

}  // namespace ssr::lint
