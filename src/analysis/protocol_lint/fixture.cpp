#include "analysis/protocol_lint/fixture.hpp"

namespace ssr::lint {

std::string_view to_string(fixture_defect defect) {
  switch (defect) {
    case fixture_defect::escaping_state: return "escaping-state";
    case fixture_defect::false_silence: return "false-silence";
    case fixture_defect::duplicate_rank: return "duplicate-rank";
    case fixture_defect::rank_overflow: return "rank-overflow";
    case fixture_defect::stale_change_flag: return "stale-change-flag";
    case fixture_defect::batch_mixing: return "batch-mixing";
    case fixture_defect::regressing_rank: return "regressing-rank";
    case fixture_defect::isolated_class: return "isolated-class";
  }
  return "unknown";
}

}  // namespace ssr::lint
