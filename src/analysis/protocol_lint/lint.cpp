#include "analysis/protocol_lint/lint.hpp"

#include <optional>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "analysis/protocol_lint/model_check.hpp"
#include "analysis/table.hpp"
#include "util/edit_distance.hpp"

namespace ssr::lint {
namespace {

// "unknown protocol 'basline'; did you mean 'baseline'?" -- shared with the
// CLIs through resolve_protocols().
[[noreturn]] void throw_unknown_protocol(const std::string& name) {
  const std::vector<std::string> names = registry_names(/*include_hidden=*/true);
  std::vector<std::string_view> views(names.begin(), names.end());
  const std::string_view near = nearest_candidate(name, views);
  std::string message = "unknown protocol '" + name + "'";
  if (!near.empty()) {
    message += "; did you mean '" + std::string(near) + "'?";
  }
  throw std::invalid_argument(message);
}

std::vector<const protocol_entry*> resolve_protocols(
    const lint_options& options) {
  std::vector<const protocol_entry*> entries;
  if (options.protocols.empty()) {
    for (const protocol_entry& e : lint_registry()) {
      if (e.hidden && !options.include_hidden) continue;
      entries.push_back(&e);
    }
    return entries;
  }
  for (const std::string& name : options.protocols) {
    entries.push_back(&resolve_protocol_entry(name));
  }
  return entries;
}

}  // namespace

const protocol_entry& resolve_protocol_entry(const std::string& name) {
  const protocol_entry* e = find_protocol(name);
  if (e == nullptr) throw_unknown_protocol(name);
  return *e;
}

lint_report run_lint(const lint_options& options) {
  const std::vector<const protocol_entry*> entries =
      resolve_protocols(options);
  lint_report report;
  report.n_values = options.n_values;
  for (const protocol_entry* entry : entries) {
    report.protocols.push_back(entry->name);
    for (const std::uint32_t n : options.n_values) {
      lint_context ctx(entry->name, n, &report.findings,
                       options.cap_per_code);
      entry->run(n, ctx);
      // Exact configuration-space pass (L014-L017), for entries with a
      // model attachment.  A closure escape means the configuration graph
      // cannot be built, and the builder itself throws on one the
      // state-level checks did not see.
      if (ctx.count(finding_code::closure_escape) == 0) {
        try {
          if (const std::optional<model_run> run = run_entry_model(*entry, n)) {
            emit_model_findings(*run, ctx);
          }
        } catch (const std::logic_error& e) {
          ctx.emit(finding_code::closure_escape, severity::error, e.what());
        }
      }
    }
  }
  for (const finding& f : report.findings) {
    switch (f.sev) {
      case severity::error: ++report.errors; break;
      case severity::warning: ++report.warnings; break;
      case severity::note: ++report.notes; break;
    }
  }
  return report;
}

obs::json_value to_json(const lint_report& report, bool strict) {
  obs::json_value root = obs::json_value::object();
  root["schema"] = "ssr.lint";
  root["version"] = std::uint64_t{1};
  root["tool"] = "protocol_lint";
  root["strict"] = strict;
  obs::json_value protocols = obs::json_value::array();
  for (const std::string& p : report.protocols) protocols.push_back(p);
  root["protocols"] = std::move(protocols);
  obs::json_value sizes = obs::json_value::array();
  for (const std::uint32_t n : report.n_values) {
    sizes.push_back(static_cast<std::uint64_t>(n));
  }
  root["n"] = std::move(sizes);
  obs::json_value findings = obs::json_value::array();
  for (const finding& f : report.findings) findings.push_back(to_json(f));
  root["findings"] = std::move(findings);
  obs::json_value summary = obs::json_value::object();
  summary["errors"] = static_cast<std::uint64_t>(report.errors);
  summary["warnings"] = static_cast<std::uint64_t>(report.warnings);
  summary["notes"] = static_cast<std::uint64_t>(report.notes);
  summary["violations"] =
      static_cast<std::uint64_t>(report.violations(strict));
  summary["passed"] = report.passed(strict);
  root["summary"] = std::move(summary);
  return root;
}

std::string render_report(const lint_report& report, bool strict) {
  std::ostringstream os;
  text_table table({"protocol", "errors", "warnings", "notes", "verdict"});
  for (const std::string& name : report.protocols) {
    std::size_t errors = 0, warnings = 0, notes = 0;
    for (const finding& f : report.findings) {
      if (f.protocol != name) continue;
      switch (f.sev) {
        case severity::error: ++errors; break;
        case severity::warning: ++warnings; break;
        case severity::note: ++notes; break;
      }
    }
    const bool failed = errors > 0 || (strict && warnings > 0);
    table.add_row({name, std::to_string(errors), std::to_string(warnings),
                   std::to_string(notes), failed ? "FAIL" : "ok"});
  }
  table.print(os);
  if (!report.findings.empty()) {
    os << '\n';
    for (const finding& f : report.findings) os << to_line(f) << '\n';
  }
  os << '\n'
     << (report.passed(strict) ? "PASS" : "FAIL") << ": "
     << report.violations(strict) << " violation(s), " << report.errors
     << " error(s), " << report.warnings << " warning(s), " << report.notes
     << " note(s)\n";
  return os.str();
}

}  // namespace ssr::lint
