// The linted-protocol registry: every protocol the library ships, under a
// stable CLI name, with its documented claims and the check composition
// that machine-verifies them (docs/static_analysis.md).
//
// Visible entries are the nine protocols the CI gate runs `protocol_lint
// --strict` over.  Hidden entries are the deliberately broken fixtures
// (fixture.hpp) that prove each check fires; they are excluded from default
// runs and selectable with --protocol <name> or --include-broken.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/protocol_lint/checks.hpp"
#include "verify/model_check/model_check.hpp"

namespace ssr::lint {

/// What the protocol's documentation claims; drives which checks apply and
/// is printed by `protocol_lint --list`.
struct protocol_claims {
  bool deterministic = false;    // interact() never consults the rng
  bool enumerable = false;       // all_states() covers the state space
  bool ranking = false;          // exposes a 1..n rank output map
  bool batch_countable = false;  // declares the batched-engine partition
  bool self_stabilizing = false;
  bool silent = false;
};

/// Exact model-checking attachment (verify/model_check): entries with an
/// enumerable inventory and deterministic transitions expose a builder for
/// their configuration graph, and the model pass (L014-L017, the
/// ssr_modelcheck CLI, bench_modelcheck) runs on it for n <= max_n.
struct model_attachment {
  /// Builds the weighted configuration digraph at population size n.
  /// Throws std::logic_error when a transition escapes the inventory.
  std::function<verify::config_graph(std::uint32_t n)> build;
  /// Largest n the exhaustive pass runs at; configuration spaces grow as
  /// C(n+k-1, n), so this is sized per entry from measured check times.
  std::uint32_t max_n = 4;
  /// Declared worst-case expected-interaction budget as a function of n
  /// (L016 fires when the exact worst case exceeds it); absent = no claim.
  std::function<double(std::uint32_t n)> budget;
};

struct protocol_entry {
  std::string name;     // stable CLI name
  std::string summary;  // one line for --list
  protocol_claims claims;
  bool hidden = false;  // broken fixtures; excluded from default runs
  /// Runs every applicable check at population size n, emitting findings
  /// into ctx.
  std::function<void(std::uint32_t n, lint_context& ctx)> run;
  /// Exact configuration-space model checking; nullopt for protocols whose
  /// state space cannot be enumerated (Sublinear-Time-SSR) or is too large
  /// under the shipped tuning (optimal-default).
  std::optional<model_attachment> model = std::nullopt;
};

/// The full registry, visible entries first.  Order is stable output order.
const std::vector<protocol_entry>& lint_registry();

/// Entry lookup by CLI name; nullptr when unknown.
const protocol_entry* find_protocol(std::string_view name);

/// All registry names in order (visible only unless include_hidden), for
/// --list and the nearest-name suggestion on unknown protocols.
std::vector<std::string> registry_names(bool include_hidden);

}  // namespace ssr::lint
