// The linted-protocol registry: every protocol the library ships, under a
// stable CLI name, with its documented claims and the check composition
// that machine-verifies them (docs/static_analysis.md).
//
// Visible entries are the nine protocols the CI gate runs `protocol_lint
// --strict` over.  Hidden entries are the deliberately broken fixtures
// (fixture.hpp) that prove each check fires; they are excluded from default
// runs and selectable with --protocol <name> or --include-broken.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/protocol_lint/checks.hpp"

namespace ssr::lint {

/// What the protocol's documentation claims; drives which checks apply and
/// is printed by `protocol_lint --list`.
struct protocol_claims {
  bool deterministic = false;    // interact() never consults the rng
  bool enumerable = false;       // all_states() covers the state space
  bool ranking = false;          // exposes a 1..n rank output map
  bool batch_countable = false;  // declares the batched-engine partition
  bool self_stabilizing = false;
  bool silent = false;
};

struct protocol_entry {
  std::string name;     // stable CLI name
  std::string summary;  // one line for --list
  protocol_claims claims;
  bool hidden = false;  // broken fixtures; excluded from default runs
  /// Runs every applicable check at population size n, emitting findings
  /// into ctx.
  std::function<void(std::uint32_t n, lint_context& ctx)> run;
};

/// The full registry, visible entries first.  Order is stable output order.
const std::vector<protocol_entry>& lint_registry();

/// Entry lookup by CLI name; nullptr when unknown.
const protocol_entry* find_protocol(std::string_view name);

/// All registry names in order (visible only unless include_hidden), for
/// --list and the nearest-name suggestion on unknown protocols.
std::vector<std::string> registry_names(bool include_hidden);

}  // namespace ssr::lint
