// The exact-model-checking pass of the protocol linter, and the
// ssr.modelcheck document the ssr_modelcheck CLI emits.
//
// Registry entries with a model_attachment expose their configuration
// graph (verify/model_check); run_entry_model() builds and checks it, and
// emit_model_findings() turns the verdicts into findings:
//
//   L014 exhaustive-silence       silence claimed, but a terminal class of
//                                 the configuration digraph keeps moving
//   L015 exhaustive-stabilization self-stabilization claimed, but an
//                                 incorrect configuration is stable
//   L016 expected-time-budget     the *exact* worst-case expected number of
//                                 interactions to stable correctness
//                                 exceeds the entry's declared budget
//   L017 spurious-terminal-class  a terminal class no other configuration
//                                 can enter -- a stable outcome that exists
//                                 only as an initial condition (note, the
//                                 configuration-level analogue of L011)
//
// run_lint() invokes the pass after each entry's check composition;
// the CLI and bench_modelcheck reuse the same two functions so the three
// surfaces cannot drift.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/protocol_lint/finding.hpp"
#include "analysis/protocol_lint/registry.hpp"
#include "obs/json.hpp"
#include "verify/model_check/model_check.hpp"

namespace ssr::lint {

/// One completed model check of a registry entry at a population size.
struct model_run {
  std::string protocol;
  std::uint32_t n = 0;
  protocol_claims claims;
  bool has_budget = false;
  double budget = 0.0;
  verify::config_graph graph;
  verify::model_check_result result;
};

/// An entry/n pair the model pass does not cover, with the reason
/// ("no model attachment" or "n exceeds model max_n K").
struct model_skip {
  std::string protocol;
  std::uint32_t n = 0;
  std::string reason;
};

/// Builds and checks `entry`'s configuration graph at population size n;
/// nullopt (with *skip filled when given) when the entry has no attachment
/// or n exceeds its max_n.  Closure violations propagate as
/// std::logic_error from the builder.
std::optional<model_run> run_entry_model(const protocol_entry& entry,
                                         std::uint32_t n,
                                         model_skip* skip = nullptr);

/// Emits L014-L017 for one model run.
void emit_model_findings(const model_run& run, lint_context& ctx);

/// Compact "{a} --(x,y)->(x',y')--> {b}" rendering of a counterexample,
/// truncated to the first `max_steps` interactions.
std::string describe_counterexample(const verify::config_graph& graph,
                                    const verify::counterexample& cx,
                                    std::size_t max_steps = 4);

/// The ssr.modelcheck v1 document: {schema, version, strict, runs[],
/// skipped[], findings[], summary{runs, errors, warnings, notes,
/// violations, passed}}.  Violation semantics match the linter: errors
/// always gate, warnings only under strict, notes never.
obs::json_value modelcheck_to_json(const std::vector<model_run>& runs,
                                   const std::vector<model_skip>& skipped,
                                   const std::vector<finding>& findings,
                                   bool strict);

}  // namespace ssr::lint
