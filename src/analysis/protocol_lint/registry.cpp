#include "analysis/protocol_lint/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/protocol_lint/fixture.hpp"
#include "pp/protocol.hpp"
#include "verify/model_check/config_space.hpp"
#include "protocols/adversary.hpp"
#include "protocols/history_tree.hpp"
#include "protocols/initialized.hpp"
#include "protocols/initialized_ranking.hpp"
#include "protocols/loose_stabilizing.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"
#include "protocols/state_space.hpp"
#include "protocols/sublinear.hpp"

namespace ssr::lint {
namespace {

// ---- state describers, so findings name states in protocol vocabulary ----

template <class State, class Fmt>
describe_fn make_describer(std::vector<State> states, Fmt fmt) {
  return [states = std::move(states), fmt](std::size_t i) {
    if (i >= states.size()) return "state #" + std::to_string(i);
    return fmt(states[i]);
  };
}

std::string describe_rank_state(std::uint32_t rank) {
  return "rank=" + std::to_string(rank);
}

std::string describe_optimal(const optimal_silent_ssr::agent_state& s) {
  switch (s.role) {
    case optimal_silent_ssr::role_t::settled:
      return "Settled(rank=" + std::to_string(s.rank) +
             ",children=" + std::to_string(s.children) + ")";
    case optimal_silent_ssr::role_t::unsettled:
      return "Unsettled(errorcount=" + std::to_string(s.errorcount) + ")";
    case optimal_silent_ssr::role_t::resetting:
      return std::string("Resetting(") + (s.leader ? "L" : "F") +
             ",rc=" + std::to_string(s.reset.resetcount) +
             ",delay=" + std::to_string(s.reset.delaytimer) + ")";
  }
  return "unknown-role";
}

std::string describe_loose(const loose_stabilizing_le::agent_state& s) {
  return std::string(s.leader ? "leader" : "follower") +
         "(timer=" + std::to_string(s.timer) + ")";
}

std::string describe_initialized_le(
    const initialized_leader_election::agent_state& s) {
  return s.leader ? "leader" : "follower";
}

std::string describe_tree_ranking(
    const initialized_tree_ranking::agent_state& s) {
  if (!s.settled) return "Unsettled";
  return "Settled(rank=" + std::to_string(s.rank) +
         ",children=" + std::to_string(s.children) + ")";
}

// Maps a designated configuration's states onto inventory indices (linear
// scan; inventories here are tiny), for the dead-state audit's seed set.
template <class State>
std::vector<std::size_t> seed_indices(const std::vector<State>& states,
                                      const std::vector<State>& config) {
  std::vector<std::size_t> seeds;
  for (const State& s : config) {
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (states[i] == s) {
        seeds.push_back(i);
        break;
      }
    }
  }
  return seeds;
}

// Membership validator for sampled runs of enumerable protocols.
template <class State>
auto membership_validator(std::vector<State> states) {
  return [states =
              std::move(states)](const State& s) -> std::optional<std::string> {
    for (const State& t : states) {
      if (t == s) return std::nullopt;
    }
    return std::optional<std::string>("state outside the declared inventory");
  };
}

// The tiny tuning of tests/verify_test.cpp: small enough that the full
// configuration space of Optimal-Silent-SSR fits the exhaustive verifier.
optimal_silent_ssr::tuning tiny_optimal_tuning(std::uint32_t n) {
  optimal_silent_ssr::tuning t;
  t.e_max = n;
  t.r_max = 2;
  t.d_max = 2;
  return t;
}

// Loose-stabilization timeout, T = 4 ceil(log2 n) as in ssr_cli.
std::uint32_t loose_t_max(std::uint32_t n) {
  const double lg = std::log2(static_cast<double>(n));
  return std::max<std::uint32_t>(2, 4u * static_cast<std::uint32_t>(
                                         std::ceil(lg)));
}

// ---- model attachments (exact configuration-space checking) ---------------

// Generous sanity ceiling on the exact worst-case expected stabilization
// time.  Measured exact values: baseline 1 / 7 / 22 / 49.6 at n=2..5,
// optimal-tiny 11 / 28.8 / 106.7 at n=2..4 -- 2n^3 holds everywhere with
// headroom while still catching a protocol whose dynamics regress.
double cubic_budget(std::uint32_t n) {
  const double d = static_cast<double>(n);
  return 2.0 * d * d * d;
}

model_attachment baseline_model() {
  model_attachment m;
  m.max_n = 8;  // C(2n-1, n) configurations: 6435 at n=8, milliseconds
  m.budget = cubic_budget;
  m.build = [](std::uint32_t n) {
    const silent_n_state_ssr p(n);
    const std::vector<silent_n_state_ssr::agent_state> states =
        p.all_states();
    return verify::build_ranking_config_graph(
        p, states,
        [states](std::size_t i) { return describe_rank_state(states[i].rank); });
  };
  return m;
}

model_attachment optimal_tiny_model() {
  model_attachment m;
  m.max_n = 4;  // 27405 configurations, ~0.6 s; n=5 is 237k and minutes
  m.budget = cubic_budget;
  m.build = [](std::uint32_t n) {
    const optimal_silent_ssr p(n, tiny_optimal_tuning(n));
    const std::vector<optimal_silent_ssr::agent_state> states =
        p.all_states();
    return verify::build_ranking_config_graph(
        p, states,
        [states](std::size_t i) { return describe_optimal(states[i]); });
  };
  return m;
}

model_attachment loose_model() {
  model_attachment m;
  m.max_n = 4;
  m.build = [](std::uint32_t n) {
    const loose_stabilizing_le p(n, loose_t_max(n));
    const std::vector<loose_stabilizing_le::agent_state> states =
        p.all_states();
    return verify::build_config_graph<loose_stabilizing_le>(
        p, states,
        [p](const std::vector<loose_stabilizing_le::agent_state>& config) {
          return p.leader_count(config) == 1;
        },
        [states](std::size_t i) { return describe_loose(states[i]); });
  };
  return m;
}

model_attachment initialized_le_model() {
  model_attachment m;
  m.max_n = 8;  // two states; n+1 configurations
  m.build = [](std::uint32_t n) {
    const initialized_leader_election p(n);
    const std::vector<initialized_leader_election::agent_state> states =
        p.all_states();
    return verify::build_config_graph<initialized_leader_election>(
        p, states,
        [p](const std::vector<initialized_leader_election::agent_state>&
                config) { return leader_count(p, config) == 1; },
        [states](std::size_t i) { return describe_initialized_le(states[i]); });
  };
  return m;
}

model_attachment initialized_ranking_model() {
  model_attachment m;
  m.max_n = 5;  // 3n+1 states; C(20, 5) = 15504 configurations at n=5
  m.build = [](std::uint32_t n) {
    const initialized_tree_ranking p(n);
    const std::vector<initialized_tree_ranking::agent_state> states =
        p.all_states();
    return verify::build_ranking_config_graph(
        p, states,
        [states](std::size_t i) { return describe_tree_ranking(states[i]); });
  };
  return m;
}

model_attachment fixture_model(fixture_defect defect) {
  model_attachment m;
  m.max_n = 6;
  m.build = [defect](std::uint32_t n) {
    const broken_fixture_protocol p(n, defect);
    const std::vector<broken_fixture_protocol::agent_state> states =
        p.all_states();
    return verify::build_ranking_config_graph(
        p, states,
        [states](std::size_t i) { return describe_rank_state(states[i].rank); });
  };
  return m;
}

// ---- per-protocol check compositions --------------------------------------

void run_baseline(std::uint32_t n, lint_context& ctx) {
  const silent_n_state_ssr p(n);
  const std::vector<silent_n_state_ssr::agent_state> states = p.all_states();
  debug_assert_protocol_registration(p, states);
  const describe_fn d = make_describer(
      states, [](const silent_n_state_ssr::agent_state& s) {
        return describe_rank_state(s.rank);
      });
  const auto delta =
      check_transition_table(p, states, /*deterministic=*/true, ctx, d);
  check_rank_range(p, states, ctx, d);
  check_state_count(silent_n_state_states(n), states.size(), ctx);
  check_batch_partition(p, states, ctx, d);
  if (ctx.count(finding_code::closure_escape) == 0) {
    check_terminal_components(p, states, {true, true}, ctx);
  }
  check_dead_states(states, delta, {}, ctx, d);
}

void run_optimal(std::uint32_t n, bool tiny, lint_context& ctx) {
  const optimal_silent_ssr p =
      tiny ? optimal_silent_ssr(n, tiny_optimal_tuning(n))
           : optimal_silent_ssr(n);
  const std::vector<optimal_silent_ssr::agent_state> states = p.all_states();
  debug_assert_protocol_registration(p, states);
  const describe_fn d = make_describer(states, describe_optimal);
  const auto delta =
      check_transition_table(p, states, /*deterministic=*/true, ctx, d);
  check_rank_range(p, states, ctx, d);
  check_state_count(optimal_silent_states(n, p.params()), states.size(), ctx);
  check_batch_partition(p, states, ctx, d);
  // The full configuration-space verification is only tractable under the
  // tiny tuning; the default-tuning entry gets the state-level checks.
  if (tiny && ctx.count(finding_code::closure_escape) == 0) {
    check_terminal_components(p, states, {true, true}, ctx);
  }
  rng_t rng(0xadd5eedULL);
  std::vector<std::size_t> seeds =
      seed_indices(states, p.initial_configuration());
  const std::vector<std::size_t> valid = seed_indices(
      states, adversarial_configuration(
                  p, optimal_silent_scenario::valid_ranking, rng));
  seeds.insert(seeds.end(), valid.begin(), valid.end());
  check_dead_states(states, delta, seeds, ctx, d);
}

void run_sublinear(std::uint32_t n, std::uint32_t h, lint_context& ctx) {
  const sublinear_time_ssr p(n, h);
  const sublinear_time_ssr::tuning& t = p.params();

  // Table-1 per-agent memory audit (L012): the bits formula must be
  // positive, finite, at least the name field alone, and nondecreasing in n.
  const double bits = sublinear_state_bits(n, t);
  const double bits_next = sublinear_state_bits(
      n + 1, sublinear_time_ssr::tuning::defaults(n + 1, h));
  if (!std::isfinite(bits) || bits <= 0.0) {
    ctx.emit(finding_code::state_bits_bound, severity::error,
             "sublinear_state_bits(" + std::to_string(n) +
                 ") is not positive and finite");
  } else {
    if (bits < static_cast<double>(t.name_bits)) {
      ctx.emit(finding_code::state_bits_bound, severity::error,
               "per-agent bits " + std::to_string(bits) +
                   " below the name field alone (" +
                   std::to_string(t.name_bits) + " bits)");
    }
    if (bits_next < bits) {
      ctx.emit(finding_code::state_bits_bound, severity::error,
               "per-agent bits decrease from n=" + std::to_string(n) + " (" +
                   std::to_string(bits) + ") to n+1 (" +
                   std::to_string(bits_next) + ")");
    }
  }

  // The state space is quasi-exponential (exp(O(n^H) log n)), so closure is
  // checked as declared-space *invariants* along sampled runs from every
  // adversarial scenario, and stabilization as bounded-time convergence to
  // a valid ranking (the protocol is self-stabilizing, so every legal
  // starting configuration must converge).
  const auto validate_tree =
      [&t](const tree_node& node,
           const auto& self) -> std::optional<std::string> {
    for (const tree_edge& e : node.edges) {
      if (e.sync < 1 || e.sync > t.s_max) {
        return "history-tree edge sync " + std::to_string(e.sync) +
               " outside {1.." + std::to_string(t.s_max) + "}";
      }
      if (e.timer > t.t_h) {
        return "history-tree edge timer " + std::to_string(e.timer) +
               " exceeds T_H=" + std::to_string(t.t_h);
      }
      if (const std::optional<std::string> msg = self(e.child, self)) {
        return msg;
      }
    }
    return std::nullopt;
  };
  // Structural legality of the *declared* space: what adversarial starting
  // states may look like.  Rosters may exceed n here -- ghost names are
  // exactly the error the protocol detects -- but see `validate` below.
  const auto initial_validate =
      [&](const sublinear_time_ssr::agent_state& s)
      -> std::optional<std::string> {
    if (s.name.length() > t.name_bits) {
      return "name of " + std::to_string(s.name.length()) +
             " bits exceeds name_bits=" + std::to_string(t.name_bits);
    }
    if (s.role == sublinear_time_ssr::role_t::collecting) {
      if (s.rank > n) {
        return "rank " + std::to_string(s.rank) + " outside {0.." +
               std::to_string(n) + "}";
      }
      if (!std::is_sorted(s.roster.begin(), s.roster.end()) ||
          std::adjacent_find(s.roster.begin(), s.roster.end()) !=
              s.roster.end()) {
        return std::string("roster is not sorted-unique");
      }
      if (s.tree.depth() > t.h) {
        return "history tree depth " + std::to_string(s.tree.depth()) +
               " exceeds H=" + std::to_string(t.h);
      }
      if (!s.tree.simply_labelled()) {
        return std::string("history tree is not simply labelled");
      }
      if (!(s.tree.root_name() == s.name)) {
        return std::string("history tree root not labelled with own name");
      }
      return validate_tree(s.tree.root(), validate_tree);
    }
    if (s.reset.resetcount > t.r_max) {
      return "resetcount " + std::to_string(s.reset.resetcount) +
             " exceeds R_max=" + std::to_string(t.r_max);
    }
    if (s.reset.delaytimer > t.d_max) {
      return "delaytimer " + std::to_string(s.reset.delaytimer) +
             " exceeds D_max=" + std::to_string(t.d_max);
    }
    return std::nullopt;
  };
  // The tighter invariant every *produced* state satisfies: a merge either
  // stays within n names or trips the ghost check and resets, so an
  // oversized roster can only enter a run through the adversary.
  const auto validate =
      [&](const sublinear_time_ssr::agent_state& s)
      -> std::optional<std::string> {
    if (s.role == sublinear_time_ssr::role_t::collecting &&
        s.roster.size() > n) {
      return "roster of " + std::to_string(s.roster.size()) +
             " names exceeds n=" + std::to_string(n);
    }
    return initial_validate(s);
  };
  const auto converged =
      [&p](const std::vector<sublinear_time_ssr::agent_state>& config) {
        return is_valid_ranking(p, config);
      };

  constexpr sublinear_scenario kScenarios[] = {
      sublinear_scenario::uniform_random,
      sublinear_scenario::all_same_name,
      sublinear_scenario::single_collision,
      sublinear_scenario::ghost_names,
      sublinear_scenario::missing_own_name,
      sublinear_scenario::planted_histories,
      sublinear_scenario::mid_reset,
      sublinear_scenario::valid_ranking,
  };
  std::uint64_t seed = 0x5b11feedULL + h;
  for (const sublinear_scenario scenario : kScenarios) {
    rng_t rng(seed);
    std::vector<sublinear_time_ssr::agent_state> config =
        adversarial_configuration(p, scenario, rng);
    check_sampled_run(p, std::move(config), /*max_interactions=*/200'000,
                      seed, validate, initial_validate, converged,
                      finding_code::no_convergence, to_string(scenario), ctx);
    ++seed;
  }
}

void run_loose(std::uint32_t n, lint_context& ctx) {
  const loose_stabilizing_le p(n, loose_t_max(n));
  const std::vector<loose_stabilizing_le::agent_state> states = p.all_states();
  const describe_fn d = make_describer(states, describe_loose);
  const auto delta =
      check_transition_table(p, states, /*deterministic=*/true, ctx, d);
  check_state_count(loose_stabilizing_le::state_count(p.t_max()),
                    states.size(), ctx);
  // Not a ranking protocol and only *loosely* stabilizing (terminal SCCs
  // wobble by design), so no rank or terminal-component claims; instead
  // the worst-case dead configuration must elect a unique leader.
  const auto member = membership_validator(states);
  check_sampled_run(
      p, p.dead_configuration(), /*max_interactions=*/100'000,
      /*seed=*/0x100053ULL, member, member,
      [&p](const std::vector<loose_stabilizing_le::agent_state>& config) {
        return p.leader_count(config) == 1;
      },
      finding_code::no_convergence, "dead-configuration", ctx);
  check_dead_states(states, delta,
                    seed_indices(states, p.dead_configuration()), ctx, d);
}

void run_initialized_le(std::uint32_t n, lint_context& ctx) {
  const initialized_leader_election p(n);
  const std::vector<initialized_leader_election::agent_state> states =
      p.all_states();
  debug_assert_protocol_registration(p, states);
  const describe_fn d = make_describer(states, describe_initialized_le);
  const auto delta =
      check_transition_table(p, states, /*deterministic=*/true, ctx, d);
  check_rank_range(p, states, ctx, d);
  check_state_count(initialized_leader_election::state_count(n),
                    states.size(), ctx);
  // Not self-stabilizing by design (the all-followers configuration is a
  // deadlock); the verified claim is convergence from the designated
  // all-leaders configuration.
  const auto member = membership_validator(states);
  check_sampled_run(
      p, p.initial_configuration(), /*max_interactions=*/10'000,
      /*seed=*/0x1e11eULL, member, member,
      [&p](const std::vector<initialized_leader_election::agent_state>&
               config) { return leader_count(p, config) == 1; },
      finding_code::no_convergence, "designated-configuration", ctx);
  check_dead_states(states, delta,
                    seed_indices(states, p.initial_configuration()), ctx, d);
}

void run_initialized_ranking(std::uint32_t n, lint_context& ctx) {
  const initialized_tree_ranking p(n);
  const std::vector<initialized_tree_ranking::agent_state> states =
      p.all_states();
  debug_assert_protocol_registration(p, states);
  const describe_fn d = make_describer(states, describe_tree_ranking);
  const auto delta =
      check_transition_table(p, states, /*deterministic=*/true, ctx, d);
  check_rank_range(p, states, ctx, d);
  check_state_count(initialized_tree_ranking::state_count(n), states.size(),
                    ctx);
  // Not self-stabilizing (all-Unsettled deadlocks); the verified claim is
  // that the designated configuration converges to a rank *permutation*
  // (is_valid_ranking is exactly the permutation predicate).
  const auto member = membership_validator(states);
  check_sampled_run(
      p, p.initial_configuration(), /*max_interactions=*/50'000,
      /*seed=*/0x7ee4a6ULL, member, member,
      [&p](const std::vector<initialized_tree_ranking::agent_state>& config) {
        return is_valid_ranking(p, config);
      },
      finding_code::no_convergence, "designated-configuration", ctx);
  check_dead_states(states, delta,
                    seed_indices(states, p.initial_configuration()), ctx, d);
}

void run_fixture(fixture_defect defect, std::uint32_t n, lint_context& ctx) {
  const broken_fixture_protocol p(n, defect);
  const std::vector<broken_fixture_protocol::agent_state> states =
      p.all_states();
  // No registration assert here: fixtures violate it by design, and the
  // linter is the layer whose job is to *report* rather than abort.
  const describe_fn d = make_describer(
      states, [](const broken_fixture_protocol::agent_state& s) {
        return describe_rank_state(s.rank);
      });
  const auto delta =
      check_transition_table(p, states, /*deterministic=*/true, ctx, d);
  check_rank_range(p, states, ctx, d);
  check_state_count(broken_fixture_protocol::state_count(n), states.size(),
                    ctx);
  check_batch_partition(p, states, ctx, d);
  if (ctx.count(finding_code::closure_escape) == 0) {
    check_terminal_components(p, states, {true, true}, ctx);
  }
  check_dead_states(states, delta, {}, ctx, d);
}

protocol_entry fixture_entry(std::string name, fixture_defect defect,
                             std::string target) {
  protocol_entry e;
  e.name = std::move(name);
  e.summary = "broken fixture (" + std::string(to_string(defect)) +
              "); must trip " + target;
  e.claims = {true, true, true, true, true, true};
  e.hidden = true;
  e.run = [defect](std::uint32_t n, lint_context& ctx) {
    run_fixture(defect, n, ctx);
  };
  return e;
}

// Model-only fixture: no state-level check composition, just the exact
// configuration-space pass -- each finding is attributable to the model
// checker alone.
protocol_entry model_fixture_entry(std::string name, std::string summary,
                                   model_attachment model) {
  protocol_entry e;
  e.name = std::move(name);
  e.summary = std::move(summary);
  e.claims = {true, true, true, true, true, true};
  e.hidden = true;
  e.run = [](std::uint32_t, lint_context&) {};
  e.model = std::move(model);
  return e;
}

std::vector<protocol_entry> build_registry() {
  std::vector<protocol_entry> reg;

  reg.push_back({"baseline",
                 "Silent-n-state-SSR (Protocol 1): n states, Theta(n^2) time",
                 {true, true, true, true, true, true},
                 false,
                 run_baseline});
  reg.back().model = baseline_model();
  reg.push_back({"optimal",
                 "Optimal-Silent-SSR (Protocols 3+4), verification tuning "
                 "(E_max=n, R_max=2, D_max=2): full config-space proof",
                 {true, true, true, true, true, true},
                 false,
                 [](std::uint32_t n, lint_context& ctx) {
                   run_optimal(n, /*tiny=*/true, ctx);
                 }});
  reg.back().model = optimal_tiny_model();
  reg.push_back({"optimal-default",
                 "Optimal-Silent-SSR, paper tuning (E_max=20n, R_max=60 ln n, "
                 "D_max=8n): state-level checks only",
                 {true, true, true, true, true, true},
                 false,
                 [](std::uint32_t n, lint_context& ctx) {
                   run_optimal(n, /*tiny=*/false, ctx);
                 }});
  for (std::uint32_t h = 0; h <= 2; ++h) {
    reg.push_back({"sublinear-h" + std::to_string(h),
                   "Sublinear-Time-SSR (Protocols 5+6), H=" +
                       std::to_string(h) +
                       ": sampled declared-space invariants + convergence",
                   {false, false, true, false, true, h == 0},
                   false,
                   [h](std::uint32_t n, lint_context& ctx) {
                     run_sublinear(n, h, ctx);
                   }});
  }
  reg.push_back({"loose",
                 "Loosely-stabilizing leader election (timeout scheme), "
                 "T=4 ceil(log2 n)",
                 {true, true, false, false, false, false},
                 false,
                 run_loose});
  reg.back().model = loose_model();
  reg.push_back({"initialized-le",
                 "Initialized (l,l)->(l,f) leader election: NOT "
                 "self-stabilizing by design",
                 {true, true, true, false, false, false},
                 false,
                 run_initialized_le});
  reg.back().model = initialized_le_model();
  reg.push_back({"initialized-ranking",
                 "Initialized binary-tree ranking (3n+1 states): NOT "
                 "self-stabilizing by design",
                 {true, true, true, false, false, false},
                 false,
                 run_initialized_ranking});
  reg.back().model = initialized_ranking_model();

  reg.push_back(fixture_entry("broken-closure",
                              fixture_defect::escaping_state,
                              "L001 closure-escape"));
  reg.push_back(fixture_entry("broken-silence", fixture_defect::false_silence,
                              "L008 non-silent-terminal"));
  reg.push_back(fixture_entry("broken-rank", fixture_defect::duplicate_rank,
                              "L006 ranking-not-permutation"));
  reg.push_back(fixture_entry("broken-rank-range",
                              fixture_defect::rank_overflow,
                              "L005 rank-out-of-range"));
  reg.push_back(fixture_entry("broken-change-flag",
                              fixture_defect::stale_change_flag,
                              "L004 change-flag-mismatch"));
  reg.push_back(fixture_entry("broken-batch", fixture_defect::batch_mixing,
                              "L010 batch-partition-violation"));

  // Model-only fixtures: one per model-checker finding code.
  reg.push_back(model_fixture_entry(
      "broken-hot-class",
      "broken fixture (false-silence), model pass only; must trip L014 "
      "exhaustive-silence",
      fixture_model(fixture_defect::false_silence)));
  reg.push_back(model_fixture_entry(
      "broken-regressing-rank",
      "broken fixture (regressing-rank), model pass only; must trip L015 "
      "exhaustive-stabilization",
      fixture_model(fixture_defect::regressing_rank)));
  {
    model_attachment m = baseline_model();
    // Clean dynamics, absurd claim: the exact worst case (1 interaction at
    // n=2) already exceeds a quarter-interaction budget.
    m.budget = [](std::uint32_t) { return 0.25; };
    reg.push_back(model_fixture_entry(
        "broken-time-budget",
        "clean baseline dynamics with a 0.25-interaction declared budget; "
        "must trip L016 expected-time-budget",
        std::move(m)));
  }
  reg.push_back(model_fixture_entry(
      "broken-isolated-class",
      "broken fixture (isolated-class), model pass only; must trip L017 "
      "spurious-terminal-class at n=2",
      fixture_model(fixture_defect::isolated_class)));
  return reg;
}

}  // namespace

const std::vector<protocol_entry>& lint_registry() {
  static const std::vector<protocol_entry> registry = build_registry();
  return registry;
}

const protocol_entry* find_protocol(std::string_view name) {
  for (const protocol_entry& e : lint_registry()) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<std::string> registry_names(bool include_hidden) {
  std::vector<std::string> names;
  for (const protocol_entry& e : lint_registry()) {
    if (e.hidden && !include_hidden) continue;
    names.push_back(e.name);
  }
  return names;
}

}  // namespace ssr::lint
