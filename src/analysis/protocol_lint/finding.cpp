#include "analysis/protocol_lint/finding.hpp"

#include <array>
#include <sstream>
#include <stdexcept>

namespace ssr::lint {
namespace {

struct code_names {
  std::string_view id;
  std::string_view name;
};

constexpr std::array<code_names, finding_code_count> kCodes = {{
    {"L001", "closure-escape"},
    {"L002", "transition-throw"},
    {"L003", "nondeterministic-transition"},
    {"L004", "change-flag-mismatch"},
    {"L005", "rank-out-of-range"},
    {"L006", "ranking-not-permutation"},
    {"L007", "state-count-mismatch"},
    {"L008", "non-silent-terminal"},
    {"L009", "not-self-stabilizing"},
    {"L010", "batch-partition-violation"},
    {"L011", "unreachable-state"},
    {"L012", "state-bits-bound"},
    {"L013", "no-convergence"},
    {"L014", "exhaustive-silence"},
    {"L015", "exhaustive-stabilization"},
    {"L016", "expected-time-budget"},
    {"L017", "spurious-terminal-class"},
}};

}  // namespace

std::string_view to_string(finding_code code) {
  return kCodes[static_cast<std::size_t>(code)].name;
}

std::string_view code_id(finding_code code) {
  return kCodes[static_cast<std::size_t>(code)].id;
}

std::string_view to_string(severity sev) {
  switch (sev) {
    case severity::note: return "note";
    case severity::warning: return "warning";
    case severity::error: return "error";
  }
  return "error";
}

finding_code parse_finding_code(std::string_view name) {
  for (std::size_t i = 0; i < kCodes.size(); ++i) {
    if (kCodes[i].name == name || kCodes[i].id == name)
      return static_cast<finding_code>(i);
  }
  throw std::invalid_argument("unknown finding code: " + std::string(name));
}

obs::json_value to_json(const finding& f) {
  obs::json_value v = obs::json_value::object();
  v["id"] = code_id(f.code);
  v["code"] = to_string(f.code);
  v["severity"] = to_string(f.sev);
  v["protocol"] = f.protocol;
  v["n"] = static_cast<std::uint64_t>(f.n);
  v["message"] = f.message;
  return v;
}

std::string to_line(const finding& f) {
  std::ostringstream os;
  os << to_string(f.sev) << '[' << code_id(f.code) << ' ' << to_string(f.code)
     << "] " << f.protocol << " n=" << f.n << ": " << f.message;
  return os.str();
}

bool contains(const std::vector<finding>& findings, finding_code code) {
  for (const finding& f : findings) {
    if (f.code == code) return true;
  }
  return false;
}

}  // namespace ssr::lint
