// Linter orchestration: runs the registered check compositions over a
// protocol/population grid and aggregates findings into a report the CLI
// renders as a table or JSON (docs/static_analysis.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/protocol_lint/finding.hpp"
#include "analysis/protocol_lint/registry.hpp"
#include "obs/json.hpp"

namespace ssr::lint {

struct lint_options {
  /// Registry names to lint; empty = every visible entry.
  std::vector<std::string> protocols;
  /// Population sizes; the checks are exhaustive proofs, so small n is the
  /// point, not a shortcut (state spaces grow combinatorially).
  std::vector<std::uint32_t> n_values = {2, 3, 4};
  /// Also lint the hidden broken fixtures when no explicit protocol list is
  /// given.
  bool include_hidden = false;
  /// Findings recorded per code per (protocol, n) before suppression.
  std::size_t cap_per_code = 8;
};

struct lint_report {
  std::vector<finding> findings;
  /// What was linted, in run order.
  std::vector<std::string> protocols;
  std::vector<std::uint32_t> n_values;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;

  /// Gate-relevant findings: errors always; warnings only under --strict;
  /// notes never (they report legal-but-informational facts, e.g. states
  /// reachable only through deserialization).
  std::size_t violations(bool strict) const {
    return errors + (strict ? warnings : 0);
  }
  bool passed(bool strict) const { return violations(strict) == 0; }
};

/// Runs the linter.  Throws std::invalid_argument on an unknown protocol
/// name, with a nearest-name suggestion when one is close enough.
lint_report run_lint(const lint_options& options);

/// Registry lookup that throws std::invalid_argument with a nearest-name
/// suggestion on unknown names ("unknown protocol 'basline'; did you mean
/// 'baseline'?") -- shared by protocol_lint and ssr_modelcheck.
const protocol_entry& resolve_protocol_entry(const std::string& name);

/// Machine-readable findings: {tool, strict, protocols, n, findings[],
/// summary{errors,warnings,notes,violations,passed}}.
obs::json_value to_json(const lint_report& report, bool strict);

/// Per-(protocol, n) verdict table plus one line per finding.
std::string render_report(const lint_report& report, bool strict);

}  // namespace ssr::lint
