#include "analysis/protocol_lint/model_check.hpp"

#include <sstream>
#include <utility>

namespace ssr::lint {

std::optional<model_run> run_entry_model(const protocol_entry& entry,
                                         std::uint32_t n, model_skip* skip) {
  if (!entry.model.has_value()) {
    if (skip != nullptr) {
      *skip = {entry.name, n, "no model attachment (state space not "
                              "enumerable at this tuning)"};
    }
    return std::nullopt;
  }
  if (n > entry.model->max_n) {
    if (skip != nullptr) {
      *skip = {entry.name, n,
               "n exceeds model max_n " + std::to_string(entry.model->max_n)};
    }
    return std::nullopt;
  }
  model_run run;
  run.protocol = entry.name;
  run.n = n;
  run.claims = entry.claims;
  if (entry.model->budget) {
    run.has_budget = true;
    run.budget = entry.model->budget(n);
  }
  run.graph = entry.model->build(n);
  run.result = run_model_check(run.graph);
  return run;
}

std::string describe_counterexample(const verify::config_graph& graph,
                                    const verify::counterexample& cx,
                                    std::size_t max_steps) {
  std::ostringstream os;
  if (cx.steps.empty()) {
    os << graph.config_name(cx.witness);
    return os.str();
  }
  os << graph.config_name(cx.steps.front().from_config);
  std::size_t shown = 0;
  for (const verify::counterexample_step& step : cx.steps) {
    if (shown == max_steps) {
      os << " --(" << cx.steps.size() - shown << " more)--> "
         << graph.config_name(cx.steps.back().to_config);
      return os.str();
    }
    os << " --(" << graph.state_labels[step.initiator_state] << ", "
       << graph.state_labels[step.responder_state] << ")--> "
       << graph.config_name(step.to_config);
    ++shown;
  }
  return os.str();
}

void emit_model_findings(const model_run& run, lint_context& ctx) {
  const verify::model_check_result& r = run.result;
  if (run.claims.silent && !r.silent) {
    std::string message =
        "silence claim refuted over all " +
        std::to_string(r.configurations) +
        " configurations: a terminal class keeps interacting";
    if (r.silence_counterexample.has_value()) {
      message += "; shortest cycle: " +
                 describe_counterexample(run.graph, *r.silence_counterexample);
    }
    ctx.emit(finding_code::exhaustive_silence, severity::error,
             std::move(message));
  }
  if (run.claims.self_stabilizing && !r.self_stabilizing) {
    std::string message =
        "self-stabilization claim refuted over all " +
        std::to_string(r.configurations) +
        " configurations: an incorrect configuration is stable";
    if (r.stabilization_counterexample.has_value()) {
      const verify::counterexample& cx = *r.stabilization_counterexample;
      message += cx.steps.empty()
                     ? "; witness (unreachable from any correct "
                       "configuration): " +
                           run.graph.config_name(cx.witness)
                     : "; shortest path from a correct configuration: " +
                           describe_counterexample(run.graph, cx);
    }
    ctx.emit(finding_code::exhaustive_stabilization, severity::error,
             std::move(message));
  }
  if (run.has_budget && r.expected_time_computed &&
      r.worst_expected_interactions > run.budget) {
    std::ostringstream os;
    os << "exact worst-case expected stabilization time "
       << r.worst_expected_interactions << " interactions (from "
       << run.graph.config_name(r.worst_config)
       << ") exceeds the declared budget " << run.budget;
    ctx.emit(finding_code::expected_time_budget, severity::error, os.str());
  }
  for (const std::size_t witness : r.spurious_terminal_witnesses) {
    ctx.emit(finding_code::spurious_terminal_class, severity::note,
             "terminal class of " + run.graph.config_name(witness) +
                 " has no incoming transition from outside the class: the "
                 "stable outcome exists only as an initial condition");
  }
}

obs::json_value modelcheck_to_json(const std::vector<model_run>& runs,
                                   const std::vector<model_skip>& skipped,
                                   const std::vector<finding>& findings,
                                   bool strict) {
  obs::json_value root = obs::json_value::object();
  root["schema"] = "ssr.modelcheck";
  root["version"] = std::uint64_t{1};
  root["strict"] = strict;

  obs::json_value runs_json = obs::json_value::array();
  for (const model_run& run : runs) {
    const verify::model_check_result& r = run.result;
    obs::json_value v = obs::json_value::object();
    v["protocol"] = run.protocol;
    v["n"] = static_cast<std::uint64_t>(run.n);
    v["configurations"] = static_cast<std::uint64_t>(r.configurations);
    v["transitions"] = static_cast<std::uint64_t>(r.transitions);
    v["scc_count"] = static_cast<std::uint64_t>(r.scc_count);
    v["terminal_classes"] = static_cast<std::uint64_t>(r.terminal_classes);
    v["largest_scc"] = static_cast<std::uint64_t>(r.largest_scc);
    obs::json_value claims = obs::json_value::object();
    claims["silent"] = run.claims.silent;
    claims["self_stabilizing"] = run.claims.self_stabilizing;
    v["claims"] = std::move(claims);
    v["silent"] = r.silent;
    v["self_stabilizing"] = r.self_stabilizing;
    obs::json_value spurious = obs::json_value::array();
    for (const std::size_t w : r.spurious_terminal_witnesses) {
      spurious.push_back(run.graph.config_name(w));
    }
    v["spurious_terminal_classes"] = std::move(spurious);
    obs::json_value expected = obs::json_value::object();
    expected["computed"] = r.expected_time_computed;
    if (r.expected_time_computed) {
      expected["worst_interactions"] = r.worst_expected_interactions;
      expected["worst_config"] = run.graph.config_name(r.worst_config);
      expected["uniform_interactions"] = r.uniform_expected_interactions;
      expected["solve_residual"] = r.solve_residual;
    }
    if (run.has_budget) expected["budget_interactions"] = run.budget;
    v["expected"] = std::move(expected);
    obs::json_value counterexamples = obs::json_value::object();
    if (r.silence_counterexample.has_value()) {
      counterexamples["silence"] =
          describe_counterexample(run.graph, *r.silence_counterexample);
    }
    if (r.stabilization_counterexample.has_value()) {
      counterexamples["stabilization"] = describe_counterexample(
          run.graph, *r.stabilization_counterexample);
    }
    v["counterexamples"] = std::move(counterexamples);
    runs_json.push_back(std::move(v));
  }
  root["runs"] = std::move(runs_json);

  obs::json_value skipped_json = obs::json_value::array();
  for (const model_skip& s : skipped) {
    obs::json_value v = obs::json_value::object();
    v["protocol"] = s.protocol;
    v["n"] = static_cast<std::uint64_t>(s.n);
    v["reason"] = s.reason;
    skipped_json.push_back(std::move(v));
  }
  root["skipped"] = std::move(skipped_json);

  obs::json_value findings_json = obs::json_value::array();
  std::size_t errors = 0, warnings = 0, notes = 0;
  for (const finding& f : findings) {
    findings_json.push_back(to_json(f));
    switch (f.sev) {
      case severity::error: ++errors; break;
      case severity::warning: ++warnings; break;
      case severity::note: ++notes; break;
    }
  }
  root["findings"] = std::move(findings_json);

  obs::json_value summary = obs::json_value::object();
  summary["runs"] = static_cast<std::uint64_t>(runs.size());
  summary["skipped"] = static_cast<std::uint64_t>(skipped.size());
  summary["errors"] = static_cast<std::uint64_t>(errors);
  summary["warnings"] = static_cast<std::uint64_t>(warnings);
  summary["notes"] = static_cast<std::uint64_t>(notes);
  const std::size_t violations = errors + (strict ? warnings : 0);
  summary["violations"] = static_cast<std::uint64_t>(violations);
  summary["passed"] = violations == 0;
  root["summary"] = std::move(summary);
  return root;
}

}  // namespace ssr::lint
