// Deliberately broken protocols, one structural defect each, used to prove
// the linter actually catches what it claims to catch
// (tests/protocol_lint_test.cpp; the CLI lists them under --include-broken).
//
// Every fixture is the baseline Silent-n-state-SSR with a single seeded
// defect; the registry registers them as hidden entries so `protocol_lint
// --strict` over the visible registry stays green while each fixture trips
// exactly the check its defect targets.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "pp/protocol.hpp"
#include "pp/rng.hpp"

namespace ssr::lint {

/// The seeded defect; each maps to the finding code it must trip.
enum class fixture_defect : std::uint8_t {
  escaping_state,     // L001: top rank wraps outside the declared space
  false_silence,      // L008: a rank-0/rank-1 swap keeps terminal configs hot
  duplicate_rank,     // L006: output map folds ranks 0 and 1 together
  rank_overflow,      // L005: output map claims ranks up to n+1
  stale_change_flag,  // L004: mutates states but always reports "null"
  batch_mixing,       // L010: adjacent ranks interact despite distinct keys
  regressing_rank,    // L015: rank 0 decays the top rank, so correctness is
                      //       repeatedly revoked and the terminal class of
                      //       the configuration digraph contains incorrect
                      //       configurations
  isolated_class,     // L017: an extra "C" state that is consumed but never
                      //       produced; at n=2 the configuration {rank 0, C}
                      //       is a silent *correct* terminal class no other
                      //       configuration can enter
};

std::string_view to_string(fixture_defect defect);

/// Silent-n-state-SSR with one seeded defect.  Declares the same n-state
/// inventory and Table-1 count as the baseline, so every emitted finding is
/// attributable to the defect alone.
class broken_fixture_protocol {
 public:
  struct agent_state {
    std::uint32_t rank = 0;  // declared range {0..n-1}

    friend bool operator==(const agent_state&, const agent_state&) = default;
  };

  broken_fixture_protocol(std::uint32_t n, fixture_defect defect)
      : n_(n), defect_(defect) {}

  std::uint32_t population_size() const { return n_; }
  fixture_defect defect() const { return defect_; }

  bool interact(agent_state& a, agent_state& b, rng_t&) const {
    switch (defect_) {
      case fixture_defect::escaping_state:
        if (a.rank != b.rank) return false;
        b.rank = b.rank + 1 == n_ ? n_ + 7 : b.rank + 1;
        return true;
      case fixture_defect::false_silence:
        if (a.rank == 0 && b.rank == 1) {
          a.rank = 1;
          b.rank = 0;
          return true;
        }
        return baseline(a, b);
      case fixture_defect::stale_change_flag:
        baseline(a, b);
        return false;
      case fixture_defect::batch_mixing:
        if (a.rank + 1 == b.rank) {
          b.rank = b.rank + 1 == n_ ? 0 : b.rank + 1;
          return true;
        }
        return baseline(a, b);
      case fixture_defect::regressing_rank:
        // Rank 0 knocks the top rank back down: the correct permutation is
        // repeatedly revoked, so the terminal class is hot *and* contains
        // incorrect configurations (L014 + L015).
        if (a.rank == 0 && b.rank == n_ - 1) {
          b.rank = 0;
          return true;
        }
        return baseline(a, b);
      case fixture_defect::isolated_class: {
        // C (encoded rank n) is consumed, never produced: (C,C) resolves
        // both, any nonzero rank converts a C, but rank 0 ignores it -- so
        // at n=2 the correct configuration {rank 0, C} is terminal with no
        // incoming transition (L017) while every other C-configuration
        // drains into the baseline space.
        const bool a_c = a.rank == n_;
        const bool b_c = b.rank == n_;
        if (a_c && b_c) {
          a.rank = 0;
          b.rank = 0;
          return true;
        }
        if (a_c || b_c) {
          const std::uint32_t other = a_c ? b.rank : a.rank;
          if (other == 0) return false;
          (a_c ? a : b).rank = 0;
          return true;
        }
        return baseline(a, b);
      }
      case fixture_defect::duplicate_rank:
      case fixture_defect::rank_overflow:
        return baseline(a, b);
    }
    return false;
  }

  std::uint32_t rank_of(const agent_state& s) const {
    switch (defect_) {
      case fixture_defect::duplicate_rank:
        return s.rank == 0 ? 1 : s.rank;  // folds states 0 and 1 onto rank 1
      case fixture_defect::rank_overflow:
        return s.rank + 2;  // top state claims rank n+1
      case fixture_defect::isolated_class:
        return s.rank == n_ ? n_ : s.rank + 1;  // C shares the top rank
      default:
        return s.rank + 1;
    }
  }

  std::uint32_t batch_key_count() const { return n_; }
  std::uint32_t batch_key(const agent_state& s) const {
    return s.rank < n_ ? s.rank : batch_volatile_key;
  }

  static std::uint64_t state_count(std::uint32_t n) { return n; }

  std::vector<agent_state> all_states() const {
    // isolated_class declares one extra state, the consumed-only C (rank n).
    const std::uint32_t k =
        defect_ == fixture_defect::isolated_class ? n_ + 1 : n_;
    std::vector<agent_state> states(k);
    for (std::uint32_t r = 0; r < k; ++r) states[r].rank = r;
    return states;
  }

 private:
  // The unmodified baseline rule: equal ranks bump the responder (mod n).
  bool baseline(agent_state& a, agent_state& b) const {
    if (a.rank != b.rank) return false;
    b.rank = b.rank + 1 == n_ ? 0 : b.rank + 1;
    return true;
  }

  std::uint32_t n_;
  fixture_defect defect_;
};

}  // namespace ssr::lint
