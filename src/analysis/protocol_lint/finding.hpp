// Finding model of the protocol linter (docs/static_analysis.md).
//
// A finding is one violated structural invariant, attributed to a protocol
// and a population size and carrying a stable machine-readable code.  The
// codes are part of the tool's contract: tests, the CI gate and downstream
// scripts match on them, so once published a code keeps its meaning.
//
// Severities: `error` is a broken guarantee (the paper's claims or an engine
// contract); `warning` is a suspicious-but-survivable fact that --strict
// promotes to an error; `note` is informational (e.g. the dead-state audit
// reports states that only deserialization can reach) and is never
// promoted.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace ssr::lint {

enum class finding_code : std::uint8_t {
  closure_escape,             // L001 delta left the declared state space
  transition_throw,           // L002 interact threw on a declared state pair
  nondeterministic,           // L003 repeated transition gave different results
  change_flag_mismatch,       // L004 interact() return value vs actual diff
  rank_out_of_range,          // L005 rank_of outside {0..n}
  ranking_not_permutation,    // L006 stable/designated ranking has collisions
  state_count_mismatch,       // L007 inventory size vs declared Table-1 count
  non_silent_terminal,        // L008 silent claim, but a terminal SCC moves
  not_self_stabilizing,       // L009 incorrect terminal component reachable
  batch_partition_violation,  // L010 batched-engine inert-key contract broken
  unreachable_state,          // L011 declared state no transition produces
  state_bits_bound,           // L012 per-agent memory audit vs Table 1
  no_convergence,             // L013 designated run failed to converge
  exhaustive_silence,         // L014 model checker found a hot terminal class
  exhaustive_stabilization,   // L015 model checker found a stable incorrect class
  expected_time_budget,       // L016 exact worst-case E[time] over budget
  spurious_terminal_class,    // L017 terminal class with no external in-edge
};

inline constexpr std::size_t finding_code_count = 17;

enum class severity : std::uint8_t { note, warning, error };

/// Stable kebab-case code name, e.g. "closure-escape".
std::string_view to_string(finding_code code);
/// Stable numeric id, e.g. "L001".
std::string_view code_id(finding_code code);
std::string_view to_string(severity sev);
/// Parses a kebab-case code name; throws std::invalid_argument on unknown
/// names (test support).
finding_code parse_finding_code(std::string_view name);

struct finding {
  finding_code code = finding_code::closure_escape;
  severity sev = severity::error;
  std::string protocol;
  std::uint32_t n = 0;
  std::string message;
};

/// One finding as a JSON object {id, code, severity, protocol, n, message}.
obs::json_value to_json(const finding& f);

/// "error[L001 closure-escape] baseline n=3: ..." -- the line format the
/// CLI prints and tests grep.
std::string to_line(const finding& f);

/// True iff `findings` contains at least one entry with `code`.
bool contains(const std::vector<finding>& findings, finding_code code);

}  // namespace ssr::lint
