// Two-sample Kolmogorov-Smirnov test.
//
// Used wherever the library claims two execution semantics are *the same
// distribution*, not just the same mean: the accelerated baseline simulator
// vs direct simulation, and the complete-graph edge scheduler vs the
// uniform ordered-pair scheduler.  The asymptotic Kolmogorov distribution
// gives the p-value: Q(lambda) = 2 sum_{j>=1} (-1)^{j-1} exp(-2 j^2
// lambda^2) with lambda = sqrt(ne) D (ne = effective sample size), the
// classical Smirnov approximation.
#pragma once

#include <span>

namespace ssr {

struct ks_result {
  /// Supremum distance between the two empirical CDFs.
  double statistic = 0.0;
  /// Asymptotic two-sided p-value (small = distributions differ).
  double p_value = 1.0;
};

/// Both samples must be non-empty.
ks_result ks_two_sample(std::span<const double> a, std::span<const double> b);

}  // namespace ssr
