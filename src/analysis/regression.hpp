// Least-squares fits used to verify asymptotic shapes.
//
// The paper's Table 1 makes Theta-claims; we verify them empirically by
// fitting log(time) against log(n) and checking the exponent: ~2 for the
// baseline, ~1 for Optimal-Silent-SSR, ~0 (logarithmic growth) for
// Sublinear-Time-SSR with H = Theta(log n).
#pragma once

#include <span>

namespace ssr {

struct linear_fit_result {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Ordinary least squares y = slope * x + intercept; xs and ys must have the
/// same size >= 2 and xs must not be constant.
linear_fit_result linear_fit(std::span<const double> xs,
                             std::span<const double> ys);

/// Fits log(y) = e * log(x) + c; the returned slope estimates the exponent e
/// of a power law y ~ x^e.  All inputs must be positive.
linear_fit_result loglog_fit(std::span<const double> xs,
                             std::span<const double> ys);

}  // namespace ssr
