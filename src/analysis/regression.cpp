#include "analysis/regression.hpp"

#include <cmath>
#include <vector>

#include "pp/assert.hpp"

namespace ssr {

linear_fit_result linear_fit(std::span<const double> xs,
                             std::span<const double> ys) {
  SSR_REQUIRE(xs.size() == ys.size());
  SSR_REQUIRE(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());

  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  SSR_REQUIRE(sxx > 0.0);

  linear_fit_result fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

linear_fit_result loglog_fit(std::span<const double> xs,
                             std::span<const double> ys) {
  SSR_REQUIRE(xs.size() == ys.size());
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    SSR_REQUIRE(xs[i] > 0.0 && ys[i] > 0.0);
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return linear_fit(lx, ly);
}

}  // namespace ssr
