#include "analysis/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

#include "pp/assert.hpp"

namespace ssr {

text_table::text_table(std::vector<std::string> header)
    : header_(std::move(header)) {
  SSR_REQUIRE(!header_.empty());
}

void text_table::add_row(std::vector<std::string> row) {
  SSR_REQUIRE(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void text_table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << '\n';
  };

  print_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string format_fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string format_mean_ci(double mean, double halfwidth, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << mean << " ± "
     << std::setprecision(digits) << halfwidth;
  return os.str();
}

std::string format_count(double value) {
  std::ostringstream os;
  if (value >= 1e6) {
    os << std::scientific << std::setprecision(2) << value;
  } else {
    os << std::fixed << std::setprecision(0) << value;
  }
  return os.str();
}

}  // namespace ssr
