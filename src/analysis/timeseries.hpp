// Sampled time series of population metrics, with CSV export and a compact
// ASCII chart for terminal output.  Examples and diagnostics use this to
// show trajectories (e.g. settled-agent counts through a reset pipeline)
// without leaving the terminal.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace ssr {

class time_series {
 public:
  /// Column names exclude the implicit leading "time" column.
  explicit time_series(std::vector<std::string> columns);

  /// Appends one sample; `values` must match the column count and `time`
  /// must be non-decreasing.
  void add(double time, std::span<const double> values);

  std::size_t size() const { return times_.size(); }
  std::size_t columns() const { return names_.size(); }
  const std::vector<double>& times() const { return times_; }
  std::span<const double> column(std::size_t c) const;
  const std::string& column_name(std::size_t c) const;

  /// RFC-4180-ish CSV with a header row.
  std::string to_csv() const;

  /// Renders one column as a `width` x `height` ASCII chart with axis
  /// labels; the series is bucketed by time and bucket means are plotted.
  std::string ascii_chart(std::size_t column, std::size_t width = 64,
                          std::size_t height = 10) const;

 private:
  std::vector<std::string> names_;
  std::vector<double> times_;
  std::vector<std::vector<double>> values_;  // per column
};

}  // namespace ssr
