#include "analysis/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "pp/assert.hpp"

namespace ssr {

time_series::time_series(std::vector<std::string> columns)
    : names_(std::move(columns)), values_(names_.size()) {
  SSR_REQUIRE(!names_.empty());
}

void time_series::add(double time, std::span<const double> values) {
  SSR_REQUIRE(values.size() == names_.size());
  SSR_REQUIRE(times_.empty() || time >= times_.back());
  times_.push_back(time);
  for (std::size_t c = 0; c < values.size(); ++c)
    values_[c].push_back(values[c]);
}

std::span<const double> time_series::column(std::size_t c) const {
  SSR_REQUIRE(c < values_.size());
  return values_[c];
}

const std::string& time_series::column_name(std::size_t c) const {
  SSR_REQUIRE(c < names_.size());
  return names_[c];
}

std::string time_series::to_csv() const {
  std::ostringstream os;
  os << "time";
  for (const auto& name : names_) os << ',' << name;
  os << '\n';
  os << std::setprecision(10);
  for (std::size_t i = 0; i < times_.size(); ++i) {
    os << times_[i];
    for (const auto& column : values_) os << ',' << column[i];
    os << '\n';
  }
  return os.str();
}

std::string time_series::ascii_chart(std::size_t column, std::size_t width,
                                     std::size_t height) const {
  SSR_REQUIRE(column < values_.size());
  SSR_REQUIRE(width >= 8 && height >= 3);
  if (times_.empty()) return "(empty series)\n";

  const auto& ys = values_[column];
  const double t0 = times_.front();
  const double t1 = times_.back();
  const double span = std::max(t1 - t0, 1e-12);

  // Bucket samples by time; plot bucket means.
  std::vector<double> sum(width, 0.0);
  std::vector<std::size_t> count(width, 0);
  for (std::size_t i = 0; i < times_.size(); ++i) {
    auto bucket = static_cast<std::size_t>((times_[i] - t0) / span *
                                           static_cast<double>(width - 1));
    bucket = std::min(bucket, width - 1);
    sum[bucket] += ys[i];
    ++count[bucket];
  }

  double lo = 1e300, hi = -1e300;
  for (std::size_t b = 0; b < width; ++b) {
    if (count[b] == 0) continue;
    const double v = sum[b] / static_cast<double>(count[b]);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi - lo < 1e-12) hi = lo + 1.0;

  std::vector<std::string> rows(height, std::string(width, ' '));
  for (std::size_t b = 0; b < width; ++b) {
    if (count[b] == 0) continue;
    const double v = sum[b] / static_cast<double>(count[b]);
    auto level = static_cast<std::size_t>((v - lo) / (hi - lo) *
                                          static_cast<double>(height - 1));
    level = std::min(level, height - 1);
    rows[height - 1 - level][b] = '*';
  }

  std::ostringstream os;
  os << names_[column] << " (min " << lo << ", max " << hi << ")\n";
  for (const auto& row : rows) os << "  |" << row << "|\n";
  os << "  t: " << t0 << " .. " << t1 << '\n';
  return os.str();
}

}  // namespace ssr
