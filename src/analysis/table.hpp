// Fixed-width ASCII table printing shared by the benchmark harnesses, so
// every experiment binary emits paper-style rows in a uniform format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ssr {

/// Column-aligned table with a header row.  Cells are preformatted strings;
/// format_cell helpers below cover the common numeric cases.
class text_table {
 public:
  explicit text_table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  std::size_t rows() const { return rows_.size(); }

  /// Renders with a rule under the header, columns padded to content width.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-point with `digits` decimals, e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double value, int digits);

/// Mean with a 95% CI half-width, e.g. "12.3 ± 0.4".
std::string format_mean_ci(double mean, double halfwidth, int digits);

/// Engineering-style formatting for counts, e.g. "1.2e+06" above 1e6.
std::string format_count(double value);

}  // namespace ssr
