// Offline analytics over JSONL execution traces (obs/trace.hpp).
//
// ssr_cli --trace-out writes one trace_header line followed by one event
// object per line.  This layer parses those files back into trace_event
// streams and aggregates, across one or many runs:
//
//   * per-phase dynamics -- entries/exits per phase plus the distribution
//     of completed dwell times (enter -> exit observed for the same
//     agent), percentile-accurate via the same quantile sketch the
//     metrics histograms use;
//   * reset waves -- count, plus distributions of wave duration in
//     parallel time and in interactions (a wave = reset_wave_start paired
//     with the next reset_wave_end; a wave still open at run_end counts
//     as unclosed, never as a duration sample);
//   * rank collisions -- total count and rate per executed interaction;
//   * convergence breakdown -- time to first convergence, time of the
//     last convergence (the stabilization point of the run), and
//     correctness_lost count.
//
// Dwell times are exact for unsampled traces.  When the producer sampled
// phase_transition events (sample_every > 1) the reconstruction only sees
// the kept transitions, so dwell distributions widen; the header's
// offered/sampled_out counters are surfaced so consumers can judge
// coverage.  Structural events are never sampled, so wave / collision /
// convergence statistics stay exact even in sampled traces.
//
// trace_stats_to_json emits schema-versioned JSON; chrome_trace_json
// converts a run into Chrome trace-event format (catapult JSON, loadable
// in Perfetto or chrome://tracing): reset waves become B/E duration
// events, everything else instants, with 1 unit of parallel time mapped
// to 1 "second" of trace time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/quantile_sketch.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace ssr {

inline constexpr int trace_stats_schema_version = 1;

/// One decoded JSONL trace file: header accounting + event stream.
struct parsed_trace {
  std::vector<std::string> phase_names;  // empty when header had none
  std::uint64_t offered = 0;
  std::uint64_t sampled_out = 0;
  std::uint64_t dropped = 0;
  // Run framing added in trace schema v2; v1 headers leave the defaults
  // (version 1, unknown producer revision).
  std::int64_t schema_version = 1;
  std::string git_rev;  // empty = v1 trace with no revision stamp
  std::vector<obs::trace_event> events;
};

/// Parses a JSONL trace stream.  Unknown event names and malformed lines
/// are errors (the format is versioned and producer-controlled).
std::optional<parsed_trace> parse_trace_jsonl(std::istream& is,
                                              std::string* error = nullptr);

/// Distribution summary rendered for one aggregated quantity.
struct dwell_summary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct phase_stats {
  std::string name;
  std::uint64_t entries = 0;
  std::uint64_t exits = 0;
  dwell_summary dwell;  // completed dwells, parallel-time units
};

struct reset_wave_stats {
  std::uint64_t waves = 0;           // completed start/end pairs
  std::uint64_t unclosed = 0;        // starts with no matching end
  dwell_summary duration_time;       // parallel-time units
  dwell_summary duration_interactions;
};

struct convergence_stats {
  std::uint64_t convergences = 0;
  std::uint64_t correctness_lost = 0;
  /// Per-run first/last convergence times relative to run_start.
  dwell_summary time_to_first;
  dwell_summary time_to_last;
};

/// Aggregates one or many runs.  Feed each parsed trace through add();
/// the summaries below then cover the union of all runs.
class trace_stats_accumulator {
 public:
  void add(const parsed_trace& trace);

  std::uint64_t runs() const { return runs_; }
  std::uint64_t events() const { return events_; }
  std::uint64_t offered() const { return offered_; }
  std::uint64_t sampled_out() const { return sampled_out_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t interactions() const { return interactions_; }
  double total_time() const { return total_time_; }
  std::uint64_t rank_collisions() const { return rank_collisions_; }
  /// Collisions per executed interaction across all runs; 0 when the
  /// traces carried no run framing.
  double rank_collision_rate() const;

  std::vector<phase_stats> phases() const;
  reset_wave_stats reset_waves() const;
  convergence_stats convergence() const;
  /// Distinct producing revisions seen across added traces, in first-seen
  /// order (empty for v1 traces, which carry no git_rev).  More than one
  /// entry means the aggregate mixes revisions -- report_trend joins on
  /// this.
  const std::vector<std::string>& git_revs() const { return git_revs_; }

  /// Versioned machine-readable summary (trace_stats_schema_version).
  obs::json_value to_json() const;
  /// Human-readable tables (analysis/table.hpp) on `os`.
  void print_table(std::ostream& os) const;

 private:
  /// Moments + sketch for one aggregated quantity; cheap to copy, unlike
  /// the mutex-guarded obs::histogram.
  struct dist {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    obs::quantile_sketch sketch;

    void record(double x);
    dwell_summary summarize() const;
  };

  std::uint64_t runs_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t sampled_out_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t interactions_ = 0;
  double total_time_ = 0.0;
  std::uint64_t rank_collisions_ = 0;
  std::vector<std::string> git_revs_;

  std::vector<std::string> phase_names_;
  std::vector<std::uint64_t> entries_;
  std::vector<std::uint64_t> exits_;
  std::vector<dist> dwell_;  // one per phase

  std::uint64_t waves_ = 0;
  std::uint64_t unclosed_waves_ = 0;
  dist wave_time_;
  dist wave_interactions_;

  std::uint64_t convergences_ = 0;
  std::uint64_t correctness_lost_ = 0;
  dist first_convergence_;
  dist last_convergence_;
};

/// Chrome trace-event ("catapult") JSON for one run: an object with a
/// "traceEvents" array, ts/dur in microseconds where 1 parallel-time unit
/// = 1 second.  `pid` distinguishes runs when several files are merged
/// into one timeline.
obs::json_value chrome_trace_json(const parsed_trace& trace, int pid = 1);

/// Chrome trace-event JSON for a section profile (obs/timeline.hpp): every
/// recorded span becomes an "X" complete event on one "profile" thread,
/// ts/dur in microseconds of wall time, with the section path and depth in
/// args.  Loads into Perfetto / chrome://tracing alongside (or merged
/// with) chrome_trace_json output -- use a distinct `pid` when merging.
obs::json_value chrome_profile_json(const obs::timeline_profile& profile,
                                    int pid = 1);

}  // namespace ssr
