// Summary statistics for experiment samples: mean, spread, quantiles and
// normal-approximation confidence intervals.
//
// "WHP time" columns of the paper's Table 1 are reproduced as upper
// quantiles (p90/p99) of the stabilization-time sample, so quantile
// estimation (linear interpolation, R type-7) lives here too.
#pragma once

#include <span>
#include <vector>

namespace ssr {

struct summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;        // sample standard deviation (n-1 denominator)
  double stderr_mean = 0.0;   // stddev / sqrt(count)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Computes the summary of a non-empty sample.
summary summarize(std::span<const double> sample);

/// Type-7 (linear interpolation) quantile of a non-empty sample,
/// q in [0, 1].
double quantile(std::span<const double> sample, double q);

/// Half-width of the normal-approximation 95% confidence interval for the
/// mean of a sample.
double ci95_halfwidth(const summary& s);

}  // namespace ssr
