#include "analysis/ks_test.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "pp/assert.hpp"

namespace ssr {
namespace {

/// Kolmogorov survival function Q(lambda) = P(D > lambda), asymptotic.
double kolmogorov_q(double lambda) {
  if (lambda < 1e-8) return 1.0;
  double sum = 0.0;
  for (int j = 1; j <= 100; ++j) {
    const double term =
        2.0 * ((j % 2 == 1) ? 1.0 : -1.0) *
        std::exp(-2.0 * j * j * lambda * lambda);
    sum += term;
    if (std::abs(term) < 1e-12) break;
  }
  return std::clamp(sum, 0.0, 1.0);
}

}  // namespace

ks_result ks_two_sample(std::span<const double> a, std::span<const double> b) {
  SSR_REQUIRE(!a.empty() && !b.empty());
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t ia = 0, ib = 0;
  double d = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    d = std::max(d, std::abs(static_cast<double>(ia) / na -
                             static_cast<double>(ib) / nb));
  }

  ks_result result;
  result.statistic = d;
  const double ne = na * nb / (na + nb);
  // Stephens' small-sample correction improves the asymptotic p-value.
  const double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
  result.p_value = kolmogorov_q(lambda);
  return result;
}

}  // namespace ssr
