#include "analysis/trace_stats.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "analysis/table.hpp"

namespace ssr {
namespace {

using obs::json_value;
using obs::trace_event;
using obs::trace_event_kind;

std::uint64_t uint_or(const json_value& obj, std::string_view key,
                      std::uint64_t fallback) {
  const json_value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  return v->as_uint64();
}

double number_or(const json_value& obj, std::string_view key,
                 double fallback) {
  const json_value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  return v->as_double();
}

json_value dwell_to_json(const dwell_summary& d) {
  json_value out = json_value::object();
  out["count"] = json_value{d.count};
  out["mean"] = json_value{d.mean};
  out["p50"] = json_value{d.p50};
  out["p90"] = json_value{d.p90};
  out["p99"] = json_value{d.p99};
  out["min"] = json_value{d.min};
  out["max"] = json_value{d.max};
  return out;
}

std::string dwell_cells(const dwell_summary& d) {
  if (d.count == 0) return "-";
  return format_fixed(d.mean, 4);
}

}  // namespace

std::optional<parsed_trace> parse_trace_jsonl(std::istream& is,
                                              std::string* error) {
  parsed_trace trace;
  std::string line;
  std::size_t line_number = 0;
  auto fail = [&](std::string message) -> std::optional<parsed_trace> {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_number) + ": " +
               std::move(message);
    }
    return std::nullopt;
  };

  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::string parse_error;
    const auto parsed = json_value::parse(line, &parse_error);
    if (!parsed) return fail(parse_error);
    if (!parsed->is_object()) return fail("not a JSON object");
    const json_value* name = parsed->find("event");
    if (name == nullptr || !name->is_string()) {
      return fail("missing string \"event\"");
    }
    if (name->as_string() == "trace_header") {
      trace.offered = uint_or(*parsed, "offered", 0);
      trace.sampled_out = uint_or(*parsed, "sampled_out", 0);
      trace.dropped = uint_or(*parsed, "dropped", 0);
      trace.schema_version = static_cast<std::int64_t>(
          number_or(*parsed, "schema_version", 1.0));
      if (const json_value* rev = parsed->find("git_rev");
          rev != nullptr && rev->is_string()) {
        trace.git_rev = rev->as_string();
      }
      if (const json_value* phases = parsed->find("phases");
          phases != nullptr && phases->is_array()) {
        for (const json_value& p : phases->items()) {
          if (p.is_string()) trace.phase_names.push_back(p.as_string());
        }
      }
      continue;
    }
    const auto kind = obs::trace_event_kind_from_string(name->as_string());
    if (!kind) return fail("unknown event \"" + name->as_string() + "\"");
    trace_event event;
    event.kind = *kind;
    event.time = number_or(*parsed, "time", 0.0);
    event.interaction = uint_or(*parsed, "interaction", 0);
    event.agent = static_cast<std::uint32_t>(
        uint_or(*parsed, "agent", obs::trace_no_agent));
    event.from_phase = static_cast<std::int32_t>(static_cast<std::int64_t>(
        number_or(*parsed, "from_phase", -1.0)));
    event.to_phase = static_cast<std::int32_t>(
        static_cast<std::int64_t>(number_or(*parsed, "to_phase", -1.0)));
    trace.events.push_back(event);
  }
  return trace;
}

void trace_stats_accumulator::dist::record(double x) {
  if (count == 0) {
    min = x;
    max = x;
  } else {
    min = std::min(min, x);
    max = std::max(max, x);
  }
  ++count;
  sum += x;
  sketch.add(x);
}

dwell_summary trace_stats_accumulator::dist::summarize() const {
  dwell_summary d;
  d.count = count;
  if (count == 0) return d;
  d.mean = sum / static_cast<double>(count);
  d.p50 = sketch.quantile(0.50);
  d.p90 = sketch.quantile(0.90);
  d.p99 = sketch.quantile(0.99);
  d.min = min;
  d.max = max;
  return d;
}

void trace_stats_accumulator::add(const parsed_trace& trace) {
  ++runs_;
  events_ += trace.events.size();
  offered_ += trace.offered;
  sampled_out_ += trace.sampled_out;
  dropped_ += trace.dropped;
  if (!trace.git_rev.empty() &&
      std::find(git_revs_.begin(), git_revs_.end(), trace.git_rev) ==
          git_revs_.end()) {
    git_revs_.push_back(trace.git_rev);
  }

  // Widen the phase tables to whatever this trace names or references.
  std::size_t phase_count =
      std::max(phase_names_.size(), trace.phase_names.size());
  for (const trace_event& event : trace.events) {
    if (event.kind != trace_event_kind::phase_transition) continue;
    phase_count = std::max(
        {phase_count, static_cast<std::size_t>(event.from_phase + 1),
         static_cast<std::size_t>(event.to_phase + 1)});
  }
  if (phase_names_.size() < trace.phase_names.size()) {
    phase_names_ = trace.phase_names;
  }
  entries_.resize(phase_count, 0);
  exits_.resize(phase_count, 0);
  dwell_.resize(phase_count);

  bool has_start = false;
  double start_time = 0.0;
  std::uint64_t start_interaction = 0;
  double last_time = 0.0;
  std::uint64_t last_interaction = 0;
  bool saw_end = false;
  std::optional<double> wave_open_time;
  std::uint64_t wave_open_interaction = 0;
  std::optional<double> first_convergence;
  std::optional<double> last_convergence;
  // Last known phase-entry time per agent; absent = in its initial phase
  // since run_start.
  std::unordered_map<std::uint32_t, double> entered_at;

  auto flush_run = [&] {
    if (wave_open_time.has_value()) {
      ++unclosed_waves_;
      wave_open_time.reset();
    }
    if (has_start) {
      if (first_convergence.has_value()) {
        first_convergence_.record(*first_convergence - start_time);
      }
      if (last_convergence.has_value()) {
        last_convergence_.record(*last_convergence - start_time);
      }
      interactions_ += last_interaction - start_interaction;
      total_time_ += last_time - start_time;
    }
    first_convergence.reset();
    last_convergence.reset();
    entered_at.clear();
    has_start = false;
    saw_end = false;
  };

  for (const trace_event& event : trace.events) {
    last_time = event.time;
    last_interaction = event.interaction;
    switch (event.kind) {
      case trace_event_kind::run_start:
        if (has_start) flush_run();  // truncated previous run
        has_start = true;
        start_time = event.time;
        start_interaction = event.interaction;
        break;
      case trace_event_kind::run_end:
        saw_end = true;
        flush_run();
        break;
      case trace_event_kind::phase_transition: {
        if (event.from_phase >= 0) {
          ++exits_[static_cast<std::size_t>(event.from_phase)];
          // Dwell = time since the agent entered from_phase; agents seen
          // for the first time have been there since run_start.
          double entered = has_start ? start_time : event.time;
          if (const auto it = entered_at.find(event.agent);
              it != entered_at.end()) {
            entered = it->second;
          }
          if (event.time >= entered) {
            dwell_[static_cast<std::size_t>(event.from_phase)].record(
                event.time - entered);
          }
        }
        if (event.to_phase >= 0) {
          ++entries_[static_cast<std::size_t>(event.to_phase)];
        }
        entered_at[event.agent] = event.time;
        break;
      }
      case trace_event_kind::reset_wave_start:
        if (wave_open_time.has_value()) ++unclosed_waves_;
        wave_open_time = event.time;
        wave_open_interaction = event.interaction;
        break;
      case trace_event_kind::reset_wave_end:
        if (wave_open_time.has_value()) {
          ++waves_;
          wave_time_.record(event.time - *wave_open_time);
          wave_interactions_.record(static_cast<double>(
              event.interaction - wave_open_interaction));
          wave_open_time.reset();
        }
        break;
      case trace_event_kind::rank_collision:
        ++rank_collisions_;
        break;
      case trace_event_kind::convergence:
        if (!first_convergence.has_value()) first_convergence = event.time;
        last_convergence = event.time;
        ++convergences_;
        break;
      case trace_event_kind::correctness_lost:
        ++correctness_lost_;
        break;
    }
  }
  // Truncated trace (no run_end): account for what we saw anyway.
  if (has_start && !saw_end) flush_run();
  if (wave_open_time.has_value()) ++unclosed_waves_;
}

double trace_stats_accumulator::rank_collision_rate() const {
  if (interactions_ == 0) return 0.0;
  return static_cast<double>(rank_collisions_) /
         static_cast<double>(interactions_);
}

std::vector<phase_stats> trace_stats_accumulator::phases() const {
  std::vector<phase_stats> out;
  out.reserve(dwell_.size());
  for (std::size_t ph = 0; ph < dwell_.size(); ++ph) {
    phase_stats stats;
    stats.name = ph < phase_names_.size() ? phase_names_[ph]
                                          : "phase" + std::to_string(ph);
    stats.entries = entries_[ph];
    stats.exits = exits_[ph];
    stats.dwell = dwell_[ph].summarize();
    out.push_back(std::move(stats));
  }
  return out;
}

reset_wave_stats trace_stats_accumulator::reset_waves() const {
  reset_wave_stats out;
  out.waves = waves_;
  out.unclosed = unclosed_waves_;
  out.duration_time = wave_time_.summarize();
  out.duration_interactions = wave_interactions_.summarize();
  return out;
}

convergence_stats trace_stats_accumulator::convergence() const {
  convergence_stats out;
  out.convergences = convergences_;
  out.correctness_lost = correctness_lost_;
  out.time_to_first = first_convergence_.summarize();
  out.time_to_last = last_convergence_.summarize();
  return out;
}

json_value trace_stats_accumulator::to_json() const {
  json_value out = json_value::object();
  out["schema_version"] = json_value{trace_stats_schema_version};
  out["runs"] = json_value{runs_};
  out["events"] = json_value{events_};
  out["offered"] = json_value{offered_};
  out["sampled_out"] = json_value{sampled_out_};
  out["dropped"] = json_value{dropped_};
  out["interactions"] = json_value{interactions_};
  out["total_time"] = json_value{total_time_};
  if (!git_revs_.empty()) {
    json_value revs = json_value::array();
    for (const std::string& rev : git_revs_) revs.push_back(json_value{rev});
    out["git_revs"] = std::move(revs);
  }

  json_value phases_json = json_value::array();
  for (const phase_stats& ph : phases()) {
    json_value p = json_value::object();
    p["name"] = json_value{ph.name};
    p["entries"] = json_value{ph.entries};
    p["exits"] = json_value{ph.exits};
    p["dwell"] = dwell_to_json(ph.dwell);
    phases_json.push_back(std::move(p));
  }
  out["phases"] = std::move(phases_json);

  const reset_wave_stats waves = reset_waves();
  json_value waves_json = json_value::object();
  waves_json["count"] = json_value{waves.waves};
  waves_json["unclosed"] = json_value{waves.unclosed};
  waves_json["duration_time"] = dwell_to_json(waves.duration_time);
  waves_json["duration_interactions"] =
      dwell_to_json(waves.duration_interactions);
  out["reset_waves"] = std::move(waves_json);

  json_value collisions = json_value::object();
  collisions["count"] = json_value{rank_collisions_};
  collisions["rate_per_interaction"] = json_value{rank_collision_rate()};
  out["rank_collisions"] = std::move(collisions);

  const convergence_stats conv = convergence();
  json_value conv_json = json_value::object();
  conv_json["count"] = json_value{conv.convergences};
  conv_json["correctness_lost"] = json_value{conv.correctness_lost};
  conv_json["time_to_first"] = dwell_to_json(conv.time_to_first);
  conv_json["time_to_last"] = dwell_to_json(conv.time_to_last);
  out["convergence"] = std::move(conv_json);
  return out;
}

void trace_stats_accumulator::print_table(std::ostream& os) const {
  os << "runs " << runs_ << ", events " << events_ << " (offered "
     << offered_ << ", sampled out " << sampled_out_ << ", dropped "
     << dropped_ << ")\n";
  os << "interactions " << format_count(static_cast<double>(interactions_))
     << ", parallel time " << format_fixed(total_time_, 4) << "\n";
  if (!git_revs_.empty()) {
    os << "revisions:";
    for (const std::string& rev : git_revs_) {
      os << ' ' << rev.substr(0, 12);
    }
    if (git_revs_.size() > 1) os << " (MIXED)";
    os << "\n";
  }
  os << "\n";

  text_table phase_table({"phase", "entries", "exits", "dwells",
                          "dwell mean", "dwell p50", "dwell p90",
                          "dwell p99"});
  for (const phase_stats& ph : phases()) {
    if (ph.entries == 0 && ph.exits == 0 && ph.dwell.count == 0) continue;
    phase_table.add_row(
        {ph.name, format_count(static_cast<double>(ph.entries)),
         format_count(static_cast<double>(ph.exits)),
         format_count(static_cast<double>(ph.dwell.count)),
         dwell_cells(ph.dwell),
         ph.dwell.count == 0 ? "-" : format_fixed(ph.dwell.p50, 4),
         ph.dwell.count == 0 ? "-" : format_fixed(ph.dwell.p90, 4),
         ph.dwell.count == 0 ? "-" : format_fixed(ph.dwell.p99, 4)});
  }
  if (phase_table.rows() > 0) {
    phase_table.print(os);
    os << "\n";
  }

  const reset_wave_stats waves = reset_waves();
  os << "reset waves: " << waves.waves << " completed, " << waves.unclosed
     << " unclosed";
  if (waves.duration_time.count > 0) {
    os << "; duration mean " << format_fixed(waves.duration_time.mean, 4)
       << " p99 " << format_fixed(waves.duration_time.p99, 4)
       << " (parallel time), mean "
       << format_count(waves.duration_interactions.mean) << " interactions";
  }
  os << "\n";

  os << "rank collisions: " << rank_collisions_ << " ("
     << rank_collision_rate() << " per interaction)\n";

  const convergence_stats conv = convergence();
  os << "convergence: " << conv.convergences << " event(s), "
     << conv.correctness_lost << " correctness_lost";
  if (conv.time_to_first.count > 0) {
    os << "; time-to-first mean "
       << format_fixed(conv.time_to_first.mean, 4) << ", time-to-last mean "
       << format_fixed(conv.time_to_last.mean, 4);
  }
  os << "\n";
}

json_value chrome_trace_json(const parsed_trace& trace, int pid) {
  constexpr double ts_scale = 1e6;  // 1 parallel-time unit -> 1 "second"
  json_value events = json_value::array();

  auto base = [&](std::string_view name, std::string_view ph, double time,
                  int tid) {
    json_value e = json_value::object();
    e["name"] = json_value{name};
    e["cat"] = json_value{"ssr"};
    e["ph"] = json_value{ph};
    e["ts"] = json_value{time * ts_scale};
    e["pid"] = json_value{pid};
    e["tid"] = json_value{tid};
    return e;
  };
  auto thread_name = [&](int tid, std::string_view name) {
    json_value e = json_value::object();
    e["name"] = json_value{"thread_name"};
    e["ph"] = json_value{"M"};
    e["pid"] = json_value{pid};
    e["tid"] = json_value{tid};
    json_value args = json_value::object();
    args["name"] = json_value{name};
    e["args"] = std::move(args);
    return e;
  };

  events.push_back(thread_name(0, "run"));
  events.push_back(thread_name(1, "reset waves"));
  events.push_back(thread_name(2, "phase transitions"));
  events.push_back(thread_name(3, "markers"));

  auto phase_name = [&](std::int32_t ph) -> std::string {
    if (ph >= 0 && static_cast<std::size_t>(ph) < trace.phase_names.size()) {
      return trace.phase_names[static_cast<std::size_t>(ph)];
    }
    return "phase" + std::to_string(ph);
  };

  bool wave_open = false;
  double last_time = 0.0;
  for (const obs::trace_event& event : trace.events) {
    last_time = std::max(last_time, event.time);
    switch (event.kind) {
      case obs::trace_event_kind::run_start:
      case obs::trace_event_kind::run_end: {
        json_value e = base(obs::to_string(event.kind), "i", event.time, 0);
        e["s"] = json_value{"p"};
        json_value args = json_value::object();
        args["interaction"] = json_value{event.interaction};
        e["args"] = std::move(args);
        events.push_back(std::move(e));
        break;
      }
      case obs::trace_event_kind::reset_wave_start:
        // Overlapping starts cannot happen (occupancy leaves zero once),
        // but stay balanced on malformed input.
        if (!wave_open) {
          events.push_back(base("reset_wave", "B", event.time, 1));
          wave_open = true;
        }
        break;
      case obs::trace_event_kind::reset_wave_end:
        if (wave_open) {
          events.push_back(base("reset_wave", "E", event.time, 1));
          wave_open = false;
        }
        break;
      case obs::trace_event_kind::phase_transition: {
        json_value e = base(
            phase_name(event.from_phase) + " -> " +
                phase_name(event.to_phase),
            "i", event.time, 2);
        e["s"] = json_value{"t"};
        json_value args = json_value::object();
        args["agent"] = json_value{static_cast<std::uint64_t>(event.agent)};
        args["interaction"] = json_value{event.interaction};
        e["args"] = std::move(args);
        events.push_back(std::move(e));
        break;
      }
      case obs::trace_event_kind::rank_collision:
      case obs::trace_event_kind::convergence:
      case obs::trace_event_kind::correctness_lost: {
        json_value e = base(obs::to_string(event.kind), "i", event.time, 3);
        e["s"] = json_value{"p"};
        json_value args = json_value::object();
        args["interaction"] = json_value{event.interaction};
        e["args"] = std::move(args);
        events.push_back(std::move(e));
        break;
      }
    }
  }
  // A wave still open at the end of the trace would leave an unbalanced
  // "B"; close it at the last timestamp so viewers render it full-width.
  if (wave_open) events.push_back(base("reset_wave", "E", last_time, 1));

  json_value out = json_value::object();
  out["traceEvents"] = std::move(events);
  out["displayTimeUnit"] = json_value{"ms"};
  return out;
}

json_value chrome_profile_json(const obs::timeline_profile& profile,
                               int pid) {
  constexpr double ns_to_us = 1e-3;
  json_value events = json_value::array();

  json_value meta = json_value::object();
  meta["name"] = json_value{"thread_name"};
  meta["ph"] = json_value{"M"};
  meta["pid"] = json_value{pid};
  meta["tid"] = json_value{0};
  json_value meta_args = json_value::object();
  meta_args["name"] = json_value{"profile"};
  meta["args"] = std::move(meta_args);
  events.push_back(std::move(meta));

  for (const obs::timeline_span& span : profile.spans) {
    if (span.section >= profile.sections.size()) continue;
    const obs::timeline_section& section = profile.sections[span.section];
    json_value e = json_value::object();
    e["name"] = json_value{section.name};
    e["cat"] = json_value{"ssr.profile"};
    e["ph"] = json_value{"X"};
    e["ts"] = json_value{static_cast<double>(span.start_ns) * ns_to_us};
    e["dur"] = json_value{static_cast<double>(span.duration_ns) * ns_to_us};
    e["pid"] = json_value{pid};
    e["tid"] = json_value{0};
    json_value args = json_value::object();
    args["path"] = json_value{profile.path(span.section)};
    args["depth"] = json_value{static_cast<std::int64_t>(section.depth)};
    e["args"] = std::move(args);
    events.push_back(std::move(e));
  }

  json_value out = json_value::object();
  out["traceEvents"] = std::move(events);
  out["displayTimeUnit"] = json_value{"ms"};
  return out;
}

}  // namespace ssr
