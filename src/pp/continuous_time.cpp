#include "pp/continuous_time.hpp"

#include <cmath>

#include "pp/assert.hpp"

namespace ssr {

poisson_clock::poisson_clock(std::uint32_t n)
    : rate_(static_cast<double>(n)) {
  SSR_REQUIRE(n >= 2);
}

double exponential_draw(rng_t& rng) {
  // Inverse CDF on (0, 1]; 1 - u avoids log(0).
  return -std::log(1.0 - uniform_unit(rng));
}

double poisson_clock::tick(rng_t& rng) {
  now_ += exponential_draw(rng) / rate_;
  ++events_;
  return now_;
}

}  // namespace ssr
