// Cooperative cancellation for long-running measurements.
//
// The serve layer (src/serve/) runs simulations on behalf of remote
// clients, which means runs must be abortable mid-flight: a client can
// disconnect, a per-request deadline can expire, or the daemon can drain
// for shutdown.  Simulation loops are pure compute with no natural yield
// points, so cancellation is cooperative: the measurement layers
// (pp/trial.hpp between trials, pp/convergence.hpp between bounded engine
// bursts) poll a shared token and abandon the run by throwing
// cancelled_error.
//
// Polling an engine burst boundary instead of every interaction keeps the
// hot loop untouched; exactness is preserved because interrupting
// engine.run() at any interaction budget and resuming later continues the
// identical trajectory (the RNG stream is engine state, see pp/engine.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace ssr {

/// Thrown by measurement layers when a cancel_token fires mid-run.
class cancelled_error : public std::runtime_error {
 public:
  explicit cancelled_error(const char* what = "run cancelled")
      : std::runtime_error(what) {}
};

/// Shared cancellation flag with an optional absolute deadline.  One writer
/// side (request_cancel / set_deadline, e.g. a server connection thread or
/// an admission controller) and any number of polling readers; all
/// operations are thread-safe.
class cancel_token {
 public:
  using clock = std::chrono::steady_clock;

  /// Requests cancellation; sticky, cancelled() is true from now on.
  void request_cancel() {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  /// Cancels automatically once `deadline` passes.  time_point::max()
  /// (the default) means no deadline.
  void set_deadline(clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }
  void set_deadline_after(clock::duration timeout) {
    set_deadline(clock::now() + timeout);
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) !=
           clock::time_point::max().time_since_epoch().count();
  }

  /// True iff cancellation was requested or the deadline has passed.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const auto deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline == clock::time_point::max().time_since_epoch().count())
      return false;
    return clock::now().time_since_epoch().count() >= deadline;
  }

  /// True iff cancelled() fired via the deadline rather than an explicit
  /// request (used to distinguish "deadline exceeded" from "cancelled" in
  /// error responses).
  bool deadline_expired() const {
    return cancelled() && !cancelled_.load(std::memory_order_relaxed);
  }

  /// Polls the token and throws cancelled_error when it fired.
  void throw_if_cancelled() const {
    if (cancelled()) throw cancelled_error();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<clock::rep> deadline_ns_{
      clock::time_point::max().time_since_epoch().count()};
};

}  // namespace ssr
