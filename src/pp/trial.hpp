// Multi-seed trial execution with optional thread parallelism.
//
// Stabilization-time experiments are embarrassingly parallel across seeds;
// run_trials fans the per-seed measurement function out over hardware
// threads while keeping results ordered and reproducible (trial i always
// receives derive_seed(base_seed, i) regardless of thread assignment).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.hpp"
#include "pp/cancellation.hpp"
#include "pp/engine.hpp"

namespace ssr {

/// Runs `body(index)` for every index in [0, count), possibly concurrently.
/// Exceptions thrown by any invocation are rethrown on the calling thread.
void parallel_for_index(std::size_t count,
                        const std::function<void(std::size_t)>& body,
                        bool parallel = true);

/// Runs `trial(seed)` for `count` derived seeds and returns the results in
/// trial order.
std::vector<double> run_trials(
    std::size_t count, std::uint64_t base_seed,
    const std::function<double(std::uint64_t)>& trial, bool parallel = true);

/// Options for engine-aware sweeps.  The engine choice rides along with the
/// parallelism flag so every measurement layer (bench/common, ssr_cli,
/// one-off sweeps) selects --engine=direct|batched|sharded uniformly;
/// engine_spec carries the shard count for the sharded engine.
struct trial_options {
  bool parallel = true;
  engine_spec engine = engine_kind::direct;
  /// When set, run_trials records "trials.completed" (counter) and
  /// "trial.seconds" (histogram of per-trial wall time) into the registry.
  /// The registry is thread-safe, so this works under parallel execution.
  obs::metrics_registry* metrics = nullptr;
  /// Prints a periodic heartbeat (trials completed, trials/s, ETA) to
  /// stderr while the sweep runs.  Also enabled process-wide by
  /// obs::set_progress_default(true) -- the hook behind the --progress
  /// flags -- without touching call sites.
  bool progress = false;
  /// Cooperative cancellation (pp/cancellation.hpp): polled before every
  /// trial; a fired token aborts the sweep with cancelled_error.  The
  /// serve layer wires per-request deadlines through this.  Trial bodies
  /// that want finer-grained aborts also pass it to convergence_options.
  const cancel_token* cancel = nullptr;
};

/// Engine-aware overload: `trial(seed, engine)` runs one measurement on the
/// selected engine kind.  Seeds are derived exactly as in the base overload,
/// so for a fixed engine the results are bit-identical regardless of the
/// parallel flag or thread count (tests/determinism_test.cpp).  Callers
/// whose measurement depends on the full spec (shard count) capture it in
/// the closure instead -- see bench/common.cpp.
std::vector<double> run_trials(
    std::size_t count, std::uint64_t base_seed,
    const std::function<double(std::uint64_t, engine_kind)>& trial,
    const trial_options& options);

}  // namespace ssr
