#include "pp/batch_scheduler.hpp"

#include <algorithm>

#include "pp/assert.hpp"

namespace ssr {

batch_scheduler::batch_scheduler(std::uint32_t n, std::uint32_t capacity)
    : n_(n), capacity_(capacity) {
  SSR_REQUIRE(n >= 2);
  SSR_REQUIRE(capacity >= 1);
  buffer_.reserve(capacity);
  stamp_.assign(n, 0);
}

std::span<const agent_pair> batch_scheduler::next_batch(rng_t& rng,
                                                        std::uint64_t limit) {
  obs::timeline_scope section(profiler_, "batch.draw");
  buffer_.clear();
  ++epoch_;
  ++batches_;
  const std::uint64_t want = std::min<std::uint64_t>(capacity_, limit);
  while (buffer_.size() < want) {
    const agent_pair pair = sample_pair(rng, n_);
    buffer_.push_back(pair);
    if (stamp_[pair.initiator] == epoch_ || stamp_[pair.responder] == epoch_) {
      ++truncations_;
      break;
    }
    stamp_[pair.initiator] = epoch_;
    stamp_[pair.responder] = epoch_;
  }
  pairs_ += buffer_.size();
  return buffer_;
}

}  // namespace ssr
