#include "pp/batch_scheduler.hpp"

#include <algorithm>

#include "pp/assert.hpp"

namespace ssr {

batch_scheduler::batch_scheduler(std::uint32_t n, std::uint32_t capacity)
    : n_(n), capacity_(capacity), cols_(n >= 2 ? n - 1 : 1) {
  SSR_REQUIRE(n >= 2);
  SSR_REQUIRE(capacity >= 1);
  buffer_.reserve(capacity);
  carry_.reserve(chunk_words);
  stamp_.assign(n, 0);
}

void batch_scheduler::refill_carry(rng_t& rng) {
  const std::uint64_t bound = std::uint64_t{n_} * (n_ - 1);
  std::uint64_t raw[chunk_words];
  std::uint64_t mapped[chunk_words];
  std::uint64_t initiator[chunk_words];
  std::uint64_t responder[chunk_words];
  std::uint8_t accept[chunk_words];
  carry_.clear();
  carry_pos_ = 0;
  // A chunk can reject every word (Lemire rejection is per word); keep
  // drawing until at least one pair lands.  Rejection probability is
  // (2^64 mod bound) / 2^64 < bound / 2^64, so in practice one pass.
  while (carry_.empty()) {
    for (std::uint64_t& word : raw) word = rng();
    simd::lemire_map(raw, chunk_words, bound, mapped, accept);
    // Rejected lanes decode garbage-but-bounded values (mapped < bound
    // always holds); they are filtered below without a branch in the
    // vector kernels.
    simd::decode_ordered_distinct(mapped, chunk_words, cols_, initiator,
                                  responder);
    for (std::size_t i = 0; i < chunk_words; ++i) {
      if (accept[i]) {
        carry_.push_back({static_cast<std::uint32_t>(initiator[i]),
                          static_cast<std::uint32_t>(responder[i])});
      }
    }
  }
}

std::span<const agent_pair> batch_scheduler::next_batch(rng_t& rng,
                                                        std::uint64_t limit) {
  obs::timeline_scope section(profiler_, "batch.draw");
  buffer_.clear();
  ++epoch_;
  ++batches_;
  const std::uint64_t want = std::min<std::uint64_t>(capacity_, limit);
  while (buffer_.size() < want) {
    if (carry_pos_ == carry_.size()) refill_carry(rng);
    const agent_pair pair = carry_[carry_pos_++];
    buffer_.push_back(pair);
    if (stamp_[pair.initiator] == epoch_ || stamp_[pair.responder] == epoch_) {
      ++truncations_;
      break;
    }
    stamp_[pair.initiator] = epoch_;
    stamp_[pair.responder] = epoch_;
  }
  pairs_ += buffer_.size();
  return buffer_;
}

}  // namespace ssr
