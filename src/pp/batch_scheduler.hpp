// Collision-aware batched pair sampling for the uniform scheduler.
//
// Drawing scheduler pairs one interaction at a time interleaves the RNG,
// the Lemire rejection loop, and the protocol's transition logic, which
// starves the pipeline.  The batch scheduler instead fills a block of up to
// B ordered pairs in one tight loop.  Batches are *collision-aware*: a
// drawn pair that touches an agent already used earlier in the same batch
// closes the batch (that pair is included as its final element), so every
// batch is an independent prefix -- pairs touching pairwise-distinct agents
// -- followed by at most one dependent pair.  Consumers that apply pairs
// strictly in order (the batched engine's generic path) may therefore
// treat a batch as reorderable up to its last element, and consumers that
// vectorize may process the prefix wholesale and fall back to direct
// stepping for the closing pair.
//
// The emitted sequence is exactly the i.i.d. uniform ordered-pair stream of
// sample_pair (batching changes only *when* draws happen, never their
// distribution), which is what the distribution-equivalence suite
// (tests/engine_equivalence_test.cpp) and the fuzz test
// (tests/batch_scheduler_fuzz_test.cpp) pin down.
//
// The draw path is vectorized (pp/simd.hpp): raw RNG words are pre-drawn in
// chunks, mapped through the Lemire accept rule and divide/modulo pair
// decode with SIMD kernels, and spilled decoded pairs carry over to the
// next batch.  Because the accept rule and decode are bit-identical to
// uniform_below + sample_pair, the emitted pair stream equals the scalar
// stream word for word (tests/simd_test.cpp pins this end to end); only
// the RNG's read-ahead position differs.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "obs/timeline.hpp"
#include "pp/rng.hpp"
#include "pp/scheduler.hpp"
#include "pp/simd.hpp"

namespace ssr {

class batch_scheduler {
 public:
  static constexpr std::uint32_t default_capacity = 256;

  explicit batch_scheduler(std::uint32_t n,
                           std::uint32_t capacity = default_capacity);

  /// Fills the internal buffer with up to min(capacity, limit) pairs and
  /// returns a view of it (valid until the next call).  At least one pair
  /// is returned whenever limit >= 1; the batch is cut short after the
  /// first pair that revisits an agent.  `limit` lets callers cap a batch
  /// at their remaining interaction budget so no drawn pair is wasted.
  std::span<const agent_pair> next_batch(
      rng_t& rng,
      std::uint64_t limit = std::numeric_limits<std::uint64_t>::max());

  /// Attaches (or with nullptr detaches) a section profiler; each
  /// next_batch call records a "batch.draw" section.  The batched engine
  /// forwards its profiler here so draws nest under "engine.run".
  void attach_profiler(obs::timeline_profiler* profiler) {
    profiler_ = profiler;
  }

  std::uint32_t population_size() const { return n_; }
  std::uint32_t capacity() const { return capacity_; }

  /// Lifetime counters, for the fuzz test and the scaling bench.
  std::uint64_t pairs_issued() const { return pairs_; }
  std::uint64_t batches_issued() const { return batches_; }
  std::uint64_t collision_truncations() const { return truncations_; }

 private:
  /// Raw words pre-drawn (and SIMD-mapped) per refill of the decoded-pair
  /// carry; spilled pairs survive across next_batch calls so no accepted
  /// draw is ever discarded.
  static constexpr std::size_t chunk_words = 32;

  void refill_carry(rng_t& rng);

  std::uint32_t n_;
  std::uint32_t capacity_;
  std::vector<agent_pair> buffer_;
  // Epoch stamps instead of a bool-vector reset: clearing n flags per batch
  // would cost more than the batch itself at large n.
  std::vector<std::uint64_t> stamp_;
  simd::u64_divider cols_;  // divide-by-(n-1) reciprocal for the decode
  std::vector<agent_pair> carry_;  // decoded pairs not yet emitted
  std::size_t carry_pos_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t pairs_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t truncations_ = 0;
  obs::timeline_profiler* profiler_ = nullptr;
};

}  // namespace ssr
