#include "pp/sharded_scheduler.hpp"

#include "pp/simd.hpp"

namespace ssr::detail {

shard_layout shard_layout::build(std::uint32_t n, std::uint32_t shards) {
  SSR_REQUIRE(n >= 2);
  SSR_REQUIRE(shards >= 1 && shards <= n);
  shard_layout layout;
  layout.n = n;
  layout.shards = shards;
  layout.offset.resize(shards + 1);
  const std::uint32_t base = n / shards;
  const std::uint32_t extra = n % shards;
  layout.offset[0] = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    layout.offset[s + 1] = layout.offset[s] + base + (s < extra ? 1 : 0);
  }
  // Circle-method round-robin tournament: pad to an even player count with
  // a dummy, fix the last player, rotate the rest.  Each of the s2-1 slots
  // pairs every shard at most once, pairs are shard-disjoint within a
  // slot, and every unordered shard pair appears in exactly one slot;
  // pairs involving the dummy are dropped (a bye for that shard).
  const std::uint32_t s2 = shards + (shards & 1U);
  if (s2 >= 2) {
    layout.cross_slots.assign(s2 - 1, {});
    for (std::uint32_t r = 0; r < s2 - 1; ++r) {
      auto add = [&](std::uint32_t x, std::uint32_t y) {
        if (x >= shards || y >= shards) return;  // dummy bye
        if (x > y) std::swap(x, y);
        layout.cross_slots[r].push_back({x, y});
      };
      add(s2 - 1, r);
      for (std::uint32_t k = 1; k < s2 / 2; ++k) {
        add((r + k) % (s2 - 1), (r + s2 - 1 - k) % (s2 - 1));
      }
    }
  }
  return layout;
}

void plan_shard_round(const shard_layout& layout, rng_t& plan_rng,
                      std::uint64_t total,
                      std::vector<std::uint64_t>& weight_scratch,
                      std::vector<std::uint64_t>& count_scratch,
                      std::vector<std::vector<shard_task>>& slots) {
  const std::uint32_t shards = layout.shards;
  const std::size_t classes = std::size_t{shards} * shards;
  weight_scratch.resize(classes);
  count_scratch.assign(classes, 0);
  for (std::uint32_t a = 0; a < shards; ++a) {
    const std::uint64_t m_a = layout.size_of(a);
    for (std::uint32_t b = 0; b < shards; ++b) {
      const std::uint64_t m_b = layout.size_of(b);
      weight_scratch[std::size_t{a} * shards + b] =
          a == b ? m_a * (m_a - 1) : m_a * m_b;
    }
  }
  // The class weights partition the n(n-1) ordered distinct pairs exactly.
  std::uint64_t weight_left =
      simd::sum_u64(weight_scratch.data(), weight_scratch.size());
  SSR_ASSERT(weight_left ==
             std::uint64_t{layout.n} * (layout.n - 1));
  // Multinomial counts via sequential binomial conditioning:
  //   count_c ~ Binomial(remaining, w_c / weight_left),
  // drawn in fixed class order from the dedicated planning stream, so the
  // plan is deterministic in (seed, shard count) alone.
  std::uint64_t remaining = total;
  for (std::size_t c = 0; c < classes && remaining > 0; ++c) {
    const std::uint64_t w = weight_scratch[c];
    if (w == 0) continue;
    std::uint64_t count = 0;
    if (w == weight_left) {
      count = remaining;  // last nonzero class takes the exact rest
    } else {
      count = binomial_draw(plan_rng, remaining,
                            static_cast<double>(w) /
                                static_cast<double>(weight_left));
    }
    count_scratch[c] = count;
    remaining -= count;
    weight_left -= w;
  }
  SSR_ASSERT(remaining == 0);

  slots.clear();
  slots.emplace_back();
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::uint64_t count = count_scratch[std::size_t{s} * shards + s];
    if (count == 0) continue;
    slots.front().push_back({.diagonal = true,
                             .a = s,
                             .b = s,
                             .count_ab = count,
                             .count_ba = 0,
                             .stream = s});
  }
  for (const auto& tournament_slot : layout.cross_slots) {
    std::vector<shard_task> slot;
    for (const auto& [a, b] : tournament_slot) {
      const std::uint64_t ab = count_scratch[std::size_t{a} * shards + b];
      const std::uint64_t ba = count_scratch[std::size_t{b} * shards + a];
      if (ab + ba == 0) continue;
      slot.push_back({.diagonal = false,
                      .a = a,
                      .b = b,
                      .count_ab = ab,
                      .count_ba = ba,
                      .stream = shards + std::uint64_t{a} * shards + b});
    }
    if (!slot.empty()) slots.push_back(std::move(slot));
  }
}

shard_executor::shard_executor(std::uint32_t workers) {
  threads_.reserve(workers);
  for (std::uint32_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

shard_executor::~shard_executor() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void shard_executor::run_tasks(std::size_t count,
                               const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  std::unique_lock lock(mutex_);
  task_ = &task;
  task_count_ = count;
  next_claim_ = 0;
  completed_ = 0;
  start_cv_.notify_all();
  // The calling thread participates in the claim loop like any worker.
  while (next_claim_ < task_count_) {
    const std::size_t index = next_claim_++;
    lock.unlock();
    try {
      task(index);
    } catch (...) {
      lock.lock();
      if (!error_) error_ = std::current_exception();
      ++completed_;
      continue;
    }
    lock.lock();
    ++completed_;
  }
  done_cv_.wait(lock, [this] { return completed_ == task_count_; });
  task_ = nullptr;
  task_count_ = 0;
  next_claim_ = 0;
  if (error_) {
    std::exception_ptr error = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void shard_executor::worker_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    start_cv_.wait(lock, [this] {
      return stopping_ || next_claim_ < task_count_;
    });
    if (stopping_) return;
    const std::size_t index = next_claim_++;
    const std::function<void(std::size_t)>* task = task_;
    lock.unlock();
    try {
      (*task)(index);
    } catch (...) {
      lock.lock();
      if (!error_) error_ = std::current_exception();
      ++completed_;
      if (completed_ == task_count_) done_cv_.notify_all();
      continue;
    }
    lock.lock();
    ++completed_;
    if (completed_ == task_count_) done_cv_.notify_all();
  }
}

}  // namespace ssr::detail
