// The uniformly random scheduler of the population protocol model.
//
// At each discrete step an ordered pair of distinct agents (initiator,
// responder) is drawn uniformly from the n(n-1) possibilities (complete
// communication graph).
#pragma once

#include <cstdint>
#include <utility>

#include "pp/random.hpp"
#include "pp/rng.hpp"

namespace ssr {

/// An ordered interaction pair: indices into the configuration vector.
struct agent_pair {
  std::uint32_t initiator;
  std::uint32_t responder;

  friend bool operator==(const agent_pair&, const agent_pair&) = default;
};

/// Draws a uniform ordered pair of distinct agents from a population of
/// size n (n >= 2).
agent_pair sample_pair(rng_t& rng, std::uint32_t n);

}  // namespace ssr
