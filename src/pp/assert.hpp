// Lightweight precondition checking used across the library.
//
// SSR_REQUIRE is an always-on precondition check (throws std::logic_error):
// it guards public API boundaries where a violated contract indicates a
// caller bug.  SSR_ASSERT is an internal invariant check compiled out in
// release builds unless SSR_ENABLE_ASSERTS is defined.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ssr::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  throw std::logic_error(os.str());
}

}  // namespace ssr::detail

#define SSR_REQUIRE(expr)                                                 \
  do {                                                                    \
    if (!(expr))                                                          \
      ::ssr::detail::contract_failure("precondition", #expr, __FILE__,    \
                                      __LINE__);                          \
  } while (false)

#if defined(SSR_ENABLE_ASSERTS) || !defined(NDEBUG)
#define SSR_ASSERT(expr)                                                  \
  do {                                                                    \
    if (!(expr))                                                          \
      ::ssr::detail::contract_failure("invariant", #expr, __FILE__,       \
                                      __LINE__);                          \
  } while (false)
#else
#define SSR_ASSERT(expr) \
  do {                   \
  } while (false)
#endif
