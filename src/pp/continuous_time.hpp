// Continuous-time semantics for population protocols.
//
// The paper's intro places population protocols next to stochastic chemical
// reaction networks (Gillespie [38], Soloveichik et al. [53]).  Under the
// standard CRN-style semantics each of the n(n-1) ordered agent pairs rings
// at rate 1/(n-1) -- equivalently, interaction events form a Poisson process
// of total rate n, and each event picks a uniform ordered pair.  The
// embedded jump chain is therefore *exactly* the discrete model simulated
// everywhere else in this library, and after k interactions the elapsed
// continuous time is Gamma(k, 1/n)-distributed with mean k/n: the discrete
// "parallel time" is the expectation of the continuous clock, which is why
// the two time measures agree up to lower-order fluctuations
// (tests/continuous_time_test.cpp checks the concentration).
#pragma once

#include <cstdint>

#include "pp/random.hpp"
#include "pp/rng.hpp"

namespace ssr {

/// Exponential-gap clock with total event rate n: the continuous-time
/// companion of a discrete simulation.  Feed it the same number of ticks as
/// interactions executed.
class poisson_clock {
 public:
  explicit poisson_clock(std::uint32_t n);

  /// Advances past one interaction event; returns the new time.
  double tick(rng_t& rng);

  double now() const { return now_; }
  std::uint64_t events() const { return events_; }

  /// The discrete-model estimate of now(): events / n (parallel time).
  double parallel_time() const {
    return static_cast<double>(events_) / rate_;
  }

 private:
  double rate_;
  double now_ = 0.0;
  std::uint64_t events_ = 0;
};

/// One standard-exponential draw (inverse CDF).
double exponential_draw(rng_t& rng);

}  // namespace ssr
