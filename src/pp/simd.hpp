// Portable SIMD kernels for the hot sampling paths.
//
// The batched engines spend most of their cycles mapping raw 64-bit RNG
// words to scheduler pairs: a Lemire multiply-shift rejection (uniform
// index below n(n-1)) followed by a divide/modulo decode into (initiator,
// responder).  Both steps are data-parallel across independent draws, so
// this header exposes them as fixed-function kernels over small arrays:
//
//   lemire_map              raw words -> mapped values + accept flags,
//                           bit-identical to uniform_below's accept rule
//   decode_ordered_distinct mapped values -> ordered distinct pairs,
//                           bit-identical to sample_pair's decode
//   sum_u64                 horizontal reduction (count/weight totals)
//
// Backend selection is a configure-time decision (-DSSR_SIMD=avx2|neon|
// scalar|auto at the CMake level):
//
//   backend   macro guard                          lanes (u64)
//   avx2      __AVX2__                             4
//   neon      __ARM_NEON                           2
//   scalar    always compiled (ssr::simd::scalar)  1
//
// Every backend funnels division through the same u64_divider (libdivide-
// style multiply-shift reciprocal), and the scalar reference implementations
// live in ssr::simd::scalar unconditionally, so tests/simd_test.cpp can
// assert bitwise equality between the dispatched kernels and the scalar
// fallback in the same binary -- exactness is tested, not assumed.  On NEON
// the 64x64->128 products are computed per lane (AArch64 has no vector
// 64-bit mulhi); the vector win there is the compare/select/store traffic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "pp/assert.hpp"

#if !defined(SSR_SIMD_FORCE_SCALAR) && defined(__AVX2__)
#define SSR_SIMD_BACKEND_AVX2 1
#include <immintrin.h>
#elif !defined(SSR_SIMD_FORCE_SCALAR) && defined(__ARM_NEON)
#define SSR_SIMD_BACKEND_NEON 1
#include <arm_neon.h>
#else
#define SSR_SIMD_BACKEND_SCALAR 1
#endif

namespace ssr::simd {

#if defined(SSR_SIMD_BACKEND_AVX2)
inline constexpr std::string_view backend_name = "avx2";
inline constexpr std::size_t lane_width = 4;
#elif defined(SSR_SIMD_BACKEND_NEON)
inline constexpr std::string_view backend_name = "neon";
inline constexpr std::size_t lane_width = 2;
#else
inline constexpr std::string_view backend_name = "scalar";
inline constexpr std::size_t lane_width = 1;
#endif

/// Precomputed multiply-shift reciprocal for truncating 64-bit division by
/// a runtime constant (libdivide's u64 "branchfull" scheme): divide() is
/// exact for every numerator, which tests/simd_test.cpp checks against
/// native division.  One divider per population size amortizes the setup.
class u64_divider {
 public:
  explicit u64_divider(std::uint64_t d) : d_(d) {
    SSR_REQUIRE(d >= 1);
    const std::uint32_t log2 = floor_log2(d);
    if ((d & (d - 1)) == 0) {
      magic_ = 0;  // power of two: pure shift
      shift_ = log2;
      return;
    }
    const unsigned __int128 numerator = static_cast<unsigned __int128>(1)
                                        << (64 + log2);
    auto proposed = static_cast<std::uint64_t>(numerator / d);
    const auto rem = static_cast<std::uint64_t>(numerator % d);
    const std::uint64_t e = d - rem;
    if (e < (std::uint64_t{1} << log2)) {
      shift_ = log2;  // rounding-down magic is exact at this shift
    } else {
      // Magic needs 65 bits; fold the top bit into the add-indicator path.
      proposed += proposed;
      const std::uint64_t twice_rem = rem + rem;
      if (twice_rem >= d || twice_rem < rem) ++proposed;
      shift_ = log2 | add_marker;
    }
    magic_ = proposed + 1;
  }

  std::uint64_t divide(std::uint64_t x) const {
    if (magic_ == 0) return x >> shift_;
    const std::uint64_t q = mulhi(magic_, x);
    if (shift_ & add_marker) {
      const std::uint64_t t = ((x - q) >> 1) + q;
      return t >> (shift_ & shift_mask);
    }
    return q >> shift_;
  }

  std::uint64_t divisor() const { return d_; }
  std::uint64_t magic() const { return magic_; }
  std::uint32_t shift() const { return shift_; }

  static constexpr std::uint32_t add_marker = 0x40;
  static constexpr std::uint32_t shift_mask = 0x3f;

  static std::uint64_t mulhi(std::uint64_t a, std::uint64_t b) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(a) * b) >> 64);
  }

 private:
  static constexpr std::uint32_t floor_log2(std::uint64_t d) {
    std::uint32_t log2 = 0;
    while (d >>= 1) ++log2;
    return log2;
  }

  std::uint64_t d_;
  std::uint64_t magic_ = 0;
  std::uint32_t shift_ = 0;
};

/// Reference (and fallback) implementations; always compiled so the
/// dispatched kernels can be checked against them bitwise in any build.
namespace scalar {

/// For each raw RNG word x: value[i] = high 64 bits of x * bound, and
/// accept[i] = 1 iff low 64 bits >= 2^64 mod bound -- exactly the accept
/// rule of uniform_below (pp/random.hpp), so a raw word stream maps to the
/// identical accepted-value stream.
inline void lemire_map(const std::uint64_t* raw, std::size_t count,
                       std::uint64_t bound, std::uint64_t* value,
                       std::uint8_t* accept) {
  const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
  for (std::size_t i = 0; i < count; ++i) {
    const unsigned __int128 m =
        static_cast<unsigned __int128>(raw[i]) * bound;
    const auto low = static_cast<std::uint64_t>(m);
    value[i] = static_cast<std::uint64_t>(m >> 64);
    accept[i] = low >= threshold ? 1 : 0;
  }
}

/// Decodes pair indices k in [0, m(m+1)) into ordered distinct pairs over
/// {0..m} with cols = m: i = k / m, j = k mod m, j += (j >= i) -- the
/// sample_pair decode (pp/scheduler.cpp) with cols = n - 1.
inline void decode_ordered_distinct(const std::uint64_t* k, std::size_t count,
                                    const u64_divider& cols,
                                    std::uint64_t* i_out,
                                    std::uint64_t* j_out) {
  const std::uint64_t d = cols.divisor();
  for (std::size_t n = 0; n < count; ++n) {
    const std::uint64_t q = cols.divide(k[n]);
    const std::uint64_t r = k[n] - q * d;
    i_out[n] = q;
    j_out[n] = r + (r >= q ? 1 : 0);
  }
}

inline std::uint64_t sum_u64(const std::uint64_t* v, std::size_t count) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < count; ++i) total += v[i];
  return total;
}

}  // namespace scalar

#if defined(SSR_SIMD_BACKEND_AVX2)

namespace detail {

inline __m256i mulhi_epu64(__m256i a, __m256i b) {
  // 64x64 -> high 64 via four 32x32 partial products (vpmuludq).
  const __m256i lo_mask = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo_lo = _mm256_mul_epu32(a, b);
  const __m256i hi_lo = _mm256_mul_epu32(a_hi, b);
  const __m256i lo_hi = _mm256_mul_epu32(a, b_hi);
  const __m256i hi_hi = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i cross =
      _mm256_add_epi64(_mm256_add_epi64(_mm256_srli_epi64(lo_lo, 32),
                                        _mm256_and_si256(hi_lo, lo_mask)),
                       _mm256_and_si256(lo_hi, lo_mask));
  return _mm256_add_epi64(
      _mm256_add_epi64(hi_hi, _mm256_srli_epi64(hi_lo, 32)),
      _mm256_add_epi64(_mm256_srli_epi64(lo_hi, 32),
                       _mm256_srli_epi64(cross, 32)));
}

inline __m256i mullo_epu64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo_lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo_lo, _mm256_slli_epi64(cross, 32));
}

/// Lane mask (all-ones where a >= b) for unsigned 64-bit lanes; AVX2 only
/// has signed compares, so both sides are bias-flipped first.
inline __m256i cmpge_epu64(__m256i a, __m256i b) {
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  const __m256i gt_b =
      _mm256_cmpgt_epi64(_mm256_xor_si256(b, bias), _mm256_xor_si256(a, bias));
  return _mm256_cmpeq_epi64(gt_b, _mm256_setzero_si256());  // !(b > a)
}

inline __m256i srl_epu64(__m256i v, std::uint32_t count) {
  return _mm256_srl_epi64(v, _mm_cvtsi32_si128(static_cast<int>(count)));
}

inline __m256i divide_epu64(__m256i x, const u64_divider& d) {
  if (d.magic() == 0) return srl_epu64(x, d.shift());
  const __m256i q = mulhi_epu64(_mm256_set1_epi64x(
                                    static_cast<long long>(d.magic())),
                                x);
  if (d.shift() & u64_divider::add_marker) {
    const __m256i t = _mm256_add_epi64(
        _mm256_srli_epi64(_mm256_sub_epi64(x, q), 1), q);
    return srl_epu64(t, d.shift() & u64_divider::shift_mask);
  }
  return srl_epu64(q, d.shift());
}

}  // namespace detail

inline void lemire_map(const std::uint64_t* raw, std::size_t count,
                       std::uint64_t bound, std::uint64_t* value,
                       std::uint8_t* accept) {
  const std::uint64_t threshold = (0 - bound) % bound;
  const __m256i vbound = _mm256_set1_epi64x(static_cast<long long>(bound));
  const __m256i vthr = _mm256_set1_epi64x(static_cast<long long>(threshold));
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(raw + i));
    const __m256i hi = detail::mulhi_epu64(x, vbound);
    const __m256i lo = detail::mullo_epu64(x, vbound);
    const __m256i ok = detail::cmpge_epu64(lo, vthr);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(value + i), hi);
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(ok));
    accept[i + 0] = static_cast<std::uint8_t>(mask & 1);
    accept[i + 1] = static_cast<std::uint8_t>((mask >> 1) & 1);
    accept[i + 2] = static_cast<std::uint8_t>((mask >> 2) & 1);
    accept[i + 3] = static_cast<std::uint8_t>((mask >> 3) & 1);
  }
  if (i < count) scalar::lemire_map(raw + i, count - i, bound, value + i,
                                    accept + i);
}

inline void decode_ordered_distinct(const std::uint64_t* k, std::size_t count,
                                    const u64_divider& cols,
                                    std::uint64_t* i_out,
                                    std::uint64_t* j_out) {
  const __m256i vd =
      _mm256_set1_epi64x(static_cast<long long>(cols.divisor()));
  std::size_t n = 0;
  for (; n + 4 <= count; n += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(k + n));
    const __m256i q = detail::divide_epu64(x, cols);
    const __m256i r = _mm256_sub_epi64(x, detail::mullo_epu64(q, vd));
    // j = r + (r >= q): the ge mask is all-ones == -1 per lane, so
    // subtracting it adds exactly one where the diagonal must be skipped.
    const __m256i j = _mm256_sub_epi64(r, detail::cmpge_epu64(r, q));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(i_out + n), q);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(j_out + n), j);
  }
  if (n < count) scalar::decode_ordered_distinct(k + n, count - n, cols,
                                                 i_out + n, j_out + n);
}

inline std::uint64_t sum_u64(const std::uint64_t* v, std::size_t count) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < count; ++i) total += v[i];
  return total;
}

#elif defined(SSR_SIMD_BACKEND_NEON)

inline void lemire_map(const std::uint64_t* raw, std::size_t count,
                       std::uint64_t bound, std::uint64_t* value,
                       std::uint8_t* accept) {
  const std::uint64_t threshold = (0 - bound) % bound;
  const uint64x2_t vthr = vdupq_n_u64(threshold);
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    // No vector 64-bit mulhi on AArch64: products per lane, compare/store
    // vectorized.
    const unsigned __int128 m0 =
        static_cast<unsigned __int128>(raw[i]) * bound;
    const unsigned __int128 m1 =
        static_cast<unsigned __int128>(raw[i + 1]) * bound;
    const uint64x2_t hi = {static_cast<std::uint64_t>(m0 >> 64),
                           static_cast<std::uint64_t>(m1 >> 64)};
    const uint64x2_t lo = {static_cast<std::uint64_t>(m0),
                           static_cast<std::uint64_t>(m1)};
    const uint64x2_t ok = vcgeq_u64(lo, vthr);
    vst1q_u64(value + i, hi);
    accept[i] = static_cast<std::uint8_t>(vgetq_lane_u64(ok, 0) & 1);
    accept[i + 1] = static_cast<std::uint8_t>(vgetq_lane_u64(ok, 1) & 1);
  }
  if (i < count) scalar::lemire_map(raw + i, count - i, bound, value + i,
                                    accept + i);
}

inline void decode_ordered_distinct(const std::uint64_t* k, std::size_t count,
                                    const u64_divider& cols,
                                    std::uint64_t* i_out,
                                    std::uint64_t* j_out) {
  const std::uint64_t d = cols.divisor();
  std::size_t n = 0;
  for (; n + 2 <= count; n += 2) {
    const uint64x2_t q = {cols.divide(k[n]), cols.divide(k[n + 1])};
    const uint64x2_t r = {k[n] - vgetq_lane_u64(q, 0) * d,
                          k[n + 1] - vgetq_lane_u64(q, 1) * d};
    // j = r + (r >= q): the ge mask is all-ones per lane, so subtracting it
    // adds exactly one where the diagonal must be skipped.
    const uint64x2_t j = vsubq_u64(r, vcgeq_u64(r, q));
    vst1q_u64(i_out + n, q);
    vst1q_u64(j_out + n, j);
  }
  if (n < count) scalar::decode_ordered_distinct(k + n, count - n, cols,
                                                 i_out + n, j_out + n);
}

inline std::uint64_t sum_u64(const std::uint64_t* v, std::size_t count) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) acc = vaddq_u64(acc, vld1q_u64(v + i));
  std::uint64_t total = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; i < count; ++i) total += v[i];
  return total;
}

#else  // scalar backend

inline void lemire_map(const std::uint64_t* raw, std::size_t count,
                       std::uint64_t bound, std::uint64_t* value,
                       std::uint8_t* accept) {
  scalar::lemire_map(raw, count, bound, value, accept);
}

inline void decode_ordered_distinct(const std::uint64_t* k, std::size_t count,
                                    const u64_divider& cols,
                                    std::uint64_t* i_out,
                                    std::uint64_t* j_out) {
  scalar::decode_ordered_distinct(k, count, cols, i_out, j_out);
}

inline std::uint64_t sum_u64(const std::uint64_t* v, std::size_t count) {
  return scalar::sum_u64(v, count);
}

#endif

}  // namespace ssr::simd
