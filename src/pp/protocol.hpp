// Protocol concepts: the contract every population protocol in this library
// implements.
//
// A population protocol is a value type holding the population size n and any
// tuning constants.  Its nested `agent_state` type is the per-agent state.
// `interact(initiator, responder, rng)` applies the (possibly randomized)
// transition function T to an ordered pair of agent states in place and
// returns whether either state changed; the return value drives silence
// detection and lets accelerated simulators skip null interactions.
#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <vector>

#include "pp/assert.hpp"
#include "pp/rng.hpp"

namespace ssr {

template <class P>
concept population_protocol =
    std::copy_constructible<P> &&
    requires(const P cp, P p, typename P::agent_state& a,
             typename P::agent_state& b, rng_t& rng) {
      typename P::agent_state;
      { cp.population_size() } -> std::convertible_to<std::uint32_t>;
      { p.interact(a, b, rng) } -> std::same_as<bool>;
    };

/// Key returned by batch_key for states outside the inert partition (see
/// batch_countable_protocol).
inline constexpr std::uint32_t batch_volatile_key = 0xffffffffu;

/// A batch-countable protocol partitions its states for the batched engine
/// (pp/engine.hpp): batch_key(s) is either an *inert key* in
/// [0, batch_key_count()) or batch_volatile_key.  The contract is:
///
///   two agents whose states carry *distinct inert keys* interact nully,
///   in both initiator/responder orders.
///
/// Nothing is promised about pairs sharing an inert key or involving a
/// volatile agent -- the engine probes those with the real transition
/// function, so a conservative partition (more volatile states) is always
/// sound, merely slower.  The batched engine uses the partition to skip
/// runs of certainly-null interactions in one geometric draw.
template <class P>
concept batch_countable_protocol =
    population_protocol<P> &&
    requires(const P p, const typename P::agent_state& s) {
      { p.batch_key(s) } -> std::convertible_to<std::uint32_t>;
      { p.batch_key_count() } -> std::convertible_to<std::uint32_t>;
    };

/// A ranking protocol additionally exposes the rank output field of a state:
/// 1..n when the agent currently holds a rank, 0 when it does not.  The
/// measurement harness uses this to track correctness in O(1) per
/// interaction.  Every protocol in this library is a ranking protocol
/// (Section 1.1 of the paper: all the SSLE protocols work by solving the
/// harder ranking problem).
template <class P>
concept ranking_protocol =
    population_protocol<P> &&
    requires(const P p, const typename P::agent_state& s) {
      { p.rank_of(s) } -> std::convertible_to<std::uint32_t>;
    };

/// A configuration C : A -> S is stored as a contiguous vector of agent
/// states indexed by agent.  Agent identity exists only in the simulator
/// (the model's agents are anonymous; indices are never visible to states).
template <class P>
using configuration = std::span<const typename P::agent_state>;

/// True iff the rank fields of `config` form a valid ranking, i.e. a
/// permutation of 1..n.  This is the correctness predicate for
/// self-stabilizing ranking (Section 2 of the paper).
template <ranking_protocol P>
bool is_valid_ranking(const P& p,
                      std::span<const typename P::agent_state> config) {
  const std::uint32_t n = p.population_size();
  if (config.size() != n) return false;
  // count ranks; any 0 or duplicate disqualifies.
  std::vector<bool> seen(n + 1, false);
  for (const auto& s : config) {
    const std::uint32_t r = p.rank_of(s);
    if (r < 1 || r > n || seen[r]) return false;
    seen[r] = true;
  }
  return true;
}

/// Registration-time spot check, compiled out in release builds (see
/// SSR_ASSERT): rank range over the declared inventory plus transition
/// closure on a bounded sample of ordered state pairs.  The protocol linter
/// (analysis/protocol_lint) is the exhaustive wall; this assert catches
/// gross protocol/inventory mismatches at the moment a protocol is wired
/// into a registry or tool, at O(min(k, 24)^2) transition probes.
template <ranking_protocol P>
void debug_assert_protocol_registration(
    const P& p, const std::vector<typename P::agent_state>& all_states) {
#if defined(SSR_ENABLE_ASSERTS) || !defined(NDEBUG)
  using state_t = typename P::agent_state;
  const std::uint32_t n = p.population_size();
  for (const state_t& s : all_states) SSR_ASSERT(p.rank_of(s) <= n);
  const std::size_t k = all_states.size();
  const std::size_t stride = k <= 24 ? 1 : k / 24;
  auto member = [&](const state_t& s) {
    for (const state_t& t : all_states) {
      if (t == s) return true;
    }
    return false;
  };
  rng_t rng(0x11e97ULL);
  for (std::size_t a = 0; a < k; a += stride) {
    for (std::size_t b = 0; b < k; b += stride) {
      state_t x = all_states[a];
      state_t y = all_states[b];
      p.interact(x, y, rng);
      SSR_ASSERT(member(x));
      SSR_ASSERT(member(y));
    }
  }
#else
  (void)p;
  (void)all_states;
#endif
}

/// Leader-election view of a ranking protocol (Section 2, "Leader election
/// and ranking"): the unique agent with rank 1 is the leader.
template <ranking_protocol P>
bool is_leader(const P& p, const typename P::agent_state& s) {
  return p.rank_of(s) == 1;
}

/// Number of leaders in a configuration; a correct SSLE configuration has
/// exactly one.
template <ranking_protocol P>
std::size_t leader_count(const P& p,
                         std::span<const typename P::agent_state> config) {
  std::size_t count = 0;
  for (const auto& s : config) count += is_leader(p, s) ? 1 : 0;
  return count;
}

}  // namespace ssr
