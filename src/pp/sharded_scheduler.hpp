// Sharded multi-threaded engine for the uniform scheduler.
//
// The population [0, n) is split into S contiguous shards.  Under the
// uniform scheduler, the ordered pair classes induced by the partition --
// "both agents in shard s" (weight m_s(m_s-1)) and "initiator in a,
// responder in b" (weight m_a * m_b) -- have fixed total weight n(n-1), so
// a round of T interactions can be drawn in two exchangeable stages:
//
//   1. plan   (coordinator) draw the per-class interaction counts from the
//             multinomial Multinomial(T, w_c / n(n-1)) via sequential
//             binomial conditioning (pp/random.hpp binomial_draw), then
//   2. run    (workers) execute each class's count with pairs drawn
//             uniformly *within* the class, shard-local and independent.
//
// Stage 2 parallelizes with zero locks on agent state: diagonal classes
// touch one shard each, and the cross classes of a round are scheduled as
// a round-robin tournament (circle method), so every execution slot is a
// set of shard-disjoint tasks.  Each task draws from its own counter-based
// RNG stream, derive_stream(seed, round, task) (pp/rng.hpp), which makes
// trajectories a pure function of (seed, shard count): bit-identical
// regardless of thread count or scheduling, and bit-identical between the
// sequential hooked run() and the threaded run_parallel().
//
// Equivalence: the *multiset* of a round's interactions is distributed
// exactly as T i.i.d. uniform scheduler draws (multinomial class counts +
// uniform within class); only the within-round interleaving differs from
// the i.i.d. order.  A round is capped at max(32, n/2) interactions --
// at most half a parallel time unit -- so observables at convergence-time
// scale are unaffected.  This is proven where it matters, by the KS
// distribution-equivalence wall (tests/engine_equivalence_test.cpp) at
// shards in {1, 2, 8}, not argued; shards=1 does not approximate at all,
// it *delegates* to the batched engine.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "obs/engine_counters.hpp"
#include "obs/timeline.hpp"
#include "pp/assert.hpp"
#include "pp/engine.hpp"
#include "pp/random.hpp"
#include "pp/rng.hpp"
#include "pp/scheduler.hpp"

namespace ssr {

struct sharded_options {
  /// Worker shard count; 0 picks the hardware concurrency.  Clamped to
  /// [1, n]; an effective count of 1 delegates to the batched engine.
  std::uint32_t shards = 0;
  /// Interactions per planned round; 0 picks max(32, n/2) -- at most half
  /// a parallel time unit, so round-granular reordering stays below the
  /// scale of any convergence-time observable.
  std::uint64_t round_interactions = 0;
};

namespace detail {

/// Contiguous shard partition plus the tournament slot structure: slot k of
/// cross_slots lists pairwise shard-disjoint unordered shard pairs, and
/// every unordered pair appears in exactly one slot (circle method).
struct shard_layout {
  std::uint32_t n = 0;
  std::uint32_t shards = 0;
  std::vector<std::uint32_t> offset;  // size shards + 1; shard s = [offset[s], offset[s+1])
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      cross_slots;

  static shard_layout build(std::uint32_t n, std::uint32_t shards);

  std::uint32_t size_of(std::uint32_t s) const {
    return offset[s + 1] - offset[s];
  }
};

/// One schedulable unit of a round: a diagonal class (a == b, count_ab
/// within-shard interactions) or both ordered directions of a cross shard
/// pair a < b.  `stream` is the task's flat index, the lo word of its
/// derive_stream coordinates.
struct shard_task {
  bool diagonal = false;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t count_ab = 0;
  std::uint64_t count_ba = 0;
  std::uint64_t stream = 0;
};

/// Draws one round's multinomial class counts (consuming `plan_rng`
/// deterministically) and regroups them into executable slots: slots[0]
/// holds the diagonal tasks (shard-disjoint by construction), each further
/// slot one tournament round of cross tasks.  Zero-count tasks are
/// dropped; stream indices are fixed by shard coordinates, so dropping
/// never perturbs another task's RNG stream.
void plan_shard_round(const shard_layout& layout, rng_t& plan_rng,
                      std::uint64_t total,
                      std::vector<std::uint64_t>& weight_scratch,
                      std::vector<std::uint64_t>& count_scratch,
                      std::vector<std::vector<shard_task>>& slots);

/// Minimal persistent worker pool for slot execution.  run_tasks(count, f)
/// runs f(0..count-1) across the pool *and* the calling thread, returning
/// only when every call finished; claims and completion are mutex-guarded
/// (tasks are coarse -- thousands of interactions -- so contention is
/// nil), which keeps the claim/task-pointer lifecycle trivially race-free.
class shard_executor {
 public:
  /// Spawns `workers` background threads (the calling thread is the +1).
  explicit shard_executor(std::uint32_t workers);
  ~shard_executor();

  shard_executor(const shard_executor&) = delete;
  shard_executor& operator=(const shard_executor&) = delete;

  void run_tasks(std::size_t count,
                 const std::function<void(std::size_t)>& task);

  std::uint32_t thread_count() const {
    return static_cast<std::uint32_t>(threads_.size()) + 1;
  }

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t task_count_ = 0;
  std::size_t next_claim_ = 0;
  std::size_t completed_ = 0;
  std::exception_ptr error_;
  bool stopping_ = false;
};

}  // namespace detail

/// The sharded engine.  Satisfies simulation_engine: run(budget, pre, post)
/// executes the *identical* deterministic schedule sequentially with
/// per-interaction hooks (what the convergence harness needs), and
/// run_parallel(budget) executes the same schedule across the worker pool
/// -- the two produce bit-identical trajectories and interaction counts
/// (tests/sharded_scheduler_fuzz_test.cpp), because every task's draws
/// come from its own (round, task)-keyed stream and tasks within a slot
/// touch disjoint shards.
///
/// An effective shard count of 1 (explicit, or n < 2 shards' worth of
/// hardware) constructs no machinery at all: the engine holds a delegate
/// batched_engine and forwards everything, so shards=1 *is* the batched
/// path bit for bit.
template <population_protocol P>
class sharded_engine {
 public:
  using protocol_type = P;
  using agent_state = typename P::agent_state;

  sharded_engine(P protocol, std::vector<agent_state> initial,
                 std::uint64_t seed, sharded_options options = {})
      : protocol_(std::move(protocol)), seed_(seed), options_(options) {
    SSR_REQUIRE(initial.size() == protocol_.population_size());
    SSR_REQUIRE(initial.size() >= 2);
    const auto n = static_cast<std::uint32_t>(initial.size());
    std::uint32_t shards = options_.shards;
    if (shards == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      shards = hw == 0 ? 4 : static_cast<std::uint32_t>(hw);
    }
    shards = std::min(std::max<std::uint32_t>(shards, 1), n);
    if (shards <= 1) {
      delegate_.emplace(protocol_, std::move(initial), seed);
      return;
    }
    agents_ = std::move(initial);
    layout_ = detail::shard_layout::build(n, shards);
    // Planning draws come from a stream disjoint from every task stream.
    plan_rng_ = rng_t(derive_seed(seed, 0x5ba9d5ULL));
    shared_ = std::make_unique<obs::shared_engine_counters>();
  }

  /// Sequential hooked execution (the simulation_engine contract).  pre /
  /// post see every interaction in the deterministic schedule order; a
  /// post that stops abandons the rest of the planned round, which is
  /// sound because a round's interactions are exchangeable.
  template <class Pre, class Post>
  bool run(std::uint64_t max_interactions, Pre&& pre, Post&& post) {
    if (delegate_) {
      return delegate_->run(max_interactions, std::forward<Pre>(pre),
                            std::forward<Post>(post));
    }
    if (profiler_ == nullptr) {
      return run_loop(max_interactions, std::forward<Pre>(pre),
                      std::forward<Post>(post));
    }
    obs::timeline_scope section(profiler_, "engine.run");
    const std::uint64_t before = interactions_;
    const bool stopped = run_loop(max_interactions, std::forward<Pre>(pre),
                                  std::forward<Post>(post));
    profiler_->add_units(interactions_ - before);
    return stopped;
  }

  /// Threaded execution of the same schedule, without hooks (hooks are a
  /// sequential observation contract).  Returns false (budget exhausted),
  /// mirroring run() with never-stopping hooks -- and produces the same
  /// trajectory bit for bit.
  bool run_parallel(std::uint64_t max_interactions) {
    if (delegate_) {
      return delegate_->run(
          max_interactions, [](const agent_pair&) {},
          [](const agent_pair&, bool) { return false; });
    }
    if (profiler_ == nullptr) return run_parallel_loop(max_interactions);
    obs::timeline_scope section(profiler_, "engine.run");
    const std::uint64_t before = interactions_;
    const bool stopped = run_parallel_loop(max_interactions);
    profiler_->add_units(interactions_ - before);
    return stopped;
  }

  /// Attaches (or with nullptr detaches) an event-counter sink.  Worker
  /// tasks accumulate into private counters merged through an atomic
  /// shared_engine_counters; the plain sink only ever sees coordinator
  /// writes, after workers joined.
  void attach_counters(obs::engine_counters* counters) {
    if (delegate_) {
      delegate_->attach_counters(counters);
      return;
    }
    counters_ = counters;
  }

  /// Attaches (or with nullptr detaches) a section profiler; coordinator
  /// only (the timeline collector is single-threaded), so sections carry
  /// whole rounds with their executed interactions as units.
  void attach_profiler(obs::timeline_profiler* profiler) {
    if (delegate_) {
      delegate_->attach_profiler(profiler);
      return;
    }
    profiler_ = profiler;
  }

  std::uint32_t population_size() const {
    return delegate_ ? delegate_->population_size() : layout_.n;
  }
  std::uint64_t interactions() const {
    return delegate_ ? delegate_->interactions() : interactions_;
  }
  double parallel_time() const {
    return delegate_ ? delegate_->parallel_time()
                     : static_cast<double>(interactions_) /
                           static_cast<double>(layout_.n);
  }
  bool quiescent() const {
    return delegate_ ? delegate_->quiescent() : false;
  }

  std::span<const agent_state> agents() const {
    return delegate_ ? delegate_->agents()
                     : std::span<const agent_state>(agents_);
  }
  const P& protocol() const {
    return delegate_ ? delegate_->protocol() : protocol_;
  }

  /// Effective shard count after clamping (1 means the batched delegate).
  std::uint32_t shards() const { return delegate_ ? 1 : layout_.shards; }
  /// Worker threads run_parallel uses (coordinator included).
  std::uint32_t thread_count() {
    if (delegate_) return 1;
    ensure_executor();
    return executor_->thread_count();
  }

 private:
  std::uint64_t round_length() const {
    if (options_.round_interactions != 0) return options_.round_interactions;
    return std::max<std::uint64_t>(32, layout_.n / 2);
  }

  void plan_round(std::uint64_t budget_left) {
    const std::uint64_t length = std::min(round_length(), budget_left);
    detail::plan_shard_round(layout_, plan_rng_, length, weight_scratch_,
                             count_scratch_, slots_);
    current_round_ = round_index_++;
    ++pending_.shard_rounds;
  }

  template <class Pre, class Post>
  bool run_loop(std::uint64_t max_interactions, Pre&& pre, Post&& post) {
    bool stopped = false;
    while (!stopped && interactions_ < max_interactions) {
      plan_round(max_interactions - interactions_);
      for (const auto& slot : slots_) {
        for (const auto& task : slot) {
          rng_t rng(derive_stream(seed_, current_round_, task.stream));
          P proto = protocol_;
          obs::engine_counters local;
          stopped = run_task(task, rng, proto, local, &interactions_, pre,
                             post);
          pending_ += local;
          if (stopped) break;
        }
        if (stopped) break;
      }
    }
    publish_counters();
    return stopped;
  }

  bool run_parallel_loop(std::uint64_t max_interactions) {
    ensure_executor();
    while (interactions_ < max_interactions) {
      plan_round(max_interactions - interactions_);
      std::uint64_t planned = 0;
      for (const auto& slot : slots_) {
        for (const auto& task : slot) planned += task.count_ab + task.count_ba;
      }
      for (const auto& slot : slots_) {
        executor_->run_tasks(slot.size(), [&](std::size_t t) {
          const detail::shard_task& task = slot[t];
          rng_t rng(derive_stream(seed_, current_round_, task.stream));
          P proto = protocol_;
          obs::engine_counters local;
          std::uint64_t scratch = 0;
          run_task(
              task, rng, proto, local, &scratch, [](const agent_pair&) {},
              [](const agent_pair&, bool) { return false; });
          shared_->absorb(local);
        });
      }
      interactions_ += planned;
    }
    pending_ += shared_->snapshot_and_reset();
    publish_counters();
    return false;
  }

  /// The one execution path both run modes share: identical RNG
  /// consumption, identical interaction order within the task.
  template <class Pre, class Post>
  bool run_task(const detail::shard_task& task, rng_t& rng, P& proto,
                obs::engine_counters& counters, std::uint64_t* live,
                Pre&& pre, Post&& post) {
    if (task.diagonal) {
      return run_block(task.a, task.a, task.count_ab, rng, proto, counters,
                       live, pre, post);
    }
    // A fair coin picks which ordered direction runs first, so neither
    // class systematically precedes the other within a round.
    if (coin_flip(rng)) {
      if (run_block(task.a, task.b, task.count_ab, rng, proto, counters,
                    live, pre, post)) {
        return true;
      }
      return run_block(task.b, task.a, task.count_ba, rng, proto, counters,
                       live, pre, post);
    }
    if (run_block(task.b, task.a, task.count_ba, rng, proto, counters, live,
                  pre, post)) {
      return true;
    }
    return run_block(task.a, task.b, task.count_ab, rng, proto, counters,
                     live, pre, post);
  }

  template <class Pre, class Post>
  bool run_block(std::uint32_t sa, std::uint32_t sb, std::uint64_t count,
                 rng_t& rng, P& proto, obs::engine_counters& counters,
                 std::uint64_t* live, Pre&& pre, Post&& post) {
    const std::uint32_t lo_a = layout_.offset[sa];
    const std::uint32_t m_a = layout_.size_of(sa);
    const std::uint32_t lo_b = layout_.offset[sb];
    const std::uint32_t m_b = layout_.size_of(sb);
    const bool same = sa == sb;
    for (std::uint64_t c = 0; c < count; ++c) {
      agent_pair pair;
      if (same) {
        // Ordered distinct pair within the shard.
        const auto i = static_cast<std::uint32_t>(uniform_below(rng, m_a));
        auto j = static_cast<std::uint32_t>(uniform_below(rng, m_a - 1));
        if (j >= i) ++j;
        pair = {lo_a + i, lo_a + j};
      } else {
        pair = {lo_a + static_cast<std::uint32_t>(uniform_below(rng, m_a)),
                lo_b + static_cast<std::uint32_t>(uniform_below(rng, m_b))};
      }
      pre(pair);
      const bool changed = proto.interact(agents_[pair.initiator],
                                          agents_[pair.responder], rng);
      ++*live;
      ++counters.interactions_executed;
      counters.transitions_changed += changed ? 1 : 0;
      if (post(pair, changed)) return true;
    }
    return false;
  }

  void ensure_executor() {
    if (executor_) return;
    const unsigned hw = std::thread::hardware_concurrency();
    // At least two threads total even on one-core hosts, so the concurrent
    // code paths genuinely run concurrently under TSan everywhere.
    const std::uint32_t total = std::max<std::uint32_t>(
        2, std::min<std::uint32_t>(hw == 0 ? 2 : hw, layout_.shards));
    executor_ = std::make_unique<detail::shard_executor>(total - 1);
  }

  void publish_counters() {
    if (counters_ != nullptr) *counters_ += pending_;
    pending_.reset();
  }

  P protocol_;
  std::vector<agent_state> agents_;
  std::uint64_t seed_;
  sharded_options options_;
  std::optional<batched_engine<P>> delegate_;  // engaged iff shards == 1
  detail::shard_layout layout_;
  rng_t plan_rng_;
  std::uint64_t round_index_ = 0;
  std::uint64_t current_round_ = 0;
  std::uint64_t interactions_ = 0;
  std::vector<std::uint64_t> weight_scratch_;
  std::vector<std::uint64_t> count_scratch_;
  std::vector<std::vector<detail::shard_task>> slots_;
  std::unique_ptr<detail::shard_executor> executor_;
  std::unique_ptr<obs::shared_engine_counters> shared_;
  obs::engine_counters pending_;
  obs::engine_counters* counters_ = nullptr;
  obs::timeline_profiler* profiler_ = nullptr;
};

}  // namespace ssr
