#include "pp/graph.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <set>

#include "pp/assert.hpp"

namespace ssr {
namespace {

std::vector<std::uint32_t> degrees(
    std::uint32_t n,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) {
  std::vector<std::uint32_t> deg(n, 0);
  for (const auto& [u, v] : edges) {
    ++deg[u];
    ++deg[v];
  }
  return deg;
}

}  // namespace

interaction_graph::interaction_graph(
    std::uint32_t n,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges)
    : n_(n), edges_(std::move(edges)) {
  SSR_REQUIRE(n >= 2);
  SSR_REQUIRE(!edges_.empty());
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (auto& [u, v] : edges_) {
    SSR_REQUIRE(u < n && v < n && u != v);
    if (u > v) std::swap(u, v);
    SSR_REQUIRE(seen.insert({u, v}).second);  // no duplicate edges
  }
}

interaction_graph interaction_graph::complete(std::uint32_t n) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(std::size_t{n} * (n - 1) / 2);
  for (std::uint32_t u = 0; u < n; ++u)
    for (std::uint32_t v = u + 1; v < n; ++v) edges.push_back({u, v});
  return {n, std::move(edges)};
}

interaction_graph interaction_graph::ring(std::uint32_t n) {
  SSR_REQUIRE(n >= 3);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(n);
  for (std::uint32_t u = 0; u < n; ++u)
    edges.push_back({u, (u + 1) % n});
  return {n, std::move(edges)};
}

interaction_graph interaction_graph::path(std::uint32_t n) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(n - 1);
  for (std::uint32_t u = 0; u + 1 < n; ++u) edges.push_back({u, u + 1});
  return {n, std::move(edges)};
}

interaction_graph interaction_graph::star(std::uint32_t n) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(n - 1);
  for (std::uint32_t leaf = 1; leaf < n; ++leaf) edges.push_back({0, leaf});
  return {n, std::move(edges)};
}

interaction_graph interaction_graph::erdos_renyi(std::uint32_t n, double p,
                                                 std::uint64_t seed) {
  SSR_REQUIRE(p >= 0.0 && p <= 1.0);
  rng_t rng(seed);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      if (bernoulli(rng, p)) edges.push_back({u, v});
    }
  }
  // Union-find connectivity repair: stitch components along a random
  // permutation so the scheduler's fairness assumption (connectedness)
  // holds.
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0u);
  const std::function<std::uint32_t(std::uint32_t)> find =
      [&](std::uint32_t x) {
        while (parent[x] != x) x = parent[x] = parent[parent[x]];
        return x;
      };
  for (const auto& [u, v] : edges) parent[find(u)] = find(v);
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  for (std::uint32_t i = n - 1; i > 0; --i)
    std::swap(order[i], order[uniform_below(rng, i + 1)]);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    const std::uint32_t u = order[i], v = order[i + 1];
    if (find(u) != find(v)) {
      edges.push_back({std::min(u, v), std::max(u, v)});
      parent[find(u)] = find(v);
    }
  }
  return {n, std::move(edges)};
}

interaction_graph interaction_graph::random_regular(std::uint32_t n,
                                                    std::uint32_t d,
                                                    std::uint64_t seed) {
  SSR_REQUIRE(d >= 2 && d < n);
  SSR_REQUIRE((std::uint64_t{n} * d) % 2 == 0);
  rng_t rng(seed);
  for (int attempt = 0; attempt < 100; ++attempt) {
    // Start from a connected circulant graph of degree d, then randomize
    // with degree-preserving 2-opt edge swaps.  (The classical pairing
    // model has an e^{-Theta(d^2)} success probability per draw, hopeless
    // for dense d; the swap chain mixes to the same distribution.)
    std::set<std::pair<std::uint32_t, std::uint32_t>> edge_set;
    auto add = [&](std::uint32_t u, std::uint32_t v) {
      if (u > v) std::swap(u, v);
      edge_set.insert({u, v});
    };
    for (std::uint32_t k = 1; k <= d / 2; ++k)
      for (std::uint32_t v = 0; v < n; ++v) add(v, (v + k) % n);
    if (d % 2 == 1)  // n is even here (n*d even)
      for (std::uint32_t v = 0; v < n / 2; ++v) add(v, v + n / 2);

    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges(
        edge_set.begin(), edge_set.end());
    const std::size_t swaps = 20 * edges.size();
    for (std::size_t s = 0; s < swaps; ++s) {
      const std::size_t i = uniform_below(rng, edges.size());
      const std::size_t j = uniform_below(rng, edges.size());
      if (i == j) continue;
      auto [a, b] = edges[i];
      auto [c, e] = edges[j];
      if (coin_flip(rng)) std::swap(c, e);
      // Propose replacing {a,b},{c,e} with {a,c},{b,e}.
      if (a == c || a == e || b == c || b == e) continue;
      auto key = [](std::uint32_t u, std::uint32_t v) {
        if (u > v) std::swap(u, v);
        return std::pair{u, v};
      };
      const auto e1 = key(a, c);
      const auto e2 = key(b, e);
      if (edge_set.count(e1) || edge_set.count(e2)) continue;
      edge_set.erase(key(a, b));
      edge_set.erase(key(c, e));
      edge_set.insert(e1);
      edge_set.insert(e2);
      edges[i] = e1;
      edges[j] = e2;
    }
    interaction_graph g(n, std::move(edges));
    if (g.is_connected()) return g;
  }
  throw std::logic_error("random_regular: no simple connected graph found");
}

bool interaction_graph::is_connected() const {
  std::vector<std::vector<std::uint32_t>> adj(n_);
  for (const auto& [u, v] : edges_) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  std::vector<bool> visited(n_, false);
  std::vector<std::uint32_t> stack{0};
  visited[0] = true;
  std::uint32_t count = 1;
  while (!stack.empty()) {
    const std::uint32_t u = stack.back();
    stack.pop_back();
    for (const std::uint32_t v : adj[u]) {
      if (!visited[v]) {
        visited[v] = true;
        ++count;
        stack.push_back(v);
      }
    }
  }
  return count == n_;
}

std::uint32_t interaction_graph::min_degree() const {
  const auto deg = degrees(n_, edges_);
  return *std::min_element(deg.begin(), deg.end());
}

std::uint32_t interaction_graph::max_degree() const {
  const auto deg = degrees(n_, edges_);
  return *std::max_element(deg.begin(), deg.end());
}

}  // namespace ssr
