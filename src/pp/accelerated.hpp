// Generic exact accelerated simulation for protocols with small state
// inventories.
//
// Agents are anonymous, so a configuration is fully described by the vector
// of *counts* over the k distinct states.  When most interactions are null
// (typical near silence), stepping agent-by-agent wastes almost all work;
// instead we sample the embedded jump chain exactly:
//
//   * precompute the deterministic transition table delta[a][b];
//   * maintain counts c_s and the total weight A of *active* ordered state
//     pairs (those with a non-null transition), where the pair (a, b) has
//     weight c_a * c_b for a != b and c_a * (c_a - 1) for a == b;
//   * the number of null interactions before the next non-null one is
//     geometric with p = A / (n (n-1)) -- skipped in O(1);
//   * the active pair itself is sampled with probability proportional to
//     its weight, and the counts are updated.
//
// This generalizes accelerated_silent_n_state (which remains as the
// specialized fast path for Protocol 1) to any deterministic protocol --
// the baseline, initialized protocols, loose stabilization with small T,
// Optimal-Silent-SSR with small tuning constants.  Exactness is checked
// against direct simulation by Kolmogorov-Smirnov tests
// (tests/accelerated_test.cpp).
//
// Cost per non-null transition is O(active pairs) for the weighted pick
// (active-pair bookkeeping is O(k) per update); the speedup over direct
// simulation is the null fraction, which approaches 1 near stabilization.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "obs/timeline.hpp"
#include "pp/assert.hpp"
#include "pp/protocol.hpp"
#include "pp/random.hpp"
#include "pp/rng.hpp"

namespace ssr {

template <ranking_protocol P>
class accelerated_simulation {
 public:
  using agent_state = typename P::agent_state;

  /// `all_states` must contain every state reachable from `initial` (the
  /// protocols' all_states() inventories qualify); transitions must be
  /// deterministic.
  accelerated_simulation(P protocol,
                         const std::vector<agent_state>& all_states,
                         const std::vector<agent_state>& initial,
                         std::uint64_t seed)
      : protocol_(std::move(protocol)),
        states_(all_states),
        k_(all_states.size()),
        n_(protocol_.population_size()),
        rng_(seed) {
    SSR_REQUIRE(initial.size() == n_);
    SSR_REQUIRE(k_ >= 1);

    // Transition table (deterministic: the rng is never consulted).
    rng_t dummy(0);
    delta_.assign(k_ * k_, {0, 0});
    nonnull_.assign(k_ * k_, false);
    P probe = protocol_;
    for (std::size_t a = 0; a < k_; ++a) {
      for (std::size_t b = 0; b < k_; ++b) {
        agent_state x = states_[a];
        agent_state y = states_[b];
        probe.interact(x, y, dummy);
        const std::size_t a2 = index_of(x);
        const std::size_t b2 = index_of(y);
        delta_[a * k_ + b] = {a2, b2};
        nonnull_[a * k_ + b] = a2 != a || b2 != b;
      }
    }

    count_.assign(k_, 0);
    for (const auto& s : initial) ++count_[index_of(s)];
    rebuild_active_weight();

    // Rank histogram for O(1) correctness tracking.
    rank_of_state_.resize(k_);
    for (std::size_t s = 0; s < k_; ++s)
      rank_of_state_[s] = protocol_.rank_of(states_[s]);
    rank_count_.assign(n_ + 1, 0);
    for (std::size_t s = 0; s < k_; ++s) {
      const std::uint32_t r = clamp_rank(rank_of_state_[s]);
      if (r > 0) rank_count_[r] += count_[s];
    }
    singleton_ranks_ = 0;
    for (std::uint32_t r = 1; r <= n_; ++r)
      singleton_ranks_ += rank_count_[r] == 1 ? 1 : 0;
  }

  std::uint64_t interactions() const { return interactions_; }
  double parallel_time() const {
    return static_cast<double>(interactions_) / n_;
  }
  bool correct() const { return singleton_ranks_ == n_; }
  /// Silent iff no active pair remains.
  bool silent() const { return active_weight_ == 0; }
  std::uint64_t count_of(std::size_t state_index) const {
    return count_[state_index];
  }

  /// Executes the next non-null transition (jumping the geometric run of
  /// null interactions).  Precondition: !silent().
  void step() {
    SSR_REQUIRE(active_weight_ > 0);
    const double total =
        static_cast<double>(std::uint64_t{n_} * (n_ - 1));
    interactions_ +=
        geometric_failures(rng_, static_cast<double>(active_weight_) / total) +
        1;

    // Weighted pick over active ordered state pairs.
    std::uint64_t u = uniform_below(rng_, active_weight_);
    for (std::size_t a = 0; a < k_; ++a) {
      if (count_[a] == 0) continue;
      for (std::size_t b = 0; b < k_; ++b) {
        if (!nonnull_[a * k_ + b]) continue;
        const std::uint64_t w =
            a == b ? count_[a] * (count_[a] - 1) : count_[a] * count_[b];
        if (u >= w) {
          u -= w;
          continue;
        }
        apply(a, b);
        return;
      }
    }
    SSR_ASSERT(false);  // u < active_weight_ guarantees a pick
  }

  /// Runs until correct (and, for silent protocols, stable); returns the
  /// parallel time of the last entry into correctness.  Stops early when
  /// the configuration is both correct and silent; otherwise runs until
  /// `max_interactions`.
  bool run_until_correct(std::uint64_t max_interactions) {
    if (profiler_ == nullptr) {  // detached cost: one branch per call
      return run_until_correct_loop(max_interactions);
    }
    obs::timeline_scope section(profiler_, "accelerated.run");
    const std::uint64_t before = interactions_;
    const bool result = run_until_correct_loop(max_interactions);
    profiler_->add_units(interactions_ - before);
    return result;
  }

  /// Attaches (or with nullptr detaches) a section profiler;
  /// run_until_correct records an "accelerated.run" section carrying the
  /// simulated interactions (mostly skipped nulls) as units.
  void attach_profiler(obs::timeline_profiler* profiler) {
    profiler_ = profiler;
  }

 private:
  bool run_until_correct_loop(std::uint64_t max_interactions) {
    while (interactions_ < max_interactions) {
      if (correct() && silent()) return true;
      if (silent()) return false;  // silent but wrong: stuck forever
      step();
    }
    return correct();
  }

  std::size_t index_of(const agent_state& s) const {
    for (std::size_t i = 0; i < k_; ++i) {
      if (states_[i] == s) return i;
    }
    throw std::logic_error(
        "accelerated_simulation: transition left the state inventory");
  }

  std::uint32_t clamp_rank(std::uint32_t r) const { return r <= n_ ? r : 0; }

  void rebuild_active_weight() {
    active_weight_ = 0;
    for (std::size_t a = 0; a < k_; ++a) {
      if (count_[a] == 0) continue;
      for (std::size_t b = 0; b < k_; ++b) {
        if (!nonnull_[a * k_ + b] || count_[b] == 0) continue;
        active_weight_ +=
            a == b ? count_[a] * (count_[a] - 1) : count_[a] * count_[b];
      }
    }
  }

  void bump_rank(std::size_t state, std::int64_t delta) {
    const std::uint32_t r = clamp_rank(rank_of_state_[state]);
    if (r == 0) return;
    const std::uint64_t before = rank_count_[r];
    rank_count_[r] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(before) + delta);
    if (before == 1) --singleton_ranks_;
    if (rank_count_[r] == 1) ++singleton_ranks_;
  }

  void apply(std::size_t a, std::size_t b) {
    const auto [a2, b2] = delta_[a * k_ + b];
    // Count updates; active weight is rebuilt lazily but exactly.  Only
    // four states change, so an incremental update would be O(k); the
    // rebuild is O(k^2), acceptable for the small-k regime this simulator
    // targets (k up to a few hundred).
    --count_[a];
    --count_[b];
    ++count_[a2];
    ++count_[b2];
    bump_rank(a, -1);
    bump_rank(b, -1);
    bump_rank(a2, +1);
    bump_rank(b2, +1);
    rebuild_active_weight();
  }

  P protocol_;
  std::vector<agent_state> states_;
  std::size_t k_;
  std::uint32_t n_;
  rng_t rng_;

  std::vector<std::pair<std::size_t, std::size_t>> delta_;
  std::vector<bool> nonnull_;
  std::vector<std::uint64_t> count_;
  std::uint64_t active_weight_ = 0;
  std::uint64_t interactions_ = 0;

  std::vector<std::uint32_t> rank_of_state_;
  std::vector<std::uint64_t> rank_count_;
  std::uint32_t singleton_ranks_ = 0;
  obs::timeline_profiler* profiler_ = nullptr;
};

}  // namespace ssr
