// Non-complete interaction graphs.
//
// The paper assumes the complete communication graph (every pair may
// interact) and notes that this is the hardest case for its upper bounds --
// but the *protocols* are only correct there: rank-collision detection
// requires the colliding agents to eventually interact directly.  This
// module models the scheduler over an arbitrary connected graph (the
// setting of [11, 57, 25, 60] in the paper's bibliography): at each step an
// undirected edge is chosen uniformly at random and oriented uniformly, the
// natural generalization of the uniform ordered-pair scheduler (which it
// reproduces exactly on the complete graph).
//
// tests/graph_test.cpp + tests/topology_test.cpp use this to demonstrate,
// both empirically and exhaustively (verify/graph_reachability.hpp), that
// Silent-n-state-SSR stops being self-stabilizing on rings and stars, and
// bench_topology measures how convergence degrades as edges are removed
// from the complete graph.
#pragma once

#include <cstdint>
#include <vector>

#include "pp/random.hpp"
#include "pp/rng.hpp"
#include "pp/scheduler.hpp"

namespace ssr {

class interaction_graph {
 public:
  /// Builds a graph from an explicit undirected edge list (vertices
  /// 0..n-1; no self-loops or duplicate edges).
  interaction_graph(std::uint32_t n,
                    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges);

  static interaction_graph complete(std::uint32_t n);
  static interaction_graph ring(std::uint32_t n);
  static interaction_graph path(std::uint32_t n);
  /// Center 0 connected to every leaf.
  static interaction_graph star(std::uint32_t n);
  /// Connected Erdos-Renyi G(n, p): edges sampled i.i.d., then augmented
  /// with a random spanning-tree edge between components until connected.
  static interaction_graph erdos_renyi(std::uint32_t n, double p,
                                       std::uint64_t seed);
  /// Random d-regular graph via the pairing model (resampled until simple;
  /// n * d must be even, d < n).
  static interaction_graph random_regular(std::uint32_t n, std::uint32_t d,
                                          std::uint64_t seed);

  std::uint32_t size() const { return n_; }
  std::size_t edge_count() const { return edges_.size(); }
  const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges() const {
    return edges_;
  }

  bool is_connected() const;
  std::uint32_t min_degree() const;
  std::uint32_t max_degree() const;

  /// One scheduler step: a uniform edge, uniformly oriented.
  agent_pair sample(rng_t& rng) const {
    const auto e = edges_[uniform_below(rng, edges_.size())];
    return coin_flip(rng) ? agent_pair{e.first, e.second}
                          : agent_pair{e.second, e.first};
  }

 private:
  std::uint32_t n_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
};

}  // namespace ssr
