// Unbiased small-range sampling helpers on top of rng_t.
//
// std::uniform_int_distribution is implementation-defined (not reproducible
// across standard libraries), so all sampling in the library goes through
// these functions instead.
#pragma once

#include <cmath>
#include <cstdint>

#include "pp/assert.hpp"
#include "pp/rng.hpp"

namespace ssr {

/// Uniform integer in [0, bound) via Lemire's multiply-shift rejection
/// method.  Unbiased for every bound >= 1.
inline std::uint64_t uniform_below(rng_t& rng, std::uint64_t bound) {
  SSR_REQUIRE(bound >= 1);
  while (true) {
    const std::uint64_t x = rng();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound || low >= (0 - bound) % bound)
      return static_cast<std::uint64_t>(m >> 64);
  }
}

/// Uniform integer in [lo, hi] inclusive.
inline std::int64_t uniform_range(rng_t& rng, std::int64_t lo, std::int64_t hi) {
  SSR_REQUIRE(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  uniform_below(rng, static_cast<std::uint64_t>(hi - lo) + 1));
}

/// Fair coin.
inline bool coin_flip(rng_t& rng) { return (rng() >> 63) != 0; }

/// Uniform double in [0, 1) with 53 bits of precision.
inline double uniform_unit(rng_t& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Bernoulli(p) draw.
inline bool bernoulli(rng_t& rng, double p) { return uniform_unit(rng) < p; }

/// Number of failures before the first success of a Bernoulli(p) sequence
/// (geometric distribution with support {0, 1, 2, ...}).  Used by the
/// accelerated simulators to jump over null interactions in one step.
inline std::uint64_t geometric_failures(rng_t& rng, double p) {
  SSR_REQUIRE(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  const double u = 1.0 - uniform_unit(rng);  // u in (0, 1]
  const double k = std::floor(std::log(u) / std::log1p(-p));
  if (k < 0.0) return 0;
  return static_cast<std::uint64_t>(k);
}

}  // namespace ssr
