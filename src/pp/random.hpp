// Unbiased small-range sampling helpers on top of rng_t.
//
// std::uniform_int_distribution is implementation-defined (not reproducible
// across standard libraries), so all sampling in the library goes through
// these functions instead.
#pragma once

#include <cmath>
#include <cstdint>

#include "pp/assert.hpp"
#include "pp/rng.hpp"

namespace ssr {

/// Uniform integer in [0, bound) via Lemire's multiply-shift rejection
/// method.  Unbiased for every bound >= 1.
inline std::uint64_t uniform_below(rng_t& rng, std::uint64_t bound) {
  SSR_REQUIRE(bound >= 1);
  while (true) {
    const std::uint64_t x = rng();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound || low >= (0 - bound) % bound)
      return static_cast<std::uint64_t>(m >> 64);
  }
}

/// Uniform integer in [lo, hi] inclusive.
inline std::int64_t uniform_range(rng_t& rng, std::int64_t lo, std::int64_t hi) {
  SSR_REQUIRE(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  uniform_below(rng, static_cast<std::uint64_t>(hi - lo) + 1));
}

/// Fair coin.
inline bool coin_flip(rng_t& rng) { return (rng() >> 63) != 0; }

/// Uniform double in [0, 1) with 53 bits of precision.
inline double uniform_unit(rng_t& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Bernoulli(p) draw.
inline bool bernoulli(rng_t& rng, double p) { return uniform_unit(rng) < p; }

/// Number of failures before the first success of a Bernoulli(p) sequence
/// (geometric distribution with support {0, 1, 2, ...}).  Used by the
/// accelerated simulators to jump over null interactions in one step.
inline std::uint64_t geometric_failures(rng_t& rng, double p) {
  SSR_REQUIRE(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  const double u = 1.0 - uniform_unit(rng);  // u in (0, 1]
  const double k = std::floor(std::log(u) / std::log1p(-p));
  if (k < 0.0) return 0;
  return static_cast<std::uint64_t>(k);
}

namespace detail {

/// Stirling-series tail log(k!) - (k + 1/2) log(k+...) correction used by
/// the BTRS acceptance bound; exact table for k <= 9, three-term series
/// above (error < 1e-12 there).
inline double stirling_tail(double k) {
  constexpr double table[] = {
      0.0810614667953272,  0.0413406959554092,  0.0276779256849983,
      0.02079067210376509, 0.0166446911898211,  0.0138761288230707,
      0.0118967099458917,  0.0104112652619720,  0.00925546218271273,
      0.00833056343336287};
  if (k <= 9.0) return table[static_cast<int>(k)];
  const double kp1 = k + 1.0;
  const double kp1sq = kp1 * kp1;
  return (1.0 / 12 - (1.0 / 360 - 1.0 / 1260 / kp1sq) / kp1sq) / kp1;
}

/// Exact waiting-time binomial: counts Bernoulli(p) successes in t trials
/// by jumping over geometric failure runs.  O(tp) expected draws -- the
/// small-mean regime of binomial_draw.
inline std::uint64_t binomial_small(rng_t& rng, std::uint64_t t, double p) {
  std::uint64_t successes = 0;
  std::uint64_t remaining = t;
  while (true) {
    const std::uint64_t gap = geometric_failures(rng, p);
    if (gap >= remaining) return successes;  // no further success fits
    remaining -= gap + 1;
    ++successes;
    if (remaining == 0) return successes;
  }
}

/// BTRS (Hormann's transformed-rejection binomial sampler): O(1) expected
/// draws for t*p >= 10 and p <= 1/2.  The acceptance bound compares
/// log densities through the Stirling tails above, so the sampler is exact
/// (rejection, not approximation).
inline std::uint64_t binomial_btrs(rng_t& rng, std::uint64_t t, double p) {
  const double tn = static_cast<double>(t);
  const double q = 1.0 - p;
  const double spq = std::sqrt(tn * p * q);
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = tn * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double m = std::floor((tn + 1.0) * p);  // mode
  while (true) {
    const double u = uniform_unit(rng) - 0.5;
    double v = uniform_unit(rng);
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2.0 * a / us + b) * u + c);
    if (k < 0.0 || k > tn) continue;
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(k);
    v = std::log(v * alpha / (a / (us * us) + b));
    const double bound =
        (m + 0.5) * std::log((m + 1.0) / ((tn - m + 1.0) * p / q)) +
        (tn + 1.0) * std::log((tn - m + 1.0) / (tn - k + 1.0)) +
        (k + 0.5) * std::log((tn - k + 1.0) * p / q / (k + 1.0)) +
        stirling_tail(m) + stirling_tail(tn - m) - stirling_tail(k) -
        stirling_tail(tn - k);
    if (v <= bound) return static_cast<std::uint64_t>(k);
  }
}

}  // namespace detail

/// Binomial(t, p) draw.  Exact for every (t, p): small means use the
/// waiting-time method (geometric gaps between successes), large means use
/// BTRS transformed rejection, and p > 1/2 is mirrored.  The sharded engine
/// draws its per-round multinomial interaction counts through sequential
/// binomial conditioning on this.
inline std::uint64_t binomial_draw(rng_t& rng, std::uint64_t t, double p) {
  SSR_REQUIRE(p >= 0.0 && p <= 1.0);
  if (t == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return t;
  if (p > 0.5) return t - binomial_draw(rng, t, 1.0 - p);
  if (static_cast<double>(t) * p < 10.0) {
    return detail::binomial_small(rng, t, p);
  }
  return detail::binomial_btrs(rng, t, p);
}

}  // namespace ssr
