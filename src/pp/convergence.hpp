// Measurement of convergence / stabilization time for ranking protocols.
//
// Correctness (a valid ranking, i.e. ranks form a permutation of 1..n) is
// tracked *incrementally*: a histogram of rank values is updated from the
// pre/post ranks of the two interacting agents, so each interaction costs
// O(1) regardless of n.  This matters for the Theta(n^2)-time baseline whose
// executions contain Theta(n^3) interactions.
//
// Terminology follows Section 2 of the paper: an execution converges at
// interaction i if C_{i-1} is not correct and every C_j, j >= i, is correct.
// We estimate the convergence interaction as the *last entry* into the
// correct set, confirmed by running `confirm_parallel_time` further time
// units during which correctness must not be lost.  For the two silent
// protocols correctness implies silence (proved in their headers), so the
// first entry is already stable and a zero confirmation window is exact.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "pp/assert.hpp"
#include "pp/cancellation.hpp"
#include "pp/engine.hpp"
#include "pp/protocol.hpp"
#include "pp/random.hpp"
#include "pp/scheduler.hpp"
#include "pp/sharded_scheduler.hpp"

namespace ssr {

struct convergence_options {
  /// Hard cap on simulated parallel time; the run fails if exceeded.
  double max_parallel_time = 1e9;
  /// Extra parallel time the configuration must remain correct after
  /// (re-)entering the correct set before we declare stabilization.
  double confirm_parallel_time = 0.0;
  /// Cooperative cancellation (pp/cancellation.hpp).  When set, the engine
  /// runs in bounded bursts and the token is polled between them; a fired
  /// token aborts the measurement with cancelled_error.  Burst boundaries
  /// never change the trajectory -- engines resume their RNG stream
  /// exactly -- so a cancellable run is bit-identical to an uncancellable
  /// one up to the abort point.
  const cancel_token* cancel = nullptr;
  /// Request-scoped structured trace (obs/trace.hpp).  When set, the
  /// measurement emits run framing, convergence / correctness_lost markers,
  /// rank collisions, and -- for phase-instrumented protocols -- phase
  /// transitions and reset waves into the sink.  Detached (the default) the
  /// hot loop is untouched: the pointer is tested once per measurement and
  /// the untraced path compiles to exactly the historical loop.
  obs::trace_sink* trace = nullptr;
  /// Request-scoped profiler override.  The timeline profiler is
  /// single-threaded; concurrent measurements (serve workers) each pass
  /// their own collector here instead of sharing the process-wide
  /// profiler_default() the bench front ends install for --profile.
  obs::timeline_profiler* profiler = nullptr;
  /// Request-scoped engine counters.  When set, the engine accumulates
  /// its work counters (interactions executed, certain nulls skipped,
  /// Fenwick updates, ...) into this struct instead of the process-wide
  /// default; run bundles aggregate one instance across all trials.
  obs::engine_counters* counters = nullptr;
};

struct convergence_result {
  /// True iff correctness was reached and held through the confirmation
  /// window within the time cap.
  bool converged = false;
  /// Parallel time of the last entry into the correct set.
  double convergence_time = std::numeric_limits<double>::quiet_NaN();
  /// Total interactions simulated (including the confirmation window).
  std::uint64_t interactions = 0;
  /// Times correctness was lost after having been attained.  Nonzero values
  /// indicate the protocol revoked an apparently-correct ranking (e.g. a
  /// spurious reset); safe protocols keep this at 0 from clean
  /// configurations.
  std::uint32_t correctness_losses = 0;
};

/// Incremental tracker for "ranks form a permutation of 1..n".
class rank_tracker {
 public:
  explicit rank_tracker(std::uint32_t n) : n_(n), count_(n + 1, 0) {}

  /// Registers the initial rank of one agent (call once per agent).
  void add(std::uint32_t rank) {
    const std::uint32_t r = clamp(rank);
    bump(r, +1);
  }

  /// Applies a rank change of one agent.
  void update(std::uint32_t old_rank, std::uint32_t new_rank) {
    const std::uint32_t o = clamp(old_rank);
    const std::uint32_t w = clamp(new_rank);
    if (o == w) return;
    bump(o, -1);
    bump(w, +1);
  }

  /// True iff every rank 1..n is held by exactly one agent.
  bool correct() const { return singletons_ == n_; }

 private:
  // Ranks outside 1..n (including the "no rank" value 0) are pooled in
  // bucket 0; they can never contribute to correctness.
  std::uint32_t clamp(std::uint32_t r) const { return r <= n_ ? r : 0; }

  void bump(std::uint32_t r, int delta) {
    if (r == 0) return;
    const std::uint32_t before = count_[r];
    count_[r] = static_cast<std::uint32_t>(static_cast<int>(before) + delta);
    if (before == 1) --singletons_;
    if (count_[r] == 1) ++singletons_;
  }

  std::uint32_t n_;
  std::vector<std::uint32_t> count_;
  std::uint32_t singletons_ = 0;
};

namespace detail {

/// The untraced measurement path: every hook inlines to nothing, so the
/// tracer-parameterized loop below compiles to exactly the historical
/// measure_convergence_run loop (the obs overhead contract: zero cost per
/// interaction when telemetry is detached).
struct null_convergence_tracer {
  static constexpr bool enabled = false;
  void before(const agent_pair&) {}
  void after(const agent_pair&, std::uint32_t, std::uint32_t, double,
             std::uint64_t) {}
  void convergence(double, std::uint64_t) {}
  void correctness_lost(double, std::uint64_t) {}
};

/// Tracer for phase-instrumented protocols (optimal, sublinear): full
/// phase-occupancy stream via phase_observer plus the convergence-harness
/// events (rank collisions and correctness flips) only the measurement
/// loop can see.
template <class P>
class phase_convergence_tracer {
 public:
  static constexpr bool enabled = true;

  phase_convergence_tracer(const P& protocol,
                           std::span<const typename P::agent_state> agents,
                           obs::trace_sink* sink)
      : observer_(protocol, agents, sink) {}

  void begin(double time, std::uint64_t interaction) {
    observer_.begin(time, interaction);
  }
  void end(double time, std::uint64_t interaction) {
    observer_.end(time, interaction);
  }

  void before(const agent_pair& pair) { observer_.before(pair); }
  void after(const agent_pair& pair, std::uint32_t pre_ra,
             std::uint32_t pre_rb, double time, std::uint64_t interaction) {
    observer_.after(pair, /*changed=*/true, time, interaction);
    if (pre_ra == pre_rb && pre_ra != 0) {
      observer_.rank_collision(pair, time, interaction);
    }
  }
  void convergence(double time, std::uint64_t interaction) {
    observer_.convergence(time, interaction);
  }
  void correctness_lost(double time, std::uint64_t interaction) {
    observer_.correctness_lost(time, interaction);
  }

  std::vector<std::string_view> phase_names() const {
    return observer_.phase_names();
  }

 private:
  obs::phase_observer<P> observer_;
};

/// Tracer for protocols without phase hooks (baseline, loose): run framing,
/// rank collisions, and correctness flips -- no phase stream.
class framing_convergence_tracer {
 public:
  static constexpr bool enabled = true;

  explicit framing_convergence_tracer(obs::trace_sink* sink) : sink_(sink) {}

  void begin(double time, std::uint64_t interaction) {
    emit({obs::trace_event_kind::run_start, time, interaction});
  }
  void end(double time, std::uint64_t interaction) {
    emit({obs::trace_event_kind::run_end, time, interaction});
  }

  void before(const agent_pair&) {}
  void after(const agent_pair& pair, std::uint32_t pre_ra,
             std::uint32_t pre_rb, double time, std::uint64_t interaction) {
    if (pre_ra == pre_rb && pre_ra != 0) {
      emit({obs::trace_event_kind::rank_collision, time, interaction,
            pair.initiator});
    }
  }
  void convergence(double time, std::uint64_t interaction) {
    emit({obs::trace_event_kind::convergence, time, interaction});
  }
  void correctness_lost(double time, std::uint64_t interaction) {
    emit({obs::trace_event_kind::correctness_lost, time, interaction});
  }

 private:
  void emit(const obs::trace_event& event) {
    if (sink_ != nullptr) sink_->emit(event);
  }

  obs::trace_sink* sink_;
};

/// The measurement loop, parameterized on a tracer.  Tracer hooks are
/// guarded by `if constexpr (Tracer::enabled)` so the null tracer's path
/// never touches engine.parallel_time() inside the hot hooks.
template <class Tracer, simulation_engine E>
  requires ranking_protocol<typename E::protocol_type>
convergence_result measure_convergence_loop(
    E& engine, const convergence_options& opt,
    std::vector<typename E::agent_state>* final_config, Tracer& tracer) {
  const auto& protocol = engine.protocol();
  const std::uint32_t n = engine.population_size();

  rank_tracker tracker(n);
  for (const auto& s : engine.agents()) tracker.add(protocol.rank_of(s));

  const auto max_interactions = static_cast<std::uint64_t>(
      opt.max_parallel_time * static_cast<double>(n));
  const auto confirm_interactions = static_cast<std::uint64_t>(
      opt.confirm_parallel_time * static_cast<double>(n));

  convergence_result result;
  std::uint64_t last_entry = 0;  // interaction index of last entry
  bool was_correct = tracker.correct();
  bool ever_correct = was_correct;
  std::uint32_t pre_ra = 0, pre_rb = 0;  // captured by the pre hook

  // Cancellation polls at burst boundaries: large enough that the poll is
  // free relative to the burst, small enough that a deadline is noticed
  // within tens of milliseconds even on the batched engine.
  const std::uint64_t cancel_burst =
      std::max<std::uint64_t>(std::uint64_t{n} * 64, std::uint64_t{1} << 22);

  while (engine.interactions() < max_interactions) {
    if (opt.cancel != nullptr) opt.cancel->throw_if_cancelled();
    if (was_correct &&
        (engine.interactions() - last_entry >= confirm_interactions ||
         engine.quiescent())) {
      result.converged = true;
      break;
    }
    // While correct, run only to the end of the confirmation window; the
    // next loop iteration then declares convergence (matching the historical
    // check-before-step order).
    std::uint64_t budget =
        was_correct
            ? std::min<std::uint64_t>(max_interactions,
                                      last_entry + confirm_interactions)
            : max_interactions;
    if (opt.cancel != nullptr) {
      budget = std::min(budget, engine.interactions() + cancel_burst);
    }
    engine.run(
        budget,
        [&](const agent_pair& pair) {
          pre_ra = protocol.rank_of(engine.agents()[pair.initiator]);
          pre_rb = protocol.rank_of(engine.agents()[pair.responder]);
          if constexpr (Tracer::enabled) tracer.before(pair);
        },
        [&](const agent_pair& pair, bool changed) {
          if (!changed) return false;
          if constexpr (Tracer::enabled) {
            tracer.after(pair, pre_ra, pre_rb, engine.parallel_time(),
                         engine.interactions());
          }
          tracker.update(pre_ra,
                         protocol.rank_of(engine.agents()[pair.initiator]));
          tracker.update(pre_rb,
                         protocol.rank_of(engine.agents()[pair.responder]));
          const bool correct = tracker.correct();
          if (correct == was_correct) return false;
          if (correct) {
            last_entry = engine.interactions();
            ever_correct = true;
            if constexpr (Tracer::enabled) {
              tracer.convergence(engine.parallel_time(),
                                 engine.interactions());
            }
          } else {
            ++result.correctness_losses;
            if constexpr (Tracer::enabled) {
              tracer.correctness_lost(engine.parallel_time(),
                                      engine.interactions());
            }
          }
          was_correct = correct;
          return true;  // correctness flipped: re-evaluate the budget
        });
  }

  result.interactions = engine.interactions();
  if (result.converged && ever_correct) {
    result.convergence_time =
        static_cast<double>(last_entry) / static_cast<double>(n);
  }
  if (final_config != nullptr) {
    final_config->assign(engine.agents().begin(), engine.agents().end());
  }
  return result;
}

}  // namespace detail

/// Measures convergence on an already-constructed engine.  This is the
/// engine-generic core: the direct engine reproduces the historical
/// measure_convergence trajectories bit for bit, and any other
/// simulation_engine (pp/engine.hpp) samples the same distribution.
///
/// Correctness can only change on a state-changing interaction, so engines
/// that elide certainly-null interactions (the batched count engine) feed
/// the tracker an equivalent stream.  When the engine can prove quiescence
/// while the configuration is correct, convergence is declared immediately:
/// no future interaction can revoke correctness, so every confirmation
/// window is trivially satisfied.
///
/// With opt.trace set the run additionally streams structured events into
/// the sink: the full phase/reset stream for phase-instrumented protocols,
/// run framing + collision/convergence markers otherwise.  Tracing never
/// perturbs the trajectory -- it only reads states the hooks already see.
template <simulation_engine E>
  requires ranking_protocol<typename E::protocol_type>
convergence_result measure_convergence_run(
    E& engine, const convergence_options& opt = {},
    std::vector<typename E::agent_state>* final_config = nullptr) {
  using P = typename E::protocol_type;
  if (opt.trace == nullptr) {
    detail::null_convergence_tracer tracer;
    return detail::measure_convergence_loop(engine, opt, final_config,
                                            tracer);
  }
  if constexpr (obs::phase_instrumented_protocol<P>) {
    detail::phase_convergence_tracer<P> tracer(engine.protocol(),
                                               engine.agents(), opt.trace);
    tracer.begin(engine.parallel_time(), engine.interactions());
    convergence_result result =
        detail::measure_convergence_loop(engine, opt, final_config, tracer);
    tracer.end(engine.parallel_time(), engine.interactions());
    return result;
  } else {
    detail::framing_convergence_tracer tracer(opt.trace);
    tracer.begin(engine.parallel_time(), engine.interactions());
    convergence_result result =
        detail::measure_convergence_loop(engine, opt, final_config, tracer);
    tracer.end(engine.parallel_time(), engine.interactions());
    return result;
  }
}

/// Runs `protocol` from `initial` under the uniform scheduler and measures
/// convergence per the options.  `final_config`, when non-null, receives the
/// configuration at the end of the run.  Equivalent to
/// measure_convergence_with(engine_kind::direct, ...).
template <ranking_protocol P>
convergence_result measure_convergence(
    P protocol, std::vector<typename P::agent_state> initial,
    std::uint64_t seed, const convergence_options& opt = {},
    std::vector<typename P::agent_state>* final_config = nullptr) {
  SSR_REQUIRE(initial.size() == protocol.population_size());
  direct_engine<P> engine(std::move(protocol), std::move(initial), seed);
  engine.attach_profiler(opt.profiler != nullptr ? opt.profiler
                                                : obs::profiler_default());
  if (opt.counters != nullptr) engine.attach_counters(opt.counters);
  return measure_convergence_run(engine, opt, final_config);
}

/// Engine-selectable variant: runs the measurement on the requested engine.
/// All engines sample the same stabilization-time distribution
/// (tests/engine_equivalence_test.cpp); the batched engine is the one that
/// reaches n >= 10^6 (see docs/protocol_map.md, "Engines"), and the sharded
/// engine (spec.shards workers) the one that uses more than one core.  The
/// measurement needs per-interaction hooks, so the sharded engine runs its
/// sequential hooked mode here -- the trajectory is bit-identical to the
/// threaded run_parallel (tests/sharded_scheduler_fuzz_test.cpp).
template <ranking_protocol P>
convergence_result measure_convergence_with(
    engine_spec spec, P protocol, std::vector<typename P::agent_state> initial,
    std::uint64_t seed, const convergence_options& opt = {},
    std::vector<typename P::agent_state>* final_config = nullptr) {
  SSR_REQUIRE(initial.size() == protocol.population_size());
  // Profiling hook: opt.profiler (per-request collectors, e.g. serve jobs)
  // wins; otherwise the process-wide default a bench front end installed
  // with --profile is attached.
  switch (spec.kind) {
    case engine_kind::direct: {
      direct_engine<P> engine(std::move(protocol), std::move(initial), seed);
      engine.attach_profiler(opt.profiler != nullptr ? opt.profiler
                                                : obs::profiler_default());
      if (opt.counters != nullptr) engine.attach_counters(opt.counters);
      return measure_convergence_run(engine, opt, final_config);
    }
    case engine_kind::sharded: {
      sharded_engine<P> engine(std::move(protocol), std::move(initial), seed,
                               {.shards = spec.shards});
      engine.attach_profiler(opt.profiler != nullptr ? opt.profiler
                                                : obs::profiler_default());
      if (opt.counters != nullptr) engine.attach_counters(opt.counters);
      return measure_convergence_run(engine, opt, final_config);
    }
    case engine_kind::batched:
      break;
  }
  batched_engine<P> engine(std::move(protocol), std::move(initial), seed);
  engine.attach_profiler(opt.profiler != nullptr ? opt.profiler
                                                : obs::profiler_default());
  if (opt.counters != nullptr) engine.attach_counters(opt.counters);
  return measure_convergence_run(engine, opt, final_config);
}

}  // namespace ssr
