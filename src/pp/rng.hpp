// Deterministic pseudo-random number generation for simulations.
//
// We use xoshiro256++ (Blackman & Vigna), seeded through splitmix64, rather
// than std::mt19937_64: it is faster, has a tiny state, and its streams are
// reproducible across standard library implementations, which matters for
// seed-pinned tests.
#pragma once

#include <cstdint>
#include <limits>

namespace ssr {

/// splitmix64 step; used to expand a single 64-bit seed into a full
/// xoshiro256++ state and as a cheap hash for deriving per-trial seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives a decorrelated child seed from (base, stream); used so that every
/// trial in a sweep gets an independent, reproducible stream.
constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  std::uint64_t x = base ^ (0x2545f4914f6cdd1dULL * (stream + 1));
  // Two splitmix rounds fully avalanche the combination.
  (void)splitmix64(x);
  return splitmix64(x);
}

/// Counter-based splittable stream derivation: maps (base, hi, lo) to a
/// decorrelated child seed.  The sharded engine keys per-task RNG streams on
/// (run seed, round index, task index), so a task's stream is a pure
/// function of its coordinates -- independent of thread count, scheduling
/// order, or which worker happens to execute it.
constexpr std::uint64_t derive_stream(std::uint64_t base, std::uint64_t hi,
                                      std::uint64_t lo) {
  std::uint64_t x = base ^ (0x9e3779b97f4a7c15ULL * (hi + 0x632be59bd9b4e019ULL));
  (void)splitmix64(x);
  x ^= 0xd1b54a32d192ed03ULL * (lo + 1);
  // Two further rounds fully avalanche both coordinates into the result.
  (void)splitmix64(x);
  return splitmix64(x);
}

/// xoshiro256++ engine.  Satisfies std::uniform_random_bit_generator.
class xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit constexpr xoshiro256pp(std::uint64_t seed = 0x9059e5e54a1048ccULL) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Advances the state by 2^128 steps (Blackman & Vigna's jump
  /// polynomial): up to 2^128 non-overlapping subsequences for parallel
  /// workers that partition one logical stream.
  constexpr void jump() {
    constexpr std::uint64_t polynomial[4] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    apply_jump(polynomial);
  }

  /// Advances the state by 2^192 steps; each long_jump yields a block that
  /// itself holds 2^64 jump() subsequences.
  constexpr void long_jump() {
    constexpr std::uint64_t polynomial[4] = {
        0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
        0x39109bb02acbe635ULL};
    apply_jump(polynomial);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  constexpr void apply_jump(const std::uint64_t (&polynomial)[4]) {
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (const std::uint64_t word : polynomial) {
      for (int b = 0; b < 64; ++b) {
        if (word & (std::uint64_t{1} << b)) {
          s0 ^= state_[0];
          s1 ^= state_[1];
          s2 ^= state_[2];
          s3 ^= state_[3];
        }
        (void)(*this)();
      }
    }
    state_[0] = s0;
    state_[1] = s1;
    state_[2] = s2;
    state_[3] = s3;
  }

  std::uint64_t state_[4]{};
};

using rng_t = xoshiro256pp;

}  // namespace ssr
