// Deterministic pseudo-random number generation for simulations.
//
// We use xoshiro256++ (Blackman & Vigna), seeded through splitmix64, rather
// than std::mt19937_64: it is faster, has a tiny state, and its streams are
// reproducible across standard library implementations, which matters for
// seed-pinned tests.
#pragma once

#include <cstdint>
#include <limits>

namespace ssr {

/// splitmix64 step; used to expand a single 64-bit seed into a full
/// xoshiro256++ state and as a cheap hash for deriving per-trial seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives a decorrelated child seed from (base, stream); used so that every
/// trial in a sweep gets an independent, reproducible stream.
constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  std::uint64_t x = base ^ (0x2545f4914f6cdd1dULL * (stream + 1));
  // Two splitmix rounds fully avalanche the combination.
  (void)splitmix64(x);
  return splitmix64(x);
}

/// xoshiro256++ engine.  Satisfies std::uniform_random_bit_generator.
class xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit constexpr xoshiro256pp(std::uint64_t seed = 0x9059e5e54a1048ccULL) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

using rng_t = xoshiro256pp;

}  // namespace ssr
