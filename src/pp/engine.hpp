// Interchangeable simulation engines for the uniform scheduler.
//
// Every engine executes the same stochastic process -- i.i.d. uniform
// ordered pairs of distinct agents, transition applied per pair -- and
// differs only in how much work each simulated interaction costs:
//
//   direct_engine<P>    one RNG draw + one transition call per interaction
//                       (the reference semantics; identical to
//                       simulation<P> stepping).
//   batched_engine<P>   for batch_countable_protocol P: a count-based
//                       configuration index (per-key agent buckets + a
//                       Fenwick tree of same-key pair weights) that skips
//                       whole runs of certainly-null interactions with one
//                       geometric draw and samples the next maybe-active
//                       pair from the counts in O(log n).
//                       For all other protocols: collision-aware block
//                       sampling via batch_scheduler, applied in order.
//
// Equivalence: the batched engine simulates *exactly* the same distribution
// over trajectories as the direct engine, not an approximation.  Skipped
// interactions are pairs with distinct inert keys, which the
// batch_countable_protocol contract guarantees are null; the run length of
// such nulls under the uniform scheduler is geometric with success
// probability W / n(n-1) (W = weight of maybe-active ordered pairs), and
// the maybe-active pair terminating the run is uniform over the
// maybe-active set -- both sampled exactly.  Interrupting a geometric skip
// at an interaction budget and redrawing later is also exact, by
// memorylessness.  The distribution-equivalence suite
// (tests/engine_equivalence_test.cpp) checks this end to end with
// two-sample KS tests.
//
// Engines run under caller-supplied hooks:
//
//   engine.run(budget, pre, post)
//
// calls pre(pair) immediately before and post(pair, changed) immediately
// after every *executed* interaction.  Interactions elided by the geometric
// skip (certainly null by contract) are counted but never surfaced -- they
// cannot change any state, so observers keyed on state changes see an
// identical stream.  post
// returns true to stop; run returns true iff a post stopped it, false when
// the interaction budget was exhausted.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/engine_counters.hpp"
#include "obs/timeline.hpp"
#include "pp/assert.hpp"
#include "pp/batch_scheduler.hpp"
#include "pp/protocol.hpp"
#include "pp/random.hpp"
#include "pp/rng.hpp"
#include "pp/scheduler.hpp"

namespace ssr {

/// Runtime engine selector, shared by run_trials, the bench binaries
/// (--engine=direct|batched|sharded) and ssr_cli.
enum class engine_kind { direct, batched, sharded };

inline constexpr std::string_view to_string(engine_kind kind) {
  switch (kind) {
    case engine_kind::direct:
      return "direct";
    case engine_kind::batched:
      return "batched";
    case engine_kind::sharded:
      return "sharded";
  }
  return "direct";
}

inline std::optional<engine_kind> parse_engine(std::string_view name) {
  if (name == "direct") return engine_kind::direct;
  if (name == "batched") return engine_kind::batched;
  if (name == "sharded") return engine_kind::sharded;
  return std::nullopt;
}

/// Engine selection plus its tuning knobs.  Implicitly convertible from
/// engine_kind so existing call sites (and designated initializers like
/// {.engine = engine_kind::batched}) keep compiling; sharded-aware callers
/// spell engine_spec{engine_kind::sharded, shards}.
struct engine_spec {
  engine_kind kind = engine_kind::direct;
  /// Worker shard count for engine_kind::sharded; 0 picks the engine
  /// default (hardware concurrency).  Ignored by the other engines.
  std::uint32_t shards = 0;

  constexpr engine_spec() = default;
  constexpr engine_spec(engine_kind k, std::uint32_t s = 0)  // NOLINT
      : kind(k), shards(s) {}

  friend bool operator==(const engine_spec&, const engine_spec&) = default;
};

/// The contract shared by all engines; measurement harnesses
/// (pp/convergence.hpp) are templated over it.
template <class E>
concept simulation_engine =
    requires(E e, const E ce, std::uint64_t budget) {
      typename E::protocol_type;
      typename E::agent_state;
      { ce.population_size() } -> std::convertible_to<std::uint32_t>;
      { ce.interactions() } -> std::convertible_to<std::uint64_t>;
      { ce.parallel_time() } -> std::convertible_to<double>;
      // True only when the engine can *prove* no future interaction will
      // change any state (sufficient, not necessary, for silence).
      { ce.quiescent() } -> std::convertible_to<bool>;
      {
        e.run(budget, [](const agent_pair&) {},
              [](const agent_pair&, bool) { return false; })
      } -> std::same_as<bool>;
    };

/// The reference engine: per-interaction stepping, identical RNG stream and
/// trajectory to simulation<P>.
template <population_protocol P>
class direct_engine {
 public:
  using protocol_type = P;
  using agent_state = typename P::agent_state;

  direct_engine(P protocol, std::vector<agent_state> initial,
                std::uint64_t seed)
      : protocol_(std::move(protocol)),
        agents_(std::move(initial)),
        rng_(seed) {
    SSR_REQUIRE(agents_.size() == protocol_.population_size());
    SSR_REQUIRE(agents_.size() >= 2);
  }

  template <class Pre, class Post>
  bool run(std::uint64_t max_interactions, Pre&& pre, Post&& post) {
    if (profiler_ == nullptr) {  // detached cost: this one branch per run()
      return run_loop(max_interactions, std::forward<Pre>(pre),
                      std::forward<Post>(post));
    }
    obs::timeline_scope section(profiler_, "engine.run");
    const std::uint64_t before = interactions_;
    const bool stopped = run_loop(max_interactions, std::forward<Pre>(pre),
                                  std::forward<Post>(post));
    profiler_->add_units(interactions_ - before);
    return stopped;
  }

  /// Attaches (or with nullptr detaches) an event-counter sink; see
  /// obs/engine_counters.hpp.  Counters accumulate across run() calls.
  void attach_counters(obs::engine_counters* counters) {
    counters_ = counters;
  }

  /// Attaches (or with nullptr detaches) a section profiler; every run()
  /// call becomes an "engine.run" section carrying the executed
  /// interactions as units.  See obs/timeline.hpp.
  void attach_profiler(obs::timeline_profiler* profiler) {
    profiler_ = profiler;
  }

  std::uint32_t population_size() const {
    return protocol_.population_size();
  }
  std::uint64_t interactions() const { return interactions_; }
  double parallel_time() const {
    return static_cast<double>(interactions_) / population_size();
  }
  bool quiescent() const { return false; }  // no structural knowledge

  std::span<const agent_state> agents() const { return agents_; }
  std::span<agent_state> mutable_agents() { return agents_; }
  const P& protocol() const { return protocol_; }
  rng_t& rng() { return rng_; }

 private:
  template <class Pre, class Post>
  bool run_loop(std::uint64_t max_interactions, Pre&& pre, Post&& post) {
    const std::uint32_t n = population_size();
    while (interactions_ < max_interactions) {
      const agent_pair pair = sample_pair(rng_, n);
      pre(pair);
      const bool changed = protocol_.interact(agents_[pair.initiator],
                                              agents_[pair.responder], rng_);
      ++interactions_;
      if (counters_) {
        ++counters_->interactions_executed;
        counters_->transitions_changed += changed;
      }
      if (post(pair, changed)) return true;
    }
    return false;
  }

  P protocol_;
  std::vector<agent_state> agents_;
  rng_t rng_;
  std::uint64_t interactions_ = 0;
  obs::engine_counters* counters_ = nullptr;
  obs::timeline_profiler* profiler_ = nullptr;
};

namespace detail {

/// Fenwick (binary indexed) tree over per-key ordered-pair weights
/// w_k = s_k (s_k - 1).  add() is O(log K); find() locates the key whose
/// weight interval contains a uniform draw, with the in-key residual, in
/// O(log K) -- the residual is reused to pick the concrete agents so the
/// draw costs one uniform variate total.
class pair_weight_tree {
 public:
  explicit pair_weight_tree(std::size_t keys) : tree_(keys + 1, 0) {
    mask_ = 1;
    while (mask_ * 2 <= keys) mask_ *= 2;
  }

  /// Adds a (possibly negative, via two's-complement wrap) delta to key i.
  void add(std::size_t i, std::uint64_t delta) {
    total_ += delta;
    for (++i; i < tree_.size(); i += i & (~i + 1)) tree_[i] += delta;
  }

  std::uint64_t total() const { return total_; }

  /// Precondition: u < total().  Returns (key, residual) with
  /// residual < weight(key).
  std::pair<std::size_t, std::uint64_t> find(std::uint64_t u) const {
    std::size_t pos = 0;
    for (std::size_t step = mask_; step > 0; step >>= 1) {
      const std::size_t next = pos + step;
      if (next < tree_.size() && tree_[next] <= u) {
        u -= tree_[next];
        pos = next;
      }
    }
    return {pos, u};  // pos is the 0-based key index
  }

 private:
  std::vector<std::uint64_t> tree_;
  std::size_t mask_ = 1;
  std::uint64_t total_ = 0;
};

}  // namespace detail

template <population_protocol P,
          bool Countable = batch_countable_protocol<P>>
class batched_engine;

/// Count-based batched engine for batch-countable protocols.
///
/// Configuration index: every agent sits in the bucket of its batch key
/// (inert keys 0..K-1, plus one bucket for volatile states).  With
/// s_k = |bucket k| and V volatile agents out of n, the maybe-active
/// ordered pairs are exactly
///
///   A: same inert key,          weight Q = sum_k s_k (s_k - 1) (Fenwick)
///   B: volatile initiator,      weight V (n - 1)
///   C: inert x volatile,        weight (n - V) V
///
/// and every remaining pair (distinct inert keys) is certainly null by the
/// batch_countable_protocol contract.  Each engine step draws the
/// geometric run of certain nulls in O(1), then one maybe-active pair:
/// category A via Fenwick descent + in-bucket residual, B via direct
/// indexing, C by rejection over initiators (terminates fast: the skip
/// path only runs when W < n(n-1)/2, which forces V < n/2).  When the
/// maybe-active weight is at least half of all pairs, skipping cannot win
/// and the engine steps like the direct one (drawing uniform pairs),
/// which keeps adversarial all-volatile configurations from paying index
/// overhead per interaction.
///
/// The maybe-active pair is probed with the real transition function, so
/// "maybe-active but actually null" pairs (e.g. two Settled agents sharing
/// an out-of-range rank) behave exactly as under direct simulation.
template <population_protocol P>
class batched_engine<P, true> {
 public:
  using protocol_type = P;
  using agent_state = typename P::agent_state;

  batched_engine(P protocol, std::vector<agent_state> initial,
                 std::uint64_t seed)
      : protocol_(std::move(protocol)),
        agents_(std::move(initial)),
        rng_(seed),
        n_(protocol_.population_size()),
        inert_keys_(protocol_.batch_key_count()),
        weight_(protocol_.batch_key_count()) {
    SSR_REQUIRE(agents_.size() == n_);
    SSR_REQUIRE(n_ >= 2);
    buckets_.resize(std::size_t{inert_keys_} + 1);
    bucket_of_.resize(n_);
    pos_.resize(n_);
    for (std::uint32_t a = 0; a < n_; ++a) {
      const std::uint32_t k = bucket_index(agents_[a]);
      bucket_of_[a] = k;
      pos_[a] = static_cast<std::uint32_t>(buckets_[k].size());
      buckets_[k].push_back(a);
    }
    for (std::uint32_t k = 0; k < inert_keys_; ++k) {
      const std::uint64_t s = buckets_[k].size();
      if (s >= 2) weight_.add(k, s * (s - 1));
    }
  }

  template <class Pre, class Post>
  bool run(std::uint64_t max_interactions, Pre&& pre, Post&& post) {
    if (profiler_ == nullptr) {  // detached cost: this one branch per run()
      return run_loop(max_interactions, std::forward<Pre>(pre),
                      std::forward<Post>(post));
    }
    obs::timeline_scope section(profiler_, "engine.run");
    const std::uint64_t before = interactions_;
    const bool stopped = run_loop(max_interactions, std::forward<Pre>(pre),
                                  std::forward<Post>(post));
    profiler_->add_units(interactions_ - before);
    return stopped;
  }

  /// Attaches (or with nullptr detaches) an event-counter sink; see
  /// obs/engine_counters.hpp.  Counters accumulate across run() calls.
  void attach_counters(obs::engine_counters* counters) {
    counters_ = counters;
  }

  /// Attaches (or with nullptr detaches) a section profiler; every run()
  /// call becomes an "engine.run" section carrying the executed
  /// interactions (including skipped certain nulls) as units.
  void attach_profiler(obs::timeline_profiler* profiler) {
    profiler_ = profiler;
  }

  std::uint32_t population_size() const { return n_; }
  std::uint64_t interactions() const { return interactions_; }
  double parallel_time() const {
    return static_cast<double>(interactions_) / n_;
  }
  /// True iff no maybe-active pair remains; the contract then guarantees
  /// the configuration is silent.
  bool quiescent() const { return active_weight() == 0; }

  /// Total weight of maybe-active ordered pairs (0 iff quiescent).
  std::uint64_t active_weight() const {
    const std::uint64_t v = buckets_[inert_keys_].size();
    return weight_.total() + v * (n_ - 1) + (n_ - v) * v;
  }

  std::span<const agent_state> agents() const { return agents_; }
  const P& protocol() const { return protocol_; }
  rng_t& rng() { return rng_; }

 private:
  template <class Pre, class Post>
  bool run_loop(std::uint64_t max_interactions, Pre&& pre, Post&& post) {
    const std::uint64_t total = std::uint64_t{n_} * (n_ - 1);
    while (interactions_ < max_interactions) {
      const std::uint64_t active = active_weight();
      if (active == 0) {
        // Every pair is certainly null: the configuration can never change
        // again.  Charge the rest of the budget in one jump.
        if (counters_) {
          counters_->certain_nulls_skipped += max_interactions - interactions_;
          ++counters_->quiescent_jumps;
        }
        interactions_ = max_interactions;
        return false;
      }
      agent_pair pair;
      if (2 * active >= total) {
        pair = sample_pair(rng_, n_);  // dense regime: skipping cannot win
      } else {
        const std::uint64_t skip = geometric_failures(
            rng_, static_cast<double>(active) / static_cast<double>(total));
        if (counters_) ++counters_->geometric_draws;
        if (skip >= max_interactions - interactions_) {
          // The next maybe-active interaction falls beyond the budget; by
          // memorylessness, stopping here and redrawing later is exact.
          if (counters_) {
            counters_->certain_nulls_skipped +=
                max_interactions - interactions_;
          }
          interactions_ = max_interactions;
          return false;
        }
        if (counters_) counters_->certain_nulls_skipped += skip;
        interactions_ += skip;
        pair = sample_active_pair(active);
      }
      pre(pair);
      const bool changed = protocol_.interact(agents_[pair.initiator],
                                              agents_[pair.responder], rng_);
      ++interactions_;
      if (counters_) {
        ++counters_->interactions_executed;
        counters_->transitions_changed += changed;
      }
      if (changed) {
        reindex(pair.initiator);
        reindex(pair.responder);
      }
      if (post(pair, changed)) return true;
    }
    return false;
  }

  std::uint32_t bucket_index(const agent_state& s) const {
    const std::uint32_t k = protocol_.batch_key(s);
    if (k == batch_volatile_key) return inert_keys_;
    SSR_ASSERT(k < inert_keys_);
    return k;
  }

  agent_pair sample_active_pair(std::uint64_t active) {
    std::uint64_t u = uniform_below(rng_, active);
    if (u < weight_.total()) {
      const auto [key, residual] = weight_.find(u);
      const auto& bucket = buckets_[key];
      const std::uint64_t s = bucket.size();
      const std::uint64_t i = residual / (s - 1);
      std::uint64_t j = residual % (s - 1);
      if (j >= i) ++j;  // skip the diagonal: ordered pair of distinct slots
      return {bucket[i], bucket[j]};
    }
    u -= weight_.total();
    const auto& vol = buckets_[inert_keys_];
    const std::uint64_t v = vol.size();
    if (u < v * (n_ - 1)) {
      const std::uint32_t initiator =
          vol[static_cast<std::size_t>(u / (n_ - 1))];
      auto responder = static_cast<std::uint32_t>(u % (n_ - 1));
      if (responder >= initiator) ++responder;  // any agent but the initiator
      return {initiator, responder};
    }
    u -= v * (n_ - 1);
    // Inert initiator x volatile responder; rejection over initiators is
    // uniform over inert agents and cheap here (skip path implies V < n/2).
    const std::uint32_t responder = vol[static_cast<std::size_t>(u % v)];
    while (true) {
      const auto initiator =
          static_cast<std::uint32_t>(uniform_below(rng_, n_));
      if (bucket_of_[initiator] != inert_keys_) return {initiator, responder};
    }
  }

  /// Re-files `agent` after its state may have changed; O(log K) when the
  /// key changed, O(1) when it did not.
  void reindex(std::uint32_t agent) {
    const std::uint32_t to = bucket_index(agents_[agent]);
    const std::uint32_t from = bucket_of_[agent];
    if (to == from) return;
    auto& old_bucket = buckets_[from];
    const std::uint64_t old_size = old_bucket.size();
    const std::uint32_t hole = pos_[agent];
    old_bucket[hole] = old_bucket.back();
    pos_[old_bucket[hole]] = hole;
    old_bucket.pop_back();
    if (from != inert_keys_ && old_size >= 2) {
      // w = s(s-1) drops by 2(s-1) when s -> s-1.
      weight_.add(from, 0 - 2 * (old_size - 1));
      if (counters_) ++counters_->fenwick_updates;
    }
    auto& new_bucket = buckets_[to];
    bucket_of_[agent] = to;
    pos_[agent] = static_cast<std::uint32_t>(new_bucket.size());
    new_bucket.push_back(agent);
    if (to != inert_keys_ && new_bucket.size() >= 2) {
      weight_.add(to, 2 * (new_bucket.size() - 1));
      if (counters_) ++counters_->fenwick_updates;
    }
  }

  P protocol_;
  std::vector<agent_state> agents_;
  rng_t rng_;
  std::uint32_t n_;
  std::uint32_t inert_keys_;
  std::uint64_t interactions_ = 0;

  std::vector<std::vector<std::uint32_t>> buckets_;  // per key + volatile
  std::vector<std::uint32_t> bucket_of_;             // agent -> bucket
  std::vector<std::uint32_t> pos_;                   // agent -> slot
  detail::pair_weight_tree weight_;                  // same-key pair weights
  obs::engine_counters* counters_ = nullptr;
  obs::timeline_profiler* profiler_ = nullptr;
};

/// Generic batched engine: collision-aware block sampling, applied in
/// order.  Exact for every protocol (the pair stream is the scheduler's
/// i.i.d. stream); the win is the tight RNG loop, not null skipping.
template <population_protocol P>
class batched_engine<P, false> {
 public:
  using protocol_type = P;
  using agent_state = typename P::agent_state;

  batched_engine(P protocol, std::vector<agent_state> initial,
                 std::uint64_t seed)
      : protocol_(std::move(protocol)),
        agents_(std::move(initial)),
        rng_(seed),
        scheduler_(protocol_.population_size()) {
    SSR_REQUIRE(agents_.size() == protocol_.population_size());
    SSR_REQUIRE(agents_.size() >= 2);
  }

  template <class Pre, class Post>
  bool run(std::uint64_t max_interactions, Pre&& pre, Post&& post) {
    if (profiler_ == nullptr) {  // detached cost: this one branch per run()
      return run_loop(max_interactions, std::forward<Pre>(pre),
                      std::forward<Post>(post));
    }
    obs::timeline_scope section(profiler_, "engine.run");
    const std::uint64_t before = interactions_;
    const bool stopped = run_loop(max_interactions, std::forward<Pre>(pre),
                                  std::forward<Post>(post));
    profiler_->add_units(interactions_ - before);
    return stopped;
  }

  /// Attaches (or with nullptr detaches) an event-counter sink; see
  /// obs/engine_counters.hpp.  Counters accumulate across run() calls.
  void attach_counters(obs::engine_counters* counters) {
    counters_ = counters;
  }

  /// Attaches (or with nullptr detaches) a section profiler.  The scheduler
  /// shares it, so every block draw nests as "batch.draw" under
  /// "engine.run".
  void attach_profiler(obs::timeline_profiler* profiler) {
    profiler_ = profiler;
    scheduler_.attach_profiler(profiler);
  }

  std::uint32_t population_size() const {
    return protocol_.population_size();
  }
  std::uint64_t interactions() const { return interactions_; }
  double parallel_time() const {
    return static_cast<double>(interactions_) / population_size();
  }
  bool quiescent() const { return false; }

  std::span<const agent_state> agents() const { return agents_; }
  const P& protocol() const { return protocol_; }
  rng_t& rng() { return rng_; }

 private:
  template <class Pre, class Post>
  bool run_loop(std::uint64_t max_interactions, Pre&& pre, Post&& post) {
    while (interactions_ < max_interactions) {
      const auto batch =
          scheduler_.next_batch(rng_, max_interactions - interactions_);
      if (counters_) ++counters_->batches_drawn;
      for (const agent_pair& pair : batch) {
        pre(pair);
        const bool changed = protocol_.interact(
            agents_[pair.initiator], agents_[pair.responder], rng_);
        ++interactions_;
        if (counters_) {
          ++counters_->interactions_executed;
          counters_->transitions_changed += changed;
        }
        if (post(pair, changed)) return true;
      }
    }
    return false;
  }

  P protocol_;
  std::vector<agent_state> agents_;
  rng_t rng_;
  batch_scheduler scheduler_;
  std::uint64_t interactions_ = 0;
  obs::engine_counters* counters_ = nullptr;
  obs::timeline_profiler* profiler_ = nullptr;
};

}  // namespace ssr
