#include "pp/scheduler.hpp"

#include "pp/assert.hpp"

namespace ssr {

agent_pair sample_pair(rng_t& rng, std::uint32_t n) {
  SSR_REQUIRE(n >= 2);
  // Draw a single index into the n(n-1) ordered pairs; cheaper and provably
  // uniform, versus rejection sampling two indices.
  const std::uint64_t k = uniform_below(rng, std::uint64_t{n} * (n - 1));
  const auto i = static_cast<std::uint32_t>(k / (n - 1));
  auto j = static_cast<std::uint32_t>(k % (n - 1));
  if (j >= i) ++j;  // skip the diagonal
  return {i, j};
}

}  // namespace ssr
