// The direct simulator: applies the protocol's transition function to
// uniformly scheduled ordered pairs and tracks parallel time
// (= interactions / n, Section 2 of the paper).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "obs/timeline.hpp"
#include "pp/assert.hpp"
#include "pp/protocol.hpp"
#include "pp/rng.hpp"
#include "pp/scheduler.hpp"

namespace ssr {

template <population_protocol P>
class simulation {
 public:
  using agent_state = typename P::agent_state;

  /// Starts an execution of `protocol` from `initial` (any configuration:
  /// the protocols are self-stabilizing, so no validity requirement is
  /// placed on it beyond the size matching the population size).
  simulation(P protocol, std::vector<agent_state> initial, std::uint64_t seed)
      : protocol_(std::move(protocol)),
        agents_(std::move(initial)),
        rng_(seed) {
    SSR_REQUIRE(agents_.size() == protocol_.population_size());
    SSR_REQUIRE(agents_.size() >= 2);
  }

  /// Executes one interaction.  Returns the pair that interacted; whether
  /// the interaction was non-null is available via last_step_changed().
  agent_pair step() {
    const agent_pair pair = sample_pair(rng_, population_size());
    last_changed_ =
        protocol_.interact(agents_[pair.initiator], agents_[pair.responder],
                           rng_);
    ++interactions_;
    return pair;
  }

  /// Runs until `stop(self)` returns true, checking after every interaction,
  /// or until `max_interactions` have elapsed.  Returns true iff `stop`
  /// fired.
  template <class Pred>
  bool run_until(Pred stop, std::uint64_t max_interactions) {
    if (profiler_ == nullptr) {  // detached cost: one branch per call
      return run_until_loop(stop, max_interactions);
    }
    obs::timeline_scope section(profiler_, "simulation.run_until");
    const std::uint64_t before = interactions_;
    const bool stopped = run_until_loop(stop, max_interactions);
    profiler_->add_units(interactions_ - before);
    return stopped;
  }

  /// Attaches (or with nullptr detaches) a section profiler; run_until
  /// records a "simulation.run_until" section carrying the executed
  /// interactions as units.  See obs/timeline.hpp.
  void attach_profiler(obs::timeline_profiler* profiler) {
    profiler_ = profiler;
  }

  std::uint32_t population_size() const {
    return protocol_.population_size();
  }
  std::uint64_t interactions() const { return interactions_; }
  /// Parallel time elapsed so far: interactions divided by n.
  double parallel_time() const {
    return static_cast<double>(interactions_) / population_size();
  }
  bool last_step_changed() const { return last_changed_; }

  std::span<const agent_state> agents() const { return agents_; }
  /// Mutable access supports fault injection (transient-fault experiments
  /// corrupt states mid-run) -- this models the adversary, not the protocol.
  std::span<agent_state> mutable_agents() { return agents_; }

  const P& protocol() const { return protocol_; }
  P& protocol() { return protocol_; }
  rng_t& rng() { return rng_; }

  /// True iff no pair of current states has a non-null transition, i.e. the
  /// configuration is silent (Section 2, "Silent protocols").  O(k^2) in the
  /// number of distinct pairs; intended for tests and small n.  Transitions
  /// are probed on copies, so the configuration is not disturbed.
  bool is_silent_configuration() const {
    const std::uint32_t n = population_size();
    P probe = protocol_;
    rng_t probe_rng(0xdeadbeef);
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        if (i == j) continue;
        agent_state a = agents_[i];
        agent_state b = agents_[j];
        if (probe.interact(a, b, probe_rng)) return false;
      }
    }
    return true;
  }

 private:
  template <class Pred>
  bool run_until_loop(Pred& stop, std::uint64_t max_interactions) {
    while (interactions_ < max_interactions) {
      step();
      if (stop(*this)) return true;
    }
    return false;
  }

  P protocol_;
  std::vector<agent_state> agents_;
  rng_t rng_;
  std::uint64_t interactions_ = 0;
  bool last_changed_ = false;
  obs::timeline_profiler* profiler_ = nullptr;
};

}  // namespace ssr
