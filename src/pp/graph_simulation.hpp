// Simulation under a non-complete interaction graph: identical to
// simulation<P> except the scheduler draws a uniformly random *edge*
// (uniformly oriented) instead of a uniform ordered pair.  On the complete
// graph the two are the same distribution.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "pp/assert.hpp"
#include "pp/graph.hpp"
#include "pp/protocol.hpp"
#include "pp/rng.hpp"

namespace ssr {

template <population_protocol P>
class graph_simulation {
 public:
  using agent_state = typename P::agent_state;

  graph_simulation(P protocol, interaction_graph graph,
                   std::vector<agent_state> initial, std::uint64_t seed)
      : protocol_(std::move(protocol)),
        graph_(std::move(graph)),
        agents_(std::move(initial)),
        rng_(seed) {
    SSR_REQUIRE(agents_.size() == protocol_.population_size());
    SSR_REQUIRE(graph_.size() == protocol_.population_size());
  }

  agent_pair step() {
    const agent_pair pair = graph_.sample(rng_);
    last_changed_ = protocol_.interact(agents_[pair.initiator],
                                       agents_[pair.responder], rng_);
    ++interactions_;
    return pair;
  }

  template <class Pred>
  bool run_until(Pred stop, std::uint64_t max_interactions) {
    while (interactions_ < max_interactions) {
      step();
      if (stop(*this)) return true;
    }
    return false;
  }

  std::uint32_t population_size() const {
    return protocol_.population_size();
  }
  std::uint64_t interactions() const { return interactions_; }
  double parallel_time() const {
    return static_cast<double>(interactions_) / population_size();
  }
  bool last_step_changed() const { return last_changed_; }

  std::span<const agent_state> agents() const { return agents_; }
  std::span<agent_state> mutable_agents() { return agents_; }
  const P& protocol() const { return protocol_; }
  const interaction_graph& graph() const { return graph_; }

  /// Silence over the graph: only adjacent pairs can interact, so a
  /// configuration may be silent on a sparse graph while the same multiset
  /// of states would not be silent on the complete graph -- the root cause
  /// of the livelocks tests/topology_test.cpp demonstrates.
  bool is_silent_configuration() const {
    P probe = protocol_;
    rng_t probe_rng(0xdeadbeef);
    for (const auto& [u, v] : graph_.edges()) {
      for (const auto& [i, j] : {std::pair{u, v}, std::pair{v, u}}) {
        agent_state a = agents_[i];
        agent_state b = agents_[j];
        if (probe.interact(a, b, probe_rng)) return false;
      }
    }
    return true;
  }

 private:
  P protocol_;
  interaction_graph graph_;
  std::vector<agent_state> agents_;
  rng_t rng_;
  std::uint64_t interactions_ = 0;
  bool last_changed_ = false;
};

}  // namespace ssr
