#include "pp/trial.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "obs/progress.hpp"
#include "obs/timeline.hpp"
#include "pp/rng.hpp"

namespace ssr {

void parallel_for_index(std::size_t count,
                        const std::function<void(std::size_t)>& body,
                        bool parallel) {
  if (count == 0) return;
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t workers =
      parallel ? std::min<std::size_t>(count, hw == 0 ? 4 : hw) : 1;

  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!error) error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (auto& t : threads) t.join();

  if (error) std::rethrow_exception(error);
}

std::vector<double> run_trials(
    std::size_t count, std::uint64_t base_seed,
    const std::function<double(std::uint64_t)>& trial, bool parallel) {
  std::vector<double> results(count);
  parallel_for_index(
      count,
      [&](std::size_t i) { results[i] = trial(derive_seed(base_seed, i)); },
      parallel);
  return results;
}

std::vector<double> run_trials(
    std::size_t count, std::uint64_t base_seed,
    const std::function<double(std::uint64_t, engine_kind)>& trial,
    const trial_options& options) {
  std::vector<double> results(count);

  // A default profiler (--profile) forces sequential trials: the section
  // collector is single-threaded and hardware counter groups are bound to
  // the profiling thread.
  obs::timeline_profiler* profiler = obs::profiler_default();
  const bool parallel = options.parallel && profiler == nullptr;

  // The heartbeat needs a registry to watch; fall back to a local one when
  // the caller did not wire metrics through.  Accounting always runs when
  // either consumer (metrics or heartbeat) wants it.
  const bool progress =
      (options.progress || obs::progress_default()) && count > 1;
  std::optional<obs::metrics_registry> local_registry;
  obs::metrics_registry* registry = options.metrics;
  if (registry == nullptr && progress) registry = &local_registry.emplace();
  std::optional<obs::progress_meter> meter;
  if (progress) {
    meter.emplace(*registry,
                  obs::progress_options{.total_trials = count,
                                        .label = "trials"});
  }

  parallel_for_index(
      count,
      [&](std::size_t i) {
        obs::timeline_scope section(profiler, "trial");
        if (options.cancel != nullptr) options.cancel->throw_if_cancelled();
        if (registry == nullptr) {
          results[i] = trial(derive_seed(base_seed, i), options.engine.kind);
          return;
        }
        const auto start = std::chrono::steady_clock::now();
        results[i] = trial(derive_seed(base_seed, i), options.engine.kind);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        registry->get_histogram("trial.seconds").record(elapsed.count());
        registry->get_counter("trials.completed").add(1);
      },
      parallel);
  return results;
}

}  // namespace ssr
