// Prometheus text exposition for a metrics_registry.
//
// write_prometheus renders every metric of a registry in the Prometheus
// text format (exposition format version 0.0.4), which is what the serve
// layer's {"type":"metrics"} wire command and the daemon's periodic
// server-side snapshots emit (docs/serving.md, "Wire telemetry"):
//
//   counters   -> `# TYPE ssr_serve_jobs_completed counter` + one sample;
//   gauges     -> `# TYPE ssr_serve_queue_depth gauge` + one sample;
//   histograms -> a summary family: quantile-labeled samples (p50/p90/p99
//                 from the registry's streaming sketch) plus `_sum`,
//                 `_count`, `_min` and `_max` companions.
//
// Metric names are prefixed and sanitized ('.', '-' and anything else
// outside [a-zA-Z0-9_:] becomes '_'), so the registry's dotted names
// ("serve.job_seconds") map to conventional Prometheus names
// ("ssr_serve_job_seconds").  Output is sorted by name within each
// family, making scrapes deterministic for golden tests.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace ssr::obs {

/// A registry metric name as it appears in the exposition: `prefix` +
/// sanitized `name`.
std::string prometheus_metric_name(std::string_view prefix,
                                   std::string_view name);

/// Writes `registry`'s metrics to `os` in Prometheus text format.
void write_prometheus(std::ostream& os, const metrics_registry& registry,
                      std::string_view prefix = "ssr_");

/// write_prometheus into a string (the wire command's payload).
std::string prometheus_text(const metrics_registry& registry,
                            std::string_view prefix = "ssr_");

}  // namespace ssr::obs
