// Live progress heartbeat for long measurement runs.
//
// A progress_meter owns a background thread that periodically snapshots a
// metrics_registry and prints one human-readable line per interval to
// stderr (stdout stays clean for tables and JSON).  Everything it shows is
// derived from the same named metrics the bench reports embed:
//
//   trials.completed              -> "trials 12/60 (20%)" + trials/s + ETA
//   engine.interactions_executed  -> "3.2e+08 interactions/s" (delta rate)
//   run.parallel_time /
//   run.max_parallel_time         -> single-run progress + ETA (ssr_cli)
//
// Counts are measured against a baseline snapshot taken at construction,
// so a registry reused across bench sections reports each section from
// zero.
//
// set_progress_default() is the process-wide switch behind the --progress
// flags: run_trials consults it so every existing bench gains a heartbeat
// without signature churn.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace ssr::obs {

/// Process-wide default for "should long runs print a heartbeat?".
/// Thread-safe; set once by the CLI front ends during argument parsing.
void set_progress_default(bool enabled);
bool progress_default();

struct progress_options {
  double interval_seconds = 2.0;
  /// Total trials expected; 0 = unknown (no trial ETA line).
  std::uint64_t total_trials = 0;
  std::string label = "progress";
};

/// The registry fields the heartbeat renders, extracted from one
/// snapshot() document.  Exposed (with the formatter) for tests.
struct progress_sample {
  double trials_completed = 0.0;
  double interactions = 0.0;
  double parallel_time = 0.0;
  double max_parallel_time = 0.0;
};

progress_sample read_progress_sample(const json_value& snapshot);

/// Renders one heartbeat line.  `baseline` anchors displayed totals,
/// `previous` -> `current` over `interval_seconds` gives instantaneous
/// rates, `elapsed_seconds` (since the baseline) gives the ETA.  Returns
/// "" when there is nothing to report yet.
std::string format_progress_line(const progress_options& options,
                                 const progress_sample& baseline,
                                 const progress_sample& previous,
                                 const progress_sample& current,
                                 double interval_seconds,
                                 double elapsed_seconds);

/// RAII heartbeat: starts printing on construction, stops (and joins) on
/// stop() or destruction.  The registry must outlive the meter.
class progress_meter {
 public:
  explicit progress_meter(const metrics_registry& registry,
                          progress_options options = {});
  ~progress_meter();

  progress_meter(const progress_meter&) = delete;
  progress_meter& operator=(const progress_meter&) = delete;

  /// Idempotent and safe to call from multiple threads concurrently; every
  /// caller returns only after the meter thread has exited, and nothing is
  /// printed once any call has returned.
  void stop();

 private:
  void loop();

  const metrics_registry& registry_;
  progress_options options_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  /// Serializes the join in stop(): exactly one caller joins; later and
  /// concurrent callers block on this mutex until the thread is down.
  /// (Checking thread_.joinable() while another thread joins is a race.)
  std::mutex join_mutex_;
  std::thread thread_;
};

}  // namespace ssr::obs
