#include "obs/progress.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>

namespace ssr::obs {
namespace {

std::atomic<bool> progress_default_enabled{false};

double number_or(const json_value& snapshot, std::string_view key,
                 double fallback) {
  const json_value* v = snapshot.find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  return v->as_double();
}

std::string format_eta(double seconds) {
  if (!std::isfinite(seconds) || seconds < 0.0) return "?";
  const auto total = static_cast<std::uint64_t>(seconds + 0.5);
  char buffer[32];
  if (total >= 3600) {
    std::snprintf(buffer, sizeof(buffer), "%lluh%02llum",
                  static_cast<unsigned long long>(total / 3600),
                  static_cast<unsigned long long>((total % 3600) / 60));
  } else if (total >= 60) {
    std::snprintf(buffer, sizeof(buffer), "%llum%02llus",
                  static_cast<unsigned long long>(total / 60),
                  static_cast<unsigned long long>(total % 60));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%llus",
                  static_cast<unsigned long long>(total));
  }
  return buffer;
}

std::string format_rate(double per_second) {
  char buffer[32];
  if (per_second >= 1e5) {
    std::snprintf(buffer, sizeof(buffer), "%.2e", per_second);
  } else if (per_second >= 10.0) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", per_second);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f", per_second);
  }
  return buffer;
}

}  // namespace

void set_progress_default(bool enabled) {
  progress_default_enabled.store(enabled, std::memory_order_relaxed);
}

bool progress_default() {
  return progress_default_enabled.load(std::memory_order_relaxed);
}

progress_sample read_progress_sample(const json_value& snapshot) {
  progress_sample s;
  s.trials_completed = number_or(snapshot, "trials.completed", 0.0);
  s.interactions = number_or(snapshot, "engine.interactions_executed", 0.0);
  s.parallel_time = number_or(snapshot, "run.parallel_time", 0.0);
  s.max_parallel_time = number_or(snapshot, "run.max_parallel_time", 0.0);
  return s;
}

std::string format_progress_line(const progress_options& options,
                                 const progress_sample& baseline,
                                 const progress_sample& previous,
                                 const progress_sample& current,
                                 double interval_seconds,
                                 double elapsed_seconds) {
  std::string line = "[" + options.label + "]";
  bool has_content = false;
  const double dt = interval_seconds > 0.0 ? interval_seconds : 1.0;

  const double completed = current.trials_completed -
                           baseline.trials_completed;
  if (options.total_trials > 0) {
    const double total = static_cast<double>(options.total_trials);
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer), " trials %.0f/%.0f (%.0f%%)",
                  completed, total,
                  100.0 * completed / std::max(total, 1.0));
    line += buffer;
    const double rate =
        elapsed_seconds > 0.0 ? completed / elapsed_seconds : 0.0;
    if (rate > 0.0) {
      line += " | " + format_rate(rate) + " trials/s | ETA " +
              format_eta((total - completed) / rate);
    }
    has_content = true;
  }

  if (current.max_parallel_time > 0.0) {
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer), " t=%.4g/%.4g (%.0f%%)",
                  current.parallel_time, current.max_parallel_time,
                  100.0 * current.parallel_time / current.max_parallel_time);
    line += buffer;
    const double rate = elapsed_seconds > 0.0
                            ? (current.parallel_time -
                               baseline.parallel_time) / elapsed_seconds
                            : 0.0;
    if (rate > 0.0) {
      line += " | ETA " + format_eta(
          (current.max_parallel_time - current.parallel_time) / rate);
    }
    has_content = true;
  }

  const double interactions_delta = current.interactions -
                                    previous.interactions;
  if (interactions_delta > 0.0) {
    line += " | " + format_rate(interactions_delta / dt) + " interactions/s";
    has_content = true;
  }

  return has_content ? line : std::string{};
}

progress_meter::progress_meter(const metrics_registry& registry,
                               progress_options options)
    : registry_(registry), options_(std::move(options)) {
  if (options_.interval_seconds <= 0.0) options_.interval_seconds = 2.0;
  thread_ = std::thread([this] { loop(); });
}

progress_meter::~progress_meter() { stop(); }

void progress_meter::stop() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Not gated on a "first stop" flag: stop() must be safe from destructors
  // running during exception unwinding, and a late caller must not return
  // while the meter thread is still alive.  The joinable/join pair is not
  // atomic, so concurrent callers (e.g. shard workers draining a shared
  // meter) serialize on join_mutex_: the first one joins, the rest block
  // here until the thread is down and then see joinable() == false.
  const std::scoped_lock join_lock(join_mutex_);
  if (thread_.joinable()) thread_.join();
}

void progress_meter::loop() try {
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  const progress_sample baseline = read_progress_sample(registry_.snapshot());
  progress_sample previous = baseline;
  const auto interval = std::chrono::duration<double>(
      options_.interval_seconds);

  std::unique_lock lock(mutex_);
  while (!cv_.wait_for(lock, interval, [this] { return stopping_; })) {
    lock.unlock();
    const progress_sample current =
        read_progress_sample(registry_.snapshot());
    const double elapsed =
        std::chrono::duration<double>(clock::now() - start).count();
    std::string line = format_progress_line(
        options_, baseline, previous, current, options_.interval_seconds,
        elapsed);
    // One write call per heartbeat so the line (newline included) cannot
    // interleave with other stderr writers, and the last line before stop()
    // is always newline-terminated.
    if (!line.empty()) {
      line += '\n';
      std::cerr << line << std::flush;
    }
    previous = current;
    lock.lock();
  }
} catch (...) {
  // A throwing heartbeat (snapshot allocation, stream failure) must not
  // take the process down via std::terminate; the meter just goes quiet
  // and stop() still joins normally.
}

}  // namespace ssr::obs
