// Streaming quantile estimation for the metrics layer.
//
// Histograms used to answer "p90/p99?" only from power-of-two magnitude
// buckets, so percentile fields in bench reports had to re-derive them from
// retained raw samples.  quantile_sketch is a fixed-size merging t-digest
// (Dunning & Ertl): it keeps at most O(compression) weighted centroids whose
// allowed weight shrinks toward the tails, which is exactly where the
// stabilization-time experiments need resolution (the paper's WHP columns
// are upper quantiles).  Accuracy on 1e6-sample smooth reference
// distributions is well inside 2% relative error at p50/p90/p99
// (tests/quantile_sketch_test.cpp); memory is a few KB regardless of the
// stream length.
//
// Not thread-safe by itself -- obs::histogram guards it with its mutex, the
// same contract as the bucket map.
#pragma once

#include <cstdint>
#include <vector>

namespace ssr::obs {

class quantile_sketch {
 public:
  /// `compression` bounds the centroid count (~2x compression centroids);
  /// larger = more accurate.  200 keeps worst-case interpolation error on
  /// smooth distributions around a fraction of a percent.
  explicit quantile_sketch(std::uint32_t compression = 200);

  /// Adds one sample.  Non-finite samples are ignored (they carry no
  /// quantile information and would poison every centroid mean).
  void add(double x);

  /// Folds another sketch in; the result summarizes the concatenated
  /// streams (order never matters for a t-digest).
  void merge(const quantile_sketch& other);

  /// Estimated q-quantile, q in [0, 1].  Returns 0 for an empty sketch.
  double quantile(double q) const;

  std::uint64_t count() const;
  bool empty() const { return count() == 0; }

  /// Centroids currently held (post-flush); exposed for tests.
  std::size_t centroid_count() const;

 private:
  struct centroid {
    double mean = 0.0;
    double weight = 0.0;
  };

  /// Merges the unsorted buffer into the centroid list (the "merging
  /// digest" compaction).  Logically const: callers observe the same
  /// distribution before and after.
  void flush() const;

  static void compact(std::vector<centroid>& all, double total,
                      double compression, std::vector<centroid>& out);

  std::uint32_t compression_;
  // flush() compacts lazily from quantile()/count(), so the storage is
  // mutable state behind a const-correct interface.
  mutable std::vector<centroid> centroids_;  // sorted by mean after flush
  mutable std::vector<double> buffer_;       // unsorted recent additions
  mutable double buffered_weight_ = 0.0;
  mutable double total_weight_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ssr::obs
