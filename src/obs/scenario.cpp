#include "obs/scenario.hpp"

#include <cmath>

namespace ssr::obs {
namespace {

constexpr std::string_view k_scenario_fields[] = {
    "schema",  "schema_version", "name",     "description", "protocol",
    "scenario", "n",             "h",        "t_max",       "trials",
    "seed",    "max_time",       "engine",   "shards",      "trace",
    "profile", "metrics",
};

/// Non-negative integral JSON number, exact in a double (the same rule
/// the serve wire applies to its numeric request fields).
std::optional<std::uint64_t> as_u64(const json_value& v) {
  if (!v.is_number()) return std::nullopt;
  const double d = v.as_double();
  if (d < 0.0 || d != std::floor(d) || d > 9.007199254740992e15)
    return std::nullopt;
  return static_cast<std::uint64_t>(d);
}

bool safe_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::span<const std::string_view> scenario_field_names() {
  return k_scenario_fields;
}

void parse_trace_json(const json_value& value,
                      util::telemetry_builder& builder,
                      std::vector<util::spec_error>& errors) {
  if (value.is_bool()) {
    builder.set_trace_enabled(value.as_bool());
    return;
  }
  if (!value.is_object()) {
    errors.push_back({"trace", "must be a boolean or an options object"});
    return;
  }
  builder.set_trace_enabled(true);
  for (const auto& [name, sub] : value.members()) {
    if (name == "enabled") {
      if (!sub.is_bool()) {
        errors.push_back({"trace.enabled", "must be a boolean"});
        continue;
      }
      builder.set_trace_enabled(sub.as_bool());
      continue;
    }
    const std::optional<std::uint64_t> u = as_u64(sub);
    if (!u.has_value()) {
      // Unknown names still get the nearest-name diagnostic, not a type
      // complaint about a field that doesn't exist.
      bool known = false;
      for (const std::string_view candidate : util::trace_option_names()) {
        known = known || candidate == name;
      }
      if (known) {
        errors.push_back({"trace." + name, "must be a non-negative integer"});
        continue;
      }
    }
    builder.set_trace_option(name, u.value_or(0));
  }
}

std::optional<scenario_doc> parse_scenario(
    const json_value& doc, std::vector<util::spec_error>* errors) {
  std::vector<util::spec_error> local;
  std::vector<util::spec_error>& errs = errors != nullptr ? *errors : local;
  errs.clear();
  if (!doc.is_object()) {
    errs.push_back({"scenario", "must be a JSON object"});
    return std::nullopt;
  }

  scenario_doc out;
  util::spec_builder builder;
  util::telemetry_builder telemetry;
  for (const auto& [field, value] : doc.members()) {
    if (field == "schema") {
      if (!value.is_string() || value.as_string() != scenario_schema_name) {
        std::string message = "expected \"";
        message += scenario_schema_name;
        message += "\"";
        errs.push_back({field, std::move(message)});
      }
      continue;
    }
    if (field == "schema_version") {
      const std::optional<std::uint64_t> u = as_u64(value);
      if (!u.has_value() || *u != scenario_schema_version) {
        errs.push_back(
            {field, "unsupported version (this build reads version 1)"});
      }
      continue;
    }
    if (field == "name" || field == "description") {
      if (!value.is_string()) {
        errs.push_back({field, "must be a string"});
        continue;
      }
      if (field == "name") out.name = value.as_string();
      if (field == "description") out.description = value.as_string();
      continue;
    }
    if (field == "protocol" || field == "scenario" || field == "engine") {
      if (!value.is_string()) {
        errs.push_back({field, "must be a string"});
        continue;
      }
      if (field == "protocol") builder.set_protocol(value.as_string());
      if (field == "scenario") builder.set_scenario(value.as_string());
      if (field == "engine") builder.set_engine(value.as_string());
      continue;
    }
    if (field == "n" || field == "h" || field == "t_max" ||
        field == "trials" || field == "seed" || field == "shards") {
      const std::optional<std::uint64_t> u = as_u64(value);
      if (!u.has_value()) {
        errs.push_back({field, "must be a non-negative integer"});
        continue;
      }
      if (field == "n") builder.set_n(*u);
      if (field == "h") builder.set_h(*u);
      if (field == "t_max") builder.set_t_max(*u);
      if (field == "trials") builder.set_trials(*u);
      if (field == "seed") builder.set_seed(*u);
      if (field == "shards") builder.set_shards(*u);
      continue;
    }
    if (field == "max_time") {
      if (!value.is_number()) {
        errs.push_back({field, "must be a number"});
        continue;
      }
      builder.set_max_time(value.as_double());
      continue;
    }
    if (field == "trace") {
      parse_trace_json(value, telemetry, errs);
      continue;
    }
    if (field == "profile" || field == "metrics") {
      if (!value.is_bool()) {
        errs.push_back({field, "must be a boolean"});
        continue;
      }
      if (field == "profile") telemetry.set_profile(value.as_bool());
      if (field == "metrics") out.emit_metrics = value.as_bool();
      continue;
    }
    errs.push_back({field, util::unknown_name_message("scenario field", field,
                                                      k_scenario_fields)});
  }

  if (!safe_name(out.name)) {
    errs.push_back({"name",
                    out.name.empty()
                        ? "required (the bundle / baseline key)"
                        : "must use only letters, digits, '.', '_', '-'"});
  }
  std::vector<util::spec_error> spec_errors = builder.finalize();
  errs.insert(errs.end(), spec_errors.begin(), spec_errors.end());
  std::vector<util::spec_error> telemetry_errors = telemetry.finalize();
  errs.insert(errs.end(), telemetry_errors.begin(), telemetry_errors.end());
  if (!errs.empty()) return std::nullopt;

  out.spec = builder.spec();
  out.telemetry = telemetry.spec();
  return out;
}

std::optional<scenario_doc> parse_scenario_text(
    std::string_view text, std::vector<util::spec_error>* errors) {
  std::string parse_error;
  const std::optional<json_value> doc =
      json_value::parse(text, &parse_error);
  if (!doc.has_value()) {
    if (errors != nullptr) {
      errors->clear();
      errors->push_back({"json", "malformed JSON: " + parse_error});
    }
    return std::nullopt;
  }
  return parse_scenario(*doc, errors);
}

json_value scenario_to_json(const scenario_doc& doc) {
  json_value out = json_value::object();
  out["schema"] = scenario_schema_name;
  out["schema_version"] = scenario_schema_version;
  out["name"] = doc.name;
  if (!doc.description.empty()) out["description"] = doc.description;
  const util::sim_request_spec& spec = doc.spec;
  out["protocol"] = spec.protocol;
  out["scenario"] = spec.scenario;
  out["n"] = static_cast<std::uint64_t>(spec.n);
  if (spec.protocol == "sublinear")
    out["h"] = static_cast<std::uint64_t>(spec.h);
  if (spec.protocol == "loose")
    out["t_max"] = static_cast<std::uint64_t>(spec.t_max);
  out["trials"] = spec.trials;
  out["seed"] = spec.seed;
  out["max_time"] = spec.max_time;
  out["engine"] = std::string(to_string(spec.engine.kind));
  if (spec.engine.kind == engine_kind::sharded)
    out["shards"] = static_cast<std::uint64_t>(spec.engine.shards);
  if (doc.telemetry.trace) {
    json_value trace = json_value::object();
    trace["enabled"] = true;
    trace["sample_every"] = doc.telemetry.trace_sample_every;
    trace["max_events"] = doc.telemetry.trace_max_events;
    out["trace"] = std::move(trace);
  }
  if (doc.telemetry.profile) out["profile"] = true;
  if (doc.emit_metrics) out["metrics"] = true;
  return out;
}

}  // namespace ssr::obs
