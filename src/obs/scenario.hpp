// The `ssr.scenario` v1 document: one declarative simulation scenario.
//
// A scenario file is the single input of `ssr_cli run` and of the serve
// wire's `{"type":"run","scenario":{...}}` payload (docs/bundles.md has
// the schema table):
//
//   { "schema": "ssr.scenario", "schema_version": 1,
//     "name": "optimal_no_leader",          // bundle / baseline key
//     "description": "...",                 // optional, human-readable
//     "protocol": "optimal", "scenario": "no_leader", "n": 24,
//     "h": 2,                               // sublinear only
//     "t_max": 40,                          // loose only
//     "trials": 20, "seed": 3, "max_time": 1e7,
//     "engine": "batched", "shards": 8,     // shards: sharded only
//     "trace": true | {"enabled":..,"sample_every":..,"max_events":..},
//     "profile": true,                      // optional
//     "metrics": true }                     // emit metrics.prom
//
// Parsing routes every spec-shaped field through util::spec_builder and
// util::telemetry_builder -- the same single source of truth the CLI
// flags, the benches, and the serve wire use -- so a typo'd protocol name
// or an invalid shard count produces byte-identical field-level errors
// (including nearest-name suggestions) no matter which front end read the
// document, and the spec's canonical() fingerprint is shared with the
// serve result cache.
//
// scenario_to_json() canonicalizes: fixed field order, defaults
// materialized, protocol-irrelevant fields dropped -- the run bundle
// persists this form, so two scenario files that differ only in field
// order or irrelevant fields produce byte-identical bundles.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "util/request_spec.hpp"

namespace ssr::obs {

inline constexpr std::string_view scenario_schema_name = "ssr.scenario";
inline constexpr std::uint64_t scenario_schema_version = 1;

struct scenario_doc {
  /// Bundle / baseline key; must be a safe file stem ([A-Za-z0-9._-]).
  std::string name;
  std::string description;
  util::sim_request_spec spec;
  util::telemetry_spec telemetry;
  /// Persist a metrics.prom exposition snapshot in the bundle.
  bool emit_metrics = false;
};

/// Valid top-level scenario fields, for diagnostics.
std::span<const std::string_view> scenario_field_names();

/// Parses the "trace" field (bool shorthand or options object) into the
/// builder, recording field errors in the shared formats.  Shared with
/// the serve wire, whose "trace" request field has the same shape.
void parse_trace_json(const json_value& value,
                      util::telemetry_builder& builder,
                      std::vector<util::spec_error>& errors);

/// Parses and validates one scenario document.  On failure returns
/// nullopt with every field-level error in `errors` (never partially
/// filled); on success `errors` is left empty.
std::optional<scenario_doc> parse_scenario(const json_value& doc,
                                           std::vector<util::spec_error>*
                                               errors);

/// parse_scenario over raw text; malformed JSON lands in `errors` under
/// the pseudo-field "json".
std::optional<scenario_doc> parse_scenario_text(std::string_view text,
                                                std::vector<util::spec_error>*
                                                    errors);

/// The canonical serialization (see header comment).
json_value scenario_to_json(const scenario_doc& doc);

}  // namespace ssr::obs
