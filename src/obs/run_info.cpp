#include "obs/run_info.hpp"

#include <array>
#include <cstdio>

#if !defined(_WIN32)
#include <stdio.h>  // popen/pclose
#endif

namespace ssr::obs {

std::string git_revision() {
#if defined(_WIN32)
  return "unknown";
#else
  FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  std::array<char, 128> buffer{};
  std::string rev;
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    rev += buffer.data();
  }
  const int status = ::pclose(pipe);
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
    rev.pop_back();
  }
  if (status != 0 || rev.empty()) return "unknown";
  return rev;
#endif
}

}  // namespace ssr::obs
