// Structured event journal (events.jsonl) shared by local run bundles and
// the serve daemon.
//
// One JSON object per line, append-only, flushed per event so the file is
// readable while the producer runs and survives a crash mid-job.  The
// first line is a header document tagging the schema:
//
//   {"event":"journal_header","schema":<options.schema>,
//    "schema_version":<options.schema_version>,"git_rev":...}
//
// Every subsequent line carries the event name, a wall-clock timestamp
// ("ts_ms", milliseconds since the Unix epoch -- the journal is
// observability, not part of the deterministic result documents), and the
// event's fields.  The event vocabulary is shared across producers
// (docs/observability.md has the field tables):
//
//   admit            -- job accepted (request_id/scenario, fingerprint,
//                       protocol, n, trials[, queue_depth])
//   rejected         -- admission control shed the request (queue_depth)
//   start            -- execution began
//   progress         -- interim trial accounting (trials_completed,
//                       trials_total)
//   cache_hit        -- served from the result cache (fingerprint)
//   complete         -- terminal success (fingerprint, elapsed_ms, ...)
//   deadline_expired -- a per-request deadline fired (elapsed_ms, message)
//   cancelled        -- explicit cancellation (message)
//   failed           -- the simulation threw (message)
//
// Two schemas write through this class today: "ssr.serve.events" v1 (the
// daemon's telemetry-dir journal, serve/service.hpp) and "ssr.events" v1
// (the per-bundle journal ssr_cli run writes, obs/bundle.hpp).  They share
// the vocabulary above; the schema tag tells consumers which producer --
// and therefore which field set -- to expect.
//
// Thread-safety: emit() serializes under a mutex; the serve daemon calls
// it from connection threads and from queue workers.
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace ssr::obs {

struct journal_options {
  /// Schema tag written into the journal_header line.
  std::string schema = "ssr.events";
  std::uint64_t schema_version = 1;
};

class journal {
 public:
  /// Disabled journal: enabled() is false and emit() is a no-op.
  journal() = default;
  explicit journal(journal_options options) : options_(std::move(options)) {}

  journal(const journal&) = delete;
  journal& operator=(const journal&) = delete;

  /// Opens `path` for appending and writes the journal_header line.
  /// Returns false (journal stays disabled) when the file cannot be
  /// opened.  Call at most once.
  bool open(const std::string& path);

  /// Streams into an externally owned ostream (tests); writes the header
  /// line immediately.
  void open_stream(std::ostream* os);

  bool enabled() const;

  /// Appends {"event": name, "ts_ms": <now>, ...fields} as one line and
  /// flushes.  `fields` must be a JSON object; its members are copied
  /// after the event/timestamp keys.
  void emit(std::string_view name, const json_value& fields);

 private:
  std::ostream* out();
  void write_header();

  journal_options options_;
  std::mutex mutex_;
  std::unique_ptr<std::ofstream> file_;
  std::ostream* external_ = nullptr;
};

}  // namespace ssr::obs
