#include "obs/quantile_sketch.hpp"

#include <algorithm>
#include <cmath>

namespace ssr::obs {
namespace {

constexpr double two_pi = 6.283185307179586476925286766559;

/// The k1 scale function: k(q) = (delta / 2pi) asin(2q - 1).  Its slope is
/// flattest at q = 1/2 and steepest at the ends, so clusters are allowed to
/// be large in the middle of the distribution and forced to stay small in
/// the tails -- constant *relative* accuracy at extreme quantiles.
double k_scale(double q, double compression) {
  const double x = std::clamp(2.0 * q - 1.0, -1.0, 1.0);
  return compression / two_pi * std::asin(x);
}

double k_scale_inverse(double k, double compression) {
  return (std::sin(k * two_pi / compression) + 1.0) / 2.0;
}

}  // namespace

quantile_sketch::quantile_sketch(std::uint32_t compression)
    : compression_(std::max<std::uint32_t>(compression, 20)) {
  buffer_.reserve(static_cast<std::size_t>(compression_) * 5);
}

void quantile_sketch::add(double x) {
  if (!std::isfinite(x)) return;
  if (total_weight_ + buffered_weight_ == 0.0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  buffer_.push_back(x);
  buffered_weight_ += 1.0;
  if (buffer_.size() >= buffer_.capacity()) flush();
}

/// One pass of the merging-digest compaction: `all` is an ascending stream
/// of centroids summing to `total` weight; adjacent clusters are combined
/// while the combined cluster's quantile span stays within one unit of the
/// scale function.
void quantile_sketch::compact(std::vector<centroid>& all, double total,
                              double compression,
                              std::vector<centroid>& out) {
  out.clear();
  if (all.empty()) return;
  out.push_back(all.front());
  double weight_before = 0.0;  // weight of fully compacted clusters
  double q_limit =
      k_scale_inverse(k_scale(0.0, compression) + 1.0, compression);
  for (std::size_t i = 1; i < all.size(); ++i) {
    const centroid& c = all[i];
    centroid& last = out.back();
    const double proposed = last.weight + c.weight;
    if ((weight_before + proposed) / total <= q_limit) {
      last.mean += (c.mean - last.mean) * c.weight / proposed;
      last.weight = proposed;
    } else {
      weight_before += last.weight;
      q_limit = k_scale_inverse(
          k_scale(weight_before / total, compression) + 1.0, compression);
      out.push_back(c);
    }
  }
}

void quantile_sketch::flush() const {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());

  std::vector<centroid> all;
  all.reserve(centroids_.size() + buffer_.size());
  std::size_t ci = 0, bi = 0;
  while (ci < centroids_.size() || bi < buffer_.size()) {
    if (bi >= buffer_.size() ||
        (ci < centroids_.size() && centroids_[ci].mean <= buffer_[bi])) {
      all.push_back(centroids_[ci++]);
    } else {
      all.push_back({buffer_[bi++], 1.0});
    }
  }
  buffer_.clear();
  total_weight_ += buffered_weight_;
  buffered_weight_ = 0.0;
  compact(all, total_weight_, compression_, centroids_);
}

void quantile_sketch::merge(const quantile_sketch& other) {
  if (&other == this) {
    // Self-merge doubles every weight; route through a copy so the merge
    // below never reads a list it is rewriting.
    const quantile_sketch copy = other;
    merge(copy);
    return;
  }
  other.flush();
  if (other.centroids_.empty()) return;
  if (total_weight_ + buffered_weight_ == 0.0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  // Splice the two centroid lists (adding the other's through add() would
  // lose their weights) and recompact against the combined total.
  flush();
  std::vector<centroid> all;
  all.reserve(centroids_.size() + other.centroids_.size());
  std::merge(
      centroids_.begin(), centroids_.end(), other.centroids_.begin(),
      other.centroids_.end(), std::back_inserter(all),
      [](const centroid& a, const centroid& b) { return a.mean < b.mean; });
  total_weight_ += other.total_weight_;
  compact(all, total_weight_, compression_, centroids_);
}

double quantile_sketch::quantile(double q) const {
  flush();
  if (centroids_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (centroids_.size() == 1) return centroids_.front().mean;

  const double target = q * total_weight_;
  // Each centroid is treated as centered on its cumulative-weight midpoint;
  // quantiles interpolate linearly between midpoints, with the true min and
  // max anchoring the extremes.
  double cumulative = 0.0;
  double previous_center = 0.0;
  double previous_mean = min_;
  for (const centroid& c : centroids_) {
    const double center = cumulative + c.weight / 2.0;
    if (target <= center) {
      const double span = center - previous_center;
      if (span <= 0.0) return c.mean;
      const double fraction = (target - previous_center) / span;
      return previous_mean + fraction * (c.mean - previous_mean);
    }
    previous_center = center;
    previous_mean = c.mean;
    cumulative += c.weight;
  }
  // Beyond the last midpoint: interpolate toward the exact maximum.
  const double span = total_weight_ - previous_center;
  if (span <= 0.0) return max_;
  const double fraction = (target - previous_center) / span;
  return previous_mean + fraction * (max_ - previous_mean);
}

std::uint64_t quantile_sketch::count() const {
  return static_cast<std::uint64_t>(total_weight_ + buffered_weight_ + 0.5);
}

std::size_t quantile_sketch::centroid_count() const {
  flush();
  return centroids_.size();
}

}  // namespace ssr::obs
