#include "obs/journal.hpp"

#include <chrono>
#include <ostream>

#include "obs/run_info.hpp"

namespace ssr::obs {
namespace {

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

bool journal::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto file = std::make_unique<std::ofstream>(path, std::ios::app);
  if (!file->is_open()) return false;
  file_ = std::move(file);
  write_header();
  return true;
}

void journal::open_stream(std::ostream* os) {
  std::lock_guard<std::mutex> lock(mutex_);
  external_ = os;
  write_header();
}

bool journal::enabled() const {
  return file_ != nullptr || external_ != nullptr;
}

std::ostream* journal::out() {
  if (file_ != nullptr) return file_.get();
  return external_;
}

void journal::write_header() {
  std::ostream* os = out();
  if (os == nullptr) return;
  json_value header = json_value::object();
  header["event"] = "journal_header";
  header["schema"] = options_.schema;
  header["schema_version"] = options_.schema_version;
  header["git_rev"] = git_revision();
  *os << header.dump() << '\n';
  os->flush();
}

void journal::emit(std::string_view name, const json_value& fields) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostream* os = out();
  if (os == nullptr) return;
  json_value event = json_value::object();
  event["event"] = name;
  event["ts_ms"] = now_ms();
  if (fields.is_object()) {
    for (const auto& [key, value] : fields.members()) {
      event[key] = value;
    }
  }
  *os << event.dump() << '\n';
  os->flush();
}

}  // namespace ssr::obs
