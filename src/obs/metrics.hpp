// Engine metrics: cheap counters for the hot simulation paths plus a
// thread-safe registry of named counters/gauges/histograms for everything
// above them (trial runners, benches, the CLI).
//
// Two layers with two cost models:
//
//   engine_counters  -- a plain struct of uint64 cells an engine increments
//                       directly.  Engines hold a nullable pointer to one;
//                       the disabled path (the default) is a single
//                       predictable `if (counters_)` branch per executed
//                       interaction, measured to be within noise of the
//                       uninstrumented loop (tests/obs_overhead_test.cpp).
//                       Not thread-safe by design: one engine, one struct.
//
//   metrics_registry -- named metrics with atomic counters and mutex-guarded
//                       histograms, safe to share across run_trials worker
//                       threads.  snapshot() returns a JSON object for the
//                       bench reports.
//
// Compile-time kill switch: building with -DSSR_OBS_DISABLED compiles every
// registry mutation to a no-op (engines are already free when no counters
// are attached).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/engine_counters.hpp"
#include "obs/json.hpp"
#include "obs/quantile_sketch.hpp"

namespace ssr::obs {

/// JSON object with one member per engine_counters field (metric-catalog
/// names, see docs/observability.md).
json_value to_json(const engine_counters& c);

#ifdef SSR_OBS_DISABLED
inline constexpr bool metrics_compiled_in = false;
#else
inline constexpr bool metrics_compiled_in = true;
#endif

/// Monotone counter.  add() is lock-free; reads are approximate under
/// concurrent writers (exact once writers quiesce), which is all snapshots
/// need.
class counter {
 public:
  void add(std::uint64_t delta = 1) {
    if constexpr (metrics_compiled_in)
      value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins floating-point cell (e.g. a configuration parameter or a
/// final occupancy).
class gauge {
 public:
  void set(double v) {
    if constexpr (metrics_compiled_in)
      value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Aggregating histogram: count/sum/sum-of-squares/min/max, power-of-two
/// magnitude buckets for positive samples, and a streaming quantile sketch
/// (obs/quantile_sketch.hpp) so snapshots carry accurate p50/p90/p99
/// without retaining samples.  record() takes a mutex -- intended for
/// per-trial-granularity samples (durations), not per-interaction ones
/// (those belong in engine_counters).
class histogram {
 public:
  void record(double sample);

  /// Additively folds `other` in (count/sum/buckets add, min/max widen,
  /// sketches merge).  Safe against concurrent record() on either side.
  void merge(const histogram& other);

  struct snapshot_data {
    std::uint64_t count = 0;
    double sum = 0.0;
    double sum_squares = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  snapshot_data snapshot() const;
  json_value to_json() const;

 private:
  mutable std::mutex mutex_;
  snapshot_data data_;
  std::map<int, std::uint64_t> buckets_;  // floor(log2(sample)) -> count
  quantile_sketch sketch_;
};

/// Typed point-in-time view of a registry, for consumers that need to
/// know each metric's family (the JSON snapshot flattens counters and
/// gauges into indistinguishable numbers).  Names are sorted within each
/// family, mirroring snapshot().
struct metrics_listing {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, histogram::snapshot_data>> histograms;
};

/// Owns named metrics; get_* creates on first use and returns a stable
/// reference (the registry must outlive all users).  All operations are
/// thread-safe.
class metrics_registry {
 public:
  counter& get_counter(std::string_view name);
  gauge& get_gauge(std::string_view name);
  histogram& get_histogram(std::string_view name);

  /// Typed snapshot of every metric -- the exposition writer's input
  /// (obs/exposition.hpp).
  metrics_listing list() const;

  /// Folds an engine's counters into registry counters under
  /// "engine.<field>" names.
  void absorb(const engine_counters& c);

  /// Folds another registry in: counters add, gauges take the other's
  /// value (last write wins), histograms merge additively.  Thread-safe on
  /// both sides and idempotent to call concurrently from many threads --
  /// absorbing the same source twice adds it twice, by design (the caller
  /// owns the once-per-source discipline).
  void absorb(const metrics_registry& other);

  /// One JSON object member per metric, sorted by name for stable output.
  json_value snapshot() const;

  /// Drops every metric (tests).
  void clear();

  /// Process-wide default registry used when callers do not supply one.
  static metrics_registry& global();

 private:
  // Find-or-create under an already-held mutex_ (absorb holds both
  // registries' mutexes, so the public get_* would self-deadlock).
  counter& counter_locked(std::string_view name);
  gauge& gauge_locked(std::string_view name);
  histogram& histogram_locked(std::string_view name);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<histogram>, std::less<>> histograms_;
};

}  // namespace ssr::obs
