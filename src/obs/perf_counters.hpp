// Hardware performance counters via perf_event_open, with graceful
// degradation.
//
// A perf_counter_group opens one event group on the calling thread reading
// five counters: CPU cycles, retired instructions, branch misses, cache
// misses, and task clock.  Containers and perf_event_paranoid routinely
// forbid some or all of these, so availability is per counter: every
// counter that fails to open is simply marked unavailable and reads as 0,
// the group keeps whatever did open, and nothing ever throws or exits --
// callers (the --profile paths) fall back to wall-time-only profiles.  On
// non-Linux builds (or with SSR_PERF_DISABLE=1 in the environment, which CI
// uses to pin the fallback path) the stub backend reports every counter
// unavailable.
//
// Counters are free-running from construction; consumers take deltas of
// read() around the region of interest (obs/timeline.hpp does this per
// profiled section).  Reads request PERF_FORMAT_TOTAL_TIME_ENABLED/RUNNING
// and scale counts when the kernel multiplexed the group, so values stay
// meaningful under counter pressure.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace ssr::obs {

enum class perf_counter_id : std::uint8_t {
  cycles = 0,
  instructions,
  branch_misses,
  cache_misses,
  task_clock,  // nanoseconds of on-CPU time
};

inline constexpr std::size_t perf_counter_count = 5;

/// Stable short names ("cycles", "instructions", ...) used in JSON output.
std::string_view to_string(perf_counter_id id);

/// One sample (or delta) of the counter group.  Unavailable counters hold 0
/// and their availability flag is false.
struct perf_counter_values {
  std::array<std::uint64_t, perf_counter_count> value{};
  std::array<bool, perf_counter_count> available{};

  std::uint64_t operator[](perf_counter_id id) const {
    return value[static_cast<std::size_t>(id)];
  }
  bool has(perf_counter_id id) const {
    return available[static_cast<std::size_t>(id)];
  }
  bool any_available() const;

  perf_counter_values& operator+=(const perf_counter_values& other);
  /// Per-counter saturating difference (counters are monotone, so a
  /// negative delta only appears on caller error); availability is the
  /// conjunction of both sides.
  friend perf_counter_values operator-(const perf_counter_values& after,
                                       const perf_counter_values& before);

  /// {"cycles": 123, ...} with one member per *available* counter.
  json_value to_json() const;
};

/// RAII perf_event_open group bound to the calling thread.  Construction
/// never fails: counters that cannot open are flagged unavailable and
/// status() says why the group is degraded.
class perf_counter_group {
 public:
  perf_counter_group();
  ~perf_counter_group();

  perf_counter_group(const perf_counter_group&) = delete;
  perf_counter_group& operator=(const perf_counter_group&) = delete;

  /// True iff at least one counter opened.
  bool available() const;
  const std::array<bool, perf_counter_count>& availability() const {
    return available_;
  }
  /// Human-readable reason the backend is degraded ("" when every counter
  /// opened): "stub backend (not linux)", "perf_event_open: Permission
  /// denied (perf_event_paranoid?)", ...
  const std::string& status() const { return status_; }

  /// Current cumulative counts since construction, multiplex-scaled.
  /// Unavailable counters read 0 with available=false.  Must be called
  /// from the thread that constructed the group.
  perf_counter_values read() const;

  /// {"available": {"cycles": true, ...}, "status": "..."} -- the
  /// availability block profiles and bench reports embed.
  json_value availability_json() const;

 private:
  std::array<int, perf_counter_count> fd_;       // -1 = not open
  std::array<int, perf_counter_count> slot_;     // group read-buffer index
  std::array<bool, perf_counter_count> available_{};
  int leader_fd_ = -1;
  int open_count_ = 0;
  std::string status_;
};

}  // namespace ssr::obs
