#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ssr::obs {

json_value& json_value::operator[](std::string_view key) {
  kind_ = kind::object;
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(std::string(key), json_value{});
  return members_.back().second;
}

const json_value* json_value::find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool operator==(const json_value& a, const json_value& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case json_value::kind::null:
      return true;
    case json_value::kind::boolean:
      return a.bool_ == b.bool_;
    case json_value::kind::number:
      return a.num_ == b.num_;
    case json_value::kind::string:
      return a.str_ == b.str_;
    case json_value::kind::array:
      if (a.items_.size() != b.items_.size()) return false;
      for (std::size_t i = 0; i < a.items_.size(); ++i) {
        if (!(a.items_[i] == b.items_[i])) return false;
      }
      return true;
    case json_value::kind::object: {
      if (a.members_.size() != b.members_.size()) return false;
      for (const auto& [k, v] : a.members_) {
        const json_value* other = b.find(k);
        if (other == nullptr || !(v == *other)) return false;
      }
      return true;
    }
  }
  return false;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out += '"';
}

namespace {

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    out += "null";
    return;
  }
  const double rounded = std::nearbyint(v);
  if (rounded == v && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == v) {
      out += shorter;
      return;
    }
  }
  out += buf;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void json_value::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case kind::null:
      out += "null";
      return;
    case kind::boolean:
      out += bool_ ? "true" : "false";
      return;
    case kind::number:
      append_number(out, num_);
      return;
    case kind::string:
      append_json_string(out, str_);
      return;
    case kind::array: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent >= 0) append_newline_indent(out, indent, depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) append_newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case kind::object: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        if (indent >= 0) append_newline_indent(out, indent, depth + 1);
        append_json_string(out, k);
        out += indent >= 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) append_newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string json_value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser; positions are byte offsets for error messages.
class parser {
 public:
  explicit parser(std::string_view text) : text_(text) {}

  std::optional<json_value> run(std::string* error) {
    auto v = parse_value();
    if (v) {
      skip_whitespace();
      if (pos_ != text_.size()) {
        fail("trailing characters after JSON document");
        v = std::nullopt;
      }
    }
    if (!v && error != nullptr) *error = error_;
    return v;
  }

 private:
  void fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expect) {
    if (pos_ < text_.size() && text_[pos_] == expect) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<json_value> parse_value() {
    if (++depth_ > 256) {
      fail("nesting too deep");
      return std::nullopt;
    }
    skip_whitespace();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    std::optional<json_value> out;
    switch (text_[pos_]) {
      case 'n':
        if (consume_literal("null")) out = json_value{};
        else fail("invalid literal");
        break;
      case 't':
        if (consume_literal("true")) out = json_value{true};
        else fail("invalid literal");
        break;
      case 'f':
        if (consume_literal("false")) out = json_value{false};
        else fail("invalid literal");
        break;
      case '"':
        out = parse_string_value();
        break;
      case '[':
        out = parse_array();
        break;
      case '{':
        out = parse_object();
        break;
      default:
        out = parse_number();
        break;
    }
    --depth_;
    return out;
  }

  std::optional<json_value> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("invalid number");
      return std::nullopt;
    }
    const char first_digit = peek();
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    // RFC 8259: the integer part is a single 0 or starts with 1-9.
    if (first_digit == '0' &&
        pos_ - start > (text_[start] == '-' ? 2u : 1u)) {
      fail("invalid number: leading zero");
      return std::nullopt;
    }
    if (consume('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("invalid number: digit required after decimal point");
        return std::nullopt;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("invalid number: digit required in exponent");
        return std::nullopt;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    return json_value{std::strtod(token.c_str(), nullptr)};
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::optional<std::uint32_t> parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
      return std::nullopt;
    }
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else {
        fail("invalid hex digit in \\u escape");
        return std::nullopt;
      }
    }
    pos_ += 4;
    return value;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
        return std::nullopt;
      }
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("truncated escape");
        return std::nullopt;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          auto hi = parse_hex4();
          if (!hi) return std::nullopt;
          std::uint32_t cp = *hi;
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: a low surrogate escape must follow.
            if (!consume('\\') || !consume('u')) {
              fail("high surrogate not followed by \\u low surrogate");
              return std::nullopt;
            }
            auto lo = parse_hex4();
            if (!lo) return std::nullopt;
            if (*lo < 0xdc00 || *lo > 0xdfff) {
              fail("invalid low surrogate");
              return std::nullopt;
            }
            cp = 0x10000 + ((cp - 0xd800) << 10) + (*lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("unpaired low surrogate");
            return std::nullopt;
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape character");
          return std::nullopt;
      }
    }
  }

  std::optional<json_value> parse_string_value() {
    auto s = parse_string();
    if (!s) return std::nullopt;
    return json_value{std::move(*s)};
  }

  std::optional<json_value> parse_array() {
    consume('[');
    json_value out = json_value::array();
    skip_whitespace();
    if (consume(']')) return out;
    while (true) {
      auto item = parse_value();
      if (!item) return std::nullopt;
      out.push_back(std::move(*item));
      skip_whitespace();
      if (consume(']')) return out;
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<json_value> parse_object() {
    consume('{');
    json_value out = json_value::object();
    skip_whitespace();
    if (consume('}')) return out;
    while (true) {
      skip_whitespace();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_whitespace();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      auto value = parse_value();
      if (!value) return std::nullopt;
      out[*key] = std::move(*value);
      skip_whitespace();
      if (consume('}')) return out;
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

std::optional<json_value> json_value::parse(std::string_view text,
                                            std::string* error) {
  return parser(text).run(error);
}

}  // namespace ssr::obs
