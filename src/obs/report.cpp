#include "obs/report.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <limits>

#include "analysis/statistics.hpp"

namespace ssr::obs {
namespace {

constexpr std::string_view direction_name(bool lower_is_better) {
  return lower_is_better ? "lower_is_better" : "higher_is_better";
}

json_value stats_to_json(const summary& s) {
  json_value out = json_value::object();
  out["count"] = json_value{static_cast<std::uint64_t>(s.count)};
  out["mean"] = json_value{s.mean};
  out["median"] = json_value{s.median};
  out["stddev"] = json_value{s.stddev};
  out["ci95"] = json_value{ci95_halfwidth(s)};
  out["p90"] = json_value{s.p90};
  out["p99"] = json_value{s.p99};
  out["min"] = json_value{s.min};
  out["max"] = json_value{s.max};
  return out;
}

bool read_string(const json_value& obj, std::string_view key,
                 std::string* out) {
  const json_value* v = obj.find(key);
  if (v == nullptr || !v->is_string()) return false;
  *out = v->as_string();
  return true;
}

bool read_number(const json_value& obj, std::string_view key, double* out) {
  const json_value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return false;
  *out = v->as_double();
  return true;
}

std::optional<summary> stats_from_json(const json_value& row) {
  const json_value* s = row.find("stats");
  if (s == nullptr || !s->is_object()) return std::nullopt;
  summary out;
  double count = 0.0;
  read_number(*s, "count", &count);
  out.count = static_cast<std::size_t>(count);
  read_number(*s, "mean", &out.mean);
  read_number(*s, "stddev", &out.stddev);
  read_number(*s, "median", &out.median);
  read_number(*s, "p90", &out.p90);
  read_number(*s, "p99", &out.p99);
  read_number(*s, "min", &out.min);
  read_number(*s, "max", &out.max);
  if (out.count > 0) {
    out.stderr_mean = out.stddev / std::sqrt(static_cast<double>(out.count));
  }
  return out;
}

}  // namespace

std::string format_schema_version(double version) {
  std::array<char, 32> buf{};
  if (version == static_cast<double>(static_cast<long long>(version))) {
    std::snprintf(buf.data(), buf.size(), "%lld",
                  static_cast<long long>(version));
  } else {
    std::snprintf(buf.data(), buf.size(), "%g", version);
  }
  return buf.data();
}

summary summary_from_histogram(const histogram::snapshot_data& data) {
  summary s;
  s.count = data.count;
  if (data.count == 0) return s;
  const double count = static_cast<double>(data.count);
  s.mean = data.sum / count;
  if (data.count > 1) {
    // Sample variance from the moment sums; clamp against the small
    // negative values catastrophic cancellation can produce.
    const double variance =
        std::max(0.0, (data.sum_squares - count * s.mean * s.mean) /
                          (count - 1.0));
    s.stddev = std::sqrt(variance);
    s.stderr_mean = s.stddev / std::sqrt(count);
  }
  s.min = data.min;
  s.max = data.max;
  s.median = data.p50;
  s.p90 = data.p90;
  s.p99 = data.p99;
  return s;
}

std::string report_row::key() const {
  std::string k = section;
  k += '|';
  k += protocol;
  k += '|';
  k += std::to_string(n);
  k += '|';
  k += params;
  if (kind == kind_t::value) {
    k += '|';
    k += metric;
  }
  return k;
}

double report_row::mean_estimate() const {
  if (kind == kind_t::value) return value;
  if (stats.has_value()) return stats->mean;
  if (!samples.empty()) return summarize(samples).mean;
  return std::numeric_limits<double>::quiet_NaN();
}

report_row& bench_report::add_samples(std::string section,
                                      std::string protocol, std::uint64_t n,
                                      std::string params,
                                      std::uint64_t trials,
                                      std::uint64_t seed, std::string unit,
                                      std::vector<double> samples) {
  report_row row;
  row.kind = report_row::kind_t::samples;
  row.section = std::move(section);
  row.protocol = std::move(protocol);
  row.n = n;
  row.params = std::move(params);
  row.trials = trials;
  row.seed = seed;
  row.unit = std::move(unit);
  row.samples = std::move(samples);
  rows.push_back(std::move(row));
  return rows.back();
}

report_row& bench_report::add_summary(std::string section,
                                      std::string protocol, std::uint64_t n,
                                      std::string params, std::uint64_t seed,
                                      std::string unit,
                                      const summary& stats) {
  report_row row;
  row.kind = report_row::kind_t::samples;
  row.section = std::move(section);
  row.protocol = std::move(protocol);
  row.n = n;
  row.params = std::move(params);
  row.trials = stats.count;
  row.seed = seed;
  row.unit = std::move(unit);
  row.stats = stats;
  rows.push_back(std::move(row));
  return rows.back();
}

report_row& bench_report::add_value(std::string section, std::string metric,
                                    std::string protocol, std::uint64_t n,
                                    std::string params, double value,
                                    std::string unit, bool higher_is_better) {
  report_row row;
  row.kind = report_row::kind_t::value;
  row.section = std::move(section);
  row.metric = std::move(metric);
  row.protocol = std::move(protocol);
  row.n = n;
  row.params = std::move(params);
  row.value = value;
  row.unit = std::move(unit);
  row.lower_is_better = !higher_is_better;
  rows.push_back(std::move(row));
  return rows.back();
}

json_value bench_report::to_json() const {
  json_value out = json_value::object();
  out["schema_version"] = json_value{report_schema_version};
  out["experiment"] = json_value{experiment};
  out["title"] = json_value{title};
  out["binary"] = json_value{binary};
  out["engine"] = json_value{engine};
  out["git_rev"] = json_value{git_rev};
  out["generated_unix"] = json_value{generated_unix};
  json_value args = json_value::array();
  for (const std::string& a : argv) args.push_back(json_value{a});
  out["argv"] = std::move(args);
  out["wall_time_seconds"] = json_value{wall_time_seconds};

  json_value rows_json = json_value::array();
  for (const report_row& row : rows) {
    json_value r = json_value::object();
    r["kind"] = json_value{row.kind == report_row::kind_t::samples
                               ? "samples"
                               : "value"};
    r["section"] = json_value{row.section};
    r["protocol"] = json_value{row.protocol};
    r["n"] = json_value{row.n};
    r["params"] = json_value{row.params};
    r["unit"] = json_value{row.unit};
    r["direction"] = json_value{direction_name(row.lower_is_better)};
    if (row.kind == report_row::kind_t::samples) {
      r["trials"] = json_value{row.trials};
      r["seed"] = json_value{row.seed};
      if (!row.samples.empty() || !row.stats.has_value()) {
        json_value samples = json_value::array();
        for (const double s : row.samples) samples.push_back(json_value{s});
        r["samples"] = std::move(samples);
      }
      if (!row.samples.empty()) {
        r["stats"] = stats_to_json(summarize(row.samples));
      } else if (row.stats.has_value()) {
        r["stats"] = stats_to_json(*row.stats);
      }
    } else {
      r["metric"] = json_value{row.metric};
      r["value"] = json_value{row.value};
    }
    rows_json.push_back(std::move(r));
  }
  out["rows"] = std::move(rows_json);
  out["metrics"] = metrics;
  if (profile.has_value()) out["profile"] = *profile;
  return out;
}

std::optional<bench_report> bench_report::from_json(const json_value& v,
                                                    std::string* error) {
  const std::vector<std::string> problems = validate_report_json(v);
  if (!problems.empty()) {
    if (error != nullptr) *error = problems.front();
    return std::nullopt;
  }
  bench_report report;
  read_string(v, "experiment", &report.experiment);
  read_string(v, "title", &report.title);
  read_string(v, "binary", &report.binary);
  read_string(v, "engine", &report.engine);
  read_string(v, "git_rev", &report.git_rev);
  if (const json_value* g = v.find("generated_unix");
      g != nullptr && g->is_number()) {
    report.generated_unix = g->as_int64();
  }
  if (const json_value* args = v.find("argv");
      args != nullptr && args->is_array()) {
    for (const json_value& a : args->items()) {
      if (a.is_string()) report.argv.push_back(a.as_string());
    }
  }
  read_number(v, "wall_time_seconds", &report.wall_time_seconds);

  for (const json_value& r : v.find("rows")->items()) {
    report_row row;
    std::string kind_name;
    read_string(r, "kind", &kind_name);
    row.kind = kind_name == "value" ? report_row::kind_t::value
                                    : report_row::kind_t::samples;
    read_string(r, "section", &row.section);
    read_string(r, "protocol", &row.protocol);
    if (const json_value* n = r.find("n"); n != nullptr && n->is_number()) {
      row.n = n->as_uint64();
    }
    read_string(r, "params", &row.params);
    read_string(r, "unit", &row.unit);
    std::string direction;
    read_string(r, "direction", &direction);
    row.lower_is_better = direction != "higher_is_better";
    if (row.kind == report_row::kind_t::samples) {
      if (const json_value* t = r.find("trials");
          t != nullptr && t->is_number()) {
        row.trials = t->as_uint64();
      }
      if (const json_value* s = r.find("seed");
          s != nullptr && s->is_number()) {
        row.seed = s->as_uint64();
      }
      if (const json_value* samples = r.find("samples");
          samples != nullptr && samples->is_array()) {
        for (const json_value& s : samples->items()) {
          if (s.is_number()) row.samples.push_back(s.as_double());
        }
      }
      row.stats = stats_from_json(r);
    } else {
      read_string(r, "metric", &row.metric);
      read_number(r, "value", &row.value);
    }
    report.rows.push_back(std::move(row));
  }
  if (const json_value* m = v.find("metrics");
      m != nullptr && m->is_object()) {
    report.metrics = *m;
  }
  if (const json_value* p = v.find("profile");
      p != nullptr && p->is_object()) {
    report.profile = *p;
  }
  return report;
}

std::vector<std::string> validate_report_json(const json_value& v) {
  std::vector<std::string> problems;
  if (!v.is_object()) {
    problems.push_back("report root is not a JSON object");
    return problems;
  }
  const json_value* version = v.find("schema_version");
  double schema = report_schema_version;
  if (version == nullptr || !version->is_number()) {
    problems.push_back("missing numeric \"schema_version\"");
  } else if (const double got = version->as_double();
             got != 1.0 && got != 2.0 && got != 2.1) {
    problems.push_back("unsupported schema_version " +
                       format_schema_version(got) + " (supported 1, 2, 2.1)");
  } else {
    schema = got;
  }
  for (const std::string_view key :
       {"experiment", "binary", "engine", "git_rev"}) {
    const json_value* field = v.find(key);
    if (field == nullptr || !field->is_string() ||
        field->as_string().empty()) {
      problems.push_back("missing non-empty string \"" + std::string(key) +
                         "\"");
    }
  }
  const json_value* rows = v.find("rows");
  if (rows == nullptr || !rows->is_array()) {
    problems.push_back("missing array \"rows\"");
    return problems;
  }
  for (std::size_t i = 0; i < rows->size(); ++i) {
    const json_value& r = rows->at(i);
    const std::string where = "rows[" + std::to_string(i) + "]";
    if (!r.is_object()) {
      problems.push_back(where + " is not an object");
      continue;
    }
    const json_value* kind = r.find("kind");
    if (kind == nullptr || !kind->is_string() ||
        (kind->as_string() != "samples" && kind->as_string() != "value")) {
      problems.push_back(where +
                         ".kind must be \"samples\" or \"value\"");
      continue;
    }
    const json_value* section = r.find("section");
    if (section == nullptr || !section->is_string()) {
      problems.push_back(where + " is missing string \"section\"");
    }
    const json_value* direction = r.find("direction");
    if (direction == nullptr || !direction->is_string() ||
        (direction->as_string() != "lower_is_better" &&
         direction->as_string() != "higher_is_better")) {
      problems.push_back(where + ".direction must be \"lower_is_better\" or "
                                 "\"higher_is_better\"");
    }
    if (kind->as_string() == "samples") {
      const json_value* samples = r.find("samples");
      const json_value* stats = r.find("stats");
      const bool stats_only = samples == nullptr && schema >= 2;
      if (stats_only) {
        // v2 sketch-backed row: stats stand in for the sample array.
        if (stats == nullptr || !stats->is_object() ||
            stats->find("mean") == nullptr ||
            !stats->find("mean")->is_number()) {
          problems.push_back(where +
                             " has neither \"samples\" nor a \"stats\" "
                             "object with a numeric \"mean\"");
        }
        const json_value* trials = r.find("trials");
        if (trials == nullptr || !trials->is_number()) {
          problems.push_back(where +
                             " without \"samples\" must carry numeric "
                             "\"trials\"");
        }
      } else if (samples == nullptr || !samples->is_array()) {
        problems.push_back(where + " is missing array \"samples\"");
      } else {
        for (const json_value& s : samples->items()) {
          if (!s.is_number()) {
            problems.push_back(where + ".samples has a non-number entry");
            break;
          }
        }
        const json_value* trials = r.find("trials");
        if (trials != nullptr && trials->is_number() &&
            trials->as_uint64() != samples->size()) {
          problems.push_back(where + ".trials does not match samples size");
        }
      }
    } else {
      const json_value* value = r.find("value");
      if (value == nullptr || !value->is_number()) {
        problems.push_back(where + " is missing number \"value\"");
      }
      const json_value* metric = r.find("metric");
      if (metric == nullptr || !metric->is_string() ||
          metric->as_string().empty()) {
        problems.push_back(where + " is missing non-empty string \"metric\"");
      }
    }
  }
  const json_value* metrics = v.find("metrics");
  if (metrics != nullptr && !metrics->is_object()) {
    problems.push_back("\"metrics\" must be an object when present");
  }
  const json_value* profile = v.find("profile");
  if (profile != nullptr) {
    if (!profile->is_object()) {
      problems.push_back("\"profile\" must be an object when present");
    } else if (schema < 2.1) {
      problems.push_back("\"profile\" requires schema_version >= 2.1 (got " +
                         format_schema_version(schema) + ")");
    }
  }
  return problems;
}

std::string report_filename(std::string_view experiment) {
  std::string name = "BENCH_";
  name += experiment;
  name += ".json";
  return name;
}

std::string write_report(const bench_report& report,
                         std::string_view out_dir) {
  std::string path;
  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(std::filesystem::path(out_dir), ec);
    path = out_dir;
    if (path.back() != '/') path += '/';
  }
  path += report_filename(report.experiment);
  std::ofstream os(path, std::ios::trunc);
  if (!os) return {};
  os << report.to_json().dump(2) << '\n';
  os.flush();
  return os ? path : std::string{};
}

}  // namespace ssr::obs
