// Minimal JSON document model for the observability layer.
//
// The bench reports (obs/report.hpp), trace sinks (obs/trace.hpp) and
// report_diff all need a machine-readable interchange format, and the
// container bakes in no JSON library -- so this is a small, dependency-free
// writer/parser pair covering exactly RFC 8259: null/bool/number/string
// with full escaping (including \uXXXX and surrogate pairs), arrays, and
// objects.  Objects preserve insertion order so emitted reports are
// byte-stable across runs, which the golden-file test relies on.
//
// Numbers are stored as doubles; integral values in the exactly-
// representable range print without a decimal point, everything else with
// max round-trip precision (%.17g-style), so parse(dump(v)) == v for every
// value the subsystem produces.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ssr::obs {

class json_value {
 public:
  enum class kind : std::uint8_t {
    null,
    boolean,
    number,
    string,
    array,
    object
  };

  json_value() : kind_(kind::null) {}
  json_value(std::nullptr_t) : kind_(kind::null) {}
  json_value(bool b) : kind_(kind::boolean), bool_(b) {}
  json_value(double d) : kind_(kind::number), num_(d) {}
  json_value(int i) : kind_(kind::number), num_(i) {}
  json_value(std::int64_t i)
      : kind_(kind::number), num_(static_cast<double>(i)) {}
  json_value(std::uint64_t u)
      : kind_(kind::number), num_(static_cast<double>(u)) {}
  json_value(std::string s) : kind_(kind::string), str_(std::move(s)) {}
  json_value(std::string_view s) : kind_(kind::string), str_(s) {}
  json_value(const char* s) : kind_(kind::string), str_(s) {}

  static json_value array() {
    json_value v;
    v.kind_ = kind::array;
    return v;
  }
  static json_value object() {
    json_value v;
    v.kind_ = kind::object;
    return v;
  }

  kind type() const { return kind_; }
  bool is_null() const { return kind_ == kind::null; }
  bool is_bool() const { return kind_ == kind::boolean; }
  bool is_number() const { return kind_ == kind::number; }
  bool is_string() const { return kind_ == kind::string; }
  bool is_array() const { return kind_ == kind::array; }
  bool is_object() const { return kind_ == kind::object; }

  bool as_bool() const { return bool_; }
  double as_double() const { return num_; }
  std::int64_t as_int64() const { return static_cast<std::int64_t>(num_); }
  std::uint64_t as_uint64() const { return static_cast<std::uint64_t>(num_); }
  const std::string& as_string() const { return str_; }

  /// Array access.
  void push_back(json_value v) { items_.push_back(std::move(v)); }
  std::size_t size() const { return items_.size(); }
  const json_value& at(std::size_t i) const { return items_[i]; }
  const std::vector<json_value>& items() const { return items_; }

  /// Object access: operator[] inserts a null member on first use
  /// (preserving insertion order); find returns nullptr when absent.
  json_value& operator[](std::string_view key);
  const json_value* find(std::string_view key) const;
  const std::vector<std::pair<std::string, json_value>>& members() const {
    return members_;
  }

  /// Deep structural equality (object member *order* is ignored; numbers
  /// compare exactly).
  friend bool operator==(const json_value& a, const json_value& b);

  /// Serializes the value.  indent < 0 emits compact one-line JSON;
  /// indent >= 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Parses a complete JSON document (trailing non-whitespace is an
  /// error).  Returns nullopt and fills *error (when non-null) with a
  /// position-annotated message on malformed input.
  static std::optional<json_value> parse(std::string_view text,
                                         std::string* error = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  kind kind_ = kind::null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<json_value> items_;                             // array
  std::vector<std::pair<std::string, json_value>> members_;   // object
};

/// Appends the RFC 8259 escaping of `s` (quotes included) to `out`.
void append_json_string(std::string& out, std::string_view s);

}  // namespace ssr::obs
