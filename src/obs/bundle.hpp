// Run bundles: one self-describing artifact directory per scenario run.
//
// `ssr_cli run <scenario.json> --out <dir>` and the serve daemon's
// scenario payloads both persist this layout (docs/bundles.md):
//
//   <dir>/scenario.json         canonical ssr.scenario v1 (obs/scenario.hpp)
//   <dir>/run.json              ssr.run v1: spec echo, per-trial samples,
//                               stats, aggregated engine counters.  NO
//                               timestamps and no git_rev: a pure function
//                               of (scenario, seed), so identical reruns
//                               are byte-identical.
//   <dir>/events.jsonl          ssr.events v1 job journal (obs/journal.hpp)
//   <dir>/trace.jsonl           ssr.trace v2, optional -- the exact format
//                               tools/trace_stats parses
//   <dir>/profile.json          ssr.profile, optional
//   <dir>/metrics.prom          Prometheus exposition snapshot, optional
//   <dir>/summary.md            human-readable digest of run.json
//   <dir>/bundle_manifest.json  ssr.bundle_manifest v1: provenance
//                               (git_rev, created_unix_ms) plus per-file
//                               {path, bytes, sha256, schema,
//                               schema_version, deterministic}
//
// The manifest is the trust anchor: verify_bundle() recomputes every
// sha256, so a bundle that passes verification is exactly what the run
// wrote.  Provenance lives ONLY in the manifest (and the journal), which
// is what keeps run.json deterministic and lets baseline compares diff
// reruns byte-for-byte.
//
// Baselines and gating: baseline_document() freezes a verified bundle's
// run.json into an ssr.baseline v1 document keyed by the spec
// fingerprint; compare_against_baseline() rebuilds report rows from both
// sides and routes them through the shared regression gate
// (obs/report_compare.hpp) -- the same KS + direction + tolerance logic
// report_diff and report_trend apply -- so `ssr_cli compare` can never
// disagree with the bench CI gates about what counts as a regression.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/engine_counters.hpp"
#include "obs/json.hpp"
#include "obs/report_compare.hpp"
#include "obs/scenario.hpp"

namespace ssr::obs {

inline constexpr std::string_view run_schema_name = "ssr.run";
inline constexpr std::uint64_t run_schema_version = 1;
inline constexpr std::string_view bundle_manifest_schema_name =
    "ssr.bundle_manifest";
inline constexpr std::uint64_t bundle_manifest_schema_version = 1;
inline constexpr std::string_view baseline_schema_name = "ssr.baseline";
inline constexpr std::uint64_t baseline_schema_version = 1;
inline constexpr std::string_view events_schema_name = "ssr.events";

/// Provenance recorded in the manifest (and baseline documents) only --
/// never in run.json.  Zero/empty fields are filled with the real git
/// revision and wall clock; tests pin both for golden fixtures.
struct bundle_provenance {
  std::string git_rev;
  std::uint64_t created_unix_ms = 0;
};

/// Builds the deterministic run.json document from the runner's result
/// document (serve/runner.hpp layout) and the counters aggregated across
/// every trial.
json_value run_document(const scenario_doc& scenario,
                        const json_value& result,
                        const engine_counters& counters);

/// Renders summary.md from a run document.
std::string render_summary(const scenario_doc& scenario,
                           const json_value& run_doc);

/// Optional artifacts write_run_bundle persists next to the core files.
struct bundle_artifacts {
  /// Pre-rendered trace.jsonl content (ssr.trace v2); null = no trace.
  const std::string* trace_jsonl = nullptr;
  /// Profile document (ssr.profile); null = no profile.
  const json_value* profile = nullptr;
  /// Prometheus exposition snapshot; empty = no metrics.prom.
  std::string metrics_prom;
  /// True when <dir>/events.jsonl was already streamed by a journal; the
  /// manifest then hashes and lists the existing file.
  bool events = false;
};

struct bundle_result {
  bool ok = false;
  std::string error;
  std::string dir;
  std::string manifest_path;
  /// The run.json document, for callers that print or persist it further.
  json_value run_doc;
};

/// Writes the bundle files into `dir` (created if needed) and finalizes
/// bundle_manifest.json.  `result` is the runner's result document.
bundle_result write_run_bundle(const std::string& dir,
                               const scenario_doc& scenario,
                               const json_value& result,
                               const engine_counters& counters,
                               const bundle_artifacts& artifacts = {},
                               bundle_provenance provenance = {});

struct manifest_check {
  std::vector<std::string> problems;
  std::size_t files_checked = 0;
  bool ok() const { return problems.empty(); }
};

/// Loads <dir>/bundle_manifest.json and recomputes every listed file's
/// sha256; any missing file, size mismatch, or digest mismatch is one
/// problem line.
manifest_check verify_bundle(const std::string& dir);

/// Reads and parses a JSON file; nullopt with *error set on failure.
std::optional<json_value> load_json_file(const std::string& path,
                                         std::string* error);

/// Freezes a bundle's run.json into an ssr.baseline v1 document.
json_value baseline_document(const json_value& run_doc,
                             bundle_provenance provenance = {});

struct metric_verdict {
  std::string key;
  row_verdict verdict;
};

struct bundle_comparison {
  bool ok = false;        // false = documents unusable (schema/fingerprint)
  std::string error;
  int compared = 0;
  int regressions = 0;
  std::vector<metric_verdict> verdicts;
};

/// Compares a bundle's run.json against a baseline document through the
/// shared per-metric gates.  Refuses (ok = false) when the fingerprints
/// differ -- comparing different specs is meaningless, not a regression.
bundle_comparison compare_against_baseline(const json_value& run_doc,
                                           const json_value& baseline_doc,
                                           const compare_limits& limits = {});

}  // namespace ssr::obs
