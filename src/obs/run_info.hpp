// Run-identity helpers shared by every sink that frames output with
// provenance: bench reports (obs/report), the trace sink (obs/trace), and
// profile exports.  Lives at the bottom of the obs layer so ssr_obs
// targets can use it without depending on ssr_report.
#pragma once

#include <string>

namespace ssr::obs {

/// `git rev-parse HEAD` of the working tree, "unknown" when unavailable.
std::string git_revision();

}  // namespace ssr::obs
