// The regression gate shared by report_diff (two reports) and
// report_trend (a history of reports).
//
// A matched pair of rows is flagged as a regression only when the change
// is both *significant* and *material*:
//
//   * sample rows with retained samples on both sides -- a two-sample KS
//     test rejects distribution equality (p < ks_alpha) AND the mean moved
//     in the bad direction by more than sample_mean_tolerance.
//   * sample rows where either side is stats-only (v2 sketch-backed) --
//     the KS test needs raw samples, so significance degrades to
//     non-overlapping 95% confidence intervals of the means; the same
//     mean tolerance still applies.
//   * value rows -- the value moved in the bad direction by more than
//     value_tolerance (single numbers carry no spread, so the threshold
//     is generous).
//
// Keeping this in one place guarantees the CI trend gate and the local
// diff tool can never disagree about what counts as a regression.
#pragma once

#include <string>

#include "obs/report.hpp"

namespace ssr::obs {

struct compare_limits {
  double ks_alpha = 0.01;
  double sample_mean_tolerance = 0.10;
  double value_tolerance = 1.0 / 3.0;
};

/// Positive = `now` is worse than `base`, as a fraction of `base`.
double worsening(bool lower_is_better, double base, double now);

struct row_verdict {
  bool regression = false;
  /// False when the pair could not be judged (e.g. both sides empty).
  bool comparable = true;
  double base_mean = 0.0;
  double new_mean = 0.0;
  /// Fractional move in the bad direction (can be negative = improved).
  double worse = 0.0;
  std::string detail;  // one-line human summary of the evidence
};

/// Compares two rows already matched on key() and kind.
row_verdict compare_rows(const report_row& base, const report_row& now,
                         const compare_limits& limits = {});

}  // namespace ssr::obs
