#include "obs/exposition.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace ssr::obs {
namespace {

bool prometheus_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Prometheus sample values are floats; integral values print without a
/// fractional part so counter samples stay exact and greppable.
std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::abs(v) <= 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void write_quantile(std::ostream& os, const std::string& name,
                    const char* q, double value) {
  os << name << "{quantile=\"" << q << "\"} " << format_value(value)
     << '\n';
}

}  // namespace

std::string prometheus_metric_name(std::string_view prefix,
                                   std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + name.size());
  out += prefix;
  for (const char c : name) {
    out += prometheus_name_char(c) ? c : '_';
  }
  return out;
}

void write_prometheus(std::ostream& os, const metrics_registry& registry,
                     std::string_view prefix) {
  const metrics_listing listing = registry.list();
  for (const auto& [name, value] : listing.counters) {
    const std::string metric = prometheus_metric_name(prefix, name);
    os << "# TYPE " << metric << " counter\n"
       << metric << ' ' << value << '\n';
  }
  for (const auto& [name, value] : listing.gauges) {
    const std::string metric = prometheus_metric_name(prefix, name);
    os << "# TYPE " << metric << " gauge\n"
       << metric << ' ' << format_value(value) << '\n';
  }
  for (const auto& [name, snap] : listing.histograms) {
    const std::string metric = prometheus_metric_name(prefix, name);
    os << "# TYPE " << metric << " summary\n";
    write_quantile(os, metric, "0.5", snap.p50);
    write_quantile(os, metric, "0.9", snap.p90);
    write_quantile(os, metric, "0.99", snap.p99);
    os << metric << "_sum " << format_value(snap.sum) << '\n'
       << metric << "_count " << snap.count << '\n'
       << metric << "_min " << format_value(snap.min) << '\n'
       << metric << "_max " << format_value(snap.max) << '\n';
  }
}

std::string prometheus_text(const metrics_registry& registry,
                            std::string_view prefix) {
  std::ostringstream os;
  write_prometheus(os, registry, prefix);
  return os.str();
}

}  // namespace ssr::obs
