#include "obs/timeline.hpp"

#include <atomic>
#include <chrono>
#include <ostream>

namespace ssr::obs {

std::string timeline_profile::path(std::uint32_t section) const {
  if (section >= sections.size()) return {};
  // Collect the ancestor chain, then join root-first.
  std::vector<std::uint32_t> chain;
  for (std::uint32_t at = section; at != timeline_no_parent;
       at = sections[at].parent) {
    chain.push_back(at);
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!out.empty()) out += ';';
    out += sections[*it].name;
  }
  return out;
}

std::vector<std::uint64_t> timeline_profile::self_wall_ns() const {
  std::vector<std::uint64_t> self(sections.size(), 0);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    self[i] = sections[i].wall_ns;
  }
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const std::uint32_t parent = sections[i].parent;
    if (parent == timeline_no_parent) continue;
    const std::uint64_t child = sections[i].wall_ns;
    self[parent] = self[parent] >= child ? self[parent] - child : 0;
  }
  return self;
}

void timeline_profile::write_folded(std::ostream& os) const {
  const std::vector<std::uint64_t> self = self_wall_ns();
  for (std::size_t i = 0; i < sections.size(); ++i) {
    if (self[i] == 0) continue;
    os << path(static_cast<std::uint32_t>(i)) << ' ' << self[i] << '\n';
  }
}

json_value timeline_profile::to_json() const {
  const std::vector<std::uint64_t> self = self_wall_ns();
  json_value out = json_value::object();
  out["schema"] = json_value{"ssr.profile"};
  json_value rows = json_value::array();
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const timeline_section& s = sections[i];
    json_value row = json_value::object();
    row["path"] = json_value{path(static_cast<std::uint32_t>(i))};
    row["depth"] = json_value{static_cast<std::int64_t>(s.depth)};
    row["count"] = json_value{s.count};
    row["wall_ns"] = json_value{s.wall_ns};
    row["self_ns"] = json_value{self[i]};
    if (s.units > 0) row["units"] = json_value{s.units};
    if (s.perf.any_available()) row["perf"] = s.perf.to_json();
    rows.push_back(std::move(row));
  }
  out["sections"] = std::move(rows);
  out["spans_recorded"] = json_value{static_cast<std::uint64_t>(spans.size())};
  out["spans_dropped"] = json_value{spans_dropped};
  json_value flags = json_value::object();
  for (std::size_t i = 0; i < perf_counter_count; ++i) {
    flags[to_string(static_cast<perf_counter_id>(i))] =
        json_value{perf_available[i]};
  }
  json_value perf = json_value::object();
  perf["available"] = std::move(flags);
  perf["status"] = json_value{perf_status};
  out["perf"] = std::move(perf);
  return out;
}

profile_derived derive_hardware_metrics(const timeline_profile& profile) {
  profile_derived out;
  perf_counter_values total;
  for (const timeline_section& s : profile.sections) {
    if (s.units == 0) continue;
    out.units += s.units;
    total += s.perf;
  }
  if (out.units == 0) return out;
  const double units = static_cast<double>(out.units);
  const std::uint64_t instructions = total[perf_counter_id::instructions];
  if (total.has(perf_counter_id::instructions) && instructions > 0) {
    out.instructions_per_unit = static_cast<double>(instructions) / units;
    if (total.has(perf_counter_id::branch_misses)) {
      out.branch_miss_rate =
          static_cast<double>(total[perf_counter_id::branch_misses]) /
          static_cast<double>(instructions);
    }
    out.valid = true;
  }
  if (total.has(perf_counter_id::cycles)) {
    out.cycles_per_unit =
        static_cast<double>(total[perf_counter_id::cycles]) / units;
    out.valid = true;
  }
  return out;
}

timeline_profiler::timeline_profiler(timeline_options options)
    : options_(options) {
  epoch_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
}

std::uint64_t timeline_profiler::now_ns() const {
  const std::int64_t now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return static_cast<std::uint64_t>(now - epoch_ns_);
}

std::uint32_t timeline_profiler::find_or_create(std::uint32_t parent,
                                                std::string_view name) {
  const std::vector<std::uint32_t>* siblings = nullptr;
  if (parent == timeline_no_parent) {
    siblings = &roots_;
  } else {
    siblings = &children_[parent];
  }
  for (const std::uint32_t id : *siblings) {
    if (sections_[id].name == name) return id;
  }
  const auto id = static_cast<std::uint32_t>(sections_.size());
  timeline_section section;
  section.name.assign(name);
  section.parent = parent;
  section.depth =
      parent == timeline_no_parent ? 0 : sections_[parent].depth + 1;
  sections_.push_back(std::move(section));
  children_.emplace_back();
  if (parent == timeline_no_parent) {
    roots_.push_back(id);
  } else {
    children_[parent].push_back(id);
  }
  return id;
}

std::uint32_t timeline_profiler::enter(std::string_view name) {
  const std::uint32_t parent =
      stack_.empty() ? timeline_no_parent : stack_.back().section;
  const std::uint32_t id = find_or_create(parent, name);
  frame f;
  f.section = id;
  f.start_ns = now_ns();
  if (options_.perf != nullptr) f.perf_at_entry = options_.perf->read();
  stack_.push_back(std::move(f));
  return id;
}

void timeline_profiler::exit(std::uint32_t section) {
  // Pop until the matching frame closes; intervening frames (a caller that
  // forgot an exit) close with it rather than corrupting the stack.
  while (!stack_.empty()) {
    const frame f = stack_.back();
    stack_.pop_back();
    timeline_section& s = sections_[f.section];
    const std::uint64_t end_ns = now_ns();
    const std::uint64_t duration =
        end_ns >= f.start_ns ? end_ns - f.start_ns : 0;
    s.count += 1;
    s.wall_ns += duration;
    if (options_.perf != nullptr) {
      s.perf += options_.perf->read() - f.perf_at_entry;
    }
    if (spans_.size() < options_.max_spans) {
      spans_.push_back({f.section, f.start_ns, duration});
    } else {
      ++spans_dropped_;
    }
    if (f.section == section) return;
  }
}

void timeline_profiler::add_units(std::uint64_t n) {
  if (stack_.empty()) return;
  sections_[stack_.back().section].units += n;
}

timeline_profile timeline_profiler::profile() const {
  timeline_profile out;
  out.sections = sections_;
  out.spans = spans_;
  out.spans_dropped = spans_dropped_;
  if (options_.perf != nullptr) {
    out.perf_available = options_.perf->availability();
    out.perf_status = options_.perf->status();
  } else {
    out.perf_status = "no counter group attached (wall time only)";
  }
  return out;
}

namespace {
std::atomic<timeline_profiler*> default_profiler{nullptr};
}  // namespace

void set_profiler_default(timeline_profiler* profiler) {
  default_profiler.store(profiler, std::memory_order_release);
}

timeline_profiler* profiler_default() {
  return default_profiler.load(std::memory_order_acquire);
}

}  // namespace ssr::obs
