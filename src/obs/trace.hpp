// Structured tracing for protocol executions.
//
// A trace is a bounded, optionally sampled stream of structured events
// (phase transitions, reset waves, rank collisions, convergence) produced
// by observers attached through the engines' existing run(budget, pre,
// post) hook API.  Because both engines surface exactly the executed
// interactions to those hooks (certain-null skips cannot change state, so
// they carry no events), the direct and batched engines emit an identical
// *kind* of observable stream -- same event vocabulary, same invariants --
// and from identical executed trajectories, identical events.
//
// The protocol-side contract is three members (the "phase instrumentation
// hooks" of optimal_silent.hpp and sublinear.hpp):
//
//   std::uint32_t obs_phase_count() const;
//   std::uint32_t obs_phase(const agent_state&) const;  // < obs_phase_count
//   static std::string_view obs_phase_name(std::uint32_t);
//   static bool obs_phase_is_reset(std::uint32_t);
//
// phase_observer<P> maintains incremental per-phase occupancy (O(1) per
// surfaced interaction, mirroring rank_tracker) and emits:
//
//   phase_transition  -- an agent moved between phases (sampled)
//   reset_wave_start  -- resetting occupancy left zero
//   reset_wave_end    -- resetting occupancy returned to zero
//   rank_collision    -- two agents holding the same nonzero rank interacted
//                        and state changed (ranking protocols' error event)
//   convergence       -- the tracked ranking became correct
//   correctness_lost  -- a previously correct ranking was revoked
//
// run_start/run_end frame the stream for consumers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "pp/scheduler.hpp"

namespace ssr::obs {

enum class trace_event_kind : std::uint8_t {
  run_start,
  run_end,
  phase_transition,
  reset_wave_start,
  reset_wave_end,
  rank_collision,
  convergence,
  correctness_lost,
};

std::string_view to_string(trace_event_kind kind);
/// Inverse of to_string; nullopt for unknown names (e.g. "trace_header",
/// which frames JSONL files but is not an event).
std::optional<trace_event_kind> trace_event_kind_from_string(
    std::string_view name);

inline constexpr std::uint32_t trace_no_agent = 0xffffffffu;

struct trace_event {
  trace_event_kind kind = trace_event_kind::run_start;
  double time = 0.0;            // parallel time at emission
  std::uint64_t interaction = 0;
  std::uint32_t agent = trace_no_agent;
  std::int32_t from_phase = -1;
  std::int32_t to_phase = -1;

  friend bool operator==(const trace_event&, const trace_event&) = default;
};

struct trace_options {
  /// Keep every k-th phase_transition event (1 = all).  Structural events
  /// (waves, collisions, convergence, run framing) are never sampled out.
  std::uint64_t sample_every = 1;
  /// Hard cap on buffered events; excess events are counted as dropped.
  std::size_t max_events = 1u << 20;
};

/// Collects events in memory; the buffer is bounded and sampling is
/// applied on emit, so a sink can sit on the hot path of multi-billion
/// interaction runs.
class trace_sink {
 public:
  explicit trace_sink(trace_options options = {});

  void emit(const trace_event& event);

  const std::vector<trace_event>& events() const { return events_; }
  /// Events offered to the sink, before sampling and capping.
  std::uint64_t offered() const { return offered_; }
  /// Events discarded by sampling.
  std::uint64_t sampled_out() const { return sampled_out_; }
  /// Events discarded because the buffer was full.
  std::uint64_t dropped() const { return dropped_; }

  /// Writes one JSON object per line (JSONL).  `phase_names` translates
  /// phase indices; pass an empty span to emit raw indices only.
  void write_jsonl(std::ostream& os,
                   std::span<const std::string_view> phase_names) const;

  /// The trace_header document write_jsonl emits as its first line
  /// (schema tag, producer revision, offered/sampled_out/dropped
  /// accounting, phase-name table).  Exposed so transports that carry a
  /// trace in-band (the serve wire) can ship header + events as
  /// structured JSON and clients can reconstruct the exact JSONL file
  /// trace_stats parses.
  json_value header_json(
      std::span<const std::string_view> phase_names) const;

  json_value event_to_json(
      const trace_event& event,
      std::span<const std::string_view> phase_names) const;

 private:
  trace_options options_;
  std::vector<trace_event> events_;
  std::uint64_t offered_ = 0;
  std::uint64_t sampled_out_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Concept for the protocol-side instrumentation hooks.
template <class P>
concept phase_instrumented_protocol =
    requires(const P p, const typename P::agent_state& s, std::uint32_t i) {
      { p.obs_phase_count() } -> std::convertible_to<std::uint32_t>;
      { p.obs_phase(s) } -> std::convertible_to<std::uint32_t>;
      { P::obs_phase_name(i) } -> std::convertible_to<std::string_view>;
      { P::obs_phase_is_reset(i) } -> std::convertible_to<bool>;
    };

/// Incremental phase-occupancy tracker + event source.  Wire it into an
/// engine run as
///
///   observer.begin(engine.parallel_time(), engine.interactions());
///   engine.run(budget,
///              [&](const agent_pair& p) { observer.before(p); ... },
///              [&](const agent_pair& p, bool changed) {
///                observer.after(p, changed, engine.parallel_time(),
///                               engine.interactions());
///                ...
///              });
///   observer.end(engine.parallel_time(), engine.interactions());
///
/// The observer reads agent states through the span captured at
/// construction; engines never reallocate their agent storage during run(),
/// so the span stays valid for the engine's lifetime.
template <phase_instrumented_protocol P>
class phase_observer {
 public:
  using agent_state = typename P::agent_state;

  phase_observer(const P& protocol, std::span<const agent_state> agents,
                 trace_sink* sink)
      : protocol_(protocol),
        agents_(agents),
        sink_(sink),
        occupancy_(protocol.obs_phase_count(), 0) {
    for (std::uint32_t a = 0; a < agents_.size(); ++a) {
      ++occupancy_[protocol_.obs_phase(agents_[a])];
    }
    for (std::uint32_t ph = 0; ph < occupancy_.size(); ++ph) {
      if (P::obs_phase_is_reset(ph)) resetting_ += occupancy_[ph];
    }
  }

  void begin(double time, std::uint64_t interaction) {
    emit({trace_event_kind::run_start, time, interaction});
  }
  void end(double time, std::uint64_t interaction) {
    emit({trace_event_kind::run_end, time, interaction});
  }

  /// Call from the engine's pre hook.
  void before(const agent_pair& pair) {
    pre_a_ = protocol_.obs_phase(agents_[pair.initiator]);
    pre_b_ = protocol_.obs_phase(agents_[pair.responder]);
  }

  /// Call from the engine's post hook.
  void after(const agent_pair& pair, bool changed, double time,
             std::uint64_t interaction) {
    if (!changed) return;
    const std::uint64_t resetting_before = resetting_;
    apply(pair.initiator, pre_a_, time, interaction);
    apply(pair.responder, pre_b_, time, interaction);
    if (resetting_before == 0 && resetting_ > 0) {
      emit({trace_event_kind::reset_wave_start, time, interaction});
    } else if (resetting_before > 0 && resetting_ == 0) {
      emit({trace_event_kind::reset_wave_end, time, interaction});
    }
  }

  /// Report a rank-collision observation (the convergence harnesses see
  /// pre-interaction ranks; the observer does not re-derive them).
  void rank_collision(const agent_pair& pair, double time,
                      std::uint64_t interaction) {
    emit({trace_event_kind::rank_collision, time, interaction,
          pair.initiator});
  }

  void convergence(double time, std::uint64_t interaction) {
    emit({trace_event_kind::convergence, time, interaction});
  }
  void correctness_lost(double time, std::uint64_t interaction) {
    emit({trace_event_kind::correctness_lost, time, interaction});
  }

  /// Current per-phase agent counts; always sums to the population size.
  std::span<const std::uint64_t> occupancy() const { return occupancy_; }
  /// Agents currently in a reset phase.
  std::uint64_t resetting() const { return resetting_; }

  std::vector<std::string_view> phase_names() const {
    std::vector<std::string_view> names(occupancy_.size());
    for (std::uint32_t ph = 0; ph < names.size(); ++ph) {
      names[ph] = P::obs_phase_name(ph);
    }
    return names;
  }

 private:
  void apply(std::uint32_t agent, std::uint32_t from, double time,
             std::uint64_t interaction) {
    const std::uint32_t to = protocol_.obs_phase(agents_[agent]);
    if (to == from) return;
    --occupancy_[from];
    ++occupancy_[to];
    if (P::obs_phase_is_reset(from)) --resetting_;
    if (P::obs_phase_is_reset(to)) ++resetting_;
    emit({trace_event_kind::phase_transition, time, interaction, agent,
          static_cast<std::int32_t>(from), static_cast<std::int32_t>(to)});
  }

  void emit(const trace_event& event) {
    if (sink_ != nullptr) sink_->emit(event);
  }

  const P& protocol_;
  std::span<const agent_state> agents_;
  trace_sink* sink_;
  std::vector<std::uint64_t> occupancy_;
  std::uint64_t resetting_ = 0;
  std::uint32_t pre_a_ = 0;
  std::uint32_t pre_b_ = 0;
};

}  // namespace ssr::obs
