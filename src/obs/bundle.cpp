#include "obs/bundle.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/run_info.hpp"
#include "util/sha256.hpp"

namespace ssr::obs {
namespace {

namespace fs = std::filesystem;

std::uint64_t now_unix_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void fill_provenance(bundle_provenance& provenance) {
  if (provenance.git_rev.empty()) provenance.git_rev = git_revision();
  if (provenance.created_unix_ms == 0)
    provenance.created_unix_ms = now_unix_ms();
}

std::string format_number(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

const json_value* find_path(const json_value& doc, std::string_view a,
                            std::string_view b = {}) {
  const json_value* v = doc.find(a);
  if (v == nullptr || b.empty()) return v;
  return v->find(b);
}

std::string string_at(const json_value& doc, std::string_view key) {
  const json_value* v = doc.find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::string();
}

/// One manifest file entry, accumulated while writing the bundle.
struct file_entry {
  std::string path;
  std::uint64_t bytes = 0;
  std::string sha256;
  std::string schema;
  std::uint64_t schema_version = 0;
  bool deterministic = false;
};

/// Rebuilds the report rows the per-metric gates judge from a run
/// document.  Both compare sides go through this, so the keys always
/// match by construction.
bool rows_from_run(const json_value& run_doc, std::vector<report_row>* rows,
                   std::string* error) {
  const json_value* result = run_doc.find("result");
  if (result == nullptr || !result->is_object()) {
    *error = "run document has no result object";
    return false;
  }
  const json_value* spec = result->find("spec");
  const json_value* samples = result->find("samples");
  if (spec == nullptr || samples == nullptr || !samples->is_array()) {
    *error = "run document result lacks spec/samples";
    return false;
  }

  report_row row;
  row.kind = report_row::kind_t::samples;
  row.section = "scenario";
  row.protocol = string_at(*spec, "protocol");
  const json_value* n = spec->find("n");
  row.n = n != nullptr ? n->as_uint64() : 0;
  row.params = "scenario=" + string_at(*spec, "scenario");
  row.unit = "parallel_time";
  row.lower_is_better = true;
  const json_value* trials = spec->find("trials");
  const json_value* seed = spec->find("seed");
  row.trials = trials != nullptr ? trials->as_uint64() : 0;
  row.seed = seed != nullptr ? seed->as_uint64() : 0;
  for (const json_value& s : samples->items()) {
    row.samples.push_back(s.as_double());
  }
  rows->push_back(std::move(row));

  // Engine work per trial gates as a generous value row; the accelerated
  // baseline jump simulator runs without an engine (zero counters), so the
  // row only exists when an engine executed interactions.
  const json_value* executed =
      find_path(run_doc, "engine_counters", "interactions_executed");
  const std::uint64_t trial_count =
      trials != nullptr ? trials->as_uint64() : 0;
  if (executed != nullptr && executed->as_uint64() > 0 && trial_count > 0) {
    report_row work;
    work.kind = report_row::kind_t::value;
    work.section = "engine";
    work.metric = "interactions_per_trial";
    work.protocol = rows->front().protocol;
    work.n = rows->front().n;
    work.params = rows->front().params;
    work.unit = "interactions";
    work.lower_is_better = true;
    work.value = static_cast<double>(executed->as_uint64()) /
                 static_cast<double>(trial_count);
    rows->push_back(std::move(work));
  }
  return true;
}

}  // namespace

json_value run_document(const scenario_doc& scenario,
                        const json_value& result,
                        const engine_counters& counters) {
  json_value doc = json_value::object();
  doc["schema"] = run_schema_name;
  doc["schema_version"] = run_schema_version;
  doc["scenario_name"] = scenario.name;
  doc["fingerprint"] = scenario.spec.canonical();
  doc["result"] = result;
  doc["engine_counters"] = to_json(counters);
  return doc;
}

std::string render_summary(const scenario_doc& scenario,
                           const json_value& run_doc) {
  std::ostringstream os;
  os << "# Run bundle: " << scenario.name << "\n\n";
  if (!scenario.description.empty()) os << scenario.description << "\n\n";
  const util::sim_request_spec& spec = scenario.spec;
  os << "- fingerprint: `" << string_at(run_doc, "fingerprint") << "`\n";
  os << "- protocol `" << spec.protocol << "`, scenario `" << spec.scenario
     << "`, n = " << spec.n << ", engine `" << to_string(spec.engine.kind)
     << "`\n";
  os << "- trials " << spec.trials << ", seed " << spec.seed
     << ", max_time " << format_number(spec.max_time) << "\n\n";

  os << "## Stabilization time (parallel time per trial)\n\n";
  const json_value* stats = find_path(run_doc, "result", "stats");
  if (stats != nullptr && stats->is_object()) {
    os << "| count | mean | stddev | min | median | p90 | p99 | max |\n";
    os << "| --- | --- | --- | --- | --- | --- | --- | --- |\n|";
    for (const std::string_view key :
         {"count", "mean", "stddev", "min", "median", "p90", "p99", "max"}) {
      const json_value* v = stats->find(key);
      os << ' '
         << (v == nullptr ? std::string("-")
             : key == "count"
                 ? std::to_string(v->as_uint64())
                 : format_number(v->as_double()))
         << " |";
    }
    os << "\n\n";
  }

  os << "## Engine counters (aggregated over all trials)\n\n";
  os << "| counter | value |\n| --- | --- |\n";
  const json_value* counters = run_doc.find("engine_counters");
  if (counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->members()) {
      os << "| " << name << " | " << value.as_uint64() << " |\n";
    }
  }
  os << "\n";
  os << "Provenance and per-file sha256 digests live in "
        "`bundle_manifest.json`; gate this run against a captured baseline "
        "with `ssr_cli compare` (docs/bundles.md).\n";
  return os.str();
}

bundle_result write_run_bundle(const std::string& dir,
                               const scenario_doc& scenario,
                               const json_value& result,
                               const engine_counters& counters,
                               const bundle_artifacts& artifacts,
                               bundle_provenance provenance) {
  bundle_result out;
  out.dir = dir;
  fill_provenance(provenance);

  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    out.error = "cannot create '" + dir + "': " + ec.message();
    return out;
  }

  std::vector<file_entry> files;
  const auto add_file = [&](std::string_view name, std::string_view content,
                            std::string_view schema,
                            std::uint64_t schema_version,
                            bool deterministic) {
    const std::string path = dir + "/" + std::string(name);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
      out.error = "cannot write '" + path + "'";
      return false;
    }
    os << content;
    os.flush();
    if (!os) {
      out.error = "short write to '" + path + "'";
      return false;
    }
    files.push_back({std::string(name), content.size(),
                     util::sha256_hex(content), std::string(schema),
                     schema_version, deterministic});
    return true;
  };

  out.run_doc = run_document(scenario, result, counters);
  if (!add_file("scenario.json", scenario_to_json(scenario).dump(2) + "\n",
                scenario_schema_name, scenario_schema_version,
                /*deterministic=*/true)) {
    return out;
  }
  if (!add_file("run.json", out.run_doc.dump(2) + "\n", run_schema_name,
                run_schema_version, /*deterministic=*/true)) {
    return out;
  }
  if (artifacts.events) {
    // Streamed by the caller's journal while the run executed; hash the
    // file as it landed on disk.
    const std::string path = dir + "/events.jsonl";
    const std::string sha = util::sha256_file_hex(path);
    if (sha.empty()) {
      out.error = "cannot read back '" + path + "'";
      return out;
    }
    const std::uintmax_t bytes = fs::file_size(path, ec);
    files.push_back({"events.jsonl", ec ? 0 : bytes, sha,
                     std::string(events_schema_name), 1,
                     /*deterministic=*/false});
  }
  if (artifacts.trace_jsonl != nullptr &&
      !add_file("trace.jsonl", *artifacts.trace_jsonl, "ssr.trace", 2,
                /*deterministic=*/false)) {
    return out;
  }
  if (artifacts.profile != nullptr &&
      !add_file("profile.json", artifacts.profile->dump(2) + "\n",
                "ssr.profile", 1, /*deterministic=*/false)) {
    return out;
  }
  if (!artifacts.metrics_prom.empty() &&
      !add_file("metrics.prom", artifacts.metrics_prom, "prometheus-0.0.4",
                1, /*deterministic=*/false)) {
    return out;
  }
  if (!add_file("summary.md", render_summary(scenario, out.run_doc),
                "markdown", 1, /*deterministic=*/true)) {
    return out;
  }

  json_value manifest = json_value::object();
  manifest["schema"] = bundle_manifest_schema_name;
  manifest["schema_version"] = bundle_manifest_schema_version;
  manifest["scenario_name"] = scenario.name;
  manifest["fingerprint"] = scenario.spec.canonical();
  manifest["git_rev"] = provenance.git_rev;
  manifest["created_unix_ms"] = provenance.created_unix_ms;
  json_value list = json_value::array();
  for (const file_entry& file : files) {
    json_value item = json_value::object();
    item["path"] = file.path;
    item["bytes"] = file.bytes;
    item["sha256"] = file.sha256;
    item["schema"] = file.schema;
    item["schema_version"] = file.schema_version;
    item["deterministic"] = file.deterministic;
    list.push_back(std::move(item));
  }
  manifest["files"] = std::move(list);

  out.manifest_path = dir + "/bundle_manifest.json";
  std::ofstream os(out.manifest_path, std::ios::binary | std::ios::trunc);
  if (!os) {
    out.error = "cannot write '" + out.manifest_path + "'";
    return out;
  }
  os << manifest.dump(2) << '\n';
  os.flush();
  if (!os) {
    out.error = "short write to '" + out.manifest_path + "'";
    return out;
  }
  out.ok = true;
  return out;
}

std::optional<json_value> load_json_file(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  std::optional<json_value> doc =
      json_value::parse(buffer.str(), &parse_error);
  if (!doc.has_value() && error != nullptr) {
    *error = path + ": " + parse_error;
  }
  return doc;
}

manifest_check verify_bundle(const std::string& dir) {
  manifest_check check;
  std::string error;
  const std::optional<json_value> manifest =
      load_json_file(dir + "/bundle_manifest.json", &error);
  if (!manifest.has_value()) {
    check.problems.push_back(error);
    return check;
  }
  if (string_at(*manifest, "schema") != bundle_manifest_schema_name) {
    check.problems.push_back("manifest schema is not '" +
                             std::string(bundle_manifest_schema_name) + "'");
    return check;
  }
  const json_value* files = manifest->find("files");
  if (files == nullptr || !files->is_array() || files->size() == 0) {
    check.problems.push_back("manifest lists no files");
    return check;
  }
  for (const json_value& item : files->items()) {
    const std::string path = string_at(item, "path");
    const std::string full = dir + "/" + path;
    const std::string actual = util::sha256_file_hex(full);
    if (actual.empty()) {
      check.problems.push_back(path + ": missing or unreadable");
      continue;
    }
    ++check.files_checked;
    const std::string expected = string_at(item, "sha256");
    if (actual != expected) {
      check.problems.push_back(path + ": sha256 mismatch (manifest " +
                               expected + ", file " + actual + ")");
      continue;
    }
    const json_value* bytes = item.find("bytes");
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(full, ec);
    if (bytes != nullptr && !ec && bytes->as_uint64() != size) {
      check.problems.push_back(path + ": size mismatch");
    }
  }
  return check;
}

json_value baseline_document(const json_value& run_doc,
                             bundle_provenance provenance) {
  fill_provenance(provenance);
  json_value doc = json_value::object();
  doc["schema"] = baseline_schema_name;
  doc["schema_version"] = baseline_schema_version;
  doc["scenario_name"] = string_at(run_doc, "scenario_name");
  doc["fingerprint"] = string_at(run_doc, "fingerprint");
  doc["git_rev"] = provenance.git_rev;
  doc["created_unix_ms"] = provenance.created_unix_ms;
  doc["run"] = run_doc;
  return doc;
}

bundle_comparison compare_against_baseline(const json_value& run_doc,
                                           const json_value& baseline_doc,
                                           const compare_limits& limits) {
  bundle_comparison out;
  if (string_at(run_doc, "schema") != run_schema_name) {
    out.error = "run document schema is not '" +
                std::string(run_schema_name) + "'";
    return out;
  }
  if (string_at(baseline_doc, "schema") != baseline_schema_name) {
    out.error = "baseline schema is not '" +
                std::string(baseline_schema_name) + "'";
    return out;
  }
  const std::string run_fp = string_at(run_doc, "fingerprint");
  const std::string base_fp = string_at(baseline_doc, "fingerprint");
  if (run_fp != base_fp) {
    out.error = "fingerprint mismatch: bundle ran '" + run_fp +
                "' but the baseline captured '" + base_fp +
                "' -- re-capture the baseline for this scenario";
    return out;
  }
  const json_value* base_run = baseline_doc.find("run");
  if (base_run == nullptr || !base_run->is_object()) {
    out.error = "baseline has no embedded run document";
    return out;
  }

  std::vector<report_row> now_rows, base_rows;
  if (!rows_from_run(run_doc, &now_rows, &out.error) ||
      !rows_from_run(*base_run, &base_rows, &out.error)) {
    return out;
  }
  out.ok = true;
  for (const report_row& now : now_rows) {
    const std::string key = now.key();
    for (const report_row& base : base_rows) {
      if (base.key() != key || base.kind != now.kind) continue;
      metric_verdict verdict{key, compare_rows(base, now, limits)};
      if (verdict.verdict.comparable) {
        ++out.compared;
        if (verdict.verdict.regression) ++out.regressions;
      }
      out.verdicts.push_back(std::move(verdict));
      break;
    }
  }
  return out;
}

}  // namespace ssr::obs
