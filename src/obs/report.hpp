// Versioned, machine-readable benchmark reports.
//
// Every bench binary (and the CLI with --json) writes one BENCH_<id>.json
// artifact per run through this layer.  The schema (version 2.1, validated
// by validate_report_json and documented in docs/observability.md) is:
//
//   {
//     "schema_version": 2.1,
//     "experiment":  "E3",              // experiment id from ROADMAP.md
//     "title":       "...",             // human-readable banner
//     "binary":      "bench_states",
//     "engine":      "batched",         // engine the run selected
//     "git_rev":     "abc123...",       // or "unknown"
//     "generated_unix": 1754349000,     // seconds since epoch, 0 if unknown
//     "argv":        ["--engine=batched", ...],
//     "wall_time_seconds": 12.5,
//     "rows": [ <sample row> | <value row>, ... ],
//     "metrics":     { "<name>": <number|histogram object>, ... },
//     "profile":     { ... }           // optional (2.1+): timeline profile
//   }
//
// A *sample row* carries the raw per-trial measurements plus derived stats
// (so report_diff can re-test distributions, not just compare means):
//
//   { "kind": "samples", "section": "stabilization", "protocol":
//     "optimal_silent", "n": 1024, "params": "scenario=uniform_random",
//     "trials": 60, "seed": 1042, "unit": "parallel_time",
//     "direction": "lower_is_better",
//     "samples": [ ... ],
//     "stats": { "count":..., "mean":..., "median":..., "stddev":...,
//                "ci95":..., "p90":..., "p99":..., "min":..., "max":... } }
//
// Version 2 additionally allows a sample row to omit "samples" when it
// carries a "stats" block -- the percentiles then come from a streaming
// quantile sketch (obs/quantile_sketch.hpp) instead of retained samples,
// so unbounded-trial runs stay bounded-size.  Version-1 documents (no
// "count" in stats, "samples" always present) remain readable: from_json
// and validate_report_json accept both, and report_diff falls back from
// the KS gate to a confidence-interval gate when either side is
// stats-only.
//
// A *value row* carries a single derived number (throughput rates etc.):
//
//   { "kind": "value", "section": "throughput", "metric":
//     "interactions_per_second", "protocol": "...", "n": 1048576,
//     "params": "", "value": 1.2e9, "unit": "1/s",
//     "direction": "higher_is_better" }
//
// Rows are identified across reports by (section, protocol, n, params) --
// report_diff joins on that tuple.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/statistics.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/run_info.hpp"  // git_revision(), recorded in every report

namespace ssr::obs {

/// Written schema.  Versions are doubles so point revisions (2 -> 2.1, the
/// optional "profile" block) stay readable by integer-era consumers: a v2
/// reader truncating 2.1 to 2 sees a valid v2 document, because 2.1 only
/// *adds* an optional member.
inline constexpr double report_schema_version = 2.1;
/// Oldest schema from_json / validate_report_json still accept.
inline constexpr int min_report_schema_version = 1;
/// "2.1" for 2.1, "2" for 2.0 -- trailing ".0" dropped for messages and
/// round numbers.
std::string format_schema_version(double version);

struct report_row {
  enum class kind_t : std::uint8_t { samples, value };

  kind_t kind = kind_t::samples;
  std::string section;
  std::string protocol;
  std::uint64_t n = 0;
  std::string params;  // "key=value key=value", "" when none
  std::string unit;
  bool lower_is_better = true;

  // kind_t::samples
  std::uint64_t trials = 0;
  std::uint64_t seed = 0;
  std::vector<double> samples;
  /// Summary statistics.  Computed from `samples` on serialization when
  /// absent; a row with stats but no samples is a v2 sketch-backed row.
  std::optional<summary> stats;

  // kind_t::value
  std::string metric;
  double value = 0.0;

  /// Join key used by report_diff to match rows across reports.
  std::string key() const;

  /// Best available central estimate: stats->mean, else mean of samples,
  /// else `value` for value rows.  NaN when the row is empty.
  double mean_estimate() const;
};

/// Summary derived from a histogram snapshot: mean and (sample) stddev
/// from the moment sums, percentiles from the quantile sketch.  This is
/// what sketch-backed v2 rows embed.
summary summary_from_histogram(const histogram::snapshot_data& data);

struct bench_report {
  std::string experiment;
  std::string title;
  std::string binary;
  std::string engine;
  std::string git_rev;
  std::int64_t generated_unix = 0;
  std::vector<std::string> argv;
  double wall_time_seconds = 0.0;
  std::vector<report_row> rows;
  json_value metrics = json_value::object();
  /// Optional profiling block (schema >= 2.1): the timeline_profile JSON
  /// emitted under --profile (obs/timeline.hpp).  Carried opaquely --
  /// serialization round-trips it, but nothing here interprets it.
  std::optional<json_value> profile;

  report_row& add_samples(std::string section, std::string protocol,
                          std::uint64_t n, std::string params,
                          std::uint64_t trials, std::uint64_t seed,
                          std::string unit, std::vector<double> samples);
  /// Sketch-backed sample row (v2): stats only, no retained samples.
  /// `trials` is taken from stats.count.
  report_row& add_summary(std::string section, std::string protocol,
                          std::uint64_t n, std::string params,
                          std::uint64_t seed, std::string unit,
                          const summary& stats);
  report_row& add_value(std::string section, std::string metric,
                        std::string protocol, std::uint64_t n,
                        std::string params, double value, std::string unit,
                        bool higher_is_better = true);

  json_value to_json() const;
  static std::optional<bench_report> from_json(const json_value& v,
                                               std::string* error = nullptr);
};

/// Schema check; returns the empty vector when `v` is a valid report of
/// any supported version (1, 2, or 2.1), else one human-readable message
/// per violation.
std::vector<std::string> validate_report_json(const json_value& v);

/// "BENCH_<experiment>.json".
std::string report_filename(std::string_view experiment);

/// Writes `report.to_json().dump(2)` to `<out_dir>/BENCH_<experiment>.json`
/// (out_dir "" means the current directory; the directory must exist).
/// Returns the path written, or "" on I/O failure.
std::string write_report(const bench_report& report, std::string_view out_dir);

}  // namespace ssr::obs
