#include "obs/report_compare.hpp"

#include <cmath>
#include <cstdio>

#include "analysis/ks_test.hpp"
#include "analysis/statistics.hpp"

namespace ssr::obs {
namespace {

summary row_summary(const report_row& row) {
  if (!row.samples.empty()) return summarize(row.samples);
  if (row.stats.has_value()) return *row.stats;
  return summary{};
}

row_verdict compare_samples(const report_row& base, const report_row& now,
                            const compare_limits& limits) {
  row_verdict verdict;
  const summary base_stats = row_summary(base);
  const summary now_stats = row_summary(now);
  if (base_stats.count == 0 || now_stats.count == 0) {
    verdict.comparable = false;
    verdict.detail = "no samples to compare";
    return verdict;
  }
  verdict.base_mean = base_stats.mean;
  verdict.new_mean = now_stats.mean;
  verdict.worse =
      worsening(base.lower_is_better, base_stats.mean, now_stats.mean);

  char buffer[192];
  const double shift =
      100.0 * (now_stats.mean - base_stats.mean) /
      (base_stats.mean == 0.0 ? 1.0 : base_stats.mean);
  if (!base.samples.empty() && !now.samples.empty()) {
    const ks_result ks = ks_two_sample(base.samples, now.samples);
    verdict.regression = ks.p_value < limits.ks_alpha &&
                         verdict.worse > limits.sample_mean_tolerance;
    std::snprintf(buffer, sizeof(buffer),
                  "mean %.4g -> %.4g (%+.1f%%), KS D=%.3f p=%.3g",
                  base_stats.mean, now_stats.mean, shift, ks.statistic,
                  ks.p_value);
  } else {
    // Stats-only on at least one side: no raw samples for a KS test, so
    // significance = the 95% CIs of the means do not overlap.
    const double gap = std::fabs(now_stats.mean - base_stats.mean);
    const double ci =
        ci95_halfwidth(base_stats) + ci95_halfwidth(now_stats);
    verdict.regression =
        gap > ci && verdict.worse > limits.sample_mean_tolerance;
    std::snprintf(buffer, sizeof(buffer),
                  "mean %.4g -> %.4g (%+.1f%%), ci95 gap %.3g vs %.3g "
                  "[stats-only]",
                  base_stats.mean, now_stats.mean, shift, gap, ci);
  }
  verdict.detail = buffer;
  return verdict;
}

row_verdict compare_values(const report_row& base, const report_row& now,
                           const compare_limits& limits) {
  row_verdict verdict;
  verdict.base_mean = base.value;
  verdict.new_mean = now.value;
  verdict.worse = worsening(base.lower_is_better, base.value, now.value);
  verdict.regression = verdict.worse > limits.value_tolerance;
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer), "%.4g -> %.4g %s (%+.1f%% worse)",
                base.value, now.value, now.unit.c_str(),
                100.0 * verdict.worse);
  verdict.detail = buffer;
  return verdict;
}

}  // namespace

double worsening(bool lower_is_better, double base, double now) {
  if (base == 0.0) return now == 0.0 ? 0.0 : (lower_is_better ? 1.0 : -1.0);
  const double ratio = now / base;
  return lower_is_better ? ratio - 1.0 : 1.0 - ratio;
}

row_verdict compare_rows(const report_row& base, const report_row& now,
                         const compare_limits& limits) {
  return base.kind == report_row::kind_t::samples
             ? compare_samples(base, now, limits)
             : compare_values(base, now, limits);
}

}  // namespace ssr::obs
