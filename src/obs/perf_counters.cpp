#include "obs/perf_counters.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define SSR_PERF_BACKEND 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#else
#define SSR_PERF_BACKEND 0
#endif

namespace ssr::obs {
namespace {

constexpr std::array<std::string_view, perf_counter_count> counter_names = {
    "cycles", "instructions", "branch_misses", "cache_misses", "task_clock",
};

}  // namespace

std::string_view to_string(perf_counter_id id) {
  return counter_names[static_cast<std::size_t>(id)];
}

bool perf_counter_values::any_available() const {
  for (const bool a : available)
    if (a) return true;
  return false;
}

perf_counter_values& perf_counter_values::operator+=(
    const perf_counter_values& other) {
  for (std::size_t i = 0; i < perf_counter_count; ++i) {
    value[i] += other.value[i];
    available[i] = available[i] || other.available[i];
  }
  return *this;
}

perf_counter_values operator-(const perf_counter_values& after,
                              const perf_counter_values& before) {
  perf_counter_values delta;
  for (std::size_t i = 0; i < perf_counter_count; ++i) {
    delta.value[i] =
        after.value[i] >= before.value[i] ? after.value[i] - before.value[i]
                                          : 0;
    delta.available[i] = after.available[i] && before.available[i];
  }
  return delta;
}

json_value perf_counter_values::to_json() const {
  json_value out = json_value::object();
  for (std::size_t i = 0; i < perf_counter_count; ++i) {
    if (available[i]) out[counter_names[i]] = json_value{value[i]};
  }
  return out;
}

#if SSR_PERF_BACKEND

namespace {

struct event_config {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr std::array<event_config, perf_counter_count> event_configs = {{
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
}};

int open_perf_event(const event_config& cfg, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = cfg.type;
  attr.config = cfg.config;
  // Kernel/hypervisor exclusion widens what perf_event_paranoid permits.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(::syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                    /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

}  // namespace

perf_counter_group::perf_counter_group() {
  fd_.fill(-1);
  slot_.fill(-1);
  if (std::getenv("SSR_PERF_DISABLE") != nullptr) {
    status_ = "disabled by SSR_PERF_DISABLE";
    return;
  }
  int first_errno = 0;
  for (std::size_t i = 0; i < perf_counter_count; ++i) {
    const int fd = open_perf_event(event_configs[i], leader_fd_);
    if (fd < 0) {
      if (first_errno == 0) first_errno = errno;
      continue;
    }
    if (leader_fd_ < 0) leader_fd_ = fd;
    fd_[i] = fd;
    slot_[i] = open_count_++;
    available_[i] = true;
  }
  if (open_count_ == 0) {
    status_ = std::string("perf_event_open: ") + std::strerror(first_errno) +
              " (perf_event_paranoid / container restrictions?)";
  } else if (open_count_ < static_cast<int>(perf_counter_count)) {
    status_ = "partial: some events unsupported or restricted";
  }
}

perf_counter_group::~perf_counter_group() {
  for (const int fd : fd_) {
    if (fd >= 0) ::close(fd);
  }
}

bool perf_counter_group::available() const { return open_count_ > 0; }

perf_counter_values perf_counter_group::read() const {
  perf_counter_values out;
  if (open_count_ == 0) return out;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr]
  // (one u64 per opened event, in open order).
  std::array<std::uint64_t, 3 + perf_counter_count> buffer{};
  const ssize_t want = static_cast<ssize_t>(
      (3 + static_cast<std::size_t>(open_count_)) * sizeof(std::uint64_t));
  const ssize_t got = ::read(leader_fd_, buffer.data(),
                             static_cast<std::size_t>(want));
  if (got < want) return out;
  const std::uint64_t enabled = buffer[1];
  const std::uint64_t running = buffer[2];
  for (std::size_t i = 0; i < perf_counter_count; ++i) {
    if (!available_[i]) continue;
    std::uint64_t v = buffer[3 + static_cast<std::size_t>(slot_[i])];
    if (running > 0 && running < enabled) {
      // The kernel multiplexed the group; scale to the full enabled window.
      const double scale = static_cast<double>(enabled) /
                           static_cast<double>(running);
      v = static_cast<std::uint64_t>(static_cast<double>(v) * scale);
    }
    out.value[i] = v;
    out.available[i] = true;
  }
  return out;
}

#else  // !SSR_PERF_BACKEND

perf_counter_group::perf_counter_group() {
  fd_.fill(-1);
  slot_.fill(-1);
  status_ = "stub backend (perf_event_open not available on this platform)";
}

perf_counter_group::~perf_counter_group() = default;

bool perf_counter_group::available() const { return false; }

perf_counter_values perf_counter_group::read() const { return {}; }

#endif  // SSR_PERF_BACKEND

json_value perf_counter_group::availability_json() const {
  json_value out = json_value::object();
  json_value flags = json_value::object();
  for (std::size_t i = 0; i < perf_counter_count; ++i) {
    flags[counter_names[i]] = json_value{available_[i]};
  }
  out["available"] = std::move(flags);
  out["status"] = json_value{status_};
  return out;
}

}  // namespace ssr::obs
