// Per-engine event counters -- the lowest, cheapest layer of the
// observability stack (see obs/metrics.hpp for the registry above it).
//
// Engines hold a nullable pointer to one of these and increment fields
// directly; the disabled path (the default, no counters attached) is a
// single predictable `if (counters_)` branch per executed interaction,
// measured to be within noise of the uninstrumented loop
// (tests/obs_overhead_test.cpp).  Not thread-safe by design: one engine,
// one struct.
//
// This header is dependency-free (pp/engine.hpp includes it); JSON
// serialization lives in obs/metrics.hpp.
#pragma once

#include <cstdint>

namespace ssr::obs {

/// Invariant (checked in tests/obs_metrics_test.cpp): after any run,
///   interactions_executed + certain_nulls_skipped == engine.interactions(),
/// and interactions_executed equals the number of pre/post hook
/// invocations -- skipped certain-nulls are counted here but never
/// surfaced to hooks.
struct engine_counters {
  /// Interactions actually executed (transition function invoked).
  std::uint64_t interactions_executed = 0;
  /// Certainly-null interactions elided by geometric skips or quiescent
  /// jumps (batched count engine only).
  std::uint64_t certain_nulls_skipped = 0;
  /// Executed interactions whose transition changed some state.
  std::uint64_t transitions_changed = 0;
  /// Fenwick-tree weight updates (batched count engine re-filing agents).
  std::uint64_t fenwick_updates = 0;
  /// Geometric skip draws taken (each elides one run of certain nulls).
  std::uint64_t geometric_draws = 0;
  /// Budget exhaustions absorbed in one jump because the engine proved
  /// quiescence.
  std::uint64_t quiescent_jumps = 0;
  /// Scheduler batches drawn (batched block engine only).
  std::uint64_t batches_drawn = 0;

  void reset() { *this = engine_counters{}; }

  /// Merges another engine's counters into this one (for cross-trial
  /// aggregation).
  engine_counters& operator+=(const engine_counters& other) {
    interactions_executed += other.interactions_executed;
    certain_nulls_skipped += other.certain_nulls_skipped;
    transitions_changed += other.transitions_changed;
    fenwick_updates += other.fenwick_updates;
    geometric_draws += other.geometric_draws;
    quiescent_jumps += other.quiescent_jumps;
    batches_drawn += other.batches_drawn;
    return *this;
  }
};

}  // namespace ssr::obs
