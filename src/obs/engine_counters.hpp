// Per-engine event counters -- the lowest, cheapest layer of the
// observability stack (see obs/metrics.hpp for the registry above it).
//
// Engines hold a nullable pointer to one of these and increment fields
// directly; the disabled path (the default, no counters attached) is a
// single predictable `if (counters_)` branch per executed interaction,
// measured to be within noise of the uninstrumented loop
// (tests/obs_overhead_test.cpp).  The plain struct is not thread-safe by
// design: one engine, one struct.  Engines that run concurrent workers
// (the sharded engine) give each worker task its own private
// engine_counters and merge them through shared_engine_counters below --
// an atomic absorption point -- before publishing into the plain struct a
// caller attached, so callers never observe torn counts
// (tests/sharded_scheduler_fuzz_test.cpp runs this under TSan).
//
// This header is dependency-free beyond <atomic> (pp/engine.hpp includes
// it); JSON serialization lives in obs/metrics.hpp.
#pragma once

#include <atomic>
#include <cstdint>

namespace ssr::obs {

/// Invariant (checked in tests/obs_metrics_test.cpp): after any run,
///   interactions_executed + certain_nulls_skipped == engine.interactions(),
/// and interactions_executed equals the number of pre/post hook
/// invocations -- skipped certain-nulls are counted here but never
/// surfaced to hooks.
struct engine_counters {
  /// Interactions actually executed (transition function invoked).
  std::uint64_t interactions_executed = 0;
  /// Certainly-null interactions elided by geometric skips or quiescent
  /// jumps (batched count engine only).
  std::uint64_t certain_nulls_skipped = 0;
  /// Executed interactions whose transition changed some state.
  std::uint64_t transitions_changed = 0;
  /// Fenwick-tree weight updates (batched count engine re-filing agents).
  std::uint64_t fenwick_updates = 0;
  /// Geometric skip draws taken (each elides one run of certain nulls).
  std::uint64_t geometric_draws = 0;
  /// Budget exhaustions absorbed in one jump because the engine proved
  /// quiescence.
  std::uint64_t quiescent_jumps = 0;
  /// Scheduler batches drawn (batched block engine only).
  std::uint64_t batches_drawn = 0;
  /// Interaction rounds planned by the sharded engine (sharded engine
  /// only); interactions_executed / shard_rounds is the realized round
  /// length.
  std::uint64_t shard_rounds = 0;

  void reset() { *this = engine_counters{}; }

  /// Merges another engine's counters into this one (for cross-trial
  /// aggregation).
  engine_counters& operator+=(const engine_counters& other) {
    interactions_executed += other.interactions_executed;
    certain_nulls_skipped += other.certain_nulls_skipped;
    transitions_changed += other.transitions_changed;
    fenwick_updates += other.fenwick_updates;
    geometric_draws += other.geometric_draws;
    quiescent_jumps += other.quiescent_jumps;
    batches_drawn += other.batches_drawn;
    shard_rounds += other.shard_rounds;
    return *this;
  }
};

/// Atomic merge point for engines with concurrent workers: each worker
/// accumulates into a private engine_counters and absorb()s it once (a
/// handful of relaxed fetch_adds per task, nothing per interaction), and
/// the coordinating thread drains the totals with snapshot_and_reset()
/// after joining the workers.  Relaxed ordering suffices because every
/// reader synchronizes with the writers through the worker join / barrier
/// that precedes the drain.
class shared_engine_counters {
 public:
  void absorb(const engine_counters& c) {
    interactions_executed_.fetch_add(c.interactions_executed,
                                     std::memory_order_relaxed);
    certain_nulls_skipped_.fetch_add(c.certain_nulls_skipped,
                                     std::memory_order_relaxed);
    transitions_changed_.fetch_add(c.transitions_changed,
                                   std::memory_order_relaxed);
    fenwick_updates_.fetch_add(c.fenwick_updates, std::memory_order_relaxed);
    geometric_draws_.fetch_add(c.geometric_draws, std::memory_order_relaxed);
    quiescent_jumps_.fetch_add(c.quiescent_jumps, std::memory_order_relaxed);
    batches_drawn_.fetch_add(c.batches_drawn, std::memory_order_relaxed);
    shard_rounds_.fetch_add(c.shard_rounds, std::memory_order_relaxed);
  }

  /// Returns the accumulated totals and zeroes them, as one logical unit
  /// (exact once concurrent absorb()ers have quiesced, which the caller's
  /// join guarantees).
  engine_counters snapshot_and_reset() {
    engine_counters c;
    c.interactions_executed =
        interactions_executed_.exchange(0, std::memory_order_relaxed);
    c.certain_nulls_skipped =
        certain_nulls_skipped_.exchange(0, std::memory_order_relaxed);
    c.transitions_changed =
        transitions_changed_.exchange(0, std::memory_order_relaxed);
    c.fenwick_updates = fenwick_updates_.exchange(0, std::memory_order_relaxed);
    c.geometric_draws = geometric_draws_.exchange(0, std::memory_order_relaxed);
    c.quiescent_jumps = quiescent_jumps_.exchange(0, std::memory_order_relaxed);
    c.batches_drawn = batches_drawn_.exchange(0, std::memory_order_relaxed);
    c.shard_rounds = shard_rounds_.exchange(0, std::memory_order_relaxed);
    return c;
  }

 private:
  std::atomic<std::uint64_t> interactions_executed_{0};
  std::atomic<std::uint64_t> certain_nulls_skipped_{0};
  std::atomic<std::uint64_t> transitions_changed_{0};
  std::atomic<std::uint64_t> fenwick_updates_{0};
  std::atomic<std::uint64_t> geometric_draws_{0};
  std::atomic<std::uint64_t> quiescent_jumps_{0};
  std::atomic<std::uint64_t> batches_drawn_{0};
  std::atomic<std::uint64_t> shard_rounds_{0};
};

}  // namespace ssr::obs
