#include "obs/metrics.hpp"

#include <cmath>

namespace ssr::obs {

json_value to_json(const engine_counters& c) {
  json_value out = json_value::object();
  out["interactions_executed"] = json_value{c.interactions_executed};
  out["certain_nulls_skipped"] = json_value{c.certain_nulls_skipped};
  out["transitions_changed"] = json_value{c.transitions_changed};
  out["fenwick_updates"] = json_value{c.fenwick_updates};
  out["geometric_draws"] = json_value{c.geometric_draws};
  out["quiescent_jumps"] = json_value{c.quiescent_jumps};
  out["batches_drawn"] = json_value{c.batches_drawn};
  out["shard_rounds"] = json_value{c.shard_rounds};
  return out;
}

void histogram::record(double sample) {
  if constexpr (!metrics_compiled_in) return;
  const std::scoped_lock lock(mutex_);
  if (data_.count == 0) {
    data_.min = data_.max = sample;
  } else {
    data_.min = std::min(data_.min, sample);
    data_.max = std::max(data_.max, sample);
  }
  ++data_.count;
  data_.sum += sample;
  data_.sum_squares += sample * sample;
  sketch_.add(sample);
  if (sample > 0.0 && std::isfinite(sample)) {
    ++buckets_[static_cast<int>(std::floor(std::log2(sample)))];
  }
}

void histogram::merge(const histogram& other) {
  if constexpr (!metrics_compiled_in) return;
  if (&other == this) {
    // Self-merge: locking mutex_ twice is UB, so double in place.
    const std::scoped_lock lock(mutex_);
    data_.count *= 2;
    data_.sum *= 2.0;
    data_.sum_squares *= 2.0;
    for (auto& [log2_floor, count] : buckets_) count *= 2;
    sketch_.merge(sketch_);  // the sketch handles self-merge via a copy
    return;
  }
  const std::scoped_lock lock(mutex_, other.mutex_);
  if (other.data_.count == 0) return;
  if (data_.count == 0) {
    data_.min = other.data_.min;
    data_.max = other.data_.max;
  } else {
    data_.min = std::min(data_.min, other.data_.min);
    data_.max = std::max(data_.max, other.data_.max);
  }
  data_.count += other.data_.count;
  data_.sum += other.data_.sum;
  data_.sum_squares += other.data_.sum_squares;
  for (const auto& [log2_floor, count] : other.buckets_) {
    buckets_[log2_floor] += count;
  }
  sketch_.merge(other.sketch_);
}

histogram::snapshot_data histogram::snapshot() const {
  const std::scoped_lock lock(mutex_);
  snapshot_data snap = data_;
  snap.p50 = sketch_.quantile(0.50);
  snap.p90 = sketch_.quantile(0.90);
  snap.p99 = sketch_.quantile(0.99);
  return snap;
}

json_value histogram::to_json() const {
  const std::scoped_lock lock(mutex_);
  json_value out = json_value::object();
  out["count"] = json_value{data_.count};
  out["sum"] = json_value{data_.sum};
  out["min"] = json_value{data_.min};
  out["max"] = json_value{data_.max};
  out["mean"] = json_value{
      data_.count > 0 ? data_.sum / static_cast<double>(data_.count) : 0.0};
  out["p50"] = json_value{sketch_.quantile(0.50)};
  out["p90"] = json_value{sketch_.quantile(0.90)};
  out["p99"] = json_value{sketch_.quantile(0.99)};
  json_value buckets = json_value::object();
  for (const auto& [log2_floor, count] : buckets_) {
    buckets[std::to_string(log2_floor)] = json_value{count};
  }
  out["log2_buckets"] = std::move(buckets);
  return out;
}

counter& metrics_registry::counter_locked(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<counter>())
             .first;
  }
  return *it->second;
}

gauge& metrics_registry::gauge_locked(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<gauge>()).first;
  }
  return *it->second;
}

histogram& metrics_registry::histogram_locked(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<histogram>())
             .first;
  }
  return *it->second;
}

counter& metrics_registry::get_counter(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  return counter_locked(name);
}

gauge& metrics_registry::get_gauge(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  return gauge_locked(name);
}

histogram& metrics_registry::get_histogram(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  return histogram_locked(name);
}

void metrics_registry::absorb(const engine_counters& c) {
  get_counter("engine.interactions_executed").add(c.interactions_executed);
  get_counter("engine.certain_nulls_skipped").add(c.certain_nulls_skipped);
  get_counter("engine.transitions_changed").add(c.transitions_changed);
  get_counter("engine.fenwick_updates").add(c.fenwick_updates);
  get_counter("engine.geometric_draws").add(c.geometric_draws);
  get_counter("engine.quiescent_jumps").add(c.quiescent_jumps);
  get_counter("engine.batches_drawn").add(c.batches_drawn);
  get_counter("engine.shard_rounds").add(c.shard_rounds);
}

void metrics_registry::absorb(const metrics_registry& other) {
  if constexpr (!metrics_compiled_in) return;
  // Absorbing a registry into itself is a no-op (doubling every metric is
  // never what a caller wants, and locking mutex_ twice is UB).
  if (&other == this) return;
  // scoped_lock's deadlock-avoidance makes concurrent absorb(a -> b) and
  // absorb(b -> a) safe.  The registry mutexes are always taken before any
  // histogram mutex, so merge() below cannot invert an order.
  const std::scoped_lock lock(mutex_, other.mutex_);
  for (const auto& [name, c] : other.counters_) {
    counter_locked(name).add(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauge_locked(name).set(g->value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram_locked(name).merge(*h);
  }
}

metrics_listing metrics_registry::list() const {
  const std::scoped_lock lock(mutex_);
  metrics_listing out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, c->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.gauges.emplace_back(name, g->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.histograms.emplace_back(name, h->snapshot());
  }
  return out;
}

json_value metrics_registry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  json_value out = json_value::object();
  // std::map iteration is already name-sorted within each metric family.
  for (const auto& [name, c] : counters_) {
    out[name] = json_value{c->value()};
  }
  for (const auto& [name, g] : gauges_) {
    out[name] = json_value{g->value()};
  }
  for (const auto& [name, h] : histograms_) {
    out[name] = h->to_json();
  }
  return out;
}

void metrics_registry::clear() {
  const std::scoped_lock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

metrics_registry& metrics_registry::global() {
  static metrics_registry instance;
  return instance;
}

}  // namespace ssr::obs
