#include "obs/metrics.hpp"

#include <cmath>

namespace ssr::obs {

json_value to_json(const engine_counters& c) {
  json_value out = json_value::object();
  out["interactions_executed"] = json_value{c.interactions_executed};
  out["certain_nulls_skipped"] = json_value{c.certain_nulls_skipped};
  out["transitions_changed"] = json_value{c.transitions_changed};
  out["fenwick_updates"] = json_value{c.fenwick_updates};
  out["geometric_draws"] = json_value{c.geometric_draws};
  out["quiescent_jumps"] = json_value{c.quiescent_jumps};
  out["batches_drawn"] = json_value{c.batches_drawn};
  return out;
}

void histogram::record(double sample) {
  if constexpr (!metrics_compiled_in) return;
  const std::scoped_lock lock(mutex_);
  if (data_.count == 0) {
    data_.min = data_.max = sample;
  } else {
    data_.min = std::min(data_.min, sample);
    data_.max = std::max(data_.max, sample);
  }
  ++data_.count;
  data_.sum += sample;
  if (sample > 0.0 && std::isfinite(sample)) {
    ++buckets_[static_cast<int>(std::floor(std::log2(sample)))];
  }
}

histogram::snapshot_data histogram::snapshot() const {
  const std::scoped_lock lock(mutex_);
  return data_;
}

json_value histogram::to_json() const {
  const std::scoped_lock lock(mutex_);
  json_value out = json_value::object();
  out["count"] = json_value{data_.count};
  out["sum"] = json_value{data_.sum};
  out["min"] = json_value{data_.min};
  out["max"] = json_value{data_.max};
  out["mean"] =
      json_value{data_.count > 0 ? data_.sum / data_.count : 0.0};
  json_value buckets = json_value::object();
  for (const auto& [log2_floor, count] : buckets_) {
    buckets[std::to_string(log2_floor)] = json_value{count};
  }
  out["log2_buckets"] = std::move(buckets);
  return out;
}

counter& metrics_registry::get_counter(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<counter>())
             .first;
  }
  return *it->second;
}

gauge& metrics_registry::get_gauge(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<gauge>()).first;
  }
  return *it->second;
}

histogram& metrics_registry::get_histogram(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<histogram>())
             .first;
  }
  return *it->second;
}

void metrics_registry::absorb(const engine_counters& c) {
  get_counter("engine.interactions_executed").add(c.interactions_executed);
  get_counter("engine.certain_nulls_skipped").add(c.certain_nulls_skipped);
  get_counter("engine.transitions_changed").add(c.transitions_changed);
  get_counter("engine.fenwick_updates").add(c.fenwick_updates);
  get_counter("engine.geometric_draws").add(c.geometric_draws);
  get_counter("engine.quiescent_jumps").add(c.quiescent_jumps);
  get_counter("engine.batches_drawn").add(c.batches_drawn);
}

json_value metrics_registry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  json_value out = json_value::object();
  // std::map iteration is already name-sorted within each metric family.
  for (const auto& [name, c] : counters_) {
    out[name] = json_value{c->value()};
  }
  for (const auto& [name, g] : gauges_) {
    out[name] = json_value{g->value()};
  }
  for (const auto& [name, h] : histograms_) {
    out[name] = h->to_json();
  }
  return out;
}

void metrics_registry::clear() {
  const std::scoped_lock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

metrics_registry& metrics_registry::global() {
  static metrics_registry instance;
  return instance;
}

}  // namespace ssr::obs
