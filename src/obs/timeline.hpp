// Hierarchical scoped-section profiler for the measurement pipeline.
//
// A timeline_profiler collects an aggregated call tree of named sections
// (phase -> trial -> engine.run -> batch.draw) with wall time, an optional
// hardware-counter delta (obs/perf_counters.hpp), and a "work unit" count
// per section -- engines report executed interactions as units, which is
// what turns raw counter deltas into the hardware-stable derived metrics
// (instructions per interaction, cycles per interaction, branch-miss rate)
// the bench reports gate on.  A bounded sample of concrete spans is also
// kept for the chrome/Perfetto export.
//
// Cost discipline follows engine_counters: instrumented code holds a
// nullable profiler pointer, and the detached path (the default) is a
// single predictable `if (profiler_)` branch *per run() call* -- the
// per-interaction hot loops are never touched (tests/obs_timeline_test.cpp
// guards this next to the counter overhead guard).  The collector itself is
// single-threaded by design, like engine_counters: one measuring thread,
// one profiler.  run_trials therefore serializes trials while a profiler
// is attached (hardware counters are per-thread anyway).
//
// The aggregated timeline_profile is plain data with deterministic
// serializers, pinned by golden-file tests:
//
//   write_folded()  -- folded-stack lines ("phase;trial;engine.run 1234"),
//                      weight = self wall time in nanoseconds; loads
//                      directly into speedscope or flamegraph.pl.
//   to_json()       -- the "profile" block embedded in BENCH_*.json
//                      (report schema v2.1) and ssr_cli --json summaries.
//
// chrome span export lives in analysis/trace_stats
// (chrome_profile_json), next to the trace-event exporter it mirrors.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/perf_counters.hpp"

namespace ssr::obs {

inline constexpr std::uint32_t timeline_no_parent = 0xffffffffu;

/// One aggregated node of the section tree.  Children always carry a
/// larger index than their parent (created on first entry).
struct timeline_section {
  std::string name;
  std::uint32_t parent = timeline_no_parent;
  std::uint32_t depth = 0;
  std::uint64_t count = 0;    // completed executions of this section
  std::uint64_t wall_ns = 0;  // inclusive wall time
  std::uint64_t units = 0;    // work units (executed interactions) attributed
  perf_counter_values perf;   // inclusive hardware-counter deltas
};

/// One concrete execution of a section, for span export.  Timestamps are
/// nanoseconds since the profiler's construction.
struct timeline_span {
  std::uint32_t section = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

/// Aggregated profile snapshot: plain data, deterministic to serialize.
struct timeline_profile {
  std::vector<timeline_section> sections;
  std::vector<timeline_span> spans;  // bounded sample, in completion order
  std::uint64_t spans_dropped = 0;
  std::array<bool, perf_counter_count> perf_available{};
  std::string perf_status;  // why perf is absent/degraded; "" when fully up

  /// Root-to-node path of a section, ';'-separated ("phase;trial;...").
  std::string path(std::uint32_t section) const;
  /// Self wall time per section: inclusive minus the children's inclusive
  /// time (clamped at 0 against clock jitter).
  std::vector<std::uint64_t> self_wall_ns() const;

  /// Folded-stack lines, one per section with nonzero self time (plus any
  /// zero-self parents with no samples are skipped): "a;b;c <self_ns>".
  /// Deterministic: sections print in creation order.
  void write_folded(std::ostream& os) const;

  /// The "profile" block: schema tag, per-section rows (path, count, wall,
  /// units, available perf deltas), span accounting, and the perf
  /// availability flags + status.
  json_value to_json() const;
};

/// Hardware-derived summary metrics computed over the sections that carry
/// work units (the engine.run level).  valid is false when no units were
/// recorded or the required counters were unavailable.
struct profile_derived {
  bool valid = false;
  std::uint64_t units = 0;
  double instructions_per_unit = 0.0;
  double cycles_per_unit = 0.0;
  /// branch_misses / instructions over the unit-carrying sections.
  double branch_miss_rate = 0.0;
};

profile_derived derive_hardware_metrics(const timeline_profile& profile);

struct timeline_options {
  /// Concrete spans kept for the chrome export; excess spans are counted in
  /// spans_dropped (aggregation is unaffected).
  std::size_t max_spans = 1u << 16;
  /// Optional hardware counters; when set, every section entry/exit reads
  /// the group and the section accumulates the delta.  The group must
  /// belong to the profiling thread and outlive the profiler.
  perf_counter_group* perf = nullptr;
};

/// Single-threaded section collector.  enter()/exit() must nest (exit the
/// most recently entered section first) -- use timeline_scope.
class timeline_profiler {
 public:
  explicit timeline_profiler(timeline_options options = {});

  timeline_profiler(const timeline_profiler&) = delete;
  timeline_profiler& operator=(const timeline_profiler&) = delete;

  /// Opens the section `name` under the currently open section (or at the
  /// root) and returns its section id.
  std::uint32_t enter(std::string_view name);
  /// Closes the innermost open section.  `section` must be the id enter()
  /// returned for it; mismatches close intervening sections defensively.
  void exit(std::uint32_t section);
  /// Attributes `n` work units (executed interactions) to the innermost
  /// open section.  No-op when no section is open.
  void add_units(std::uint64_t n);

  bool idle() const { return stack_.empty(); }
  const perf_counter_group* perf() const { return options_.perf; }

  /// Aggregated snapshot; open sections contribute nothing until exited.
  timeline_profile profile() const;

 private:
  struct frame {
    std::uint32_t section;
    std::uint64_t start_ns;
    perf_counter_values perf_at_entry;
  };

  std::uint64_t now_ns() const;
  std::uint32_t find_or_create(std::uint32_t parent, std::string_view name);

  timeline_options options_;
  std::vector<timeline_section> sections_;
  std::vector<std::uint32_t> roots_;                  // top-level sections
  std::vector<std::vector<std::uint32_t>> children_;  // per section
  std::vector<timeline_span> spans_;
  std::uint64_t spans_dropped_ = 0;
  std::vector<frame> stack_;
  std::int64_t epoch_ns_ = 0;  // steady_clock at construction
};

/// RAII section scope with the nullable-pointer discipline: a null profiler
/// costs one predictable branch on entry and one on destruction.
class timeline_scope {
 public:
  timeline_scope(timeline_profiler* profiler, std::string_view name)
      : profiler_(profiler) {
    if (profiler_ != nullptr) section_ = profiler_->enter(name);
  }
  ~timeline_scope() {
    if (profiler_ != nullptr) profiler_->exit(section_);
  }

  timeline_scope(const timeline_scope&) = delete;
  timeline_scope& operator=(const timeline_scope&) = delete;

 private:
  timeline_profiler* profiler_;
  std::uint32_t section_ = 0;
};

/// Process-wide default profiler -- the hook behind the --profile flags,
/// mirroring set_progress_default(): bench front ends install their
/// profiler here and run_trials / measure_convergence_with pick it up
/// without signature churn.  Thread-safe to set; the profiler itself is
/// single-threaded, so installers must also serialize the measured work
/// (run_trials does).
void set_profiler_default(timeline_profiler* profiler);
timeline_profiler* profiler_default();

}  // namespace ssr::obs
