#include "obs/trace.hpp"

#include <ostream>

#include "obs/run_info.hpp"

namespace ssr::obs {

std::string_view to_string(trace_event_kind kind) {
  switch (kind) {
    case trace_event_kind::run_start:
      return "run_start";
    case trace_event_kind::run_end:
      return "run_end";
    case trace_event_kind::phase_transition:
      return "phase_transition";
    case trace_event_kind::reset_wave_start:
      return "reset_wave_start";
    case trace_event_kind::reset_wave_end:
      return "reset_wave_end";
    case trace_event_kind::rank_collision:
      return "rank_collision";
    case trace_event_kind::convergence:
      return "convergence";
    case trace_event_kind::correctness_lost:
      return "correctness_lost";
  }
  return "unknown";
}

std::optional<trace_event_kind> trace_event_kind_from_string(
    std::string_view name) {
  for (const trace_event_kind kind :
       {trace_event_kind::run_start, trace_event_kind::run_end,
        trace_event_kind::phase_transition,
        trace_event_kind::reset_wave_start,
        trace_event_kind::reset_wave_end, trace_event_kind::rank_collision,
        trace_event_kind::convergence,
        trace_event_kind::correctness_lost}) {
    if (to_string(kind) == name) return kind;
  }
  return std::nullopt;
}

trace_sink::trace_sink(trace_options options) : options_(options) {
  if (options_.sample_every == 0) options_.sample_every = 1;
}

void trace_sink::emit(const trace_event& event) {
  ++offered_;
  if (event.kind == trace_event_kind::phase_transition &&
      options_.sample_every > 1) {
    // Sample on the offered-event index so the kept subset is deterministic
    // for a given executed trajectory.
    if (offered_ % options_.sample_every != 0) {
      ++sampled_out_;
      return;
    }
  }
  if (events_.size() >= options_.max_events) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

json_value trace_sink::event_to_json(
    const trace_event& event,
    std::span<const std::string_view> phase_names) const {
  json_value out = json_value::object();
  out["event"] = json_value{to_string(event.kind)};
  out["time"] = json_value{event.time};
  out["interaction"] = json_value{event.interaction};
  if (event.agent != trace_no_agent) {
    out["agent"] = json_value{static_cast<std::uint64_t>(event.agent)};
  }
  if (event.kind == trace_event_kind::phase_transition) {
    out["from_phase"] = json_value{static_cast<std::int64_t>(event.from_phase)};
    out["to_phase"] = json_value{static_cast<std::int64_t>(event.to_phase)};
    if (event.from_phase >= 0 &&
        static_cast<std::size_t>(event.from_phase) < phase_names.size()) {
      out["from"] = json_value{phase_names[event.from_phase]};
    }
    if (event.to_phase >= 0 &&
        static_cast<std::size_t>(event.to_phase) < phase_names.size()) {
      out["to"] = json_value{phase_names[event.to_phase]};
    }
  }
  return out;
}

json_value trace_sink::header_json(
    std::span<const std::string_view> phase_names) const {
  json_value header = json_value::object();
  header["event"] = json_value{"trace_header"};
  // v2 adds the format tag and producing revision so offline consumers
  // (trace_stats, report_trend) can join traces to bench history without
  // side-channel bookkeeping.  v1 headers (no schema/git_rev) still parse.
  header["schema"] = json_value{"ssr.trace"};
  header["schema_version"] = json_value{2};
  header["git_rev"] = json_value{git_revision()};
  header["offered"] = json_value{offered_};
  header["sampled_out"] = json_value{sampled_out_};
  header["dropped"] = json_value{dropped_};
  if (!phase_names.empty()) {
    json_value names = json_value::array();
    for (const std::string_view name : phase_names) {
      names.push_back(json_value{name});
    }
    header["phases"] = std::move(names);
  }
  return header;
}

void trace_sink::write_jsonl(
    std::ostream& os, std::span<const std::string_view> phase_names) const {
  os << header_json(phase_names).dump() << '\n';
  for (const trace_event& event : events_) {
    os << event_to_json(event, phase_names).dump() << '\n';
  }
}

}  // namespace ssr::obs
