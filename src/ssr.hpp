// Umbrella header: the full public API of the library.
//
//   #include "ssr.hpp"
//
// pulls in the population-protocol engine, the three self-stabilizing
// ranking protocols of the paper (plus the initialized contrast protocol),
// the probabilistic tool processes, the adversarial configuration
// generators, and the analysis utilities.  Individual headers remain
// includable on their own; see README.md for the architecture map.
#pragma once

#include "analysis/regression.hpp"
#include "analysis/statistics.hpp"
#include "analysis/table.hpp"
#include "pp/accelerated.hpp"
#include "pp/batch_scheduler.hpp"
#include "pp/continuous_time.hpp"
#include "pp/convergence.hpp"
#include "pp/engine.hpp"
#include "pp/graph.hpp"
#include "pp/graph_simulation.hpp"
#include "pp/protocol.hpp"
#include "pp/random.hpp"
#include "pp/rng.hpp"
#include "pp/scheduler.hpp"
#include "pp/sharded_scheduler.hpp"
#include "pp/simd.hpp"
#include "pp/simulation.hpp"
#include "pp/trial.hpp"
#include "processes/analytic.hpp"
#include "processes/bounded_epidemic.hpp"
#include "processes/epidemic.hpp"
#include "processes/roll_call.hpp"
#include "protocols/adversary.hpp"
#include "protocols/history_tree.hpp"
#include "protocols/describe.hpp"
#include "protocols/initialized.hpp"
#include "protocols/loose_stabilizing.hpp"
#include "protocols/names.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/propagate_reset.hpp"
#include "protocols/silent_n_state.hpp"
#include "protocols/state_space.hpp"
#include "protocols/serialize.hpp"
#include "protocols/sublinear.hpp"
#include "verify/graph_reachability.hpp"
#include "verify/reachability.hpp"
#include "verify/smc.hpp"
