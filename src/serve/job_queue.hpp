// Bounded async job queue with a fixed worker pool and admission control.
//
// The serve daemon must survive more concurrent clients than cores: CPU
// work is confined to `workers` threads, waiting requests sit in a queue
// bounded at `max_depth`, and a submit against a full queue is *rejected*
// (admission control) instead of buffered -- the caller turns that into a
// reject-with-retry-after wire response, which keeps tail latency bounded
// and sheds load at the edge rather than collapsing under it.
//
// Each job carries a shared cancel_token (pp/cancellation.hpp): deadlines
// and client disconnects cancel queued jobs before they ever run and abort
// running jobs at their next poll.  shutdown(drain=true) stops admission,
// lets the workers finish everything already accepted, and joins --
// the graceful path the daemon takes on SIGTERM or a shutdown request.
//
// Completion is exposed through a job_handle future: the submitting
// (connection) thread blocks in wait_for slices, emitting streamed
// progress events between slices while the worker computes.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "pp/cancellation.hpp"

namespace ssr::serve {

/// One submitted job's completion state.  The worker fulfills it exactly
/// once; any number of threads may wait on it.
class job_handle {
 public:
  enum class state : std::uint8_t { pending, done, failed, cancelled };

  /// Blocks up to `timeout` for completion; true iff the job finished
  /// (in any terminal state) within the window.
  bool wait_for(std::chrono::milliseconds timeout) const;
  void wait() const;

  state result_state() const;
  /// The worker's result (valid in state::done).
  std::shared_ptr<const obs::json_value> result() const;
  /// Human-readable failure reason (state::failed / state::cancelled).
  std::string error() const;
  /// True when a cancelled job died to its deadline rather than an
  /// explicit cancel request.
  bool deadline_expired() const;

  /// The job's cancellation token; the owner side (connection thread,
  /// admission controller) fires it to abandon the job.
  cancel_token& token() { return token_; }
  const cancel_token& token() const { return token_; }

  /// Worker-side completion (exactly one of these, exactly once).
  void complete(std::shared_ptr<const obs::json_value> result);
  void fail(std::string error);
  void cancel(std::string error);

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  state state_ = state::pending;
  std::shared_ptr<const obs::json_value> result_;
  std::string error_;
  bool deadline_expired_ = false;
  cancel_token token_;
};

/// What the queue runs: receives the job's token so the work can poll it.
using job_work = std::function<std::shared_ptr<const obs::json_value>(
    const cancel_token&)>;

struct job_queue_options {
  std::size_t workers = 2;
  /// Maximum *waiting* jobs (running jobs do not count against the bound).
  std::size_t max_depth = 16;
};

class job_queue {
 public:
  /// `registry` (optional) receives the queue's service-level telemetry:
  /// serve.queue_depth / serve.active_workers gauges, serve.jobs_* counters
  /// and the serve.job_seconds latency histogram (p50/p90/p99 via the
  /// embedded quantile sketch).
  job_queue(job_queue_options options, obs::metrics_registry* registry);
  ~job_queue();

  job_queue(const job_queue&) = delete;
  job_queue& operator=(const job_queue&) = delete;

  /// Admission control: enqueues `work` and returns its handle, or nullptr
  /// when the queue is saturated (or shutting down) -- the caller sheds the
  /// request.  Never blocks.
  std::shared_ptr<job_handle> try_submit(job_work work);

  /// Stops admission; with drain=true runs everything already queued to
  /// completion, otherwise cancels the queued jobs (running jobs get their
  /// tokens fired and are awaited either way).  Idempotent; joins the
  /// workers before returning.
  void shutdown(bool drain);

  std::size_t depth() const;
  std::size_t active_workers() const;
  std::size_t max_depth() const { return options_.max_depth; }
  std::size_t workers() const { return options_.workers; }

 private:
  struct queued_job {
    job_work work;
    std::shared_ptr<job_handle> handle;
  };

  void worker_loop();
  void run_job(queued_job job);
  void set_depth_gauge(std::size_t depth);

  job_queue_options options_;
  obs::metrics_registry* registry_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<queued_job> queue_;
  /// Handles of jobs currently executing, so an immediate shutdown can
  /// fire their tokens (drain leaves them to finish).
  std::vector<std::shared_ptr<job_handle>> running_;
  std::size_t active_ = 0;
  bool accepting_ = true;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ssr::serve
