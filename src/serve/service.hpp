// The serve request handler: one JSON request line in, one (or more, with
// progress streaming) JSON documents out.
//
// This layer is deliberately transport-free -- it never sees a socket --
// so the whole wire behavior (validation errors, admission control,
// deadline handling, cache semantics, stats) is unit-testable in-process;
// serve/server.hpp glues it to TCP connections.  docs/serving.md is the
// schema reference.
//
// Request documents (line-delimited JSON objects):
//
//   {"type":"run", "id":..., "protocol":..., "scenario":..., "n":...,
//    "h":..., "t_max":..., "trials":..., "seed":..., "max_time":...,
//    "engine":..., "shards":..., "deadline_ms":..., "progress":bool,
//    "no_cache":bool,
//    "trace":bool | {"enabled":bool,"sample_every":N,"max_events":N},
//    "profile":bool}
//   {"type":"run", "id":..., "scenario":{...ssr.scenario v1 document...},
//    "deadline_ms":..., "progress":bool, "no_cache":bool}
//      -- "scenario" as an *object* switches to the declarative form
//         (obs/scenario.hpp); with a telemetry dir the job persists a full
//         run bundle (obs/bundle.hpp) under <dir>/<request_id>/ and the
//         response carries {"bundle":{"ok","dir","manifest"}}.
//   {"type":"stats", "id":...} | {"type":"metrics", "id":...}
//   {"type":"ping", "id":...} | {"type":"shutdown", "id":...}
//
// Response documents (the request's "id" is echoed verbatim):
//
//   {"id":..., "type":"result", "ok":true, "cached":bool,
//    "fingerprint":..., "request_id":"job-N",
//    "result":{...},                              -- runner.hpp layout
//    "telemetry":{...}}                           -- only when requested:
//      {"request_id":"job-N",
//       "trace":{"header":{...},"events":[...]},  -- trace requested
//       "profile":{...},                          -- profile requested
//       "artifacts":{"dir":...,"trace":...,       -- daemon has a
//                    "profile":...,"events":...}} --   telemetry dir
//   {"id":..., "type":"error", "ok":false, "error":<kind>, "message":...,
//    "field_errors":[{"field","message"},...],    -- kind=invalid_request
//    "retry_after_ms":N}                          -- kind=saturated
//   {"id":..., "type":"progress", "trials_completed":N, "trials_total":N,
//    "elapsed_ms":N}                              -- interim, progress=true
//   {"id":..., "type":"stats", "ok":true, "stats":{...}}
//   {"id":..., "type":"metrics", "ok":true,
//    "content_type":"text/plain; version=0.0.4",
//    "metrics":"<Prometheus exposition text>"}
//   {"id":..., "type":"pong", "ok":true}
//   {"id":..., "type":"shutdown", "ok":true, "draining":true}
//
// Error kinds: invalid_request, saturated, deadline_exceeded, cancelled,
// run_failed.
//
// Telemetry semantics: trace/profile options never enter the canonical
// spec or the cache fingerprint (they cannot change the result), but a
// telemetered request *bypasses the cache lookup* -- the artifacts only
// exist if the job executes -- while still populating the cache for later
// untelemetered replays.  obs/journal.hpp documents the events.jsonl job
// journal (schema "ssr.serve.events") written when the service has a
// telemetry directory.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "serve/job_queue.hpp"
#include "serve/result_cache.hpp"
#include "util/request_spec.hpp"

namespace ssr::obs {
struct scenario_doc;  // obs/scenario.hpp
}  // namespace ssr::obs

namespace ssr::serve {

struct request_telemetry;  // serve/request_context.hpp

struct service_options {
  /// Worker threads executing simulations.
  std::size_t workers = 2;
  /// Waiting jobs admitted before submits are shed with `saturated`.
  std::size_t max_queue_depth = 16;
  /// Result-cache entries (0 disables caching).
  std::size_t cache_capacity = 128;
  /// Suggested client backoff carried in `saturated` responses.
  std::chrono::milliseconds retry_after{250};
  /// Completion poll slice; also the progress-event emission period.
  std::chrono::milliseconds poll_interval{200};
  /// When nonempty: the directory receiving the events.jsonl job journal
  /// and per-job telemetry artifacts (<dir>/<request_id>/trace.jsonl,
  /// profile.json).  Created on construction.  Empty disables server-side
  /// telemetry persistence (in-band telemetry still works).
  std::string telemetry_dir{};
};

class service {
 public:
  explicit service(service_options options = {});
  ~service();

  service(const service&) = delete;
  service& operator=(const service&) = delete;

  /// Receives interim documents (progress events) while a run executes.
  using event_sink = std::function<void(const obs::json_value&)>;

  /// Handles one parsed request document and returns the final response.
  /// Blocks for the duration of a "run" job; progress events stream
  /// through `sink` when the request set "progress": true.
  obs::json_value handle(const obs::json_value& request,
                         const event_sink& sink = {});

  /// Parses one request line first; malformed JSON yields an
  /// invalid_request error response.
  obs::json_value handle_line(std::string_view line,
                              const event_sink& sink = {});

  /// The stats document served for {"type":"stats"} (queue, workers, job
  /// latency quantiles, job counters, cache counters).  Non-const only
  /// because reading a metric creates it on first use, which is also what
  /// makes a fresh service report explicit zeros.
  obs::json_value stats_document();

  /// The Prometheus text exposition served for {"type":"metrics"}: every
  /// registered serve.* metric (obs/exposition.hpp) plus point-in-time
  /// cache/queue gauges refreshed at scrape time.  Also what the daemon's
  /// periodic stats snapshot writes to disk.
  std::string metrics_text();

  /// Set once a {"type":"shutdown"} request is handled; the server's
  /// accept loop polls this to begin the graceful drain.
  bool shutdown_requested() const;

  /// Stops admission and runs every already-accepted job to completion.
  void drain();

  result_cache& cache() { return cache_; }
  obs::metrics_registry& metrics() { return metrics_; }
  const service_options& options() const { return options_; }
  /// The events.jsonl job journal; disabled unless options.telemetry_dir
  /// was set (tests may attach a stream via job_journal().open_stream()).
  obs::journal& job_journal() { return journal_; }

 private:
  obs::json_value handle_run(const obs::json_value& request,
                             const event_sink& sink);
  /// Shared execution path behind both run-request forms (flat fields and
  /// scenario payloads): admission, journal, progress streaming, caching.
  /// `scenario`, when non-null, marks a scenario payload -- the cache
  /// lookup is bypassed and a run bundle is persisted on completion.
  obs::json_value execute_run(const obs::json_value& request,
                              const event_sink& sink,
                              const util::sim_request_spec& spec,
                              const util::telemetry_spec& telemetry_options,
                              bool want_progress, bool no_cache,
                              std::optional<std::uint64_t> deadline_ms,
                              const obs::scenario_doc* scenario);
  /// Renders the response "telemetry" block and, when the service has a
  /// telemetry directory, persists the per-job artifacts.
  obs::json_value render_telemetry(const request_telemetry& telemetry,
                                   const std::string& request_id);

  service_options options_;
  obs::metrics_registry metrics_;
  result_cache cache_;
  job_queue queue_;
  /// The daemon's journal keeps its historical schema tag; local run
  /// bundles write the same vocabulary as "ssr.events" (obs/journal.hpp).
  obs::journal journal_{obs::journal_options{.schema = "ssr.serve.events"}};
  std::atomic<std::uint64_t> next_request_id_{1};
  std::atomic<bool> shutdown_requested_{false};
};

}  // namespace ssr::serve
