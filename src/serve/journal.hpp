// Structured job journal for the serve daemon (events.jsonl).
//
// One JSON object per line, append-only, flushed per event so the file is
// readable while the daemon runs and survives a crash mid-job.  The first
// line is a header document tagging the schema:
//
//   {"event":"journal_header","schema":"ssr.serve.events",
//    "schema_version":1,"git_rev":...}
//
// Every subsequent line carries the event name, a wall-clock timestamp
// ("ts_ms", milliseconds since the Unix epoch -- the journal is
// observability, not part of the deterministic result documents), and the
// event's fields.  The service emits (docs/observability.md has the field
// tables):
//
//   admit            -- job accepted by the queue (request_id, fingerprint,
//                       protocol, n, trials, queue_depth)
//   rejected         -- admission control shed the request (queue_depth)
//   start            -- a worker began executing (request_id, queue_depth)
//   progress         -- interim trial accounting (request_id,
//                       trials_completed, trials_total)
//   cache_hit        -- served from the result cache (request_id,
//                       fingerprint)
//   complete         -- terminal success (request_id, fingerprint,
//                       elapsed_ms, queue_depth, telemetry)
//   deadline_expired -- the per-request deadline fired (request_id,
//                       elapsed_ms, message)
//   cancelled        -- explicit cancellation (request_id, message)
//   failed           -- the simulation threw (request_id, message)
//
// Thread-safety: emit() serializes under a mutex; the service calls it
// from connection threads and from queue workers.
#pragma once

#include <fstream>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace ssr::serve {

class journal {
 public:
  /// Disabled journal: enabled() is false and emit() is a no-op.
  journal() = default;

  journal(const journal&) = delete;
  journal& operator=(const journal&) = delete;

  /// Opens `path` for appending and writes the journal_header line.
  /// Returns false (journal stays disabled) when the file cannot be
  /// opened.  Call at most once.
  bool open(const std::string& path);

  /// Streams into an externally owned ostream (tests); writes the header
  /// line immediately.
  void open_stream(std::ostream* os);

  bool enabled() const;

  /// Appends {"event": name, "ts_ms": <now>, ...fields} as one line and
  /// flushes.  `fields` must be a JSON object; its members are copied
  /// after the event/timestamp keys.
  void emit(std::string_view name, const obs::json_value& fields);

 private:
  std::ostream* out();
  void write_header();

  std::mutex mutex_;
  std::unique_ptr<std::ofstream> file_;
  std::ostream* external_ = nullptr;
};

}  // namespace ssr::serve
