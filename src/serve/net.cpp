#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ssr::serve {
namespace {

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

tcp_listener::~tcp_listener() { close(); }

bool tcp_listener::listen(std::uint16_t port, std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = errno_message("socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = errno_message("bind");
    close();
    return false;
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    if (error != nullptr) *error = errno_message("listen");
    close();
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    if (error != nullptr) *error = errno_message("getsockname");
    close();
    return false;
  }
  port_ = ntohs(bound.sin_port);
  return true;
}

int tcp_listener::accept_for(std::chrono::milliseconds timeout) {
  if (fd_ < 0) return -1;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready =
      ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return -1;
  return ::accept(fd_, nullptr, nullptr);
}

void tcp_listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

line_socket::~line_socket() {
  if (fd_ >= 0) ::close(fd_);
}

bool line_socket::read_line(std::string& line) {
  while (true) {
    const std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      line.assign(buffer_, 0, pos);
      buffer_.erase(0, pos + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) {
      if (buffer_.empty()) return false;
      line.swap(buffer_);
      buffer_.clear();
      return true;
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

bool line_socket::write_line(const std::string& text) {
  std::string out = text;
  out.push_back('\n');
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

int connect_local(std::uint16_t port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errno_message("socket");
    return -1;
  }
  sockaddr_in addr = loopback(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = errno_message("connect");
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace ssr::serve
