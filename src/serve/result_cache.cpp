#include "serve/result_cache.hpp"

namespace ssr::serve {

result_cache::result_cache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const obs::json_value> result_cache::get(
    const std::string& fingerprint) {
  const std::scoped_lock lock(mutex_);
  const auto it = index_.find(fingerprint);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->result;
}

void result_cache::put(const std::string& fingerprint,
                       std::shared_ptr<const obs::json_value> result) {
  if (capacity_ == 0) return;
  const std::scoped_lock lock(mutex_);
  const auto it = index_.find(fingerprint);
  if (it != index_.end()) {
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().fingerprint);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(entry{fingerprint, std::move(result)});
  index_.emplace(fingerprint, lru_.begin());
}

std::size_t result_cache::size() const {
  const std::scoped_lock lock(mutex_);
  return lru_.size();
}

std::uint64_t result_cache::hits() const {
  const std::scoped_lock lock(mutex_);
  return hits_;
}

std::uint64_t result_cache::misses() const {
  const std::scoped_lock lock(mutex_);
  return misses_;
}

std::uint64_t result_cache::evictions() const {
  const std::scoped_lock lock(mutex_);
  return evictions_;
}

double result_cache::hit_rate() const {
  const std::scoped_lock lock(mutex_);
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

}  // namespace ssr::serve
