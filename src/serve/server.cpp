#include "serve/server.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>

namespace ssr::serve {

server::server(server_options options)
    : options_(options), service_(options.service) {}

server::~server() {
  request_stop();
  listener_.close();
  for (std::thread& t : connection_threads_)
    if (t.joinable()) t.join();
}

bool server::listen(std::string* error) {
  return listener_.listen(options_.port, error);
}

void server::run() {
  using namespace std::chrono_literals;
  while (!stop_.load(std::memory_order_acquire) &&
         !service_.shutdown_requested()) {
    const int fd = listener_.accept_for(100ms);
    if (fd < 0) continue;
    const std::scoped_lock lock(connections_mutex_);
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
  listener_.close();
  // Graceful drain: no new admissions, everything accepted runs out.
  service_.drain();
  // Unblock connection readers parked in recv(); their threads then see
  // EOF and exit, making the joins below bounded.
  {
    const std::scoped_lock lock(connections_mutex_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : connection_threads_)
    if (t.joinable()) t.join();
}

void server::serve_connection(int fd) {
  line_socket socket(fd);
  std::string line;
  while (socket.read_line(line)) {
    if (line.empty()) continue;
    const obs::json_value response = service_.handle_line(
        line, [&socket](const obs::json_value& event) {
          socket.write_line(event.dump());
        });
    if (!socket.write_line(response.dump())) break;
    // The shutdown acknowledgement is the connection's last word; run()
    // notices the flag within one accept slice.
    const obs::json_value* type = response.find("type");
    if (type != nullptr && type->is_string() &&
        type->as_string() == "shutdown") {
      break;
    }
  }
  {
    const std::scoped_lock lock(connections_mutex_);
    const auto it = std::find(connection_fds_.begin(), connection_fds_.end(),
                              fd);
    if (it != connection_fds_.end()) connection_fds_.erase(it);
  }
  // line_socket's destructor closes fd.
}

}  // namespace ssr::serve
