// Fingerprint-keyed LRU cache of completed simulation results.
//
// SS-LE runs are pure functions of the canonical request spec
// (util/request_spec.hpp: protocol, n, seeds, engine, ...): seeds are
// derived deterministically per trial and every engine's trajectory is a
// pure function of (spec, seed), so caching by the canonical fingerprint
// is *exact* -- a hit returns bit-identical samples to re-running the
// request.  That turns repeated sweeps (parameter frontiers, CI replays,
// dashboards polling the same points) into O(1) lookups.
//
// The cache is a plain mutex-guarded LRU over shared_ptr values: lookups
// hand out refcounted snapshots, so an entry evicted while a response is
// being serialized stays alive for that response.  Telemetry (hits,
// misses, evictions, entries) lands in the service's metrics registry via
// the counters the owner reads off this class.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/json.hpp"

namespace ssr::serve {

class result_cache {
 public:
  /// `capacity` = maximum retained entries; 0 disables caching entirely
  /// (every get() misses, put() is a no-op).
  explicit result_cache(std::size_t capacity);

  /// Returns the cached result for `fingerprint` (refreshing its recency)
  /// or nullptr on a miss.  Thread-safe.
  std::shared_ptr<const obs::json_value> get(const std::string& fingerprint);

  /// Inserts (or refreshes) `result` under `fingerprint`, evicting the
  /// least-recently-used entry when full.  Thread-safe.
  void put(const std::string& fingerprint,
           std::shared_ptr<const obs::json_value> result);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

  /// hits / (hits + misses); 0 when the cache has not been queried yet.
  double hit_rate() const;

 private:
  struct entry {
    std::string fingerprint;
    std::shared_ptr<const obs::json_value> result;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace ssr::serve
