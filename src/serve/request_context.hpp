// Per-request telemetry context for serve jobs.
//
// A "run" request that opts into wire telemetry ("trace" / "profile",
// docs/serving.md "Wire telemetry") gets one of these: the service
// constructs it on the connection thread, the runner fills it on the
// worker thread (trace sink, phase-name table, profile document), and the
// service renders it back out -- in-band inside the result document and,
// when the daemon runs with a telemetry directory, as per-job artifact
// files next to the events.jsonl journal.
//
// Threading: exactly one worker executes the job, and the connection
// thread only reads the context after job_handle reports a terminal state
// (the handle's completion is the synchronization point), so no locking
// is needed here.
#pragma once

#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/request_spec.hpp"

namespace ssr::serve {

struct request_telemetry {
  explicit request_telemetry(const util::telemetry_spec& opts)
      : options(opts),
        trace(obs::trace_options{
            .sample_every = opts.trace_sample_every,
            .max_events = static_cast<std::size_t>(opts.trace_max_events)}) {}

  util::telemetry_spec options;

  /// Trace of the job's *first trial*.  Serve jobs run trials sequentially
  /// (the worker pool is the concurrency), so trial 0 is a deterministic,
  /// representative trajectory and the trace keeps the single-run framing
  /// tools/trace_stats expects.
  obs::trace_sink trace;

  /// Phase-name table of the traced protocol; entries point at the
  /// protocol's static obs_phase_name storage, so the span outlives the
  /// engines.  Empty for protocols without phase instrumentation.
  std::vector<std::string_view> phase_names;

  /// timeline_profile::to_json() over the whole job (every trial); null
  /// when profiling was not requested.
  obs::json_value profile;

  /// The in-band trace transport: {"header": <trace_header>, "events":
  /// [...]}.  Header and events are rendered by the same serializers
  /// write_jsonl uses, so a client that writes header + events one JSON
  /// dump per line reconstructs the exact JSONL file trace_stats parses.
  obs::json_value trace_json() const {
    obs::json_value doc = obs::json_value::object();
    doc["header"] = trace.header_json(phase_names);
    obs::json_value events = obs::json_value::array();
    for (const obs::trace_event& event : trace.events()) {
      events.push_back(trace.event_to_json(event, phase_names));
    }
    doc["events"] = std::move(events);
    return doc;
  }
};

}  // namespace ssr::serve
