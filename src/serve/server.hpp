// TCP front end for the serve service: accept loop, one thread per
// connection, graceful drain.
//
// The accept loop polls in bounded slices so it notices both external
// stops (request_stop(), wired to SIGINT/SIGTERM by the daemon) and the
// in-band {"type":"shutdown"} request.  Shutdown is always graceful:
// admission stops, in-flight jobs run to completion, open connections are
// shut down at the socket layer to unblock their readers, and every
// connection thread is joined before run() returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/net.hpp"
#include "serve/service.hpp"

namespace ssr::serve {

struct server_options {
  service_options service;
  /// Listen port; 0 picks an ephemeral port (tests read it via port()).
  std::uint16_t port = 0;
};

class server {
 public:
  explicit server(server_options options);
  ~server();

  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// Binds the listener.  False + `*error` on failure.
  bool listen(std::string* error);
  std::uint16_t port() const { return listener_.port(); }

  /// Serves until a shutdown request arrives or request_stop() is called,
  /// then drains and joins.  Call from a dedicated thread in tests.
  void run();

  /// Asynchronously asks run() to stop (atomic store only, so a signal
  /// handler may call it).
  void request_stop() { stop_.store(true, std::memory_order_release); }

  service& svc() { return service_; }

 private:
  void serve_connection(int fd);

  server_options options_;
  service service_;
  tcp_listener listener_;
  std::atomic<bool> stop_{false};
  std::mutex connections_mutex_;
  std::vector<std::thread> connection_threads_;
  std::vector<int> connection_fds_;
};

}  // namespace ssr::serve
