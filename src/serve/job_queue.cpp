#include "serve/job_queue.hpp"

#include <exception>

namespace ssr::serve {

bool job_handle::wait_for(std::chrono::milliseconds timeout) const {
  std::unique_lock lock(mutex_);
  return cv_.wait_for(lock, timeout,
                      [&] { return state_ != state::pending; });
}

void job_handle::wait() const {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return state_ != state::pending; });
}

job_handle::state job_handle::result_state() const {
  const std::scoped_lock lock(mutex_);
  return state_;
}

std::shared_ptr<const obs::json_value> job_handle::result() const {
  const std::scoped_lock lock(mutex_);
  return result_;
}

std::string job_handle::error() const {
  const std::scoped_lock lock(mutex_);
  return error_;
}

bool job_handle::deadline_expired() const {
  const std::scoped_lock lock(mutex_);
  return deadline_expired_;
}

void job_handle::complete(std::shared_ptr<const obs::json_value> result) {
  {
    const std::scoped_lock lock(mutex_);
    if (state_ != state::pending) return;
    state_ = state::done;
    result_ = std::move(result);
  }
  cv_.notify_all();
}

void job_handle::fail(std::string error) {
  {
    const std::scoped_lock lock(mutex_);
    if (state_ != state::pending) return;
    state_ = state::failed;
    error_ = std::move(error);
  }
  cv_.notify_all();
}

void job_handle::cancel(std::string error) {
  {
    const std::scoped_lock lock(mutex_);
    if (state_ != state::pending) return;
    state_ = state::cancelled;
    error_ = std::move(error);
    deadline_expired_ = token_.deadline_expired();
  }
  cv_.notify_all();
}

job_queue::job_queue(job_queue_options options,
                     obs::metrics_registry* registry)
    : options_(options), registry_(registry) {
  if (options_.workers == 0) options_.workers = 1;
  if (registry_ != nullptr) {
    registry_->get_gauge("serve.queue_depth").set(0.0);
    registry_->get_gauge("serve.active_workers").set(0.0);
    registry_->get_gauge("serve.worker_pool")
        .set(static_cast<double>(options_.workers));
    registry_->get_gauge("serve.queue_capacity")
        .set(static_cast<double>(options_.max_depth));
  }
  threads_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w)
    threads_.emplace_back([this] { worker_loop(); });
}

job_queue::~job_queue() { shutdown(/*drain=*/false); }

std::shared_ptr<job_handle> job_queue::try_submit(job_work work) {
  auto handle = std::make_shared<job_handle>();
  {
    const std::scoped_lock lock(mutex_);
    if (!accepting_ || queue_.size() >= options_.max_depth) {
      if (registry_ != nullptr)
        registry_->get_counter("serve.jobs_rejected").add(1);
      return nullptr;
    }
    queue_.push_back(queued_job{std::move(work), handle});
    set_depth_gauge(queue_.size());
  }
  if (registry_ != nullptr)
    registry_->get_counter("serve.jobs_submitted").add(1);
  cv_.notify_one();
  return handle;
}

void job_queue::shutdown(bool drain) {
  std::deque<queued_job> dropped;
  {
    const std::scoped_lock lock(mutex_);
    accepting_ = false;
    if (!drain) {
      dropped.swap(queue_);
      set_depth_gauge(0);
      // Abort in-flight work too: the running jobs poll their tokens and
      // surface as cancelled; joining below would otherwise block on them.
      for (const std::shared_ptr<job_handle>& handle : running_)
        handle->token().request_cancel();
    }
  }
  for (queued_job& job : dropped) {
    job.handle->token().request_cancel();
    job.handle->cancel("queue shut down before the job ran");
    if (registry_ != nullptr)
      registry_->get_counter("serve.jobs_cancelled").add(1);
  }
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_)
    if (t.joinable()) t.join();
  threads_.clear();
}

std::size_t job_queue::depth() const {
  const std::scoped_lock lock(mutex_);
  return queue_.size();
}

std::size_t job_queue::active_workers() const {
  const std::scoped_lock lock(mutex_);
  return active_;
}

void job_queue::set_depth_gauge(std::size_t depth) {
  if (registry_ != nullptr)
    registry_->get_gauge("serve.queue_depth")
        .set(static_cast<double>(depth));
}

void job_queue::worker_loop() {
  while (true) {
    queued_job job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      set_depth_gauge(queue_.size());
      ++active_;
      running_.push_back(job.handle);
      if (registry_ != nullptr)
        registry_->get_gauge("serve.active_workers")
            .set(static_cast<double>(active_));
    }
    const std::shared_ptr<job_handle> finished = job.handle;
    run_job(std::move(job));
    {
      const std::scoped_lock lock(mutex_);
      std::erase(running_, finished);
      --active_;
      if (registry_ != nullptr)
        registry_->get_gauge("serve.active_workers")
            .set(static_cast<double>(active_));
    }
  }
}

void job_queue::run_job(queued_job job) {
  // A token fired while the job sat in the queue (deadline, disconnect)
  // cancels it without ever starting the work.
  if (job.handle->token().cancelled()) {
    job.handle->cancel("cancelled before the job ran");
    if (registry_ != nullptr)
      registry_->get_counter("serve.jobs_cancelled").add(1);
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  try {
    std::shared_ptr<const obs::json_value> result =
        job.work(job.handle->token());
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (registry_ != nullptr) {
      registry_->get_histogram("serve.job_seconds").record(elapsed.count());
      registry_->get_counter("serve.jobs_completed").add(1);
    }
    job.handle->complete(std::move(result));
  } catch (const cancelled_error&) {
    job.handle->cancel("run cancelled");
    if (registry_ != nullptr)
      registry_->get_counter("serve.jobs_cancelled").add(1);
  } catch (const std::exception& e) {
    job.handle->fail(e.what());
    if (registry_ != nullptr)
      registry_->get_counter("serve.jobs_failed").add(1);
  }
}

}  // namespace ssr::serve
