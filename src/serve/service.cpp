#include "serve/service.hpp"

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "obs/bundle.hpp"
#include "obs/exposition.hpp"
#include "obs/progress.hpp"
#include "obs/scenario.hpp"
#include "serve/request_context.hpp"
#include "serve/runner.hpp"
#include "util/request_spec.hpp"

namespace ssr::serve {
namespace {

constexpr std::string_view k_request_types[] = {"run", "stats", "metrics",
                                                "ping", "shutdown"};

// Every field a "run" request may carry; anything else is rejected with a
// nearest-name suggestion so typos ("trails") fail loudly instead of
// silently running with the default.
constexpr std::string_view k_run_fields[] = {
    "type",     "id",    "protocol", "scenario",    "n",
    "h",        "t_max", "trials",   "seed",        "max_time",
    "engine",   "shards", "deadline_ms", "progress", "no_cache",
    "trace",    "profile",
};

/// Non-negative integral JSON number, exact in a double.
std::optional<std::uint64_t> as_u64(const obs::json_value& v) {
  if (!v.is_number()) return std::nullopt;
  const double d = v.as_double();
  if (d < 0.0 || d != std::floor(d) || d > 9.007199254740992e15)
    return std::nullopt;
  return static_cast<std::uint64_t>(d);
}

obs::json_value base_response(const obs::json_value& request,
                              std::string_view type) {
  obs::json_value doc = obs::json_value::object();
  const obs::json_value* id = request.find("id");
  doc["id"] = id != nullptr ? *id : obs::json_value();
  doc["type"] = type;
  return doc;
}

obs::json_value error_response(const obs::json_value& request,
                               std::string_view kind, std::string message) {
  obs::json_value doc = base_response(request, "error");
  doc["ok"] = false;
  doc["error"] = kind;
  doc["message"] = std::move(message);
  return doc;
}

obs::json_value field_errors_json(
    const std::vector<util::spec_error>& errors) {
  obs::json_value arr = obs::json_value::array();
  for (const util::spec_error& e : errors) {
    obs::json_value item = obs::json_value::object();
    item["field"] = e.field;
    item["message"] = e.message;
    arr.push_back(std::move(item));
  }
  return arr;
}

// The fields a scenario-payload run request may carry next to the
// "scenario" object; everything spec-shaped lives inside the document.
constexpr std::string_view k_scenario_run_fields[] = {
    "type", "id", "scenario", "deadline_ms", "progress", "no_cache",
};

}  // namespace

service::service(service_options options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity),
      queue_(job_queue_options{.workers = options_.workers,
                               .max_depth = options_.max_queue_depth},
             &metrics_) {
  if (!options_.telemetry_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.telemetry_dir, ec);
    // A failed open leaves the journal disabled rather than killing the
    // daemon: telemetry persistence is best-effort observability.
    journal_.open(options_.telemetry_dir + "/events.jsonl");
  }
}

service::~service() { queue_.shutdown(/*drain=*/false); }

obs::json_value service::handle_line(std::string_view line,
                                     const event_sink& sink) {
  std::string parse_error;
  const std::optional<obs::json_value> request =
      obs::json_value::parse(line, &parse_error);
  if (!request.has_value()) {
    return error_response(obs::json_value::object(), "invalid_request",
                          "malformed JSON: " + parse_error);
  }
  return handle(*request, sink);
}

obs::json_value service::handle(const obs::json_value& request,
                                const event_sink& sink) {
  if (!request.is_object()) {
    return error_response(obs::json_value::object(), "invalid_request",
                          "request must be a JSON object");
  }
  const obs::json_value* type = request.find("type");
  if (type == nullptr || !type->is_string()) {
    return error_response(request, "invalid_request",
                          "request needs a string \"type\" field");
  }
  const std::string& name = type->as_string();
  if (name == "run") return handle_run(request, sink);
  if (name == "stats") {
    obs::json_value doc = base_response(request, "stats");
    doc["ok"] = true;
    doc["stats"] = stats_document();
    return doc;
  }
  if (name == "metrics") {
    obs::json_value doc = base_response(request, "metrics");
    doc["ok"] = true;
    doc["content_type"] = "text/plain; version=0.0.4";
    doc["metrics"] = metrics_text();
    return doc;
  }
  if (name == "ping") {
    obs::json_value doc = base_response(request, "pong");
    doc["ok"] = true;
    return doc;
  }
  if (name == "shutdown") {
    shutdown_requested_.store(true, std::memory_order_release);
    obs::json_value doc = base_response(request, "shutdown");
    doc["ok"] = true;
    doc["draining"] = true;
    return doc;
  }
  return error_response(
      request, "invalid_request",
      util::unknown_name_message("request type", name, k_request_types));
}

obs::json_value service::handle_run(const obs::json_value& request,
                                    const event_sink& sink) {
  std::vector<util::spec_error> errors;
  bool want_progress = false;
  bool no_cache = false;
  std::optional<std::uint64_t> deadline_ms;

  // Scenario payload: {"type":"run","scenario":{...ssr.scenario v1...}}.
  // The document carries everything spec-shaped; only transport-level
  // fields may ride alongside it.
  const obs::json_value* scenario_field = request.find("scenario");
  if (scenario_field != nullptr && scenario_field->is_object()) {
    for (const auto& [field, value] : request.members()) {
      if (field == "type" || field == "id" || field == "scenario") continue;
      if (field == "deadline_ms") {
        const std::optional<std::uint64_t> u = as_u64(value);
        if (!u.has_value()) {
          errors.push_back({field, "must be a non-negative integer"});
          continue;
        }
        deadline_ms = *u;
        continue;
      }
      if (field == "progress" || field == "no_cache") {
        if (!value.is_bool()) {
          errors.push_back({field, "must be a boolean"});
          continue;
        }
        if (field == "progress") want_progress = value.as_bool();
        if (field == "no_cache") no_cache = value.as_bool();
        continue;
      }
      errors.push_back(
          {field, util::unknown_name_message("request field", field,
                                             k_scenario_run_fields)});
    }
    std::vector<util::spec_error> scenario_errors;
    const std::optional<obs::scenario_doc> scenario =
        obs::parse_scenario(*scenario_field, &scenario_errors);
    for (util::spec_error& e : scenario_errors) {
      errors.push_back({"scenario." + e.field, std::move(e.message)});
    }
    if (!errors.empty() || !scenario.has_value()) {
      obs::json_value doc =
          error_response(request, "invalid_request",
                         "invalid request: " + util::render_errors(errors));
      doc["field_errors"] = field_errors_json(errors);
      return doc;
    }
    return execute_run(request, sink, scenario->spec, scenario->telemetry,
                       want_progress, no_cache, deadline_ms, &*scenario);
  }

  util::spec_builder builder;
  util::telemetry_builder telemetry_builder;
  for (const auto& [field, value] : request.members()) {
    const auto bad_u64 = [&] {
      errors.push_back({field, "must be a non-negative integer"});
    };
    if (field == "type" || field == "id") continue;
    if (field == "trace") {
      obs::parse_trace_json(value, telemetry_builder, errors);
      continue;
    }
    if (field == "profile") {
      if (!value.is_bool()) {
        errors.push_back({field, "must be a boolean"});
        continue;
      }
      telemetry_builder.set_profile(value.as_bool());
      continue;
    }
    if (field == "protocol" || field == "scenario" || field == "engine") {
      if (!value.is_string()) {
        errors.push_back({field, "must be a string"});
        continue;
      }
      if (field == "protocol") builder.set_protocol(value.as_string());
      if (field == "scenario") builder.set_scenario(value.as_string());
      if (field == "engine") builder.set_engine(value.as_string());
      continue;
    }
    if (field == "n" || field == "h" || field == "t_max" ||
        field == "trials" || field == "seed" || field == "shards" ||
        field == "deadline_ms") {
      const std::optional<std::uint64_t> u = as_u64(value);
      if (!u.has_value()) {
        bad_u64();
        continue;
      }
      if (field == "n") builder.set_n(*u);
      if (field == "h") builder.set_h(*u);
      if (field == "t_max") builder.set_t_max(*u);
      if (field == "trials") builder.set_trials(*u);
      if (field == "seed") builder.set_seed(*u);
      if (field == "shards") builder.set_shards(*u);
      if (field == "deadline_ms") deadline_ms = *u;
      continue;
    }
    if (field == "max_time") {
      if (!value.is_number()) {
        errors.push_back({field, "must be a number"});
        continue;
      }
      builder.set_max_time(value.as_double());
      continue;
    }
    if (field == "progress" || field == "no_cache") {
      if (!value.is_bool()) {
        errors.push_back({field, "must be a boolean"});
        continue;
      }
      if (field == "progress") want_progress = value.as_bool();
      if (field == "no_cache") no_cache = value.as_bool();
      continue;
    }
    errors.push_back(
        {field, util::unknown_name_message("request field", field,
                                           k_run_fields)});
  }

  std::vector<util::spec_error> spec_errors = builder.finalize();
  errors.insert(errors.end(), spec_errors.begin(), spec_errors.end());
  std::vector<util::spec_error> telemetry_errors = telemetry_builder.finalize();
  errors.insert(errors.end(), telemetry_errors.begin(),
                telemetry_errors.end());
  if (!errors.empty()) {
    obs::json_value doc =
        error_response(request, "invalid_request",
                       "invalid request: " + util::render_errors(errors));
    doc["field_errors"] = field_errors_json(errors);
    return doc;
  }

  return execute_run(request, sink, builder.spec(), telemetry_builder.spec(),
                     want_progress, no_cache, deadline_ms, nullptr);
}

obs::json_value service::execute_run(
    const obs::json_value& request, const event_sink& sink,
    const util::sim_request_spec& spec,
    const util::telemetry_spec& telemetry_options, bool want_progress,
    bool no_cache, std::optional<std::uint64_t> deadline_ms,
    const obs::scenario_doc* scenario) {
  const std::string fingerprint = spec.canonical();
  const std::string request_id =
      "job-" + std::to_string(
                   next_request_id_.fetch_add(1, std::memory_order_relaxed));
  const auto journal_fields = [&] {
    obs::json_value fields = obs::json_value::object();
    fields["request_id"] = request_id;
    return fields;
  };

  // Telemetry must observe an actual execution, so a telemetered request
  // bypasses the cache *lookup*; it still populates the cache below
  // (results are pure functions of the spec, telemetry is not part of the
  // fingerprint).  Scenario payloads bypass for the same reason: their
  // bundle (engine counters, journal, manifest) only exists if the job
  // executes.
  if (!no_cache && !telemetry_options.any() && scenario == nullptr) {
    if (std::shared_ptr<const obs::json_value> cached =
            cache_.get(fingerprint)) {
      metrics_.get_counter("serve.cache_hits").add(1);
      if (journal_.enabled()) {
        obs::json_value fields = journal_fields();
        fields["fingerprint"] = fingerprint;
        journal_.emit("cache_hit", fields);
      }
      obs::json_value doc = base_response(request, "result");
      doc["ok"] = true;
      doc["cached"] = true;
      doc["fingerprint"] = fingerprint;
      doc["request_id"] = request_id;
      doc["result"] = *cached;
      return doc;
    }
    metrics_.get_counter("serve.cache_misses").add(1);
  } else if (telemetry_options.any()) {
    metrics_.get_counter("serve.cache_bypass").add(1);
  }

  // Per-job registry: the worker's run_trials accounting lands here, and
  // the connection thread reads it back out for progress events without
  // mixing trials across concurrent jobs.
  auto job_metrics = std::make_shared<obs::metrics_registry>();
  std::shared_ptr<request_telemetry> telemetry;
  if (telemetry_options.any()) {
    telemetry = std::make_shared<request_telemetry>(telemetry_options);
  }
  // Scenario runs aggregate the engines' work counters for run.json.
  std::shared_ptr<obs::engine_counters> counters;
  if (scenario != nullptr) counters = std::make_shared<obs::engine_counters>();
  std::shared_ptr<job_handle> handle = queue_.try_submit(
      [this, spec, job_metrics, telemetry, counters,
       request_id](const cancel_token& token) {
        if (journal_.enabled()) {
          obs::json_value fields = obs::json_value::object();
          fields["request_id"] = request_id;
          fields["queue_depth"] =
              static_cast<std::uint64_t>(queue_.depth());
          journal_.emit("start", fields);
        }
        return run_simulation(spec, &token, job_metrics.get(),
                              telemetry.get(), counters.get());
      });
  if (handle == nullptr) {
    metrics_.get_counter("serve.requests_rejected").add(1);
    if (journal_.enabled()) {
      obs::json_value fields = journal_fields();
      fields["queue_depth"] = static_cast<std::uint64_t>(queue_.depth());
      journal_.emit("rejected", fields);
    }
    obs::json_value doc = error_response(
        request, "saturated",
        "job queue is full; retry after the suggested backoff");
    doc["retry_after_ms"] =
        static_cast<std::uint64_t>(options_.retry_after.count());
    return doc;
  }
  if (journal_.enabled()) {
    obs::json_value fields = journal_fields();
    fields["fingerprint"] = fingerprint;
    fields["protocol"] = spec.protocol;
    fields["n"] = static_cast<std::uint64_t>(spec.n);
    fields["trials"] = spec.trials;
    fields["queue_depth"] = static_cast<std::uint64_t>(queue_.depth());
    journal_.emit("admit", fields);
  }
  if (deadline_ms.has_value()) {
    handle->token().set_deadline_after(
        std::chrono::milliseconds(*deadline_ms));
  }

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_ms = [&start] {
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    return std::floor(elapsed.count());
  };
  while (!handle->wait_for(options_.poll_interval)) {
    if (want_progress && sink) {
      const obs::progress_sample sample =
          obs::read_progress_sample(job_metrics->snapshot());
      obs::json_value event = base_response(request, "progress");
      event["trials_completed"] =
          static_cast<std::uint64_t>(sample.trials_completed);
      event["trials_total"] = spec.trials;
      event["elapsed_ms"] = elapsed_ms();
      sink(event);
      if (journal_.enabled()) {
        obs::json_value fields = journal_fields();
        fields["trials_completed"] =
            static_cast<std::uint64_t>(sample.trials_completed);
        fields["trials_total"] = spec.trials;
        journal_.emit("progress", fields);
      }
    }
  }

  switch (handle->result_state()) {
    case job_handle::state::done: {
      std::shared_ptr<const obs::json_value> result = handle->result();
      if (!no_cache) cache_.put(fingerprint, result);
      obs::json_value doc = base_response(request, "result");
      doc["ok"] = true;
      doc["cached"] = false;
      doc["fingerprint"] = fingerprint;
      doc["request_id"] = request_id;
      doc["result"] = *result;
      if (scenario != nullptr) {
        // Scenario runs answer with a persisted bundle instead of in-band
        // telemetry: the bundle directory holds trace/profile/metrics with
        // a sha256 manifest (obs/bundle.hpp), same layout as ssr_cli run.
        if (!options_.telemetry_dir.empty()) {
          const std::string dir = options_.telemetry_dir + "/" + request_id;
          obs::bundle_artifacts artifacts;
          std::string trace_text;
          if (telemetry != nullptr && telemetry->options.trace) {
            std::ostringstream os;
            telemetry->trace.write_jsonl(os, telemetry->phase_names);
            trace_text = os.str();
            artifacts.trace_jsonl = &trace_text;
          }
          if (telemetry != nullptr && telemetry->options.profile) {
            artifacts.profile = &telemetry->profile;
          }
          if (scenario->emit_metrics) {
            artifacts.metrics_prom = obs::prometheus_text(*job_metrics);
          }
          const obs::bundle_result bundle = obs::write_run_bundle(
              dir, *scenario, *result, *counters, artifacts);
          obs::json_value info = obs::json_value::object();
          info["ok"] = bundle.ok;
          if (bundle.ok) {
            info["dir"] = bundle.dir;
            info["manifest"] = bundle.manifest_path;
          } else {
            info["error"] = bundle.error;
          }
          doc["bundle"] = std::move(info);
        }
      } else if (telemetry != nullptr) {
        doc["telemetry"] = render_telemetry(*telemetry, request_id);
      }
      if (journal_.enabled()) {
        obs::json_value fields = journal_fields();
        fields["fingerprint"] = fingerprint;
        fields["elapsed_ms"] = elapsed_ms();
        fields["queue_depth"] = static_cast<std::uint64_t>(queue_.depth());
        fields["telemetry"] = telemetry != nullptr;
        journal_.emit("complete", fields);
      }
      return doc;
    }
    case job_handle::state::cancelled: {
      const bool deadline = handle->deadline_expired();
      if (journal_.enabled()) {
        obs::json_value fields = journal_fields();
        fields["elapsed_ms"] = elapsed_ms();
        fields["message"] = handle->error();
        journal_.emit(deadline ? "deadline_expired" : "cancelled", fields);
      }
      obs::json_value doc = error_response(
          request, deadline ? "deadline_exceeded" : "cancelled",
          handle->error());
      doc["request_id"] = request_id;
      return doc;
    }
    case job_handle::state::failed:
    case job_handle::state::pending:
      break;
  }
  if (journal_.enabled()) {
    obs::json_value fields = journal_fields();
    fields["message"] = handle->error();
    journal_.emit("failed", fields);
  }
  obs::json_value doc = error_response(request, "run_failed",
                                       handle->error());
  doc["request_id"] = request_id;
  return doc;
}

obs::json_value service::render_telemetry(const request_telemetry& telemetry,
                                          const std::string& request_id) {
  obs::json_value doc = obs::json_value::object();
  doc["request_id"] = request_id;
  if (telemetry.options.trace) doc["trace"] = telemetry.trace_json();
  if (telemetry.options.profile) doc["profile"] = telemetry.profile;
  if (!options_.telemetry_dir.empty()) {
    const std::string dir = options_.telemetry_dir + "/" + request_id;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (!ec) {
      obs::json_value artifacts = obs::json_value::object();
      artifacts["dir"] = dir;
      if (telemetry.options.trace) {
        const std::string path = dir + "/trace.jsonl";
        std::ofstream os(path);
        telemetry.trace.write_jsonl(os, telemetry.phase_names);
        artifacts["trace"] = path;
      }
      if (telemetry.options.profile) {
        const std::string path = dir + "/profile.json";
        std::ofstream os(path);
        os << telemetry.profile.dump(2) << '\n';
        artifacts["profile"] = path;
      }
      artifacts["events"] = options_.telemetry_dir + "/events.jsonl";
      doc["artifacts"] = std::move(artifacts);
    }
  }
  return doc;
}

obs::json_value service::stats_document() {
  obs::json_value stats = obs::json_value::object();

  obs::json_value queue = obs::json_value::object();
  queue["depth"] = static_cast<std::uint64_t>(queue_.depth());
  queue["capacity"] = static_cast<std::uint64_t>(queue_.max_depth());
  queue["active_workers"] =
      static_cast<std::uint64_t>(queue_.active_workers());
  queue["worker_pool"] = static_cast<std::uint64_t>(queue_.workers());
  stats["queue"] = std::move(queue);

  obs::json_value jobs = obs::json_value::object();
  for (const std::string_view name :
       {"submitted", "completed", "failed", "cancelled", "rejected"}) {
    jobs[name] = metrics_
                     .get_counter(std::string("serve.jobs_") +
                                  std::string(name))
                     .value();
  }
  stats["jobs"] = std::move(jobs);

  const obs::histogram::snapshot_data lat =
      metrics_.get_histogram("serve.job_seconds").snapshot();
  obs::json_value latency = obs::json_value::object();
  latency["count"] = lat.count;
  latency["mean"] = lat.count == 0
                        ? 0.0
                        : lat.sum / static_cast<double>(lat.count);
  latency["p50"] = lat.p50;
  latency["p90"] = lat.p90;
  latency["p99"] = lat.p99;
  stats["job_seconds"] = std::move(latency);

  obs::json_value cache = obs::json_value::object();
  cache["size"] = static_cast<std::uint64_t>(cache_.size());
  cache["capacity"] = static_cast<std::uint64_t>(cache_.capacity());
  cache["hits"] = cache_.hits();
  cache["misses"] = cache_.misses();
  cache["evictions"] = cache_.evictions();
  cache["hit_rate"] = cache_.hit_rate();
  stats["cache"] = std::move(cache);
  return stats;
}

std::string service::metrics_text() {
  // Point-in-time values live outside the registry (cache internals, queue
  // sizing); refresh them as gauges at scrape time so one exposition
  // carries the full picture.  Counter-valued serve.* metrics (cache
  // hits/misses, jobs_*) are already registry-resident.
  metrics_.get_gauge("serve.cache_size")
      .set(static_cast<double>(cache_.size()));
  metrics_.get_gauge("serve.cache_capacity")
      .set(static_cast<double>(cache_.capacity()));
  metrics_.get_gauge("serve.cache_evictions")
      .set(static_cast<double>(cache_.evictions()));
  metrics_.get_gauge("serve.cache_hit_rate").set(cache_.hit_rate());
  return obs::prometheus_text(metrics_);
}

bool service::shutdown_requested() const {
  return shutdown_requested_.load(std::memory_order_acquire);
}

void service::drain() { queue_.shutdown(/*drain=*/true); }

}  // namespace ssr::serve
