#include "serve/service.hpp"

#include <chrono>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "obs/progress.hpp"
#include "serve/runner.hpp"
#include "util/request_spec.hpp"

namespace ssr::serve {
namespace {

constexpr std::string_view k_request_types[] = {"run", "stats", "ping",
                                                "shutdown"};

// Every field a "run" request may carry; anything else is rejected with a
// nearest-name suggestion so typos ("trails") fail loudly instead of
// silently running with the default.
constexpr std::string_view k_run_fields[] = {
    "type",     "id",    "protocol", "scenario",    "n",
    "h",        "t_max", "trials",   "seed",        "max_time",
    "engine",   "shards", "deadline_ms", "progress", "no_cache",
};

/// Non-negative integral JSON number, exact in a double.
std::optional<std::uint64_t> as_u64(const obs::json_value& v) {
  if (!v.is_number()) return std::nullopt;
  const double d = v.as_double();
  if (d < 0.0 || d != std::floor(d) || d > 9.007199254740992e15)
    return std::nullopt;
  return static_cast<std::uint64_t>(d);
}

obs::json_value base_response(const obs::json_value& request,
                              std::string_view type) {
  obs::json_value doc = obs::json_value::object();
  const obs::json_value* id = request.find("id");
  doc["id"] = id != nullptr ? *id : obs::json_value();
  doc["type"] = type;
  return doc;
}

obs::json_value error_response(const obs::json_value& request,
                               std::string_view kind, std::string message) {
  obs::json_value doc = base_response(request, "error");
  doc["ok"] = false;
  doc["error"] = kind;
  doc["message"] = std::move(message);
  return doc;
}

obs::json_value field_errors_json(
    const std::vector<util::spec_error>& errors) {
  obs::json_value arr = obs::json_value::array();
  for (const util::spec_error& e : errors) {
    obs::json_value item = obs::json_value::object();
    item["field"] = e.field;
    item["message"] = e.message;
    arr.push_back(std::move(item));
  }
  return arr;
}

}  // namespace

service::service(service_options options)
    : options_(options),
      cache_(options.cache_capacity),
      queue_(job_queue_options{.workers = options.workers,
                               .max_depth = options.max_queue_depth},
             &metrics_) {}

service::~service() { queue_.shutdown(/*drain=*/false); }

obs::json_value service::handle_line(std::string_view line,
                                     const event_sink& sink) {
  std::string parse_error;
  const std::optional<obs::json_value> request =
      obs::json_value::parse(line, &parse_error);
  if (!request.has_value()) {
    return error_response(obs::json_value::object(), "invalid_request",
                          "malformed JSON: " + parse_error);
  }
  return handle(*request, sink);
}

obs::json_value service::handle(const obs::json_value& request,
                                const event_sink& sink) {
  if (!request.is_object()) {
    return error_response(obs::json_value::object(), "invalid_request",
                          "request must be a JSON object");
  }
  const obs::json_value* type = request.find("type");
  if (type == nullptr || !type->is_string()) {
    return error_response(request, "invalid_request",
                          "request needs a string \"type\" field");
  }
  const std::string& name = type->as_string();
  if (name == "run") return handle_run(request, sink);
  if (name == "stats") {
    obs::json_value doc = base_response(request, "stats");
    doc["ok"] = true;
    doc["stats"] = stats_document();
    return doc;
  }
  if (name == "ping") {
    obs::json_value doc = base_response(request, "pong");
    doc["ok"] = true;
    return doc;
  }
  if (name == "shutdown") {
    shutdown_requested_.store(true, std::memory_order_release);
    obs::json_value doc = base_response(request, "shutdown");
    doc["ok"] = true;
    doc["draining"] = true;
    return doc;
  }
  return error_response(
      request, "invalid_request",
      util::unknown_name_message("request type", name, k_request_types));
}

obs::json_value service::handle_run(const obs::json_value& request,
                                    const event_sink& sink) {
  util::spec_builder builder;
  std::vector<util::spec_error> errors;
  bool want_progress = false;
  bool no_cache = false;
  std::optional<std::uint64_t> deadline_ms;

  for (const auto& [field, value] : request.members()) {
    const auto bad_u64 = [&] {
      errors.push_back({field, "must be a non-negative integer"});
    };
    if (field == "type" || field == "id") continue;
    if (field == "protocol" || field == "scenario" || field == "engine") {
      if (!value.is_string()) {
        errors.push_back({field, "must be a string"});
        continue;
      }
      if (field == "protocol") builder.set_protocol(value.as_string());
      if (field == "scenario") builder.set_scenario(value.as_string());
      if (field == "engine") builder.set_engine(value.as_string());
      continue;
    }
    if (field == "n" || field == "h" || field == "t_max" ||
        field == "trials" || field == "seed" || field == "shards" ||
        field == "deadline_ms") {
      const std::optional<std::uint64_t> u = as_u64(value);
      if (!u.has_value()) {
        bad_u64();
        continue;
      }
      if (field == "n") builder.set_n(*u);
      if (field == "h") builder.set_h(*u);
      if (field == "t_max") builder.set_t_max(*u);
      if (field == "trials") builder.set_trials(*u);
      if (field == "seed") builder.set_seed(*u);
      if (field == "shards") builder.set_shards(*u);
      if (field == "deadline_ms") deadline_ms = *u;
      continue;
    }
    if (field == "max_time") {
      if (!value.is_number()) {
        errors.push_back({field, "must be a number"});
        continue;
      }
      builder.set_max_time(value.as_double());
      continue;
    }
    if (field == "progress" || field == "no_cache") {
      if (!value.is_bool()) {
        errors.push_back({field, "must be a boolean"});
        continue;
      }
      if (field == "progress") want_progress = value.as_bool();
      if (field == "no_cache") no_cache = value.as_bool();
      continue;
    }
    errors.push_back(
        {field, util::unknown_name_message("request field", field,
                                           k_run_fields)});
  }

  std::vector<util::spec_error> spec_errors = builder.finalize();
  errors.insert(errors.end(), spec_errors.begin(), spec_errors.end());
  if (!errors.empty()) {
    obs::json_value doc =
        error_response(request, "invalid_request",
                       "invalid request: " + util::render_errors(errors));
    doc["field_errors"] = field_errors_json(errors);
    return doc;
  }

  const util::sim_request_spec spec = builder.spec();
  const std::string fingerprint = spec.canonical();

  if (!no_cache) {
    if (std::shared_ptr<const obs::json_value> cached =
            cache_.get(fingerprint)) {
      metrics_.get_counter("serve.cache_hits").add(1);
      obs::json_value doc = base_response(request, "result");
      doc["ok"] = true;
      doc["cached"] = true;
      doc["fingerprint"] = fingerprint;
      doc["result"] = *cached;
      return doc;
    }
    metrics_.get_counter("serve.cache_misses").add(1);
  }

  // Per-job registry: the worker's run_trials accounting lands here, and
  // the connection thread reads it back out for progress events without
  // mixing trials across concurrent jobs.
  auto job_metrics = std::make_shared<obs::metrics_registry>();
  std::shared_ptr<job_handle> handle =
      queue_.try_submit([spec, job_metrics](const cancel_token& token) {
        return run_simulation(spec, &token, job_metrics.get());
      });
  if (handle == nullptr) {
    obs::json_value doc = error_response(
        request, "saturated",
        "job queue is full; retry after the suggested backoff");
    doc["retry_after_ms"] =
        static_cast<std::uint64_t>(options_.retry_after.count());
    return doc;
  }
  if (deadline_ms.has_value()) {
    handle->token().set_deadline_after(
        std::chrono::milliseconds(*deadline_ms));
  }

  const auto start = std::chrono::steady_clock::now();
  while (!handle->wait_for(options_.poll_interval)) {
    if (want_progress && sink) {
      const obs::progress_sample sample =
          obs::read_progress_sample(job_metrics->snapshot());
      obs::json_value event = base_response(request, "progress");
      event["trials_completed"] =
          static_cast<std::uint64_t>(sample.trials_completed);
      event["trials_total"] = spec.trials;
      const std::chrono::duration<double, std::milli> elapsed =
          std::chrono::steady_clock::now() - start;
      event["elapsed_ms"] = std::floor(elapsed.count());
      sink(event);
    }
  }

  switch (handle->result_state()) {
    case job_handle::state::done: {
      std::shared_ptr<const obs::json_value> result = handle->result();
      if (!no_cache) cache_.put(fingerprint, result);
      obs::json_value doc = base_response(request, "result");
      doc["ok"] = true;
      doc["cached"] = false;
      doc["fingerprint"] = fingerprint;
      doc["result"] = *result;
      return doc;
    }
    case job_handle::state::cancelled:
      return error_response(request,
                            handle->deadline_expired() ? "deadline_exceeded"
                                                       : "cancelled",
                            handle->error());
    case job_handle::state::failed:
    case job_handle::state::pending:
      break;
  }
  return error_response(request, "run_failed", handle->error());
}

obs::json_value service::stats_document() {
  obs::json_value stats = obs::json_value::object();

  obs::json_value queue = obs::json_value::object();
  queue["depth"] = static_cast<std::uint64_t>(queue_.depth());
  queue["capacity"] = static_cast<std::uint64_t>(queue_.max_depth());
  queue["active_workers"] =
      static_cast<std::uint64_t>(queue_.active_workers());
  queue["worker_pool"] = static_cast<std::uint64_t>(queue_.workers());
  stats["queue"] = std::move(queue);

  obs::json_value jobs = obs::json_value::object();
  for (const std::string_view name :
       {"submitted", "completed", "failed", "cancelled", "rejected"}) {
    jobs[name] = metrics_
                     .get_counter(std::string("serve.jobs_") +
                                  std::string(name))
                     .value();
  }
  stats["jobs"] = std::move(jobs);

  const obs::histogram::snapshot_data lat =
      metrics_.get_histogram("serve.job_seconds").snapshot();
  obs::json_value latency = obs::json_value::object();
  latency["count"] = lat.count;
  latency["mean"] = lat.count == 0
                        ? 0.0
                        : lat.sum / static_cast<double>(lat.count);
  latency["p50"] = lat.p50;
  latency["p90"] = lat.p90;
  latency["p99"] = lat.p99;
  stats["job_seconds"] = std::move(latency);

  obs::json_value cache = obs::json_value::object();
  cache["size"] = static_cast<std::uint64_t>(cache_.size());
  cache["capacity"] = static_cast<std::uint64_t>(cache_.capacity());
  cache["hits"] = cache_.hits();
  cache["misses"] = cache_.misses();
  cache["evictions"] = cache_.evictions();
  cache["hit_rate"] = cache_.hit_rate();
  stats["cache"] = std::move(cache);
  return stats;
}

bool service::shutdown_requested() const {
  return shutdown_requested_.load(std::memory_order_acquire);
}

void service::drain() { queue_.shutdown(/*drain=*/true); }

}  // namespace ssr::serve
