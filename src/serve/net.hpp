// Minimal POSIX TCP plumbing for the serve daemon and client.
//
// The wire format is line-delimited JSON (one document per '\n'-terminated
// line), so all either side needs is a listener with a poll-based timed
// accept -- the hook the server's stop flag interrupts -- and a buffered
// line reader/writer over a connected socket.  IPv4 loopback only: the
// daemon is a local measurement service, not an internet-facing one
// (docs/serving.md, "Transport").
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace ssr::serve {

/// Listening IPv4 TCP socket bound to 127.0.0.1.
class tcp_listener {
 public:
  tcp_listener() = default;
  ~tcp_listener();

  tcp_listener(const tcp_listener&) = delete;
  tcp_listener& operator=(const tcp_listener&) = delete;

  /// Binds and listens on 127.0.0.1:`port`; port 0 picks an ephemeral
  /// port (read it back with port()).  False + `*error` on failure.
  bool listen(std::uint16_t port, std::string* error);

  /// The bound port (valid after a successful listen()).
  std::uint16_t port() const { return port_; }

  /// Waits up to `timeout` for a pending connection; returns the accepted
  /// fd, or -1 on timeout / closed listener.  The bounded wait is what
  /// lets the accept loop poll its stop flag.
  int accept_for(std::chrono::milliseconds timeout);

  void close();
  bool listening() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connected socket with buffered '\n'-delimited line IO.  Owns the fd.
class line_socket {
 public:
  explicit line_socket(int fd) : fd_(fd) {}
  ~line_socket();

  line_socket(const line_socket&) = delete;
  line_socket& operator=(const line_socket&) = delete;

  /// Reads the next line (without the terminator) into `line`; false on
  /// EOF or error.  A final unterminated chunk before EOF counts as a
  /// line, so `printf '...' | nc`-style clients work.
  bool read_line(std::string& line);

  /// Writes `text` plus '\n', retrying short writes; false on error.
  bool write_line(const std::string& text);

  int fd() const { return fd_; }

 private:
  int fd_;
  std::string buffer_;
};

/// Connects to 127.0.0.1:`port`; returns the fd or -1 (with `*error`).
int connect_local(std::uint16_t port, std::string* error);

}  // namespace ssr::serve
