#include "serve/runner.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "analysis/statistics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "pp/accelerated.hpp"
#include "pp/convergence.hpp"
#include "pp/trial.hpp"
#include "protocols/adversary.hpp"
#include "protocols/loose_stabilizing.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"
#include "protocols/sublinear.hpp"

namespace ssr::serve {
namespace {

// Scenario names were validated by util::spec_builder, so lookups here
// cannot fail on well-formed service input; the throw guards direct
// library callers.
optimal_silent_scenario optimal_scenario_of(const std::string& name) {
  if (name == "uniform_random") return optimal_silent_scenario::uniform_random;
  if (name == "all_settled_rank_one")
    return optimal_silent_scenario::all_settled_rank_one;
  if (name == "no_leader") return optimal_silent_scenario::no_leader;
  if (name == "all_unsettled_expired")
    return optimal_silent_scenario::all_unsettled_expired;
  if (name == "all_dormant_followers")
    return optimal_silent_scenario::all_dormant_followers;
  if (name == "duplicated_ranks")
    return optimal_silent_scenario::duplicated_ranks;
  if (name == "valid_ranking") return optimal_silent_scenario::valid_ranking;
  throw std::runtime_error("unvalidated optimal scenario: " + name);
}

sublinear_scenario sublinear_scenario_of(const std::string& name) {
  if (name == "uniform_random") return sublinear_scenario::uniform_random;
  if (name == "all_same_name") return sublinear_scenario::all_same_name;
  if (name == "single_collision") return sublinear_scenario::single_collision;
  if (name == "ghost_names") return sublinear_scenario::ghost_names;
  if (name == "missing_own_name")
    return sublinear_scenario::missing_own_name;
  if (name == "planted_histories")
    return sublinear_scenario::planted_histories;
  if (name == "mid_reset") return sublinear_scenario::mid_reset;
  if (name == "valid_ranking") return sublinear_scenario::valid_ranking;
  throw std::runtime_error("unvalidated sublinear scenario: " + name);
}

/// Telemetry hooks for one trial.  `trace` is null for every trial except
/// the traced one (the job's first); `profiler` covers every trial of a
/// profiled job.  Both are owned by the caller and live on this worker
/// thread.
struct trial_telemetry {
  obs::trace_sink* trace = nullptr;
  obs::timeline_profiler* profiler = nullptr;
  std::vector<std::string_view>* phase_names = nullptr;
  /// Aggregated across every trial of the job (trials are sequential).
  obs::engine_counters* counters = nullptr;
};

/// Records the traced protocol's phase-name table so the trace header and
/// events can name phases; no-op for uninstrumented protocols.
template <class P>
void record_phase_names(const P& protocol, const trial_telemetry& tel) {
  if (tel.trace == nullptr || tel.phase_names == nullptr) return;
  if constexpr (obs::phase_instrumented_protocol<P>) {
    tel.phase_names->resize(protocol.obs_phase_count());
    for (std::uint32_t ph = 0; ph < tel.phase_names->size(); ++ph) {
      (*tel.phase_names)[ph] = P::obs_phase_name(ph);
    }
  }
}

/// Loose-stabilizing LE has no ranking, so convergence is "a unique leader
/// emerged"; run the selected engine in bounded bursts so the cancel token
/// stays responsive.  Tracing is framing-only (the protocol has no phase
/// hooks): run_start, convergence on the unique leader, run_end.
template <class Engine>
double loose_time_with(Engine& engine, const util::sim_request_spec& spec,
                       const cancel_token* cancel,
                       const loose_stabilizing_le& protocol,
                       const trial_telemetry& tel) {
  if (tel.profiler != nullptr) engine.attach_profiler(tel.profiler);
  if (tel.counters != nullptr) engine.attach_counters(tel.counters);
  const auto emit = [&](obs::trace_event_kind kind) {
    if (tel.trace != nullptr) {
      tel.trace->emit({kind, engine.parallel_time(), engine.interactions()});
    }
  };
  const auto max_interactions = static_cast<std::uint64_t>(
      spec.max_time * static_cast<double>(spec.n));
  const std::uint64_t burst =
      std::max<std::uint64_t>(std::uint64_t{spec.n} * 64,
                              std::uint64_t{1} << 22);
  emit(obs::trace_event_kind::run_start);
  if (protocol.leader_count(engine.agents()) == 1) {
    emit(obs::trace_event_kind::convergence);
    emit(obs::trace_event_kind::run_end);
    return engine.parallel_time();
  }
  while (engine.interactions() < max_interactions) {
    if (cancel != nullptr) cancel->throw_if_cancelled();
    const std::uint64_t budget =
        std::min(max_interactions, engine.interactions() + burst);
    const bool done = engine.run(
        budget, [](const agent_pair&) {},
        [&](const agent_pair&, bool changed) {
          return changed && protocol.leader_count(engine.agents()) == 1;
        });
    if (done) {
      emit(obs::trace_event_kind::convergence);
      emit(obs::trace_event_kind::run_end);
      return engine.parallel_time();
    }
  }
  throw std::runtime_error("loose LE found no unique leader within max_time");
}

double loose_trial(const util::sim_request_spec& spec, std::uint64_t seed,
                   const cancel_token* cancel, const trial_telemetry& tel) {
  const auto t_max =
      spec.t_max > 0
          ? spec.t_max
          : static_cast<std::uint32_t>(
                4 * std::ceil(std::log2(static_cast<double>(spec.n))));
  loose_stabilizing_le protocol(spec.n, t_max);
  auto initial = protocol.dead_configuration();
  switch (spec.engine.kind) {
    case engine_kind::direct: {
      direct_engine<loose_stabilizing_le> engine(protocol, std::move(initial),
                                                 seed);
      return loose_time_with(engine, spec, cancel, protocol, tel);
    }
    case engine_kind::sharded: {
      sharded_engine<loose_stabilizing_le> engine(
          protocol, std::move(initial), seed, {.shards = spec.engine.shards});
      return loose_time_with(engine, spec, cancel, protocol, tel);
    }
    case engine_kind::batched:
      break;
  }
  batched_engine<loose_stabilizing_le> engine(protocol, std::move(initial),
                                              seed);
  return loose_time_with(engine, spec, cancel, protocol, tel);
}

double ranking_trial(const util::sim_request_spec& spec, std::uint64_t seed,
                     const cancel_token* cancel, const trial_telemetry& tel) {
  convergence_options opt;
  opt.max_parallel_time = spec.max_time;
  opt.cancel = cancel;
  opt.trace = tel.trace;
  opt.profiler = tel.profiler;
  opt.counters = tel.counters;
  if (spec.protocol == "baseline") {
    if (spec.engine.kind == engine_kind::direct) {
      // Same fast path as the benches: truly direct stepping of the
      // Theta(n^2)-time baseline is Theta(n^3) interactions, so "direct"
      // has always meant the protocol-specialized exact jump simulator.
      rng_t rng(seed);
      std::vector<std::uint32_t> ranks(spec.n);
      for (auto& r : ranks)
        r = static_cast<std::uint32_t>(uniform_below(rng, spec.n));
      accelerated_silent_n_state sim(spec.n, ranks, seed ^ 0x5bd1e995);
      double time = 0.0;
      {
        // The jump simulator has no engine hooks; give the profile a
        // section and the trace its run framing (interactions are not
        // individually simulated, so the count stays 0).
        obs::timeline_scope scope(tel.profiler, "accelerated.run");
        time = sim.run_to_stabilization();
      }
      if (tel.trace != nullptr) {
        tel.trace->emit({obs::trace_event_kind::run_start, 0.0, 0});
        tel.trace->emit({obs::trace_event_kind::convergence, time, 0});
        tel.trace->emit({obs::trace_event_kind::run_end, time, 0});
      }
      return time;
    }
    silent_n_state_ssr protocol(spec.n);
    record_phase_names(protocol, tel);
    rng_t rng(seed);
    auto initial = adversarial_configuration(protocol, rng);
    const auto r = measure_convergence_with(spec.engine, protocol,
                                            std::move(initial),
                                            seed ^ 0x5bd1e995, opt);
    if (!r.converged)
      throw std::runtime_error("baseline did not converge within max_time");
    return r.convergence_time;
  }
  if (spec.protocol == "optimal") {
    optimal_silent_ssr protocol(spec.n);
    record_phase_names(protocol, tel);
    rng_t rng(seed);
    auto initial = adversarial_configuration(
        protocol, optimal_scenario_of(spec.scenario), rng);
    const auto r = measure_convergence_with(spec.engine, protocol,
                                            std::move(initial),
                                            seed ^ 0x9747b28c, opt);
    if (!r.converged)
      throw std::runtime_error(
          "optimal-silent did not converge within max_time");
    return r.convergence_time;
  }
  if (spec.protocol == "sublinear") {
    sublinear_time_ssr protocol(spec.n, spec.h);
    record_phase_names(protocol, tel);
    rng_t rng(seed);
    auto initial = adversarial_configuration(
        protocol, sublinear_scenario_of(spec.scenario), rng);
    // The protocol is non-silent; hold correctness for a confirmation
    // window scaled like the bench sweeps do.
    opt.confirm_parallel_time =
        8.0 * std::log2(static_cast<double>(spec.n) + 1.0);
    const auto r = measure_convergence_with(spec.engine, protocol,
                                            std::move(initial),
                                            seed ^ 0x85ebca6b, opt);
    if (!r.converged)
      throw std::runtime_error("sublinear did not converge within max_time");
    return r.convergence_time;
  }
  throw std::runtime_error("unvalidated protocol: " + spec.protocol);
}

obs::json_value spec_json(const util::sim_request_spec& spec) {
  obs::json_value doc = obs::json_value::object();
  doc["protocol"] = spec.protocol;
  doc["scenario"] = spec.scenario;
  doc["n"] = static_cast<std::uint64_t>(spec.n);
  if (spec.protocol == "sublinear")
    doc["h"] = static_cast<std::uint64_t>(spec.h);
  if (spec.protocol == "loose")
    doc["t_max"] = static_cast<std::uint64_t>(spec.t_max);
  doc["trials"] = spec.trials;
  doc["seed"] = spec.seed;
  doc["max_time"] = spec.max_time;
  doc["engine"] = std::string(to_string(spec.engine.kind));
  if (spec.engine.kind == engine_kind::sharded)
    doc["shards"] = static_cast<std::uint64_t>(spec.engine.shards);
  return doc;
}

}  // namespace

std::shared_ptr<const obs::json_value> run_simulation(
    const util::sim_request_spec& spec, const cancel_token* cancel,
    obs::metrics_registry* metrics, request_telemetry* telemetry,
    obs::engine_counters* counters,
    const std::function<void(std::uint64_t, std::uint64_t)>& on_trial) {
  trial_options options;
  options.parallel = false;  // the serve worker pool is the concurrency
  options.engine = spec.engine;
  options.metrics = metrics;
  options.cancel = cancel;

  // Per-job profiler on this worker thread: both the timeline collector
  // and the hardware counter group are single-threaded/per-thread, so a
  // process-global profiler would race across concurrent jobs.
  std::unique_ptr<obs::perf_counter_group> perf;
  std::unique_ptr<obs::timeline_profiler> profiler;
  if (telemetry != nullptr && telemetry->options.profile) {
    perf = std::make_unique<obs::perf_counter_group>();
    profiler = std::make_unique<obs::timeline_profiler>(
        obs::timeline_options{.perf = perf.get()});
  }

  // Trials run sequentially (options.parallel = false), so the first
  // invocation is trial 0 -- the traced trajectory -- and completion
  // callbacks fire in trial order.
  bool traced = false;
  std::uint64_t completed = 0;
  const std::vector<double> samples = run_trials(
      static_cast<std::size_t>(spec.trials), spec.seed,
      [&](std::uint64_t seed, engine_kind) {
        trial_telemetry tel;
        tel.profiler = profiler.get();
        tel.counters = counters;
        if (telemetry != nullptr && telemetry->options.trace && !traced) {
          traced = true;
          tel.trace = &telemetry->trace;
          tel.phase_names = &telemetry->phase_names;
        }
        const double time = spec.protocol == "loose"
                                ? loose_trial(spec, seed, cancel, tel)
                                : ranking_trial(spec, seed, cancel, tel);
        if (on_trial) on_trial(++completed, spec.trials);
        return time;
      },
      options);
  if (profiler != nullptr) telemetry->profile = profiler->profile().to_json();

  const summary stats = summarize(samples);
  auto doc = std::make_shared<obs::json_value>(obs::json_value::object());
  obs::json_value& out = *doc;
  out["spec"] = spec_json(spec);
  out["unit"] = "parallel_time";
  obs::json_value sample_array = obs::json_value::array();
  for (const double s : samples) sample_array.push_back(s);
  out["samples"] = std::move(sample_array);
  obs::json_value stats_doc = obs::json_value::object();
  stats_doc["count"] = static_cast<std::uint64_t>(stats.count);
  stats_doc["mean"] = stats.mean;
  stats_doc["stddev"] = stats.stddev;
  stats_doc["min"] = stats.min;
  stats_doc["max"] = stats.max;
  stats_doc["median"] = stats.median;
  stats_doc["p90"] = stats.p90;
  stats_doc["p99"] = stats.p99;
  out["stats"] = std::move(stats_doc);
  return doc;
}

}  // namespace ssr::serve
