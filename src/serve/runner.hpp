// Executes one validated simulation request and renders its result JSON.
//
// This is the bridge between the service scheduler and the measurement
// substrate: a validated util::sim_request_spec maps onto the same
// protocol constructions, adversarial scenarios, and engine selection the
// bench helpers use (bench/common.cpp), run through run_trials with
// sequential per-job execution -- the serve worker pool is the
// concurrency, so one job never fans out internally.
//
// Determinism contract: the result document is a pure function of the
// spec.  Trial seeds derive from spec.seed exactly as in every bench
// (derive_seed(seed, i)), engines are pure functions of (spec, seed), and
// the JSON layout contains no timestamps -- which is what lets the result
// cache serve bit-identical replays.
//
// Cancellation: the token is polled between trials (pp/trial.hpp) and
// between engine bursts (pp/convergence.hpp); a fired token surfaces as
// cancelled_error, which the job queue maps to a cancelled job.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "obs/engine_counters.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "pp/cancellation.hpp"
#include "serve/request_context.hpp"
#include "util/request_spec.hpp"

namespace ssr::serve {

/// Runs `spec` to completion and returns the result document:
///
///   { "spec": {...},            // canonical echo, defaults materialized
///     "unit": "parallel_time",
///     "samples": [...],         // per-trial stabilization times
///     "stats": { count, mean, stddev, min, max, median, p90, p99 } }
///
/// `metrics`, when non-null, receives live trial accounting
/// (trials.completed counter, trial.seconds histogram) the service's
/// progress streaming reads.  Throws cancelled_error when `cancel` fires
/// and std::runtime_error when a trial fails to converge within
/// spec.max_time.
///
/// `telemetry`, when non-null, is filled on this (worker) thread: the
/// first trial streams into telemetry->trace when tracing was requested
/// (full phase stream for phase-instrumented protocols, run framing +
/// collision/convergence markers otherwise), and with profiling requested
/// a per-job timeline profiler + hardware counter group cover every trial,
/// landing in telemetry->profile.  Telemetry never changes the simulated
/// trajectories, so the result document stays a pure function of the spec.
///
/// `counters`, when non-null, accumulates the engines' work counters
/// (obs/engine_counters.hpp) across every trial -- run bundles persist the
/// aggregate in run.json.  `on_trial`, when set, fires on this thread
/// after each sequential trial with (trials_completed, trials_total);
/// bundle journals turn it into progress events.
std::shared_ptr<const obs::json_value> run_simulation(
    const util::sim_request_spec& spec, const cancel_token* cancel,
    obs::metrics_registry* metrics, request_telemetry* telemetry = nullptr,
    obs::engine_counters* counters = nullptr,
    const std::function<void(std::uint64_t, std::uint64_t)>& on_trial = {});

}  // namespace ssr::serve
