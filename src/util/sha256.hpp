// Dependency-free SHA-256 (FIPS 180-4) for bundle manifests.
//
// The container bakes in no crypto library, and the run-bundle layer
// (obs/bundle.hpp) needs stable content hashes so a bundle_manifest.json
// can attest every artifact it lists -- `sha256sum` on any machine must
// reproduce the digests.  This is the straightforward single-block
// implementation: no hardware paths, no incremental API beyond what the
// manifest writer needs.  Bundle files are small (kilobytes to a few
// megabytes), so throughput is irrelevant next to the simulation itself.
#pragma once

#include <string>
#include <string_view>

namespace ssr::util {

/// Lowercase hex digest (64 chars) of `data`, byte-for-byte what
/// `sha256sum` prints.
std::string sha256_hex(std::string_view data);

/// Digest of a file's contents; empty string when the file cannot be
/// read (callers treat that as "missing", not as a hash).
std::string sha256_file_hex(const std::string& path);

}  // namespace ssr::util
