#include "util/request_spec.hpp"

#include <algorithm>
#include <cstdio>

#include "util/edit_distance.hpp"

namespace ssr::util {
namespace {

constexpr std::string_view k_protocols[] = {
    "baseline",
    "optimal",
    "sublinear",
    "loose",
};

constexpr std::string_view k_engines[] = {"direct", "batched", "sharded"};

constexpr std::string_view k_baseline_scenarios[] = {"uniform_random"};

constexpr std::string_view k_optimal_scenarios[] = {
    "uniform_random",        "all_settled_rank_one", "no_leader",
    "all_unsettled_expired", "all_dormant_followers", "duplicated_ranks",
    "valid_ranking",
};

constexpr std::string_view k_sublinear_scenarios[] = {
    "uniform_random", "all_same_name",     "single_collision",
    "ghost_names",    "missing_own_name",  "planted_histories",
    "mid_reset",      "valid_ranking",
};

constexpr std::string_view k_loose_scenarios[] = {"dead_configuration"};

bool contains(std::span<const std::string_view> names, std::string_view v) {
  return std::find(names.begin(), names.end(), v) != names.end();
}

/// Shortest round-trip double formatting (matches the JSON writer's
/// behavior for integral values: no trailing ".0" noise in fingerprints).
std::string format_double(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v >= -9.007199254740992e15 && v <= 9.007199254740992e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string render_errors(std::span<const spec_error> errors) {
  std::string out;
  for (const spec_error& e : errors) {
    if (!out.empty()) out += "; ";
    out += e.field;
    out += ": ";
    out += e.message;
  }
  return out;
}

std::span<const std::string_view> protocol_names() { return k_protocols; }

std::span<const std::string_view> scenario_names(std::string_view protocol) {
  if (protocol == "baseline") return k_baseline_scenarios;
  if (protocol == "optimal") return k_optimal_scenarios;
  if (protocol == "sublinear") return k_sublinear_scenarios;
  if (protocol == "loose") return k_loose_scenarios;
  return {};
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

std::string unknown_name_message(std::string_view what, std::string_view given,
                                 std::span<const std::string_view> candidates) {
  std::string message = "unknown ";
  message += what;
  message += " '";
  message += given;
  message += "'";
  const std::string_view suggestion = nearest_candidate(given, candidates);
  if (!suggestion.empty()) {
    message += " (did you mean ";
    message += suggestion;
    message += "?)";
  }
  return message;
}

std::string sim_request_spec::canonical() const {
  std::string key = "protocol=";
  key += protocol;
  key += " scenario=";
  key += scenario;
  key += " n=";
  key += std::to_string(n);
  if (protocol == "sublinear") {
    key += " h=";
    key += std::to_string(h);
  }
  if (protocol == "loose") {
    key += " t_max=";
    key += std::to_string(t_max);
  }
  key += " trials=";
  key += std::to_string(trials);
  key += " seed=";
  key += std::to_string(seed);
  key += " max_time=";
  key += format_double(max_time);
  key += " engine=";
  key += to_string(engine.kind);
  if (engine.kind == engine_kind::sharded) {
    key += " shards=";
    key += std::to_string(engine.shards);
  }
  return key;
}

void spec_builder::set_protocol(std::string_view v) {
  spec_.protocol = std::string(v);
}

void spec_builder::set_scenario(std::string_view v) {
  spec_.scenario = std::string(v);
  scenario_given_ = true;
}

void spec_builder::set_engine(std::string_view v) {
  engine_text_ = std::string(v);
  engine_given_ = true;
}

void spec_builder::set_shards(std::uint64_t v) {
  spec_.engine.shards = static_cast<std::uint32_t>(v);
  shards_given_ = true;
}

void spec_builder::set_n(std::uint64_t v) {
  spec_.n = static_cast<std::uint32_t>(v);
}

void spec_builder::set_h(std::uint64_t v) {
  spec_.h = static_cast<std::uint32_t>(v);
}

void spec_builder::set_t_max(std::uint64_t v) {
  spec_.t_max = static_cast<std::uint32_t>(v);
}

void spec_builder::set_trials(std::uint64_t v) { spec_.trials = v; }

void spec_builder::set_seed(std::uint64_t v) { spec_.seed = v; }

void spec_builder::set_max_time(double v) { spec_.max_time = v; }

void spec_builder::set_u64_text(std::string_view field,
                                std::string_view text) {
  const std::optional<std::uint64_t> value = parse_u64(text);
  if (!value) {
    std::string message = "expected an unsigned integer, got '";
    message += text;
    message += "'";
    syntax_errors_.push_back({std::string(field), std::move(message)});
    return;
  }
  if (field == "n") return set_n(*value);
  if (field == "h") return set_h(*value);
  if (field == "t_max") return set_t_max(*value);
  if (field == "trials") return set_trials(*value);
  if (field == "seed") return set_seed(*value);
  if (field == "shards") return set_shards(*value);
  syntax_errors_.push_back(
      {std::string(field), "not a spec field this builder knows"});
}

void spec_builder::set_max_time_text(std::string_view text) {
  char* end = nullptr;
  const std::string copy(text);
  const double value = std::strtod(copy.c_str(), &end);
  if (copy.empty() || end != copy.c_str() + copy.size()) {
    std::string message = "expected a number, got '";
    message += text;
    message += "'";
    syntax_errors_.push_back({"max_time", std::move(message)});
    return;
  }
  set_max_time(value);
}

namespace {
constexpr std::string_view k_trace_options[] = {"sample_every", "max_events"};
}  // namespace

std::span<const std::string_view> trace_option_names() {
  return k_trace_options;
}

void telemetry_builder::set_trace_enabled(bool v) { spec_.trace = v; }

void telemetry_builder::set_trace_option(std::string_view name,
                                         std::uint64_t value) {
  if (name == "sample_every") {
    spec_.trace_sample_every = value;
    return;
  }
  if (name == "max_events") {
    spec_.trace_max_events = value;
    return;
  }
  std::string field = "trace.";
  field += name;
  errors_.push_back(
      {std::move(field),
       unknown_name_message("trace option", name, k_trace_options)});
}

void telemetry_builder::set_profile(bool v) { spec_.profile = v; }

std::vector<spec_error> telemetry_builder::finalize() {
  std::vector<spec_error> errors = errors_;
  if (spec_.trace_sample_every == 0) {
    errors.push_back({"trace.sample_every",
                      "sampling period must be >= 1 (1 keeps every event)"});
  }
  if (spec_.trace_max_events == 0) {
    errors.push_back(
        {"trace.max_events", "event buffer cap must be >= 1"});
  }
  return errors;
}

std::vector<spec_error> spec_builder::finalize() {
  std::vector<spec_error> errors = syntax_errors_;

  const bool protocol_known = contains(k_protocols, spec_.protocol);
  if (!protocol_known) {
    errors.push_back({"protocol", unknown_name_message("protocol",
                                                       spec_.protocol,
                                                       k_protocols)});
  } else {
    // Protocol-specific scenario default: loose has no uniform_random.
    if (!scenario_given_ && spec_.protocol == "loose")
      spec_.scenario = "dead_configuration";
    const auto scenarios = scenario_names(spec_.protocol);
    if (!contains(scenarios, spec_.scenario)) {
      std::string what = spec_.protocol;
      what += " scenario";
      errors.push_back(
          {"scenario",
           unknown_name_message(what, spec_.scenario, scenarios)});
    }
  }

  if (engine_given_) {
    const std::optional<engine_kind> kind = parse_engine(engine_text_);
    if (!kind) {
      errors.push_back(
          {"engine", unknown_name_message("engine", engine_text_, k_engines)});
    } else {
      spec_.engine.kind = *kind;
    }
  }
  if (shards_given_) {
    if (spec_.engine.kind != engine_kind::sharded) {
      std::string message = "shards requires engine=sharded (got engine=";
      message += to_string(spec_.engine.kind);
      message += ")";
      errors.push_back({"shards", std::move(message)});
    } else if (spec_.engine.shards == 0) {
      errors.push_back({"shards",
                        "shard count must be >= 1 (omit shards to use "
                        "hardware concurrency)"});
    }
  }

  if (spec_.n < 2)
    errors.push_back({"n", "population size must be at least 2"});
  if (spec_.trials == 0)
    errors.push_back({"trials", "trial count must be positive"});
  if (!(spec_.max_time > 0.0))
    errors.push_back({"max_time", "parallel-time budget must be positive"});
  if (protocol_known && spec_.protocol == "sublinear" && spec_.h == 0)
    errors.push_back({"h", "sublinear history depth must be at least 1"});

  return errors;
}

}  // namespace ssr::util
