// Tiny edit-distance helper for "unknown flag" diagnostics: command-line
// front ends (bench binaries, ssr_cli) suggest the nearest valid flag
// instead of just rejecting a typo.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

namespace ssr {

/// Levenshtein distance (unit costs).  O(|a| * |b|) time, O(|b|) space --
/// flags are short, so this is never hot.
inline std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t replace = diagonal + (a[i - 1] != b[j - 1] ? 1 : 0);
      diagonal = row[j];
      row[j] = std::min(replace, std::min(row[j] + 1, row[j - 1] + 1));
    }
  }
  return row[b.size()];
}

/// The candidate closest to `given`, or "" when nothing is within
/// `max_distance` edits (far-off suggestions confuse more than they help).
inline std::string_view nearest_candidate(
    std::string_view given, std::span<const std::string_view> candidates,
    std::size_t max_distance = 5) {
  std::string_view best;
  std::size_t best_distance = max_distance + 1;
  for (const std::string_view candidate : candidates) {
    const std::size_t d = edit_distance(given, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

}  // namespace ssr
