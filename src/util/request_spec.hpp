// One simulation request, as every front end understands it.
//
// ssr_cli, the bench binaries, and the ssr_serve daemon all accept the
// same logical request -- (protocol, scenario, n, h, t_max, trials, seed,
// max_time, engine, shards) -- but historically each parsed and validated
// it separately, so a typo'd protocol name produced three different error
// messages and --shards was validated nowhere.  This helper is the single
// source of truth: a spec_builder accumulates raw field values (text from
// command lines, typed values from JSON requests), finalize() runs the
// cross-field validation, and every front end renders the same
// field-level errors -- including the nearest-name suggestions -- so bad
// specs are rejected identically at the CLI, the benches, and the wire.
//
// The canonical() form doubles as the serve layer's cache fingerprint:
// deterministic seeds make simulation results pure functions of the spec,
// and canonical() materializes every default and drops fields the selected
// protocol ignores (h for non-sublinear, t_max for non-loose, shards for
// non-sharded), so two requests that differ only in field order or in
// irrelevant fields map to the same cache entry.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "pp/engine.hpp"

namespace ssr::util {

/// One field-level validation error; `field` names the offending request
/// field ("protocol", "engine", "shards", ...), `message` is the shared
/// human-readable diagnostic.
struct spec_error {
  std::string field;
  std::string message;

  friend bool operator==(const spec_error&, const spec_error&) = default;
};

/// "field: message; field: message" -- the single-line rendering the CLI
/// front ends print (the serve wire keeps the structured list).
std::string render_errors(std::span<const spec_error> errors);

struct sim_request_spec {
  std::string protocol = "optimal";
  std::string scenario = "uniform_random";
  std::uint32_t n = 32;
  std::uint32_t h = 1;       // sublinear history depth
  std::uint32_t t_max = 0;   // loose timeout; 0 = 4 log2 n
  std::uint64_t trials = 1;
  std::uint64_t seed = 1;
  double max_time = 1e7;     // parallel-time budget per trial
  engine_spec engine{};

  /// Deterministic fingerprint: fixed field order, every default
  /// materialized, protocol-irrelevant fields omitted.  Equal canonical
  /// strings imply bit-identical simulation results (same trajectories,
  /// same samples), which is what makes the serve result cache exact.
  std::string canonical() const;

  friend bool operator==(const sim_request_spec&,
                         const sim_request_spec&) = default;
};

/// Valid protocol names, in the order --list-protocols prints them.
std::span<const std::string_view> protocol_names();

/// Valid scenario names for `protocol` (empty span for unknown protocols).
std::span<const std::string_view> scenario_names(std::string_view protocol);

/// Accumulates raw request fields and produces the validated spec plus
/// every field error.  Text setters parse and record syntax errors with
/// the field name; typed setters take already-typed values (JSON numbers).
/// finalize() then applies the cross-field rules:
///
///   * protocol and engine names must be known (nearest-name suggestion);
///   * the scenario must belong to the protocol's scenario set;
///   * n >= 2, trials >= 1, max_time > 0, h >= 1 for sublinear;
///   * shards may only be given with engine=sharded, and an explicit
///     shards=0 is rejected (omit the field for hardware concurrency) --
///     nothing is silently clamped or ignored.
class spec_builder {
 public:
  void set_protocol(std::string_view v);
  void set_scenario(std::string_view v);
  void set_engine(std::string_view v);
  void set_shards(std::uint64_t v);
  void set_n(std::uint64_t v);
  void set_h(std::uint64_t v);
  void set_t_max(std::uint64_t v);
  void set_trials(std::uint64_t v);
  void set_seed(std::uint64_t v);
  void set_max_time(double v);

  /// Parses `text` as an unsigned integer for `field` ("n", "h", "t_max",
  /// "trials", "seed", "shards"); records a field error on bad syntax or
  /// unknown field name.
  void set_u64_text(std::string_view field, std::string_view text);
  /// Parses `text` as a positive double for max_time.
  void set_max_time_text(std::string_view text);

  /// True once any setter recorded a value for `scenario` (front ends use
  /// this to keep protocol-specific defaults).
  bool scenario_given() const { return scenario_given_; }
  bool shards_given() const { return shards_given_; }

  /// Runs the cross-field validation; returns all errors in a stable
  /// field order (empty = valid).  Idempotent.
  std::vector<spec_error> finalize();

  /// The spec as accumulated so far; meaningful after a clean finalize().
  const sim_request_spec& spec() const { return spec_; }

 private:
  sim_request_spec spec_;
  std::string engine_text_;
  bool engine_given_ = false;
  bool shards_given_ = false;
  bool scenario_given_ = false;
  std::vector<spec_error> syntax_errors_;
};

/// Per-request telemetry options -- the wire-level "trace" / "profile"
/// request fields (docs/serving.md, "Wire telemetry").  Deliberately NOT
/// part of sim_request_spec: telemetry never changes the simulated
/// trajectory, so it must not enter canonical() or the result-cache
/// fingerprint.
struct telemetry_spec {
  bool trace = false;
  /// Keep every k-th phase_transition event (obs::trace_options).
  std::uint64_t trace_sample_every = 1;
  /// Buffered-event cap for the per-request sink.
  std::uint64_t trace_max_events = 1u << 20;
  bool profile = false;

  bool any() const { return trace || profile; }

  friend bool operator==(const telemetry_spec&,
                         const telemetry_spec&) = default;
};

/// Valid sub-fields of the "trace" request object, for diagnostics.
std::span<const std::string_view> trace_option_names();

/// Accumulates and validates the wire telemetry options, mirroring
/// spec_builder so every front end rejects a bad "trace" object with the
/// same field-level errors and nearest-name suggestions ("sample_evry"
/// must fail loudly, not silently trace with defaults).
class telemetry_builder {
 public:
  void set_trace_enabled(bool v);
  /// Sets "trace.<name>" from a typed value; unknown names record a
  /// field error with a nearest-name suggestion.
  void set_trace_option(std::string_view name, std::uint64_t value);
  void set_profile(bool v);

  /// Cross-field validation: sample_every >= 1, max_events >= 1.
  /// Idempotent; empty = valid.
  std::vector<spec_error> finalize();

  const telemetry_spec& spec() const { return spec_; }

 private:
  telemetry_spec spec_;
  std::vector<spec_error> errors_;
};

/// Strict unsigned-integer parse (digits only, no sign, no overflow
/// checking beyond 64 bits); nullopt on anything else.
std::optional<std::uint64_t> parse_u64(std::string_view text);

/// Shared diagnostics (also used for flags outside the spec, e.g. unknown
/// bench arguments): "unknown <what> '<given>' (did you mean <near>?)",
/// with the suggestion clause dropped when nothing is close.
std::string unknown_name_message(std::string_view what, std::string_view given,
                                 std::span<const std::string_view> candidates);

}  // namespace ssr::util
