// Fuzz-style property tests for the history-tree operations: arbitrary
// interleavings of grafts, own-name scrubs and aging must preserve the
// structural invariants Protocol 7 relies on, and a faithfully simulated
// multi-agent soup must never produce a tree the protocol could not have
// built.
#include <gtest/gtest.h>

#include <vector>

#include "pp/random.hpp"
#include "protocols/history_tree.hpp"
#include "protocols/serialize.hpp"

namespace ssr {
namespace {

name_t make_name(std::uint32_t id) {
  name_t n;
  for (int b = 5; b >= 0; --b) n.append_bit((id >> b) & 1);
  return n;
}

struct soup {
  static constexpr std::uint32_t kAgents = 10;
  std::uint32_t h;
  std::uint32_t t_h;
  std::vector<history_tree> trees;

  explicit soup(std::uint32_t depth, std::uint32_t timer)
      : h(depth), t_h(timer) {
    for (std::uint32_t i = 0; i < kAgents; ++i)
      trees.emplace_back(make_name(i));
  }

  // One protocol-faithful interaction between agents i and j.
  void meet(std::uint32_t i, std::uint32_t j, rng_t& rng,
            std::int64_t retention) {
    const auto sync = static_cast<std::uint32_t>(1 + uniform_below(rng, 100));
    const history_tree before_i = trees[i];
    trees[i].graft_partner(trees[j], h - 1, sync, t_h);
    trees[j].graft_partner(before_i, h - 1, sync, t_h);
    trees[i].remove_named_subtrees(trees[i].root_name());
    trees[j].remove_named_subtrees(trees[j].root_name());
    trees[i].age_edges(retention);
    trees[j].age_edges(retention);
  }
};

class HistoryTreeFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(HistoryTreeFuzz, InvariantsSurviveRandomInterleavings) {
  const auto [h, seed] = GetParam();
  soup world(h, /*timer=*/12);
  rng_t rng(derive_seed(4242 + h, seed));
  for (int step = 0; step < 1500; ++step) {
    const auto i = static_cast<std::uint32_t>(uniform_below(rng, soup::kAgents));
    auto j = static_cast<std::uint32_t>(uniform_below(rng, soup::kAgents - 1));
    if (j >= i) ++j;
    world.meet(i, j, rng, /*retention=*/12);

    if (step % 100 != 0) continue;
    for (std::uint32_t agent = 0; agent < soup::kAgents; ++agent) {
      const auto& tree = world.trees[agent];
      ASSERT_LE(tree.depth(), h) << "agent " << agent << " step " << step;
      ASSERT_TRUE(tree.simply_labelled())
          << "agent " << agent << " step " << step;
      ASSERT_EQ(tree.root_name(), make_name(agent));
      // Serialization round-trips arbitrary reachable trees.
      const std::string text = tree_to_text(tree);
      ASSERT_EQ(tree_to_text(tree_from_text(text)), text);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HistoryTreeFuzz,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u),
                                            ::testing::Range(0, 3)));

// With pruning disabled the node count is monotone in information content
// but still bounded by the structural cap sum_{d<=H} (kAgents-1)^d.
TEST(HistoryTreeFuzz, NodeCountRespectsStructuralCap) {
  const std::uint32_t h = 2;
  soup world(h, /*timer=*/1000);
  rng_t rng(99);
  for (int step = 0; step < 3000; ++step) {
    const auto i = static_cast<std::uint32_t>(uniform_below(rng, soup::kAgents));
    auto j = static_cast<std::uint32_t>(uniform_below(rng, soup::kAgents - 1));
    if (j >= i) ++j;
    world.meet(i, j, rng, /*retention=*/-1);
  }
  const std::size_t cap = 1 + 9 + 9 * 9;  // root + depth1 + depth2
  for (const auto& tree : world.trees) {
    EXPECT_LE(tree.node_count(), cap);
  }
}

// Aggressive pruning (retention 0) keeps trees small without ever breaking
// the structural invariants -- only detection power is affected.
TEST(HistoryTreeFuzz, AggressivePruningStaysStructurallySound) {
  const std::uint32_t h = 3;
  soup world(h, /*timer=*/4);
  rng_t rng(7);
  for (int step = 0; step < 2000; ++step) {
    const auto i = static_cast<std::uint32_t>(uniform_below(rng, soup::kAgents));
    auto j = static_cast<std::uint32_t>(uniform_below(rng, soup::kAgents - 1));
    if (j >= i) ++j;
    world.meet(i, j, rng, /*retention=*/0);
  }
  for (const auto& tree : world.trees) {
    EXPECT_TRUE(tree.simply_labelled());
    EXPECT_LE(tree.depth(), h);
    EXPECT_LT(tree.node_count(), 200u);  // timers cap the fresh horizon
  }
}

}  // namespace
}  // namespace ssr
