// The cross-revision trend pipeline rests on two pieces tested here: the
// shared regression gate (obs/report_compare.hpp) that report_diff and
// report_trend both apply, and the v2 report schema that lets history
// entries carry sketch-backed stats instead of retained samples.
#include "obs/report_compare.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace ssr::obs {
namespace {

report_row samples_row(std::vector<double> samples,
                       bool lower_is_better = true) {
  report_row row;
  row.kind = report_row::kind_t::samples;
  row.section = "stabilization";
  row.protocol = "optimal_silent";
  row.n = 64;
  row.unit = "parallel_time";
  row.lower_is_better = lower_is_better;
  row.trials = samples.size();
  row.samples = std::move(samples);
  return row;
}

report_row stats_row(double mean, double stddev, std::size_t count) {
  report_row row;
  row.kind = report_row::kind_t::samples;
  row.section = "stabilization";
  row.protocol = "optimal_silent";
  row.n = 64;
  row.unit = "parallel_time";
  row.trials = count;
  summary s;
  s.count = count;
  s.mean = mean;
  s.stddev = stddev;
  s.stderr_mean = stddev / std::sqrt(static_cast<double>(count));
  s.median = mean;
  s.min = mean - 2 * stddev;
  s.max = mean + 2 * stddev;
  s.p90 = mean + stddev;
  s.p99 = mean + 2 * stddev;
  row.stats = s;
  return row;
}

std::vector<double> around(double center, std::size_t count) {
  std::vector<double> v(count);
  for (std::size_t i = 0; i < count; ++i) {
    v[i] = center + 0.01 * static_cast<double>(i);
  }
  return v;
}

// The stable/stable/2x-slowdown scenario report_trend judges between the
// oldest and newest revision: identical samples pass clean, the doubled
// row fires.
TEST(ReportCompare, FlagsSlowdownAndPassesIdenticalSamples) {
  const report_row stable = samples_row(around(10.0, 20));
  const report_row still_stable = samples_row(around(10.0, 20));
  const report_row doubled = samples_row(around(20.0, 20));

  const row_verdict clean = compare_rows(stable, still_stable);
  EXPECT_TRUE(clean.comparable);
  EXPECT_FALSE(clean.regression);  // KS p = 1 on identical samples

  const row_verdict drift = compare_rows(stable, doubled);
  EXPECT_TRUE(drift.regression);
  EXPECT_GT(drift.worse, 0.9);
}

TEST(ReportCompare, ImprovementAndShapeOnlyShiftDoNotFire) {
  const report_row base = samples_row(around(10.0, 20));
  // 2x faster: significant by KS, but in the good direction.
  EXPECT_FALSE(compare_rows(base, samples_row(around(5.0, 20))).regression);
  // Significant shift, but under the 10% mean tolerance.
  EXPECT_FALSE(
      compare_rows(base, samples_row(around(10.5, 20))).regression);
  // higher_is_better flips the bad direction.
  const report_row rate_base = samples_row(around(10.0, 20), false);
  const report_row rate_halved = samples_row(around(5.0, 20), false);
  EXPECT_TRUE(compare_rows(rate_base, rate_halved).regression);
}

TEST(ReportCompare, StatsOnlyRowsUseConfidenceIntervalGate) {
  const report_row base = stats_row(10.0, 0.5, 100);
  // 2x slower with tight CIs: fires without any retained samples.
  const row_verdict drift = compare_rows(base, stats_row(20.0, 0.5, 100));
  EXPECT_TRUE(drift.comparable);
  EXPECT_TRUE(drift.regression);
  EXPECT_NE(drift.detail.find("stats-only"), std::string::npos);
  // 15% worse but the CIs swallow the gap: not significant.
  EXPECT_FALSE(
      compare_rows(stats_row(10.0, 8.0, 4), stats_row(11.5, 8.0, 4))
          .regression);
  // Mixed: samples on one side, stats on the other, still comparable.
  const row_verdict mixed =
      compare_rows(samples_row(around(10.0, 20)), stats_row(20.0, 0.5, 100));
  EXPECT_TRUE(mixed.comparable);
  EXPECT_TRUE(mixed.regression);
}

TEST(ReportCompare, ValueRowsUseGenerousTolerance) {
  report_row base;
  base.kind = report_row::kind_t::value;
  base.section = "throughput";
  base.metric = "interactions_per_second";
  base.unit = "1/s";
  base.lower_is_better = false;
  base.value = 1e9;
  report_row wobble = base;
  wobble.value = 0.8e9;  // -20%: within the 33% value tolerance
  EXPECT_FALSE(compare_rows(base, wobble).regression);
  report_row collapsed = base;
  collapsed.value = 0.5e9;  // -50%: fires
  EXPECT_TRUE(compare_rows(base, collapsed).regression);
}

// --- schema v2 ---------------------------------------------------------

TEST(ReportV2, SketchBackedRowRoundTripsWithoutSamples) {
  metrics_registry registry;
  histogram& h = registry.get_histogram("trial.seconds");
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));

  bench_report report;
  report.experiment = "T1";
  report.binary = "bench_test";
  report.engine = "direct";
  report.git_rev = "deadbeef";
  report.add_summary("stabilization", "optimal_silent", 64, "", 42,
                     "parallel_time", summary_from_histogram(h.snapshot()));

  const json_value doc = report.to_json();
  EXPECT_EQ(doc.find("schema_version")->as_int64(), 2);
  EXPECT_TRUE(validate_report_json(doc).empty());
  const json_value& row = doc.find("rows")->at(0);
  EXPECT_EQ(row.find("samples"), nullptr);  // no retained samples
  ASSERT_NE(row.find("stats"), nullptr);
  EXPECT_EQ(row.find("trials")->as_uint64(), 1000u);

  const auto parsed = bench_report::from_json(doc);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->rows.size(), 1u);
  const report_row& parsed_row = parsed->rows.front();
  EXPECT_TRUE(parsed_row.samples.empty());
  ASSERT_TRUE(parsed_row.stats.has_value());
  EXPECT_NEAR(parsed_row.stats->mean, 500.5, 1e-9);
  // Sketch percentiles land within the 2% relative-error budget.
  EXPECT_NEAR(parsed_row.stats->median, 500.5, 0.02 * 500.5);
  EXPECT_NEAR(parsed_row.stats->p99, 990.0, 0.02 * 990.0);
  // Exact sample stddev of 1..1000 is sqrt(N(N+1)/12) with N=1000.
  EXPECT_NEAR(parsed_row.stats->stddev, 288.82, 0.5);
}

TEST(ReportV2, Version1DocumentsStillValidateAndParse) {
  bench_report report;
  report.experiment = "T2";
  report.binary = "bench_test";
  report.engine = "direct";
  report.git_rev = "deadbeef";
  report.add_samples("stabilization", "baseline", 32, "", 3, 7,
                     "parallel_time", {1.0, 2.0, 3.0});
  json_value doc = report.to_json();
  doc["schema_version"] = json_value{1};  // as written by older builds
  EXPECT_TRUE(validate_report_json(doc).empty());
  const auto parsed = bench_report::from_json(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->rows.front().samples.size(), 3u);
}

TEST(ReportV2, StatsOnlyRowsAreInvalidInVersion1) {
  bench_report report;
  report.experiment = "T3";
  report.binary = "bench_test";
  report.engine = "direct";
  report.git_rev = "deadbeef";
  summary s;
  s.count = 10;
  s.mean = 1.0;
  report.add_summary("stabilization", "baseline", 32, "", 7,
                     "parallel_time", s);
  json_value doc = report.to_json();
  EXPECT_TRUE(validate_report_json(doc).empty());
  doc["schema_version"] = json_value{1};  // v1 requires the sample array
  EXPECT_FALSE(validate_report_json(doc).empty());
}

TEST(ReportV2, UnsupportedVersionsAreRejected) {
  bench_report report;
  report.experiment = "T4";
  report.binary = "bench_test";
  report.engine = "direct";
  report.git_rev = "deadbeef";
  json_value doc = report.to_json();
  doc["schema_version"] = json_value{3};
  EXPECT_FALSE(validate_report_json(doc).empty());
  doc["schema_version"] = json_value{0};
  EXPECT_FALSE(validate_report_json(doc).empty());
}

}  // namespace
}  // namespace ssr::obs
