// Cross-cutting invariant and metamorphic tests: properties that must hold
// *throughout* executions, not just at stabilization, plus consistency
// checks between independent implementations of the same notion.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "ssr.hpp"

namespace ssr {
namespace {

// The incremental rank_tracker must agree with the from-scratch
// is_valid_ranking predicate at every point of a random execution
// (metamorphic: two implementations, one notion).
TEST(Invariants, RankTrackerMatchesPredicateThroughoutExecution) {
  const std::uint32_t n = 16;
  optimal_silent_ssr p(n);
  rng_t scenario_rng(3);
  auto agents = adversarial_configuration(
      p, optimal_silent_scenario::uniform_random, scenario_rng);

  rng_t rng(17);
  rank_tracker tracker(n);
  for (const auto& s : agents) tracker.add(p.rank_of(s));

  for (int step = 0; step < 30000; ++step) {
    const agent_pair pair = sample_pair(rng, n);
    auto& a = agents[pair.initiator];
    auto& b = agents[pair.responder];
    const auto ra = p.rank_of(a);
    const auto rb = p.rank_of(b);
    p.interact(a, b, rng);
    tracker.update(ra, p.rank_of(a));
    tracker.update(rb, p.rank_of(b));
    if (step % 997 == 0) {
      ASSERT_EQ(tracker.correct(), is_valid_ranking(p, agents))
          << "diverged at step " << step;
    }
  }
}

// Name ordering must coincide with lexicographic order of the rendered
// bitstrings (strings over '0' < '1'), including the prefix rule.
TEST(Invariants, NameOrderMatchesStringOrder) {
  rng_t rng(5);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto la = static_cast<std::uint32_t>(uniform_below(rng, 8));
    const auto lb = static_cast<std::uint32_t>(uniform_below(rng, 8));
    const name_t a = random_name(rng, la);
    const name_t b = random_name(rng, lb);
    const std::string sa = a.empty() ? "" : a.to_string();
    const std::string sb = b.empty() ? "" : b.to_string();
    EXPECT_EQ(a < b, sa < sb) << sa << " vs " << sb;
    EXPECT_EQ(a == b, sa == sb);
  }
}

// In Optimal-Silent-SSR, the children counter can never exceed the number
// of in-range child ranks, and settled ranks stay in {1..n} -- at every
// step, from every scenario.
TEST(Invariants, OptimalSilentFieldRangesHoldThroughout) {
  const std::uint32_t n = 12;
  optimal_silent_ssr p(n);
  for (const auto scenario : {optimal_silent_scenario::uniform_random,
                              optimal_silent_scenario::all_unsettled_expired,
                              optimal_silent_scenario::duplicated_ranks}) {
    rng_t scenario_rng(7);
    auto agents = adversarial_configuration(p, scenario, scenario_rng);
    rng_t rng(23);
    for (int step = 0; step < 20000; ++step) {
      const agent_pair pair = sample_pair(rng, n);
      p.interact(agents[pair.initiator], agents[pair.responder], rng);
      if (step % 499 != 0) continue;
      for (const auto& s : agents) {
        switch (s.role) {
          case optimal_silent_ssr::role_t::settled:
            ASSERT_GE(s.rank, 1u);
            ASSERT_LE(s.rank, n);
            ASSERT_LE(s.children, 2u);
            break;
          case optimal_silent_ssr::role_t::unsettled:
            ASSERT_LE(s.errorcount, p.params().e_max);
            break;
          case optimal_silent_ssr::role_t::resetting:
            ASSERT_LE(s.reset.resetcount, p.params().r_max);
            ASSERT_LE(s.reset.delaytimer, p.params().d_max);
            break;
        }
      }
    }
  }
}

// Once Optimal-Silent-SSR stabilizes, the settled agents form a consistent
// full binary tree: every non-root rank's parent (rank/2) is present, and
// every parent's children counter equals its number of in-range children.
TEST(Invariants, OptimalSilentStabilizesIntoConsistentTree) {
  const std::uint32_t n = 21;
  optimal_silent_ssr p(n);
  std::vector<optimal_silent_ssr::agent_state> final_config;
  convergence_options opt;
  opt.max_parallel_time = 1e6;
  const auto r = measure_convergence(p, p.initial_configuration(), 31, opt,
                                     &final_config);
  ASSERT_TRUE(r.converged);
  ASSERT_TRUE(is_valid_ranking(p, final_config));
  std::vector<const optimal_silent_ssr::agent_state*> by_rank(n + 1, nullptr);
  for (const auto& s : final_config) by_rank[s.rank] = &s;
  for (std::uint32_t rank = 1; rank <= n; ++rank) {
    ASSERT_NE(by_rank[rank], nullptr);
    const std::uint32_t in_range_children =
        (2 * rank + 1 <= n) ? 2 : (2 * rank <= n ? 1 : 0);
    // A recruiting parent only stops at 2; with the protocol complete,
    // every parent has recruited exactly its in-range children.
    EXPECT_EQ(by_rank[rank]->children, in_range_children) << "rank " << rank;
  }
}

// Sublinear-Time-SSR from a clean start must never revoke a ranking it
// reported (no false positives; counted via correctness_losses).
TEST(Invariants, SublinearCleanRunsNeverRevokeRanking) {
  for (const std::uint32_t h : {0u, 1u, 2u}) {
    const std::uint32_t n = 8;
    sublinear_time_ssr p(n, h);
    rng_t rng(41 + h);
    auto init = p.initial_configuration(rng);
    convergence_options opt;
    opt.max_parallel_time = 1e6;
    opt.confirm_parallel_time = 200.0;
    const auto r = measure_convergence(p, std::move(init), 43 + h, opt);
    ASSERT_TRUE(r.converged) << "h=" << h;
    EXPECT_EQ(r.correctness_losses, 0u) << "h=" << h;
  }
}

// Parallel time is interactions / n by definition -- spot-check the
// accounting across engines (direct simulation vs measured convergence).
TEST(Invariants, ParallelTimeAccounting) {
  silent_n_state_ssr p(10);
  simulation<silent_n_state_ssr> sim(
      p, std::vector<silent_n_state_ssr::agent_state>(10), 1);
  for (int i = 0; i < 1000; ++i) sim.step();
  EXPECT_DOUBLE_EQ(sim.parallel_time(), 100.0);
}

// The roll call can only complete for everyone after it has completed for
// someone, and both beat a naive n * direct-meeting bound.
TEST(Invariants, RollCallOrdering) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto r = run_roll_call(128, seed);
    EXPECT_LE(r.first_complete_time, r.completion_time);
    EXPECT_LT(r.completion_time, 128.0);  // far below Theta(n)
  }
}

}  // namespace
}  // namespace ssr
