#include <gtest/gtest.h>

#include <cmath>

#include "analysis/statistics.hpp"
#include "pp/trial.hpp"
#include "processes/analytic.hpp"
#include "processes/bounded_epidemic.hpp"
#include "processes/epidemic.hpp"
#include "processes/roll_call.hpp"

namespace ssr {
namespace {

TEST(Epidemic, CompletesAndCountsInteractions) {
  const epidemic_result r = run_epidemic(64, 1);
  EXPECT_GT(r.interactions, 63u);  // at least n-1 infecting interactions
  EXPECT_DOUBLE_EQ(r.completion_time,
                   static_cast<double>(r.interactions) / 64.0);
}

TEST(Epidemic, LogarithmicGrowth) {
  // Mean completion time should grow ~ln n: ratio between n=1024 and n=64
  // is ln(1024)/ln(64) = 10/6 ~ 1.67, far from the linear ratio 16.
  auto mean_time = [](std::uint32_t n) {
    const auto times = run_trials(40, n, [n](std::uint64_t seed) {
      return run_epidemic(n, seed).completion_time;
    });
    return summarize(times).mean;
  };
  const double t64 = mean_time(64);
  const double t1024 = mean_time(1024);
  EXPECT_GT(t1024, t64);
  EXPECT_LT(t1024 / t64, 3.0);
}

TEST(Epidemic, KnownConstant) {
  // Expected interactions telescope to sum_{I=1..n-1} n(n-1)/(2 I (n-I))
  // ~= n ln n, i.e. ~1.0 * ln n parallel time (the paper derives sharp
  // large-deviation constants from [48]).  Allow generous slack.
  const std::uint32_t n = 512;
  const auto times = run_trials(60, 99, [n](std::uint64_t seed) {
    return run_epidemic(n, seed).completion_time;
  });
  const double mean = summarize(times).mean;
  const double ln_n = std::log(static_cast<double>(n));
  EXPECT_GT(mean, 0.8 * ln_n);
  EXPECT_LT(mean, 1.6 * ln_n);
}

TEST(Epidemic, TailIsLight) {
  // WHP claims rest on the epidemic's concentration: the p99 completion
  // time should stay within a small constant of ln n.
  const std::uint32_t n = 256;
  const auto times = run_trials(300, 123, [n](std::uint64_t seed) {
    return run_epidemic(n, seed).completion_time;
  });
  const double ln_n = std::log(static_cast<double>(n));
  EXPECT_LT(quantile(times, 0.99), 3.0 * ln_n);
}

TEST(BoundedEpidemic, HitTimesAreMonotoneInK) {
  const bounded_epidemic_result r = run_bounded_epidemic(256, 8, 7);
  // tau_k is non-increasing in k wherever defined (value <= k-1 implies
  // value <= k).
  double prev = 1e300;
  for (std::uint32_t k = 1; k <= 8; ++k) {
    if (r.hit_time[k] == 0.0) continue;
    EXPECT_LE(r.hit_time[k], prev + 1e-9);
    prev = r.hit_time[k];
  }
}

TEST(BoundedEpidemic, Tau1RequiresDirectMeeting) {
  // tau_1 means the target heard the source directly: expected time is
  // (n-1)/2 (direct_meeting_time).  Check the mean against the formula.
  const std::uint32_t n = 64;
  const auto times = run_trials(200, 5, [n](std::uint64_t seed) {
    return run_bounded_epidemic(n, 1, seed).hit_time[1];
  });
  const summary s = summarize(times);
  const double expected = direct_meeting_time(n);
  EXPECT_NEAR(s.mean, expected, 0.25 * expected);
}

TEST(BoundedEpidemic, LargerKIsMuchFaster) {
  const std::uint32_t n = 1024;
  auto mean_tau = [&](std::uint32_t k) {
    const auto times = run_trials(40, k * 1000, [&](std::uint64_t seed) {
      return run_bounded_epidemic(n, k, seed).hit_time[k];
    });
    return summarize(times).mean;
  };
  const double tau1 = mean_tau(1);
  const double tau3 = mean_tau(3);
  // E[tau_1] = Theta(n), E[tau_3] = O(n^{1/3}): expect at least ~8x gap at
  // n = 1024.
  EXPECT_GT(tau1 / tau3, 8.0);
}

TEST(BoundedEpidemic, RejectsBadParameters) {
  EXPECT_THROW(run_bounded_epidemic(8, 0, 1), std::logic_error);
  EXPECT_THROW(run_bounded_epidemic(8, 8, 1), std::logic_error);
}

TEST(RollCall, CompletesWithAllKnowledge) {
  const roll_call_result r = run_roll_call(64, 3);
  EXPECT_GT(r.completion_time, 0.0);
  EXPECT_GE(r.completion_time, r.first_complete_time);
}

TEST(RollCall, RoughlyOnePointFiveTimesEpidemic) {
  // Section 2: roll call is only ~1.5x slower than one epidemic.
  const std::uint32_t n = 256;
  const auto epidemic_times = run_trials(60, 11, [n](std::uint64_t seed) {
    return run_epidemic(n, seed).completion_time;
  });
  const auto roll_times = run_trials(60, 13, [n](std::uint64_t seed) {
    return run_roll_call(n, seed).completion_time;
  });
  const double ratio =
      summarize(roll_times).mean / summarize(epidemic_times).mean;
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 2.2);
}

TEST(Analytic, HarmonicNumbers) {
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_DOUBLE_EQ(harmonic(2), 1.5);
  EXPECT_NEAR(harmonic(100000), std::log(100000.0) + 0.5772, 1e-4);
}

TEST(Analytic, LeaderEliminationIsLinear) {
  EXPECT_NEAR(leader_elimination_time(100), 99.0 * 99.0 / 100.0, 1e-9);
  EXPECT_GT(leader_elimination_time(1000), leader_elimination_time(100));
}

TEST(Analytic, DirectMeeting) {
  EXPECT_DOUBLE_EQ(direct_meeting_time(101), 50.0);
}

TEST(Analytic, SilentTailBound) {
  // alpha = 1/3 gives probability >= 1/(2n).
  EXPECT_NEAR(silent_tail_lower_bound(100, 1.0 / 3.0), 0.005, 1e-9);
}

}  // namespace
}  // namespace ssr
