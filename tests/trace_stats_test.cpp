#include "analysis/trace_stats.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "obs/trace.hpp"
#include "pp/engine.hpp"
#include "protocols/adversary.hpp"
#include "protocols/optimal_silent.hpp"

namespace ssr {
namespace {

using obs::trace_event;
using obs::trace_event_kind;
using obs::trace_sink;

trace_event make_event(trace_event_kind kind, double time,
                       std::uint64_t interaction,
                       std::uint32_t agent = obs::trace_no_agent,
                       std::int32_t from = -1, std::int32_t to = -1) {
  return trace_event{kind, time, interaction, agent, from, to};
}

/// Executes Optimal-Silent-SSR from the duplicated_ranks start with a
/// phase observer attached (the ssr_cli --trace-out pipeline, minus the
/// file), and returns the sink.
trace_sink run_traced(std::uint32_t n, std::uint64_t seed,
                      obs::trace_options options = {}) {
  trace_sink sink(options);
  optimal_silent_ssr p(n);
  rng_t rng(seed);
  auto init = adversarial_configuration(
      p, optimal_silent_scenario::duplicated_ranks, rng);
  direct_engine<optimal_silent_ssr> eng(p, std::move(init), seed ^ 0x1234);
  obs::phase_observer<optimal_silent_ssr> observer(p, eng.agents(), &sink);
  observer.begin(eng.parallel_time(), eng.interactions());
  eng.run(std::uint64_t{400} * n,
          [&](const agent_pair& pair) { observer.before(pair); },
          [&](const agent_pair& pair, bool changed) {
            observer.after(pair, changed, eng.parallel_time(),
                           eng.interactions());
            return false;
          });
  observer.end(eng.parallel_time(), eng.interactions());
  return sink;
}

parsed_trace parse_sink(const trace_sink& sink) {
  const optimal_silent_ssr p(4);
  std::vector<std::string_view> names;
  for (std::uint32_t ph = 0; ph < p.obs_phase_count(); ++ph) {
    names.push_back(optimal_silent_ssr::obs_phase_name(ph));
  }
  std::ostringstream os;
  sink.write_jsonl(os, names);
  std::istringstream is(os.str());
  std::string error;
  auto trace = parse_trace_jsonl(is, &error);
  EXPECT_TRUE(trace.has_value()) << error;
  return trace.value_or(parsed_trace{});
}

TEST(TraceStats, JsonlParseRoundTripsEvents) {
  const trace_sink sink = run_traced(48, 21);
  const parsed_trace trace = parse_sink(sink);
  EXPECT_EQ(trace.offered, sink.offered());
  EXPECT_EQ(trace.sampled_out, sink.sampled_out());
  EXPECT_EQ(trace.dropped, sink.dropped());
  ASSERT_EQ(trace.events.size(), sink.events().size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(trace.events[i], sink.events()[i]) << "event " << i;
  }
  EXPECT_FALSE(trace.phase_names.empty());
}

TEST(TraceStats, ParseRejectsMalformedLines) {
  std::istringstream garbage("{\"event\":\"no_such_event\",\"time\":0}\n");
  std::string error;
  EXPECT_FALSE(parse_trace_jsonl(garbage, &error).has_value());
  EXPECT_NE(error.find("no_such_event"), std::string::npos);

  std::istringstream not_json("not json at all\n");
  EXPECT_FALSE(parse_trace_jsonl(not_json, &error).has_value());
}

// The aggregate statistics must agree with what the phase_observer
// invariants promise about the raw stream: waves come in start/end pairs,
// every transition contributes one entry, one exit and one dwell, and the
// interaction span matches the run framing.
TEST(TraceStats, StatsConsistentWithObservedRun) {
  const trace_sink sink = run_traced(48, 21);
  const parsed_trace trace = parse_sink(sink);

  std::uint64_t transitions = 0;
  std::uint64_t wave_starts = 0;
  std::uint64_t wave_ends = 0;
  for (const trace_event& e : sink.events()) {
    transitions += e.kind == trace_event_kind::phase_transition;
    wave_starts += e.kind == trace_event_kind::reset_wave_start;
    wave_ends += e.kind == trace_event_kind::reset_wave_end;
  }
  ASSERT_GT(transitions, 0u);
  ASSERT_GT(wave_starts, 0u);

  trace_stats_accumulator stats;
  stats.add(trace);
  EXPECT_EQ(stats.runs(), 1u);
  EXPECT_EQ(stats.events(), sink.events().size());

  const reset_wave_stats waves = stats.reset_waves();
  EXPECT_EQ(waves.waves, wave_ends);
  EXPECT_EQ(waves.unclosed, wave_starts - wave_ends);
  EXPECT_EQ(waves.duration_time.count, wave_ends);

  std::uint64_t entries = 0;
  std::uint64_t exits = 0;
  std::uint64_t dwells = 0;
  const double total_time = stats.total_time();
  for (const phase_stats& ph : stats.phases()) {
    entries += ph.entries;
    exits += ph.exits;
    dwells += ph.dwell.count;
    if (ph.dwell.count > 0) {
      EXPECT_GE(ph.dwell.min, 0.0) << ph.name;
      EXPECT_LE(ph.dwell.max, total_time) << ph.name;
      EXPECT_LE(ph.dwell.p50, ph.dwell.p99) << ph.name;
    }
  }
  EXPECT_EQ(entries, transitions);
  EXPECT_EQ(exits, transitions);
  EXPECT_EQ(dwells, transitions);

  EXPECT_EQ(stats.interactions(), sink.events().back().interaction -
                                      sink.events().front().interaction);
  EXPECT_GT(stats.total_time(), 0.0);
}

TEST(TraceStats, SyntheticWaveAndConvergenceBreakdown) {
  parsed_trace trace;
  trace.events = {
      make_event(trace_event_kind::run_start, 0.0, 0),
      make_event(trace_event_kind::reset_wave_start, 1.0, 100),
      make_event(trace_event_kind::rank_collision, 1.5, 150, 3),
      make_event(trace_event_kind::reset_wave_end, 3.0, 300),
      make_event(trace_event_kind::reset_wave_start, 5.0, 500),
      make_event(trace_event_kind::reset_wave_end, 6.0, 600),
      make_event(trace_event_kind::convergence, 7.0, 700),
      make_event(trace_event_kind::correctness_lost, 8.0, 800),
      make_event(trace_event_kind::convergence, 9.0, 900),
      make_event(trace_event_kind::run_end, 10.0, 1000),
  };

  trace_stats_accumulator stats;
  stats.add(trace);

  const reset_wave_stats waves = stats.reset_waves();
  EXPECT_EQ(waves.waves, 2u);
  EXPECT_EQ(waves.unclosed, 0u);
  EXPECT_DOUBLE_EQ(waves.duration_time.mean, 1.5);   // (2 + 1) / 2
  EXPECT_DOUBLE_EQ(waves.duration_time.min, 1.0);
  EXPECT_DOUBLE_EQ(waves.duration_time.max, 2.0);
  EXPECT_DOUBLE_EQ(waves.duration_interactions.mean, 150.0);

  EXPECT_EQ(stats.rank_collisions(), 1u);
  EXPECT_DOUBLE_EQ(stats.rank_collision_rate(), 1.0 / 1000.0);

  const convergence_stats conv = stats.convergence();
  EXPECT_EQ(conv.convergences, 2u);
  EXPECT_EQ(conv.correctness_lost, 1u);
  EXPECT_DOUBLE_EQ(conv.time_to_first.mean, 7.0);
  EXPECT_DOUBLE_EQ(conv.time_to_last.mean, 9.0);
}

TEST(TraceStats, DwellTimesFromTransitions) {
  parsed_trace trace;
  trace.phase_names = {"a", "b"};
  trace.events = {
      make_event(trace_event_kind::run_start, 0.0, 0),
      // Agent 1 leaves phase 0 at t=2 (dwell 2 since run_start), re-leaves
      // phase 1 at t=5 (dwell 3).
      make_event(trace_event_kind::phase_transition, 2.0, 20, 1, 0, 1),
      make_event(trace_event_kind::phase_transition, 5.0, 50, 1, 1, 0),
      // Agent 2 leaves phase 0 at t=4 (dwell 4 since run_start).
      make_event(trace_event_kind::phase_transition, 4.0, 40, 2, 0, 1),
      make_event(trace_event_kind::run_end, 6.0, 60),
  };

  trace_stats_accumulator stats;
  stats.add(trace);
  const std::vector<phase_stats> phases = stats.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].name, "a");
  EXPECT_EQ(phases[0].exits, 2u);
  EXPECT_EQ(phases[0].entries, 1u);
  ASSERT_EQ(phases[0].dwell.count, 2u);
  EXPECT_DOUBLE_EQ(phases[0].dwell.mean, 3.0);  // dwells 2 and 4
  EXPECT_EQ(phases[1].exits, 1u);
  EXPECT_EQ(phases[1].entries, 2u);
  ASSERT_EQ(phases[1].dwell.count, 1u);
  EXPECT_DOUBLE_EQ(phases[1].dwell.mean, 3.0);  // t=2 -> t=5
}

TEST(TraceStats, AggregatesAcrossRuns) {
  parsed_trace first;
  first.events = {
      make_event(trace_event_kind::run_start, 0.0, 0),
      make_event(trace_event_kind::convergence, 1.0, 10),
      make_event(trace_event_kind::run_end, 2.0, 20),
  };
  parsed_trace second;
  second.events = {
      make_event(trace_event_kind::run_start, 0.0, 0),
      make_event(trace_event_kind::convergence, 3.0, 30),
      make_event(trace_event_kind::run_end, 4.0, 40),
  };
  trace_stats_accumulator stats;
  stats.add(first);
  stats.add(second);
  EXPECT_EQ(stats.runs(), 2u);
  EXPECT_EQ(stats.interactions(), 60u);
  EXPECT_DOUBLE_EQ(stats.total_time(), 6.0);
  const convergence_stats conv = stats.convergence();
  EXPECT_EQ(conv.time_to_first.count, 2u);
  EXPECT_DOUBLE_EQ(conv.time_to_first.mean, 2.0);  // (1 + 3) / 2
}

TEST(TraceStats, JsonSummaryIsVersionedAndParsable) {
  const trace_sink sink = run_traced(32, 7);
  trace_stats_accumulator stats;
  stats.add(parse_sink(sink));
  const obs::json_value summary = stats.to_json();
  EXPECT_EQ(summary.find("schema_version")->as_int64(),
            trace_stats_schema_version);
  // dump/parse round trip keeps the document intact.
  const auto reparsed = obs::json_value::parse(summary.dump(2));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->find("runs")->as_uint64(), 1u);
  ASSERT_NE(reparsed->find("reset_waves"), nullptr);
  ASSERT_NE(reparsed->find("convergence"), nullptr);
  ASSERT_NE(reparsed->find("phases"), nullptr);

  std::ostringstream table;
  stats.print_table(table);
  EXPECT_NE(table.str().find("reset waves"), std::string::npos);
  EXPECT_NE(table.str().find("rank collisions"), std::string::npos);
}

// The Chrome exporter must produce a well-formed trace-event document:
// every event carries name/ph/ts/pid/tid, and duration events balance per
// (pid, tid, name) -- that is what Perfetto / chrome://tracing require to
// load the file.
TEST(TraceStats, ChromeExportBalancesAndRoundTrips) {
  const trace_sink sink = run_traced(48, 21);
  const parsed_trace trace = parse_sink(sink);
  const obs::json_value chrome = chrome_trace_json(trace, 7);

  const auto reparsed = obs::json_value::parse(chrome.dump());
  ASSERT_TRUE(reparsed.has_value());
  const obs::json_value* events = reparsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GT(events->size(), 0u);

  std::map<std::tuple<std::int64_t, std::int64_t, std::string>, int> depth;
  std::uint64_t instants = 0;
  double last_ts = 0.0;
  for (const obs::json_value& e : events->items()) {
    ASSERT_TRUE(e.is_object());
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("ph"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    EXPECT_EQ(e.find("pid")->as_int64(), 7);
    const std::string ph = e.find("ph")->as_string();
    if (ph == "M") continue;  // metadata has no timestamp
    ASSERT_NE(e.find("ts"), nullptr);
    const double ts = e.find("ts")->as_double();
    EXPECT_GE(ts, 0.0);
    last_ts = std::max(last_ts, ts);
    const auto key = std::make_tuple(e.find("pid")->as_int64(),
                                     e.find("tid")->as_int64(),
                                     e.find("name")->as_string());
    if (ph == "B") {
      ++depth[key];
    } else if (ph == "E") {
      --depth[key];
      EXPECT_GE(depth[key], 0) << "E without B for " << std::get<2>(key);
    } else {
      EXPECT_EQ(ph, "i");
      ++instants;
    }
  }
  for (const auto& [key, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced duration event " << std::get<2>(key);
  }
  EXPECT_GT(instants, 0u);
  EXPECT_GT(last_ts, 0.0);
}

// Structural statistics (waves, convergence, collisions) stay exact even
// when phase transitions are heavily sampled, because the sink never
// samples structural events out.
TEST(TraceStats, SampledTraceKeepsStructuralStatsExact) {
  const trace_sink full = run_traced(48, 21);
  const trace_sink sampled =
      run_traced(48, 21, {.sample_every = 50, .max_events = 1u << 20});
  trace_stats_accumulator full_stats;
  full_stats.add(parse_sink(full));
  trace_stats_accumulator sampled_stats;
  sampled_stats.add(parse_sink(sampled));

  EXPECT_EQ(sampled_stats.reset_waves().waves, full_stats.reset_waves().waves);
  EXPECT_EQ(sampled_stats.rank_collisions(), full_stats.rank_collisions());
  EXPECT_EQ(sampled_stats.interactions(), full_stats.interactions());
  EXPECT_GT(sampled_stats.sampled_out(), 0u);
  EXPECT_LT(sampled_stats.events(), full_stats.events());
}

}  // namespace
}  // namespace ssr
