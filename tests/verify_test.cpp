// Exhaustive machine-checks of the self-stabilization claims at small n:
// terminal-SCC analysis over the *entire* configuration space (see
// verify/reachability.hpp).  These are proofs, not samples -- every
// configuration is explored.
#include "verify/reachability.hpp"

#include <gtest/gtest.h>

#include "protocols/initialized.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"

namespace ssr {
namespace {

// ------------------------------------------------------------- Protocol 1

class BaselineVerification : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(BaselineVerification, IsSelfStabilizingAndSilent) {
  const std::uint32_t n = GetParam();
  silent_n_state_ssr p(n);
  const auto result = verify_self_stabilization(p, p.all_states());
  EXPECT_TRUE(result.self_stabilizing) << "n=" << n;
  EXPECT_TRUE(result.silent) << "n=" << n;
  // The unique stable configuration {0, ..., n-1} is the only terminal
  // component.
  EXPECT_EQ(result.terminal_components, 1u) << "n=" << n;
  EXPECT_GT(result.configurations, 1u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BaselineVerification,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u));

// A mutated baseline that bumps ranks by 2 preserves rank parity, so from
// an all-even configuration the odd ranks are unreachable: the mutant is
// NOT self-stabilizing, and the verifier must find the counterexample.
TEST(BaselineVerification, MutantSkippingRanksIsRejected) {
  struct mutant_baseline {
    using agent_state = silent_n_state_ssr::agent_state;
    std::uint32_t n;
    std::uint32_t population_size() const { return n; }
    bool interact(agent_state& a, agent_state& b, rng_t&) const {
      if (a.rank != b.rank) return false;
      b.rank = (b.rank + 2) % n;  // BUG: should be + 1
      return true;
    }
    std::uint32_t rank_of(const agent_state& s) const { return s.rank + 1; }
  };
  const std::uint32_t n = 4;
  mutant_baseline p{n};
  std::vector<mutant_baseline::agent_state> states(n);
  for (std::uint32_t r = 0; r < n; ++r) states[r].rank = r;
  const auto result = verify_self_stabilization(p, states);
  EXPECT_FALSE(result.self_stabilizing);
  ASSERT_TRUE(result.counterexample.has_value());
}

// A mutant that never wraps (saturates at n-1) deadlocks all colliding
// agents in the top rank.
TEST(BaselineVerification, MutantWithoutWrapIsRejected) {
  struct saturating_baseline {
    using agent_state = silent_n_state_ssr::agent_state;
    std::uint32_t n;
    std::uint32_t population_size() const { return n; }
    bool interact(agent_state& a, agent_state& b, rng_t&) const {
      if (a.rank != b.rank || b.rank + 1 >= n) return false;  // BUG: no wrap
      b.rank = b.rank + 1;
      return true;
    }
    std::uint32_t rank_of(const agent_state& s) const { return s.rank + 1; }
  };
  const std::uint32_t n = 4;
  saturating_baseline p{n};
  std::vector<saturating_baseline::agent_state> states(n);
  for (std::uint32_t r = 0; r < n; ++r) states[r].rank = r;
  const auto result = verify_self_stabilization(p, states);
  EXPECT_FALSE(result.self_stabilizing);
}

// --------------------------------------------------- initialized contrast

TEST(InitializedVerification, IsNotSelfStabilizing) {
  // The 2-state (l,l) -> (l,f) protocol: the all-followers configuration is
  // an incorrect terminal component (Section 1's motivating failure).
  const std::uint32_t n = 4;
  initialized_leader_election p(n);
  std::vector<initialized_leader_election::agent_state> states(2);
  states[0].leader = false;
  states[1].leader = true;
  const auto result = verify_self_stabilization(p, states);
  EXPECT_FALSE(result.self_stabilizing);
  ASSERT_TRUE(result.counterexample.has_value());
  // The counterexample is the all-followers configuration: every index
  // refers to the follower state.
  for (const std::size_t s : *result.counterexample) EXPECT_EQ(s, 0u);
}

// ----------------------------------------------------------- Protocols 3+4

optimal_silent_ssr::tuning tiny_tuning(std::uint32_t n) {
  // The smallest constants that keep the configuration space tractable.
  // Self-stabilization (a probability-1 property) must hold for *any*
  // positive constants -- the Theta(n) choices in the paper only buy
  // speed, not correctness.
  optimal_silent_ssr::tuning t;
  t.e_max = n;
  t.r_max = 2;
  t.d_max = 2;
  return t;
}

class OptimalSilentVerification
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(OptimalSilentVerification, IsSelfStabilizingAndSilent) {
  const std::uint32_t n = GetParam();
  optimal_silent_ssr p(n, tiny_tuning(n));
  const auto result = verify_self_stabilization(p, p.all_states());
  EXPECT_TRUE(result.self_stabilizing) << "n=" << n;
  EXPECT_TRUE(result.silent) << "n=" << n;
  // Terminal components are exactly the correct silent configurations:
  // each is a ranking 1..n decorated with children counters that can no
  // longer change.
  EXPECT_GE(result.terminal_components, 1u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptimalSilentVerification,
                         ::testing::Values(2u, 3u, 4u));

TEST(OptimalSilentVerification, InventoryMatchesStateCount) {
  const std::uint32_t n = 3;
  const auto t = tiny_tuning(n);
  optimal_silent_ssr p(n, t);
  EXPECT_EQ(p.all_states().size(), optimal_silent_ssr::state_count(n, t));
}

// DESIGN.md deviation #1, machine-checked: under the paper's literal "< n"
// recruiting guard rank n is never assigned, so no correct configuration is
// reachable at all and the verifier rejects the protocol; with our "<= n"
// guard (the prose semantics) it verifies.
TEST(OptimalSilentVerification, PaperLiteralGuardMutantIsRejected) {
  struct literal_guard_protocol {
    using agent_state = optimal_silent_ssr::agent_state;
    using role_t = optimal_silent_ssr::role_t;
    optimal_silent_ssr inner;
    std::uint32_t population_size() const { return inner.population_size(); }
    std::uint32_t rank_of(const agent_state& s) const {
      return inner.rank_of(s);
    }
    bool interact(agent_state& a, agent_state& b, rng_t& rng) const {
      // Run the real protocol but veto any recruitment that assigns the
      // top rank -- exactly what the literal "2 rank + children < n" guard
      // does differently from ours.
      const agent_state a_before = a;
      const agent_state b_before = b;
      const bool changed = inner.interact(a, b, rng);
      const std::uint32_t n = inner.population_size();
      const bool a_recruited = a_before.role == role_t::unsettled &&
                               a.role == role_t::settled && a.rank == n;
      const bool b_recruited = b_before.role == role_t::unsettled &&
                               b.role == role_t::settled && b.rank == n;
      if (a_recruited || b_recruited) {
        a = a_before;
        b = b_before;
        return false;
      }
      return changed;
    }
  };
  const std::uint32_t n = 3;
  literal_guard_protocol p{optimal_silent_ssr(n, tiny_tuning(n))};
  const auto states = p.inner.all_states();
  const auto result = verify_self_stabilization(p, states);
  EXPECT_FALSE(result.self_stabilizing);
}

}  // namespace
}  // namespace ssr
