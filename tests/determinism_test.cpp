// Determinism guarantees of the measurement stack:
//
//   * run_trials is bit-identical for the same base seed regardless of the
//     parallel flag (trials are seeded per index via derive_seed, so thread
//     count and scheduling order cannot leak into results) -- for the
//     legacy overload and for the engine-selecting overload under both
//     engines;
//   * simulation<P>::step trajectories replay exactly from a recorded seed;
//   * direct_engine<P> consumes the RNG stream identically to simulation<P>,
//     the contract that keeps every seed-pinned historical result valid
//     under the engine-concept refactor.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pp/convergence.hpp"
#include "pp/engine.hpp"
#include "pp/simulation.hpp"
#include "pp/trial.hpp"
#include "protocols/adversary.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/serialize.hpp"
#include "protocols/silent_n_state.hpp"

namespace {

using namespace ssr;

double baseline_trial(std::uint64_t s, engine_kind k) {
  const std::uint32_t n = 16;
  silent_n_state_ssr p(n);
  rng_t rng(s);
  auto init = adversarial_configuration(p, rng);
  const auto r = measure_convergence_with(k, p, std::move(init), s ^ 0xabcd);
  return r.converged ? r.convergence_time : -1.0;
}

TEST(Determinism, RunTrialsLegacyOverloadParallelFlagInvariant) {
  const auto trial = [](std::uint64_t s) {
    return baseline_trial(s, engine_kind::direct);
  };
  const auto parallel = run_trials(32, 99, trial, /*parallel=*/true);
  const auto serial = run_trials(32, 99, trial, /*parallel=*/false);
  EXPECT_EQ(parallel, serial);
}

TEST(Determinism, RunTrialsEngineOverloadParallelFlagInvariant) {
  for (const engine_kind kind :
       {engine_kind::direct, engine_kind::batched}) {
    const auto parallel = run_trials(32, 123, baseline_trial,
                                     {.parallel = true, .engine = kind});
    const auto serial = run_trials(32, 123, baseline_trial,
                                   {.parallel = false, .engine = kind});
    EXPECT_EQ(parallel, serial) << "engine " << to_string(kind);
    // Same base seed => same per-trial seeds; repeated runs reproduce too.
    const auto again = run_trials(32, 123, baseline_trial,
                                  {.parallel = true, .engine = kind});
    EXPECT_EQ(parallel, again) << "engine " << to_string(kind);
  }
}

TEST(Determinism, SimulationStepReplaysExactly) {
  const std::uint32_t n = 24;
  optimal_silent_ssr p(n);
  rng_t config_rng(7);
  const auto initial = adversarial_configuration(
      p, optimal_silent_scenario::uniform_random, config_rng);
  const std::uint64_t seed = 4242;

  // First run: record configuration snapshots along the trajectory.
  simulation<optimal_silent_ssr> first(p, initial, seed);
  std::vector<std::string> snapshots;
  for (int chunk = 0; chunk < 10; ++chunk) {
    for (int i = 0; i < 200; ++i) first.step();
    snapshots.push_back(to_text(p, first.agents()));
  }

  // Replay from the same recorded seed: every snapshot must match bit for
  // bit.
  simulation<optimal_silent_ssr> replay(p, initial, seed);
  for (int chunk = 0; chunk < 10; ++chunk) {
    for (int i = 0; i < 200; ++i) replay.step();
    EXPECT_EQ(snapshots[static_cast<std::size_t>(chunk)],
              to_text(p, replay.agents()))
        << "diverged by interaction " << (chunk + 1) * 200;
  }
}

TEST(Determinism, DirectEngineMatchesSimulationTrajectory) {
  const std::uint32_t n = 32;
  silent_n_state_ssr p(n);
  rng_t config_rng(11);
  const auto initial = adversarial_configuration(p, config_rng);
  const std::uint64_t seed = 31337;

  simulation<silent_n_state_ssr> sim(p, initial, seed);
  direct_engine<silent_n_state_ssr> eng(p, initial, seed);
  for (int chunk = 0; chunk < 8; ++chunk) {
    for (int i = 0; i < 250; ++i) sim.step();
    eng.run(sim.interactions(), [](const agent_pair&) {},
            [](const agent_pair&, bool) { return false; });
    ASSERT_EQ(eng.interactions(), sim.interactions());
    EXPECT_EQ(to_text(p, sim.agents()), to_text(p, eng.agents()))
        << "direct_engine diverged from simulation<P> by interaction "
        << sim.interactions();
  }
}

}  // namespace
