// Hierarchical section profiler (obs/timeline.hpp): section-tree
// construction, the detached ≤1-branch discipline, derived hardware
// metrics, and the two export formats.  The folded-stack and chrome span
// formats are contracts consumed by flamegraph.pl / speedscope / Perfetto,
// so they are pinned by golden files built from a hand-assembled profile
// (real profiler output carries wall-clock times and cannot be byte
// stable).  Regenerate with
//   SSR_UPDATE_GOLDEN=1 ./ssr_tests --gtest_filter='ObsTimeline.*Golden*'
// and review the diff.
#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/trace_stats.hpp"
#include "obs/json.hpp"
#include "pp/engine.hpp"
#include "protocols/adversary.hpp"
#include "protocols/optimal_silent.hpp"

namespace ssr::obs {
namespace {

TEST(ObsTimeline, ScopesBuildTheSectionTree) {
  timeline_profiler profiler;
  {
    timeline_scope outer(&profiler, "bench");
    for (int trial = 0; trial < 3; ++trial) {
      timeline_scope mid(&profiler, "trial");
      {
        timeline_scope inner(&profiler, "engine.run");
        profiler.add_units(100);
      }
    }
  }
  ASSERT_TRUE(profiler.idle());
  const timeline_profile profile = profiler.profile();
  ASSERT_EQ(profile.sections.size(), 3u);
  EXPECT_EQ(profile.path(0), "bench");
  EXPECT_EQ(profile.path(1), "bench;trial");
  EXPECT_EQ(profile.path(2), "bench;trial;engine.run");
  EXPECT_EQ(profile.sections[0].count, 1u);
  EXPECT_EQ(profile.sections[1].count, 3u);
  EXPECT_EQ(profile.sections[2].count, 3u);
  EXPECT_EQ(profile.sections[2].units, 300u);
  EXPECT_EQ(profile.sections[2].depth, 2u);
  // Inclusive times nest: parent >= sum of children.
  EXPECT_GE(profile.sections[0].wall_ns, profile.sections[1].wall_ns);
  EXPECT_GE(profile.sections[1].wall_ns, profile.sections[2].wall_ns);
  EXPECT_EQ(profile.spans.size(), 7u);
  EXPECT_EQ(profile.spans_dropped, 0u);
}

TEST(ObsTimeline, SameNameUnderDifferentParentsIsDistinct) {
  timeline_profiler profiler;
  {
    timeline_scope a(&profiler, "phase.a");
    timeline_scope s(&profiler, "step");
  }
  {
    timeline_scope b(&profiler, "phase.b");
    timeline_scope s(&profiler, "step");
  }
  const timeline_profile profile = profiler.profile();
  ASSERT_EQ(profile.sections.size(), 4u);
  EXPECT_EQ(profile.path(1), "phase.a;step");
  EXPECT_EQ(profile.path(3), "phase.b;step");
}

TEST(ObsTimeline, DetachedScopeIsANoOp) {
  // The discipline engines rely on: a null profiler makes timeline_scope
  // (and profiler-default dispatch) cost one branch and touch nothing.
  timeline_scope scope(nullptr, "never.recorded");
  set_profiler_default(nullptr);
  EXPECT_EQ(profiler_default(), nullptr);
}

TEST(ObsTimeline, DefaultProfilerRoundTrips) {
  timeline_profiler profiler;
  set_profiler_default(&profiler);
  EXPECT_EQ(profiler_default(), &profiler);
  set_profiler_default(nullptr);
  EXPECT_EQ(profiler_default(), nullptr);
}

TEST(ObsTimeline, SpanCapCountsDrops) {
  timeline_profiler profiler(timeline_options{.max_spans = 4});
  for (int i = 0; i < 10; ++i) timeline_scope scope(&profiler, "s");
  const timeline_profile profile = profiler.profile();
  EXPECT_EQ(profile.spans.size(), 4u);
  EXPECT_EQ(profile.spans_dropped, 6u);
  // Aggregation is unaffected by the span sample cap.
  EXPECT_EQ(profile.sections[0].count, 10u);
}

/// Deterministic three-section profile used by the format goldens and the
/// derived-metrics test: bench(1ms) -> trial(0.6ms) -> engine.run(0.4ms,
/// 5000 units, instructions/cycles/branch_misses available).
timeline_profile fixture_profile() {
  timeline_profile p;
  p.sections.resize(3);
  p.sections[0] = {"bench", timeline_no_parent, 0, 1, 1'000'000, 0, {}};
  p.sections[1] = {"trial", 0, 1, 2, 600'000, 0, {}};
  p.sections[2] = {"engine.run", 1, 2, 2, 400'000, 5000, {}};
  p.sections[2].perf.value = {20'000, 50'000, 500, 0, 0};
  p.sections[2].perf.available = {true, true, true, false, false};
  p.spans = {{2, 1'000, 150'000}, {2, 300'000, 250'000}};
  p.perf_available = {true, true, true, false, false};
  p.perf_status = "partial: some events unsupported or restricted";
  return p;
}

std::string data_path(const std::string& name) {
  return std::string(SSR_TEST_DATA_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is) << "cannot open " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void check_golden(const std::string& produced, const std::string& file) {
  if (std::getenv("SSR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream os(data_path(file));
    ASSERT_TRUE(os) << data_path(file);
    os << produced;
    GTEST_SKIP() << "golden file " << file << " regenerated";
  }
  EXPECT_EQ(produced, slurp(data_path(file)));
}

TEST(ObsTimeline, SelfTimeSubtractsChildren) {
  const timeline_profile profile = fixture_profile();
  const std::vector<std::uint64_t> self = profile.self_wall_ns();
  ASSERT_EQ(self.size(), 3u);
  EXPECT_EQ(self[0], 400'000u);  // 1ms - 0.6ms of "trial"
  EXPECT_EQ(self[1], 200'000u);  // 0.6ms - 0.4ms of "engine.run"
  EXPECT_EQ(self[2], 400'000u);  // leaf
}

TEST(ObsTimeline, FoldedStackGoldenFile) {
  std::ostringstream os;
  fixture_profile().write_folded(os);
  check_golden(os.str(), "profile_golden.folded");
}

TEST(ObsTimeline, ChromeSpansGoldenFile) {
  const json_value doc = chrome_profile_json(fixture_profile());
  check_golden(doc.dump(2) + "\n", "profile_golden_chrome.json");
}

TEST(ObsTimeline, ProfileJsonCarriesSectionsAndAvailability) {
  const json_value j = fixture_profile().to_json();
  ASSERT_NE(j.find("schema"), nullptr);
  EXPECT_EQ(j.find("schema")->as_string(), "ssr.profile");
  ASSERT_NE(j.find("sections"), nullptr);
  ASSERT_EQ(j.find("sections")->items().size(), 3u);
  const json_value& engine_run = j.find("sections")->items()[2];
  EXPECT_EQ(engine_run.find("path")->as_string(),
            "bench;trial;engine.run");
  EXPECT_EQ(engine_run.find("units")->as_uint64(), 5000u);
  ASSERT_NE(engine_run.find("perf"), nullptr);
  EXPECT_EQ(engine_run.find("perf")->find("instructions")->as_uint64(),
            50'000u);
  ASSERT_NE(j.find("perf"), nullptr);
  EXPECT_FALSE(
      j.find("perf")->find("available")->find("cache_misses")->as_bool());
}

TEST(ObsTimeline, DeriveHardwareMetricsFromUnitSections) {
  const profile_derived d = derive_hardware_metrics(fixture_profile());
  ASSERT_TRUE(d.valid);
  EXPECT_EQ(d.units, 5000u);
  EXPECT_DOUBLE_EQ(d.instructions_per_unit, 10.0);  // 50000 / 5000
  EXPECT_DOUBLE_EQ(d.cycles_per_unit, 4.0);         // 20000 / 5000
  EXPECT_DOUBLE_EQ(d.branch_miss_rate, 0.01);       // 500 / 50000

  // Wall-time-only profile (perf restricted): no derived hardware rows.
  timeline_profile bare = fixture_profile();
  for (auto& section : bare.sections) section.perf = {};
  EXPECT_FALSE(derive_hardware_metrics(bare).valid);
}

// Overhead guard (same methodology and bound as the PR-2 counter guard in
// obs_overhead_test.cpp): with no profiler attached the engine
// instrumentation is one `if (profiler_)` branch per run() call -- not per
// interaction -- so a detached run must stay within the same generous 2x
// envelope of an attached one, and of itself across repetitions.
double seconds_for_run(timeline_profiler* profiler) {
  const std::uint32_t n = 256;
  optimal_silent_ssr p(n);
  rng_t rng(17);
  auto init = adversarial_configuration(
      p, optimal_silent_scenario::uniform_random, rng);
  direct_engine<optimal_silent_ssr> eng(p, std::move(init), 18);
  eng.attach_profiler(profiler);
  const auto start = std::chrono::steady_clock::now();
  eng.run(400'000, [](const agent_pair&) {},
          [](const agent_pair&, bool) { return false; });
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double min_of(int repetitions, timeline_profiler* profiler) {
  double best = 1e9;
  for (int r = 0; r < repetitions; ++r)
    best = std::min(best, seconds_for_run(profiler));
  return best;
}

TEST(ObsTimeline, DetachedProfilingStaysCheap) {
  seconds_for_run(nullptr);  // warm-up

  const double detached = min_of(5, nullptr);
  timeline_profiler profiler;
  const double attached = min_of(5, &profiler);

  ASSERT_GT(detached, 0.0);
  EXPECT_GT(profiler.profile().sections.at(0).units, 0u);
  EXPECT_LT(detached, attached * 2.0)
      << "detached=" << detached << "s attached=" << attached << "s";
  const double detached_again = min_of(3, nullptr);
  EXPECT_LT(detached_again, detached * 2.0)
      << "measurement too noisy to interpret";
}

}  // namespace
}  // namespace ssr::obs
