#include "protocols/loose_stabilizing.hpp"

#include <gtest/gtest.h>

#include "pp/scheduler.hpp"
#include "pp/simulation.hpp"

namespace ssr {
namespace {

using state_t = loose_stabilizing_le::agent_state;

// Convenience runner: steps until the leader count matches `target` (or a
// cap), returns parallel time.
template <class Pred>
double run_until_leaders(const loose_stabilizing_le& p,
                         std::vector<state_t>& agents, rng_t& rng, Pred pred,
                         std::uint64_t max_interactions) {
  const std::uint32_t n = p.population_size();
  std::uint64_t steps = 0;
  while (steps < max_interactions && !pred(p.leader_count(agents))) {
    const agent_pair pair = sample_pair(rng, n);
    p.interact(agents[pair.initiator], agents[pair.responder], rng);
    ++steps;
  }
  return static_cast<double>(steps) / n;
}

TEST(LooseStabilizing, LeaderPinsOwnTimer) {
  loose_stabilizing_le p(4, 10);
  rng_t rng(1);
  state_t leader{true, 3};
  state_t follower{false, 7};
  p.interact(leader, follower, rng);
  EXPECT_EQ(leader.timer, 10u);
  EXPECT_EQ(follower.timer, 6u);  // max(3,7) - 1
}

TEST(LooseStabilizing, DuelDemotesResponder) {
  loose_stabilizing_le p(4, 10);
  rng_t rng(1);
  state_t a{true, 10};
  state_t b{true, 10};
  p.interact(a, b, rng);
  EXPECT_TRUE(a.leader);
  EXPECT_FALSE(b.leader);
}

TEST(LooseStabilizing, TimeoutPromotes) {
  loose_stabilizing_le p(4, 10);
  rng_t rng(1);
  state_t a{false, 1};
  state_t b{false, 0};
  p.interact(a, b, rng);
  // max(1,0) - 1 = 0: both time out and promote.
  EXPECT_TRUE(a.leader);
  EXPECT_TRUE(b.leader);
  EXPECT_EQ(a.timer, 10u);
}

TEST(LooseStabilizing, ConvergesFromDeadConfiguration) {
  const std::uint32_t n = 32;
  loose_stabilizing_le p(n, 40);
  auto agents = p.dead_configuration();
  rng_t rng(3);
  run_until_leaders(p, agents, rng,
                    [](std::size_t leaders) { return leaders == 1; },
                    100'000'000ull);
  EXPECT_EQ(p.leader_count(agents), 1u);
}

TEST(LooseStabilizing, ConvergesFromAllLeaders) {
  const std::uint32_t n = 32;
  loose_stabilizing_le p(n, 40);
  std::vector<state_t> agents(n, state_t{true, 40});
  rng_t rng(5);
  run_until_leaders(p, agents, rng,
                    [](std::size_t leaders) { return leaders == 1; },
                    100'000'000ull);
  EXPECT_EQ(p.leader_count(agents), 1u);
}

TEST(LooseStabilizing, LeaderCountNeverHitsZeroOnceElected) {
  const std::uint32_t n = 16;
  loose_stabilizing_le p(n, 12);
  auto agents = p.dead_configuration();
  rng_t rng(7);
  run_until_leaders(p, agents, rng,
                    [](std::size_t leaders) { return leaders >= 1; },
                    10'000'000ull);
  // A leader only disappears by losing a duel, which keeps the winner.
  for (int step = 0; step < 200000; ++step) {
    const agent_pair pair = sample_pair(rng, n);
    p.interact(agents[pair.initiator], agents[pair.responder], rng);
    if (step % 1000 == 0) {
      ASSERT_GE(p.leader_count(agents), 1u);
    }
  }
}

TEST(LooseStabilizing, HoldingTimeGrowsWithTimeout) {
  // The loose-stabilization trade: larger T holds the unique leader
  // (much) longer.  Measure mean time until the leader count leaves 1,
  // from a freshly converged configuration.
  const std::uint32_t n = 24;
  auto mean_holding = [&](std::uint32_t t_max) {
    loose_stabilizing_le p(n, t_max);
    double total = 0.0;
    const int trials = 10;
    for (int trial = 0; trial < trials; ++trial) {
      rng_t rng(100 + trial);
      auto agents = p.dead_configuration();
      run_until_leaders(p, agents, rng,
                        [](std::size_t leaders) { return leaders == 1; },
                        100'000'000ull);
      total += run_until_leaders(
          p, agents, rng,
          [](std::size_t leaders) { return leaders != 1; },
          /*cap=*/static_cast<std::uint64_t>(2'000'000));
    }
    return total / trials;
  };
  const double short_t = mean_holding(8);
  const double long_t = mean_holding(48);
  EXPECT_GT(long_t, 5.0 * short_t);
}

TEST(LooseStabilizing, StateCountIsLogarithmicNotLinear) {
  // 2(T+1) states with T = Theta(log n): far below Theorem 2.1's n-state
  // bound -- legal only because loose stabilization is weaker than
  // self-stabilization.
  EXPECT_EQ(loose_stabilizing_le::state_count(40), 82u);
  EXPECT_LT(loose_stabilizing_le::state_count(40), 1024u);
}

TEST(LooseStabilizing, RejectsBadParameters) {
  EXPECT_THROW(loose_stabilizing_le(1, 10), std::logic_error);
  EXPECT_THROW(loose_stabilizing_le(4, 0), std::logic_error);
}

}  // namespace
}  // namespace ssr
