// The headline property of the paper, tested wholesale: from *every*
// adversarial scenario, over many seeds and population sizes, each protocol
// reaches a stably correct ranking (and therefore a unique leader).
#include <gtest/gtest.h>

#include <tuple>

#include "pp/convergence.hpp"
#include "protocols/adversary.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"
#include "protocols/sublinear.hpp"

namespace ssr {
namespace {

// ---------------------------------------------------------------- baseline

class BaselineStabilization
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(BaselineStabilization, FromRandomConfiguration) {
  const auto [n, seed] = GetParam();
  silent_n_state_ssr p(n);
  rng_t rng(derive_seed(1000 + n, seed));
  auto init = adversarial_configuration(p, rng);
  std::vector<silent_n_state_ssr::agent_state> final_config;
  convergence_options opt;
  opt.max_parallel_time = 1e7;
  const auto r =
      measure_convergence(p, std::move(init), seed, opt, &final_config);
  ASSERT_TRUE(r.converged) << "n=" << n << " seed=" << seed;
  EXPECT_TRUE(is_valid_ranking(p, final_config));
  EXPECT_EQ(r.correctness_losses, 0u);  // baseline never revokes a ranking
}

INSTANTIATE_TEST_SUITE_P(Sweep, BaselineStabilization,
                         ::testing::Combine(::testing::Values(4u, 16u, 48u),
                                            ::testing::Range(0, 4)));

// ----------------------------------------------------------- optimal silent

class OptimalSilentStabilization
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, optimal_silent_scenario, int>> {};

TEST_P(OptimalSilentStabilization, FromScenario) {
  const auto [n, scenario, seed] = GetParam();
  optimal_silent_ssr p(n);
  rng_t rng(derive_seed(2000 + n, seed));
  auto init = adversarial_configuration(p, scenario, rng);
  std::vector<optimal_silent_ssr::agent_state> final_config;
  convergence_options opt;
  opt.max_parallel_time = 1e6;
  const auto r =
      measure_convergence(p, std::move(init), seed, opt, &final_config);
  ASSERT_TRUE(r.converged)
      << "n=" << n << " scenario=" << to_string(scenario) << " seed=" << seed;
  EXPECT_TRUE(is_valid_ranking(p, final_config));
  EXPECT_EQ(leader_count(p, final_config), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimalSilentStabilization,
    ::testing::Combine(
        ::testing::Values(4u, 16u, 40u),
        ::testing::Values(optimal_silent_scenario::uniform_random,
                          optimal_silent_scenario::all_settled_rank_one,
                          optimal_silent_scenario::no_leader,
                          optimal_silent_scenario::all_unsettled_expired,
                          optimal_silent_scenario::all_dormant_followers,
                          optimal_silent_scenario::duplicated_ranks,
                          optimal_silent_scenario::valid_ranking),
        ::testing::Range(0, 3)));

// --------------------------------------------------------------- sublinear

class SublinearStabilization
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, sublinear_scenario, int>> {
};

TEST_P(SublinearStabilization, FromScenario) {
  const auto [n, h, scenario, seed] = GetParam();
  sublinear_time_ssr p(n, h);
  rng_t rng(derive_seed(3000 + 17 * n + h, seed));
  auto init = adversarial_configuration(p, scenario, rng);
  std::vector<sublinear_time_ssr::agent_state> final_config;
  convergence_options opt;
  opt.max_parallel_time = 1e6;
  opt.confirm_parallel_time = 100.0;
  const auto r =
      measure_convergence(p, std::move(init), seed, opt, &final_config);
  ASSERT_TRUE(r.converged)
      << "n=" << n << " h=" << h << " scenario=" << to_string(scenario)
      << " seed=" << seed;
  EXPECT_TRUE(is_valid_ranking(p, final_config));
  EXPECT_EQ(leader_count(p, final_config), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SublinearStabilization,
    ::testing::Combine(
        ::testing::Values(4u, 8u, 12u),
        ::testing::Values(0u, 1u, 2u, 3u),
        ::testing::Values(sublinear_scenario::uniform_random,
                          sublinear_scenario::all_same_name,
                          sublinear_scenario::single_collision,
                          sublinear_scenario::ghost_names,
                          sublinear_scenario::missing_own_name,
                          sublinear_scenario::planted_histories,
                          sublinear_scenario::mid_reset,
                          sublinear_scenario::valid_ranking),
        ::testing::Range(0, 2)));

}  // namespace
}  // namespace ssr
