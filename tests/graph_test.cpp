#include "pp/graph.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "analysis/ks_test.hpp"
#include "pp/convergence.hpp"
#include "pp/trial.hpp"

#include "pp/graph_simulation.hpp"
#include "protocols/silent_n_state.hpp"

namespace ssr {
namespace {

TEST(Graph, CompleteHasAllPairs) {
  const auto g = interaction_graph::complete(6);
  EXPECT_EQ(g.size(), 6u);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.min_degree(), 5u);
  EXPECT_EQ(g.max_degree(), 5u);
}

TEST(Graph, RingAndPathAndStar) {
  const auto ring = interaction_graph::ring(8);
  EXPECT_EQ(ring.edge_count(), 8u);
  EXPECT_EQ(ring.min_degree(), 2u);
  EXPECT_EQ(ring.max_degree(), 2u);
  EXPECT_TRUE(ring.is_connected());

  const auto path = interaction_graph::path(8);
  EXPECT_EQ(path.edge_count(), 7u);
  EXPECT_EQ(path.min_degree(), 1u);
  EXPECT_TRUE(path.is_connected());

  const auto star = interaction_graph::star(8);
  EXPECT_EQ(star.edge_count(), 7u);
  EXPECT_EQ(star.max_degree(), 7u);
  EXPECT_EQ(star.min_degree(), 1u);
  EXPECT_TRUE(star.is_connected());
}

TEST(Graph, RejectsMalformedEdges) {
  using edge_list = std::vector<std::pair<std::uint32_t, std::uint32_t>>;
  EXPECT_THROW(interaction_graph(4, edge_list{{0, 0}}), std::logic_error);
  EXPECT_THROW(interaction_graph(4, edge_list{{0, 7}}), std::logic_error);
  EXPECT_THROW(interaction_graph(4, edge_list{{0, 1}, {1, 0}}),
               std::logic_error);
  EXPECT_THROW(interaction_graph(4, edge_list{}), std::logic_error);
}

TEST(Graph, ErdosRenyiIsAlwaysConnected) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto g = interaction_graph::erdos_renyi(32, 0.02, seed);
    EXPECT_TRUE(g.is_connected()) << "seed " << seed;
  }
}

TEST(Graph, ErdosRenyiDensityTracksP) {
  const auto sparse = interaction_graph::erdos_renyi(64, 0.05, 1);
  const auto dense = interaction_graph::erdos_renyi(64, 0.5, 1);
  EXPECT_LT(sparse.edge_count(), dense.edge_count());
  const double expected_dense = 0.5 * 64 * 63 / 2;
  EXPECT_NEAR(static_cast<double>(dense.edge_count()), expected_dense,
              0.15 * expected_dense);
}

TEST(Graph, RandomRegularHasExactDegrees) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto g = interaction_graph::random_regular(16, 4, seed);
    EXPECT_EQ(g.min_degree(), 4u);
    EXPECT_EQ(g.max_degree(), 4u);
    EXPECT_TRUE(g.is_connected());
    EXPECT_EQ(g.edge_count(), 16u * 4 / 2);
  }
}

TEST(Graph, RandomRegularRejectsOddStubCount) {
  EXPECT_THROW(interaction_graph::random_regular(5, 3, 1), std::logic_error);
}

TEST(Graph, SamplerOnlyEmitsEdges) {
  const auto g = interaction_graph::ring(6);
  rng_t rng(3);
  for (int i = 0; i < 10000; ++i) {
    const agent_pair p = g.sample(rng);
    const std::uint32_t d =
        (p.initiator + 6 - p.responder) % 6;  // ring distance
    EXPECT_TRUE(d == 1 || d == 5) << p.initiator << "," << p.responder;
  }
}

TEST(Graph, SamplerIsUniformOverOrientedEdges) {
  const auto g = interaction_graph::star(4);  // 3 edges, 6 orientations
  rng_t rng(7);
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> count;
  constexpr int draws = 60000;
  for (int i = 0; i < draws; ++i) {
    const agent_pair p = g.sample(rng);
    ++count[{p.initiator, p.responder}];
  }
  EXPECT_EQ(count.size(), 6u);
  for (const auto& [pair, c] : count) {
    EXPECT_NEAR(c, draws / 6.0, 5 * std::sqrt(draws / 6.0));
  }
}

TEST(GraphSimulation, MatchesCompleteGraphSemantics) {
  // On the complete graph, the baseline stabilizes as usual.
  const std::uint32_t n = 8;
  silent_n_state_ssr p(n);
  graph_simulation<silent_n_state_ssr> sim(
      p, interaction_graph::complete(n),
      std::vector<silent_n_state_ssr::agent_state>(n), 3);
  const bool done = sim.run_until(
      [](const graph_simulation<silent_n_state_ssr>& s) {
        return is_valid_ranking(s.protocol(), s.agents());
      },
      10'000'000ull);
  EXPECT_TRUE(done);
  EXPECT_TRUE(sim.is_silent_configuration());
}

TEST(GraphSimulation, CompleteGraphSchedulerMatchesPairScheduler) {
  // Same distribution of stabilization times under the edge scheduler on
  // the complete graph and the uniform ordered-pair scheduler (KS check).
  const std::uint32_t n = 8;
  silent_n_state_ssr p(n);
  const auto pair_sched = run_trials(300, 61000, [&](std::uint64_t seed) {
    std::vector<silent_n_state_ssr::agent_state> init(n);
    return measure_convergence(p, init, seed).convergence_time;
  });
  const auto edge_sched = run_trials(300, 62000, [&](std::uint64_t seed) {
    graph_simulation<silent_n_state_ssr> sim(
        p, interaction_graph::complete(n),
        std::vector<silent_n_state_ssr::agent_state>(n), seed);
    sim.run_until(
        [](const graph_simulation<silent_n_state_ssr>& s) {
          return is_valid_ranking(s.protocol(), s.agents());
        },
        100'000'000ull);
    return sim.parallel_time();
  });
  const auto ks = ks_two_sample(pair_sched, edge_sched);
  EXPECT_GT(ks.p_value, 0.001) << "KS statistic " << ks.statistic;
}

TEST(GraphSimulation, RejectsSizeMismatch) {
  silent_n_state_ssr p(8);
  EXPECT_THROW(graph_simulation<silent_n_state_ssr>(
                   p, interaction_graph::ring(6),
                   std::vector<silent_n_state_ssr::agent_state>(8), 1),
               std::logic_error);
}

}  // namespace
}  // namespace ssr
